#ifndef HDC_RUNTIME_BATCH_CLASSIFIER_HPP
#define HDC_RUNTIME_BATCH_CLASSIFIER_HPP

/// \file batch_classifier.hpp
/// \brief Batched training and inference over a CentroidClassifier.
///
/// Training fans the sample stream out to per-thread BundleAccumulators and
/// merges them into the wrapped model (commutative integer addition, so the
/// result is bit-identical to the sequential add_sample stream for any
/// thread count).  Inference runs each arena row through the same fused
/// XOR+popcount kernel as CentroidClassifier::predict — one implementation,
/// two entry points.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/classifier.hpp"
#include "hdc/runtime/arena.hpp"
#include "hdc/runtime/batch_encoder.hpp"

namespace hdc::runtime {

/// Thread-parallel wrapper around a CentroidClassifier.
class BatchClassifier {
 public:
  /// Owns a fresh model. \throws std::invalid_argument as the
  /// CentroidClassifier constructor, or if pool is null.
  BatchClassifier(std::size_t num_classes, std::size_t dimension,
                  std::uint64_t seed, ThreadPoolPtr pool);

  /// Adopts an existing finalized model — typically one restored from an
  /// hdc::io snapshot, whose class arena may borrow a read-only mapping (the
  /// engine never mutates it on the predict path; fit() on an
  /// inference-only model throws std::logic_error as the model itself does).
  /// \throws std::invalid_argument if the model is not finalized or pool is
  /// null.
  BatchClassifier(CentroidClassifier model, ThreadPoolPtr pool);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return model_.num_classes();
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return model_.dimension();
  }

  /// The wrapped model (e.g. for finalize(), adapt(), serialization).
  [[nodiscard]] CentroidClassifier& model() noexcept { return model_; }
  [[nodiscard]] const CentroidClassifier& model() const noexcept {
    return model_;
  }

  /// Accumulates one encoded sample per arena row under the corresponding
  /// label, in parallel.  Equivalent to calling model().add_sample for every
  /// row in order; call model().finalize() (or fit_finalize) afterwards.
  /// \throws std::invalid_argument if sizes or dimensions mismatch, or any
  /// label is out of range.
  void fit(const VectorArena& samples, std::span<const std::size_t> labels);

  /// fit() followed by model().finalize().
  void fit_finalize(const VectorArena& samples,
                    std::span<const std::size_t> labels);

  /// Nearest-class prediction for every arena row, in parallel; out[i] ==
  /// model().predict(samples.extract(i)) for all i, for any thread count.
  /// \throws std::logic_error if the model is not finalized;
  /// std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<std::size_t> predict(
      const VectorArena& queries) const;

  /// Top-2 (distance, index) candidates for every arena row, in parallel;
  /// out[i] == model().predict_top2(...) for all i, for any thread count —
  /// the batched confidence head (feed each result to margin_confidence()).
  /// \throws as predict().
  [[nodiscard]] std::vector<Top2> predict_top2(
      const VectorArena& queries) const;

 private:
  CentroidClassifier model_;
  ThreadPoolPtr pool_;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_BATCH_CLASSIFIER_HPP
