#ifndef HDC_RUNTIME_BATCH_REGRESSOR_HPP
#define HDC_RUNTIME_BATCH_REGRESSOR_HPP

/// \file batch_regressor.hpp
/// \brief Batched training and inference over an HDRegressor.
///
/// Training binds each encoded input to its label vector in parallel,
/// accumulating into per-thread BundleAccumulators that merge into the
/// wrapped model (bit-identical to the sequential add_sample stream for any
/// thread count).  Inference evaluates the paper-faithful readout
/// decode(M ⊗ phi(x̂)) per arena row; the label-basis cleanup inside
/// decode() runs on the same fused XOR+popcount kernel as every other
/// nearest-neighbour scan in the library.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/regressor.hpp"
#include "hdc/runtime/arena.hpp"
#include "hdc/runtime/batch_encoder.hpp"

namespace hdc::runtime {

/// Thread-parallel wrapper around an HDRegressor.
class BatchRegressor {
 public:
  /// Owns a fresh model. \throws std::invalid_argument as the HDRegressor
  /// constructor, or if pool is null.
  BatchRegressor(ScalarEncoderPtr labels, std::uint64_t seed,
                 ThreadPoolPtr pool);

  /// Adopts an existing finalized model — typically one restored from an
  /// hdc::io snapshot, whose label basis may borrow a read-only mapping (the
  /// engine never mutates it on the predict path; fit() on an
  /// inference-only model throws std::logic_error as the model itself does).
  /// \throws std::invalid_argument if the model is not finalized or pool is
  /// null.
  BatchRegressor(HDRegressor model, ThreadPoolPtr pool);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return model_.dimension();
  }

  /// The wrapped model (e.g. for finalize() and serialization).
  [[nodiscard]] HDRegressor& model() noexcept { return model_; }
  [[nodiscard]] const HDRegressor& model() const noexcept { return model_; }

  /// Accumulates one (encoded input, label) pair per arena row, in parallel.
  /// Equivalent to calling model().add_sample for every row in order; call
  /// model().finalize() (or fit_finalize) afterwards.
  /// \throws std::invalid_argument if sizes or dimensions mismatch.
  void fit(const VectorArena& inputs, std::span<const double> labels);

  /// fit() followed by model().finalize().
  void fit_finalize(const VectorArena& inputs, std::span<const double> labels);

  /// Paper-faithful prediction for every arena row, in parallel; out[i] ==
  /// model().predict(queries.extract(i)) for all i, for any thread count.
  /// \throws std::logic_error if the model is not finalized;
  /// std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<double> predict(const VectorArena& queries) const;

  /// p10/p50/p90 quantile band (HDRegressor::predict_band) for every arena
  /// row, in parallel; out[i] == model().predict_band(...) for all i, for
  /// any thread count — the batched distributional head.
  /// \throws as predict().
  [[nodiscard]] std::vector<Band> predict_band(
      const VectorArena& queries) const;

  /// Integer-accumulator prediction (HDRegressor::predict_integer) for every
  /// arena row, in parallel.  Does not require finalize().
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<double> predict_integer(
      const VectorArena& queries) const;

 private:
  HDRegressor model_;
  ThreadPoolPtr pool_;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_BATCH_REGRESSOR_HPP
