#ifndef HDC_RUNTIME_BATCH_ENCODER_HPP
#define HDC_RUNTIME_BATCH_ENCODER_HPP

/// \file batch_encoder.hpp
/// \brief Parallel feature-batch encoding into a VectorArena.
///
/// Wraps any per-sample encoding function (a KeyValueEncoder, a bound
/// composition of scalar encoders, ...) and maps it over a batch of feature
/// rows on the thread pool.  Each worker writes its rows into disjoint arena
/// slots, so the output is bit-identical for every thread count.

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "hdc/core/hypervector.hpp"
#include "hdc/runtime/arena.hpp"
#include "hdc/runtime/thread_pool.hpp"

namespace hdc::runtime {

/// Shared pool handle: the engines only fan out, they never own policy.
using ThreadPoolPtr = std::shared_ptr<ThreadPool>;

/// Batched feature -> hypervector encoder.
class BatchEncoder {
 public:
  /// Per-sample encoding function; must be safe to call concurrently from
  /// several threads (every encoder in the library is: encoding reads
  /// immutable basis state only) and must be a pure function of its row for
  /// the thread-count-invariance guarantee to hold.
  using EncodeFn = std::function<Hypervector(std::span<const double>)>;

  /// \throws std::invalid_argument if dimension == 0, encode or pool is null.
  BatchEncoder(std::size_t dimension, EncodeFn encode, ThreadPoolPtr pool);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] const ThreadPoolPtr& pool() const noexcept { return pool_; }

  /// Encodes \p rows.size() / row_width samples from a flat row-major
  /// feature buffer.  \throws std::invalid_argument if row_width == 0 or
  /// does not divide rows.size().
  [[nodiscard]] VectorArena encode(std::span<const double> rows,
                                   std::size_t row_width) const;

  /// Encodes one sample per inner vector.
  [[nodiscard]] VectorArena encode(
      std::span<const std::vector<double>> rows) const;

 private:
  std::size_t dimension_;
  EncodeFn encode_;
  ThreadPoolPtr pool_;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_BATCH_ENCODER_HPP
