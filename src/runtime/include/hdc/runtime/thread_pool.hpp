#ifndef HDC_RUNTIME_THREAD_POOL_HPP
#define HDC_RUNTIME_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// \brief A small persistent std::thread pool for batch fan-out.
///
/// The batch engines split work into one contiguous chunk per worker and
/// block until all chunks finish.  Chunking is *static and deterministic*:
/// chunk boundaries depend only on (count, worker count), and every batch
/// API is defined so its result is identical for any worker count — either
/// each index writes its own output slot, or per-chunk accumulators are
/// merged with commutative integer addition.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdc::runtime {

/// Persistent worker pool; all scheduling is fork-join over index ranges.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers; 0 picks std::thread::hardware_concurrency
  /// (at least 1).  \throws std::invalid_argument when num_threads exceeds
  /// max_threads() — rejecting an absurd count up front beats spawning
  /// thousands of threads before std::thread finally fails.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Upper bound accepted by the constructor.
  [[nodiscard]] static constexpr std::size_t max_threads() noexcept {
    return 4096;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Splits [0, count) into num_chunks(count) contiguous chunks and runs
  /// fn(chunk_begin, chunk_end, chunk_index) on the workers; blocks until all
  /// chunks complete.  Chunk boundaries are deterministic in (count, size()).
  /// The first exception thrown by any chunk is rethrown on the caller.
  /// \throws std::logic_error when called from inside one of this pool's own
  /// worker chunks (the nested round could never be scheduled: the outer
  /// round holds the pool until it finishes — a silent deadlock otherwise).
  void for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Number of chunks a for_chunks(count, ...) round will use; callers
  /// pre-sizing per-chunk state (e.g. partial accumulators) must use this
  /// rather than re-deriving the chunking policy.
  [[nodiscard]] std::size_t num_chunks(std::size_t count) const noexcept;

  /// The [begin, end) range of chunk \p chunk when \p count items are split
  /// into \p chunks chunks; exposed so callers can pre-size per-chunk state.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_range(
      std::size_t count, std::size_t chunks, std::size_t chunk) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex submit_mutex_;  ///< Serializes concurrent for_chunks callers.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;

  // State of the current fork-join round, guarded by mutex_.
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_ =
      nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_chunks_ = 0;
  std::size_t job_generation_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t pending_chunks_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_THREAD_POOL_HPP
