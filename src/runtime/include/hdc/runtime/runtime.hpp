#ifndef HDC_RUNTIME_RUNTIME_HPP
#define HDC_RUNTIME_RUNTIME_HPP

/// \file runtime.hpp
/// \brief Umbrella header: the batched HDC serving runtime.

#include "hdc/runtime/arena.hpp"             // IWYU pragma: export
#include "hdc/runtime/batch_classifier.hpp"  // IWYU pragma: export
#include "hdc/runtime/batch_encoder.hpp"     // IWYU pragma: export
#include "hdc/runtime/batch_regressor.hpp"   // IWYU pragma: export
#include "hdc/runtime/batch_text_encoder.hpp"  // IWYU pragma: export
#include "hdc/runtime/thread_pool.hpp"       // IWYU pragma: export

#endif  // HDC_RUNTIME_RUNTIME_HPP
