#ifndef HDC_RUNTIME_BATCH_TEXT_ENCODER_HPP
#define HDC_RUNTIME_BATCH_TEXT_ENCODER_HPP

/// \file batch_text_encoder.hpp
/// \brief Parallel text-batch encoding into a VectorArena.
///
/// The text twin of `BatchEncoder`: wraps any per-sample string encoder (an
/// `NGramEncoder`, a `SequenceEncoder`'s encode_word, ...) and maps it over
/// a batch of raw text rows on the thread pool.  Each worker writes its
/// rows into disjoint arena slots, so the output is bit-identical for every
/// thread count.  The wrapped function must be const-safe — for the
/// library's text encoders that means `warm_bytes()` was called before the
/// encoder was frozen behind a `shared_ptr<const>` (hdc::io::Pipeline's
/// restore path does this).

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>

#include "hdc/core/hypervector.hpp"
#include "hdc/runtime/arena.hpp"
#include "hdc/runtime/batch_encoder.hpp"

namespace hdc::runtime {

/// Batched text -> hypervector encoder.
class BatchTextEncoder {
 public:
  /// Per-sample encoding function; must be safe to call concurrently and a
  /// pure function of its text for the thread-count-invariance guarantee.
  using TextEncodeFn = std::function<Hypervector(std::string_view)>;

  /// \throws std::invalid_argument if dimension == 0, encode or pool is
  /// null.
  BatchTextEncoder(std::size_t dimension, TextEncodeFn encode,
                   ThreadPoolPtr pool);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] const ThreadPoolPtr& pool() const noexcept { return pool_; }

  /// Encodes one sample per string.
  [[nodiscard]] VectorArena encode(std::span<const std::string> rows) const;

 private:
  std::size_t dimension_;
  TextEncodeFn encode_;
  ThreadPoolPtr pool_;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_BATCH_TEXT_ENCODER_HPP
