#ifndef HDC_RUNTIME_ARENA_HPP
#define HDC_RUNTIME_ARENA_HPP

/// \file arena.hpp
/// \brief Contiguous word storage for batches of hypervectors.
///
/// The batch runtime never walks vectors of `Hypervector` objects: every
/// batch lives in one `VectorArena`, a single word buffer holding n
/// equal-dimension vectors back to back.  That keeps query sweeps a linear
/// walk over memory (the layout the fused XOR+popcount kernels in
/// hdc/core/bitops.hpp expect) and lets worker threads fill disjoint slots
/// without synchronization.
///
/// Invariant: every slot keeps the Hypervector tail invariant — storage bits
/// at positions >= dimension() are zero — so whole-word popcounts over arena
/// rows are exact.  Writers going through `mutable_words()` must either
/// preserve it or call `mask_tails()` before handing the arena to a kernel.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/hypervector.hpp"
#include "hdc/core/word_storage.hpp"

namespace hdc::runtime {

/// A batch of n d-dimensional hypervectors in one contiguous buffer.
///
/// Storage is owning by default; `borrow()` builds a read-only arena over
/// externally owned words (e.g. a snapshot mapping) with zero copies, on
/// which every mutating member throws std::logic_error.
class VectorArena {
 public:
  /// Empty arena (dimension 0); assign over it before use.
  VectorArena() = default;

  /// Arena of \p count all-zero vectors of the given dimension.
  /// \throws std::invalid_argument if dimension == 0.
  explicit VectorArena(std::size_t dimension, std::size_t count = 0);

  /// Packs existing hypervectors into an arena (copies the words).
  /// \throws std::invalid_argument if vectors is empty or dimensions differ.
  [[nodiscard]] static VectorArena pack(std::span<const Hypervector> vectors);

  /// Read-only arena over externally owned words — \p count rows of
  /// bits::words_for(dimension) words each, zero copies.  The arena is valid
  /// only while the words outlive it (the hdc::io::MappedSnapshot serving
  /// path).  Validates the word count and per-row tail invariants.
  /// \throws std::invalid_argument on any inconsistency.
  [[nodiscard]] static VectorArena borrow(
      std::size_t dimension, std::size_t count,
      std::span<const std::uint64_t> words);

  /// True when the arena words live on this object's heap; false for
  /// borrowed arenas.
  [[nodiscard]] bool owns_storage() const noexcept {
    return storage_.owning();
  }

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Arena stride: number of 64-bit words each vector occupies.
  [[nodiscard]] std::size_t words_per_vector() const noexcept {
    return words_per_vector_;
  }

  /// Appends a copy of \p hv (owning vectors and zero-copy views alike).
  /// \throws std::invalid_argument on dimension mismatch; std::logic_error
  /// on borrowed arenas.
  void append(HypervectorView hv);

  /// Appends an all-zero slot and returns its index (for in-place encoding).
  /// \throws std::logic_error on borrowed arenas.
  std::size_t append_zero();

  /// Grows/shrinks to exactly \p count slots (new slots are all-zero).
  /// \throws std::logic_error on borrowed arenas.
  void resize(std::size_t count);

  /// Read-only view of slot \p i. \throws std::invalid_argument if out of
  /// range.
  [[nodiscard]] std::span<const std::uint64_t> words(std::size_t i) const;

  /// Slot \p i as a typed zero-copy view (valid until the arena reallocates:
  /// append/resize).  Trusts the arena tail invariant — writers that went
  /// through mutable_words() must mask_tails() first.
  /// \throws std::invalid_argument if out of range.
  [[nodiscard]] HypervectorView view(std::size_t i) const {
    const auto row = words(i);
    return row_view(row, dimension_, row.size(), 0);
  }

  /// Mutable view of slot \p i; writers must keep tail bits zero (or call
  /// mask_tails()). \throws std::invalid_argument if out of range;
  /// std::logic_error on borrowed arenas.
  [[nodiscard]] std::span<std::uint64_t> mutable_words(std::size_t i);

  /// The whole buffer (size() * words_per_vector() words).
  [[nodiscard]] std::span<const std::uint64_t> data() const noexcept {
    return storage_.words();
  }

  /// Copies slot \p i out as a standalone Hypervector.
  /// \throws std::invalid_argument if out of range.
  [[nodiscard]] Hypervector extract(std::size_t i) const;

  /// Re-establishes the tail-bits-are-zero invariant on every slot.
  /// No-op on borrowed arenas, whose tails were validated at borrow() and
  /// cannot be written through this object.
  void mask_tails() noexcept;

  /// True iff every slot satisfies the tail invariant (test/debug hook).
  [[nodiscard]] bool tails_clean() const noexcept;

 private:
  std::size_t dimension_ = 0;
  std::size_t words_per_vector_ = 0;
  std::size_t count_ = 0;
  WordStorage storage_;
};

}  // namespace hdc::runtime

#endif  // HDC_RUNTIME_ARENA_HPP
