#include "hdc/runtime/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace hdc::runtime {

namespace {

/// The pool whose worker chunk the current thread is executing, if any; used
/// to turn nested for_chunks deadlocks into an immediate error.
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads > max_threads()) {
    throw std::invalid_argument(
        "ThreadPool: num_threads " + std::to_string(num_threads) +
        " exceeds the supported maximum of " + std::to_string(max_threads()));
  }
  std::size_t n = num_threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(
    std::size_t count, std::size_t chunks, std::size_t chunk) noexcept {
  // ceil-division chunking: the first (count % chunks) chunks get one extra
  // item, so boundaries depend only on (count, chunks).
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  const std::size_t begin = chunk * base + std::min(chunk, extra);
  const std::size_t length = base + (chunk < extra ? 1 : 0);
  return {begin, begin + length};
}

std::size_t ThreadPool::num_chunks(std::size_t count) const noexcept {
  return std::min(count, threads_.size());
}

void ThreadPool::for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (current_pool == this) {
    throw std::logic_error(
        "ThreadPool::for_chunks: nested call from one of this pool's own "
        "worker chunks would deadlock; use a separate pool for inner batches");
  }
  // One fork-join round at a time; concurrent callers queue up here.
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_count_ = count;
  job_chunks_ = num_chunks(count);
  next_chunk_ = 0;
  pending_chunks_ = job_chunks_;
  first_error_ = nullptr;
  ++job_generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] { return pending_chunks_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] {
      return stopping_ ||
             (job_ != nullptr && job_generation_ != seen_generation);
    });
    if (stopping_) {
      return;
    }
    seen_generation = job_generation_;
    // Claim chunks until this round runs out.
    while (next_chunk_ < job_chunks_) {
      const std::size_t chunk = next_chunk_++;
      const auto* job = job_;
      const std::size_t count = job_count_;
      const std::size_t chunks = job_chunks_;
      lock.unlock();
      std::exception_ptr error;
      current_pool = this;
      try {
        const auto [begin, end] = chunk_range(count, chunks, chunk);
        (*job)(begin, end, chunk);
      } catch (...) {
        error = std::current_exception();
      }
      current_pool = nullptr;
      lock.lock();
      if (error && !first_error_) {
        first_error_ = error;
      }
      if (--pending_chunks_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

}  // namespace hdc::runtime
