#include "hdc/runtime/batch_encoder.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"

namespace hdc::runtime {

BatchEncoder::BatchEncoder(std::size_t dimension, EncodeFn encode,
                           ThreadPoolPtr pool)
    : dimension_(dimension), encode_(std::move(encode)),
      pool_(std::move(pool)) {
  require_positive(dimension, "BatchEncoder", "dimension");
  require(encode_ != nullptr, "BatchEncoder", "encode must not be null");
  require(pool_ != nullptr, "BatchEncoder", "pool must not be null");
}

VectorArena BatchEncoder::encode(std::span<const double> rows,
                                 std::size_t row_width) const {
  require_positive(row_width, "BatchEncoder::encode", "row_width");
  require(rows.size() % row_width == 0, "BatchEncoder::encode",
          "rows.size() must be a multiple of row_width");
  const std::size_t count = rows.size() / row_width;
  VectorArena arena(dimension_, count);
  pool_->for_chunks(count, [&](std::size_t begin, std::size_t end,
                               std::size_t /*chunk*/) {
    for (std::size_t i = begin; i < end; ++i) {
      const Hypervector hv = encode_(rows.subspan(i * row_width, row_width));
      require(hv.dimension() == dimension_, "BatchEncoder::encode",
              "encode function returned a wrong-dimension hypervector");
      const auto src = hv.words();
      std::copy(src.begin(), src.end(), arena.mutable_words(i).begin());
    }
  });
  return arena;
}

VectorArena BatchEncoder::encode(
    std::span<const std::vector<double>> rows) const {
  const std::size_t count = rows.size();
  VectorArena arena(dimension_, count);
  pool_->for_chunks(count, [&](std::size_t begin, std::size_t end,
                               std::size_t /*chunk*/) {
    for (std::size_t i = begin; i < end; ++i) {
      const Hypervector hv = encode_(rows[i]);
      require(hv.dimension() == dimension_, "BatchEncoder::encode",
              "encode function returned a wrong-dimension hypervector");
      const auto src = hv.words();
      std::copy(src.begin(), src.end(), arena.mutable_words(i).begin());
    }
  });
  return arena;
}

}  // namespace hdc::runtime
