#include "hdc/runtime/batch_classifier.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "hdc/base/require.hpp"

namespace hdc::runtime {

BatchClassifier::BatchClassifier(std::size_t num_classes, std::size_t dimension,
                                 std::uint64_t seed, ThreadPoolPtr pool)
    : model_(num_classes, dimension, seed), pool_(std::move(pool)) {
  require(pool_ != nullptr, "BatchClassifier", "pool must not be null");
}

BatchClassifier::BatchClassifier(CentroidClassifier model, ThreadPoolPtr pool)
    : model_(std::move(model)), pool_(std::move(pool)) {
  require(pool_ != nullptr, "BatchClassifier", "pool must not be null");
  require(model_.finalized(), "BatchClassifier",
          "adopted model must be finalized");
}

void BatchClassifier::fit(const VectorArena& samples,
                          std::span<const std::size_t> labels) {
  require(samples.size() == labels.size(), "BatchClassifier::fit",
          "one label per sample required");
  require(samples.dimension() == dimension(), "BatchClassifier::fit",
          "sample dimension mismatch");
  const std::size_t classes = num_classes();
  for (const std::size_t label : labels) {
    require(label < classes, "BatchClassifier::fit", "label out of range");
  }
  if (samples.empty()) {
    return;
  }

  // One BundleAccumulator per (worker chunk, class seen by that chunk),
  // created lazily so memory scales with the labels a chunk touches, not
  // chunks x classes; merged below in chunk order.  Merging commutes, so any
  // thread count produces the same model.
  const std::size_t chunks = pool_->num_chunks(samples.size());
  std::vector<std::vector<std::optional<BundleAccumulator>>> partials(
      chunks, std::vector<std::optional<BundleAccumulator>>(classes));

  pool_->for_chunks(samples.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t chunk) {
    std::vector<std::optional<BundleAccumulator>>& mine = partials[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      std::optional<BundleAccumulator>& acc = mine[labels[i]];
      if (!acc.has_value()) {
        acc.emplace(dimension());
      }
      acc->add_words(samples.words(i));
    }
  });

  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t k = 0; k < classes; ++k) {
      if (partials[c][k].has_value()) {
        model_.absorb(k, *partials[c][k]);
      }
    }
  }
}

void BatchClassifier::fit_finalize(const VectorArena& samples,
                                   std::span<const std::size_t> labels) {
  fit(samples, labels);
  model_.finalize();
}

std::vector<std::size_t> BatchClassifier::predict(
    const VectorArena& queries) const {
  if (!model_.finalized()) {
    throw std::logic_error(
        "BatchClassifier::predict: call model().finalize() before inference");
  }
  require(queries.dimension() == dimension(), "BatchClassifier::predict",
          "query dimension mismatch");
  std::vector<std::size_t> out(queries.size());
  pool_->for_chunks(queries.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t /*chunk*/) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = model_.predict_words(queries.words(i));
    }
  });
  return out;
}

std::vector<Top2> BatchClassifier::predict_top2(
    const VectorArena& queries) const {
  if (!model_.finalized()) {
    throw std::logic_error(
        "BatchClassifier::predict_top2: call model().finalize() before "
        "inference");
  }
  require(queries.dimension() == dimension(), "BatchClassifier::predict_top2",
          "query dimension mismatch");
  std::vector<Top2> out(queries.size());
  pool_->for_chunks(queries.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t /*chunk*/) {
    // Per-chunk distance scratch so the hot loop never allocates.
    std::vector<std::size_t> scratch(num_classes());
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = top2_hamming(queries.words(i), model_.packed_class_words(),
                            model_.words_per_class(), num_classes(), 0,
                            scratch);
    }
  });
  return out;
}

}  // namespace hdc::runtime
