#include "hdc/runtime/batch_regressor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc::runtime {

BatchRegressor::BatchRegressor(ScalarEncoderPtr labels, std::uint64_t seed,
                               ThreadPoolPtr pool)
    : model_(std::move(labels), seed), pool_(std::move(pool)) {
  require(pool_ != nullptr, "BatchRegressor", "pool must not be null");
}

BatchRegressor::BatchRegressor(HDRegressor model, ThreadPoolPtr pool)
    : model_(std::move(model)), pool_(std::move(pool)) {
  require(pool_ != nullptr, "BatchRegressor", "pool must not be null");
  require(model_.finalized(), "BatchRegressor",
          "adopted model must be finalized");
}

void BatchRegressor::fit(const VectorArena& inputs,
                         std::span<const double> labels) {
  require(inputs.size() == labels.size(), "BatchRegressor::fit",
          "one label per input required");
  require(inputs.dimension() == dimension(), "BatchRegressor::fit",
          "input dimension mismatch");
  if (inputs.empty()) {
    return;
  }

  const std::size_t chunks = pool_->num_chunks(inputs.size());
  std::vector<BundleAccumulator> partials;
  partials.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    partials.emplace_back(dimension());
  }

  const ScalarEncoder& label_encoder = model_.labels();
  pool_->for_chunks(inputs.size(), [&](std::size_t begin, std::size_t end,
                                       std::size_t chunk) {
    BundleAccumulator& mine = partials[chunk];
    // Per-chunk scratch: phi(x_i) ⊗ phi_l(y_i) is rebuilt in place per row,
    // so the hot loop never allocates.
    Hypervector bound(dimension());
    const auto scratch = bound.words();
    for (std::size_t i = begin; i < end; ++i) {
      const auto input = inputs.words(i);
      const auto label_words = label_encoder.encode(labels[i]).words();
      for (std::size_t w = 0; w < scratch.size(); ++w) {
        scratch[w] = input[w] ^ label_words[w];
      }
      mine.add_words(scratch);
    }
  });

  for (const BundleAccumulator& partial : partials) {
    model_.absorb(partial);
  }
}

void BatchRegressor::fit_finalize(const VectorArena& inputs,
                                  std::span<const double> labels) {
  fit(inputs, labels);
  model_.finalize();
}

std::vector<double> BatchRegressor::predict(const VectorArena& queries) const {
  if (!model_.finalized()) {
    throw std::logic_error(
        "BatchRegressor::predict: call model().finalize() before inference");
  }
  require(queries.dimension() == dimension(), "BatchRegressor::predict",
          "query dimension mismatch");
  const ScalarEncoder& label_encoder = model_.labels();
  const Hypervector& model_hv = model_.model();
  std::vector<double> out(queries.size());
  pool_->for_chunks(queries.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t /*chunk*/) {
    // Per-chunk scratch: M ⊗ query is rebuilt in place for each row.
    Hypervector bound(dimension());
    for (std::size_t i = begin; i < end; ++i) {
      const auto query = queries.words(i);
      const auto model_words = model_hv.words();
      const auto scratch = bound.words();
      for (std::size_t w = 0; w < scratch.size(); ++w) {
        scratch[w] = model_words[w] ^ query[w];
      }
      out[i] = label_encoder.decode(bound);
    }
  });
  return out;
}

std::vector<Band> BatchRegressor::predict_band(
    const VectorArena& queries) const {
  if (!model_.finalized()) {
    throw std::logic_error(
        "BatchRegressor::predict_band: call model().finalize() before "
        "inference");
  }
  require(queries.dimension() == dimension(), "BatchRegressor::predict_band",
          "query dimension mismatch");
  const ScalarEncoder& label_encoder = model_.labels();
  const Basis& basis = label_encoder.basis();
  const Hypervector& model_hv = model_.model();
  std::vector<Band> out(queries.size());
  pool_->for_chunks(queries.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t /*chunk*/) {
    // Per-chunk scratch (bound query + distance profile) reused across
    // rows so the hot loop never allocates.
    Hypervector bound(dimension());
    std::vector<std::size_t> distances(basis.size());
    for (std::size_t i = begin; i < end; ++i) {
      bits::xor_rows(bound.words(), model_hv.words(), queries.words(i));
      bits::hamming_many(bound.words(), basis.packed_words(),
                         basis.words_per_vector(), basis.size(), distances);
      out[i] = band_from_distances(distances, label_encoder, dimension());
    }
  });
  return out;
}

std::vector<double> BatchRegressor::predict_integer(
    const VectorArena& queries) const {
  require(queries.dimension() == dimension(),
          "BatchRegressor::predict_integer", "query dimension mismatch");
  std::vector<double> out(queries.size());
  pool_->for_chunks(queries.size(), [&](std::size_t begin, std::size_t end,
                                        std::size_t /*chunk*/) {
    // Per-chunk scratch reused across rows so the hot loop never allocates.
    Hypervector scratch(dimension());
    const auto scratch_words = scratch.words();
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = queries.words(i);
      std::copy(row.begin(), row.end(), scratch_words.begin());
      out[i] = model_.predict_integer(scratch);
    }
  });
  return out;
}

}  // namespace hdc::runtime
