#include "hdc/runtime/arena.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc::runtime {

VectorArena::VectorArena(std::size_t dimension, std::size_t count)
    : dimension_(dimension),
      words_per_vector_(bits::words_for(dimension)),
      count_(count),
      words_(words_per_vector_ * count, 0ULL) {
  require_positive(dimension, "VectorArena", "dimension");
}

VectorArena VectorArena::pack(std::span<const Hypervector> vectors) {
  require(!vectors.empty(), "VectorArena::pack",
          "vector set must be non-empty");
  VectorArena arena(vectors.front().dimension(), 0);
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == arena.dimension_, "VectorArena::pack",
            "all vectors must share one dimension");
  }
  arena.words_ = pack_words(vectors);
  arena.count_ = vectors.size();
  return arena;
}

void VectorArena::append(HypervectorView hv) {
  require(hv.dimension() == dimension_, "VectorArena::append",
          "dimension mismatch");
  const auto src = hv.words();
  words_.insert(words_.end(), src.begin(), src.end());
  ++count_;
}

std::size_t VectorArena::append_zero() {
  words_.resize(words_.size() + words_per_vector_, 0ULL);
  return count_++;
}

void VectorArena::resize(std::size_t count) {
  words_.resize(words_per_vector_ * count, 0ULL);
  count_ = count;
}

std::span<const std::uint64_t> VectorArena::words(std::size_t i) const {
  require(i < count_, "VectorArena::words", "index out of range");
  return std::span<const std::uint64_t>(words_).subspan(i * words_per_vector_,
                                                        words_per_vector_);
}

std::span<std::uint64_t> VectorArena::mutable_words(std::size_t i) {
  require(i < count_, "VectorArena::mutable_words", "index out of range");
  return std::span<std::uint64_t>(words_).subspan(i * words_per_vector_,
                                                  words_per_vector_);
}

Hypervector VectorArena::extract(std::size_t i) const {
  const auto src = words(i);
  Hypervector out(dimension_);
  std::copy(src.begin(), src.end(), out.words().begin());
  return out;
}

void VectorArena::mask_tails() noexcept {
  if (words_per_vector_ == 0) {
    return;
  }
  const std::uint64_t mask = bits::tail_mask(dimension_);
  for (std::size_t i = 0; i < count_; ++i) {
    words_[(i + 1) * words_per_vector_ - 1] &= mask;
  }
}

bool VectorArena::tails_clean() const noexcept {
  if (words_per_vector_ == 0) {
    return true;
  }
  const std::uint64_t mask = bits::tail_mask(dimension_);
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint64_t tail = words_[(i + 1) * words_per_vector_ - 1];
    if ((tail & ~mask) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace hdc::runtime
