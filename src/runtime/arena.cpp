#include "hdc/runtime/arena.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc::runtime {

VectorArena::VectorArena(std::size_t dimension, std::size_t count)
    : dimension_(dimension),
      words_per_vector_(bits::words_for(dimension)),
      count_(count),
      storage_(std::vector<std::uint64_t>(words_per_vector_ * count, 0ULL)) {
  require_positive(dimension, "VectorArena", "dimension");
}

VectorArena VectorArena::pack(std::span<const Hypervector> vectors) {
  require(!vectors.empty(), "VectorArena::pack",
          "vector set must be non-empty");
  VectorArena arena(vectors.front().dimension(), 0);
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == arena.dimension_, "VectorArena::pack",
            "all vectors must share one dimension");
  }
  arena.storage_ = pack_words(vectors);
  arena.count_ = vectors.size();
  return arena;
}

VectorArena VectorArena::borrow(std::size_t dimension, std::size_t count,
                                std::span<const std::uint64_t> words) {
  require_positive(dimension, "VectorArena::borrow", "dimension");
  VectorArena arena;
  arena.dimension_ = dimension;
  arena.words_per_vector_ = bits::words_for(dimension);
  // Division form so a crafted count cannot overflow the multiply and slip
  // an undersized buffer past validation.
  require(words.size() % arena.words_per_vector_ == 0 &&
              words.size() / arena.words_per_vector_ == count,
          "VectorArena::borrow",
          "word count must be count * words_for(dimension)");
  arena.count_ = count;
  arena.storage_ = WordStorage(words, hdc::borrowed);
  require(arena.tails_clean(), "VectorArena::borrow",
          "slot has set bits beyond the dimension");
  return arena;
}

void VectorArena::append(HypervectorView hv) {
  require(hv.dimension() == dimension_, "VectorArena::append",
          "dimension mismatch");
  const auto src = hv.words();
  auto& words = storage_.owned();
  words.insert(words.end(), src.begin(), src.end());
  ++count_;
}

std::size_t VectorArena::append_zero() {
  auto& words = storage_.owned();
  words.resize(words.size() + words_per_vector_, 0ULL);
  return count_++;
}

void VectorArena::resize(std::size_t count) {
  storage_.owned().resize(words_per_vector_ * count, 0ULL);
  count_ = count;
}

std::span<const std::uint64_t> VectorArena::words(std::size_t i) const {
  require(i < count_, "VectorArena::words", "index out of range");
  return storage_.words().subspan(i * words_per_vector_, words_per_vector_);
}

std::span<std::uint64_t> VectorArena::mutable_words(std::size_t i) {
  require(i < count_, "VectorArena::mutable_words", "index out of range");
  return storage_.mutable_words().subspan(i * words_per_vector_,
                                          words_per_vector_);
}

Hypervector VectorArena::extract(std::size_t i) const {
  const auto src = words(i);
  Hypervector out(dimension_);
  std::copy(src.begin(), src.end(), out.words().begin());
  return out;
}

void VectorArena::mask_tails() noexcept {
  if (words_per_vector_ == 0 || !storage_.owning()) {
    return;
  }
  const std::uint64_t mask = bits::tail_mask(dimension_);
  const auto words = storage_.mutable_words();
  for (std::size_t i = 0; i < count_; ++i) {
    words[(i + 1) * words_per_vector_ - 1] &= mask;
  }
}

bool VectorArena::tails_clean() const noexcept {
  if (words_per_vector_ == 0) {
    return true;
  }
  const std::uint64_t mask = bits::tail_mask(dimension_);
  const auto words = storage_.words();
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint64_t tail = words[(i + 1) * words_per_vector_ - 1];
    if ((tail & ~mask) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace hdc::runtime
