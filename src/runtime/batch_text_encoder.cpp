#include "hdc/runtime/batch_text_encoder.hpp"

#include <algorithm>
#include <utility>

#include "hdc/base/require.hpp"

namespace hdc::runtime {

BatchTextEncoder::BatchTextEncoder(std::size_t dimension, TextEncodeFn encode,
                                   ThreadPoolPtr pool)
    : dimension_(dimension), encode_(std::move(encode)),
      pool_(std::move(pool)) {
  require_positive(dimension, "BatchTextEncoder", "dimension");
  require(encode_ != nullptr, "BatchTextEncoder", "encode must not be null");
  require(pool_ != nullptr, "BatchTextEncoder", "pool must not be null");
}

VectorArena BatchTextEncoder::encode(
    std::span<const std::string> rows) const {
  const std::size_t count = rows.size();
  VectorArena arena(dimension_, count);
  pool_->for_chunks(count, [&](std::size_t begin, std::size_t end,
                               std::size_t /*chunk*/) {
    for (std::size_t i = begin; i < end; ++i) {
      const Hypervector hv = encode_(rows[i]);
      require(hv.dimension() == dimension_, "BatchTextEncoder::encode",
              "encode function returned a wrong-dimension hypervector");
      const auto src = hv.words();
      std::copy(src.begin(), src.end(), arena.mutable_words(i).begin());
    }
  });
  return arena;
}

}  // namespace hdc::runtime
