#include "hdc/io/format.hpp"

#include <bit>
#include <cstring>
#include <string>

#include "hdc/core/basis.hpp"
#include "hdc/io/checksum.hpp"

namespace hdc::io {

namespace detail {

void store_f64(std::span<std::byte> out, std::size_t at,
               double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  store_u64(out, at, bits);
}

double load_f64(std::span<const std::byte> in, std::size_t at) noexcept {
  const std::uint64_t bits = load_u64(in, at);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void encode_section_entry(std::span<std::byte> out, std::size_t at,
                          const SectionRecord& record) noexcept {
  store_u16(out, at + 0, static_cast<std::uint16_t>(record.type));
  store_u16(out, at + 2, record.kind);
  store_u16(out, at + 4, record.method);
  store_u16(out, at + 6, static_cast<std::uint16_t>(record.label_encoder));
  store_u64(out, at + 8, record.dimension);
  store_u64(out, at + 16, record.count);
  store_f64(out, at + 24, record.param_a);
  store_f64(out, at + 32, record.param_b);
  store_u64(out, at + 40, record.seed);
  store_u64(out, at + 48, record.aux_section);
  store_u64(out, at + 56, record.payload_offset);
  store_u64(out, at + 64, record.payload_bytes);
  store_u64(out, at + 72, record.payload_checksum);
  store_u64(out, at + 80, record.aux_section_b);
  // [at + 88, at + 128): the multiscale scale list / composed sub-encoder
  // references; zero for every other section type, which keeps those bytes
  // reserved in practice.
  for (std::size_t i = 0; i < snapshot_max_scales; ++i) {
    store_u64(out, at + 88 + 8 * i, record.scales[i]);
  }
}

}  // namespace detail

namespace {

using detail::load_f64;
using detail::load_u16;
using detail::load_u32;
using detail::load_u64;

[[noreturn]] void fail(const std::string& what) {
  throw SnapshotError("snapshot: " + what);
}

void require_zero_bytes(std::span<const std::byte> bytes, std::size_t begin,
                        std::size_t end, const char* where) {
  for (std::size_t i = begin; i < end; ++i) {
    if (bytes[i] != std::byte{0}) {
      fail(std::string(where) + " reserved bytes must be zero in version 4");
    }
  }
}

SectionRecord decode_section_entry(std::span<const std::byte> table,
                                   std::size_t at) {
  SectionRecord record;
  record.type = static_cast<SectionType>(load_u16(table, at + 0));
  record.kind = load_u16(table, at + 2);
  record.method = load_u16(table, at + 4);
  record.label_encoder =
      static_cast<LabelEncoderKind>(load_u16(table, at + 6));
  record.dimension = load_u64(table, at + 8);
  record.count = load_u64(table, at + 16);
  record.param_a = load_f64(table, at + 24);
  record.param_b = load_f64(table, at + 32);
  record.seed = load_u64(table, at + 40);
  record.aux_section = load_u64(table, at + 48);
  record.payload_offset = load_u64(table, at + 56);
  record.payload_bytes = load_u64(table, at + 64);
  record.payload_checksum = load_u64(table, at + 72);
  record.aux_section_b = load_u64(table, at + 80);
  for (std::size_t i = 0; i < snapshot_max_scales; ++i) {
    record.scales[i] = load_u64(table, at + 88 + 8 * i);
  }
  return record;
}

/// Per-entry metadata rules beyond bounds: what combination of fields each
/// section type may carry in version 4.  Strict on purpose — every field a
/// v4 reader does not interpret must be zero/sentinel, which keeps the fuzz
/// contract tight (a bit flip either breaks a checksum or breaks a rule
/// here) and leaves room to assign meanings in later versions.
void validate_section_metadata(const SectionRecord& record, std::size_t index,
                               const std::vector<SectionRecord>& previous) {
  const std::string where = "section " + std::to_string(index);
  if (record.dimension == 0 || record.dimension > snapshot_sanity_limit) {
    fail(where + ": implausible dimension");
  }
  // Config-only sections (encoder parameters, pipeline wiring) carry their
  // whole state in the table entry: no payload, count == 0.
  const bool config_only = record.type == SectionType::ScalarEncoderConfig ||
                           record.type == SectionType::PipelineHead ||
                           record.type == SectionType::SequenceEncoderConfig ||
                           record.type == SectionType::ComposedEncoderConfig;
  if (config_only) {
    if (record.count != 0 || record.payload_bytes != 0) {
      fail(where + ": config sections carry no payload rows");
    }
  } else {
    if (record.count == 0 || record.count > snapshot_sanity_limit) {
      fail(where + ": implausible row count");
    }
    const std::uint64_t words_per_row = (record.dimension + 63) / 64;
    // A delta payload prefixes its rows with one u64 row index per row; the
    // sanity limit on count keeps both products far from overflow.
    const std::uint64_t expected_bytes =
        record.type == SectionType::DeltaPatch
            ? record.count * 8 + record.count * words_per_row * 8
            : record.count * words_per_row * 8;
    if (record.payload_bytes != expected_bytes) {
      fail(where + ": payload byte count disagrees with dimension and count");
    }
  }
  const auto require_zero_scales = [&] {
    for (const std::uint64_t scale : record.scales) {
      if (scale != 0) {
        fail(where + ": scale list on a non-multiscale section");
      }
    }
  };
  const auto require_no_aux_b = [&] {
    if (record.aux_section_b != snapshot_no_aux) {
      fail(where + ": unexpected secondary section reference");
    }
  };
  /// An aux reference must point at an already-validated earlier section of
  /// the expected type with the same dimension (the "missing or
  /// mismatched-dimension basis" guard the restore layer relies on).
  const auto resolve = [&](std::uint64_t aux,
                           const char* what) -> const SectionRecord& {
    if (aux >= index) {
      fail(where + ": " + what + " must reference an earlier section");
    }
    const SectionRecord& target = previous[aux];
    if (target.dimension != record.dimension) {
      fail(where + ": " + what + " has a mismatched dimension");
    }
    return target;
  };
  const auto require_scalar_params = [&] {
    if (record.label_encoder == LabelEncoderKind::Linear) {
      if (!(record.param_a < record.param_b)) {
        fail(where + ": linear encoder needs lo < hi");
      }
    } else if (record.label_encoder == LabelEncoderKind::Circular) {
      if (record.param_a != 0.0 || !(record.param_b > 0.0)) {
        fail(where + ": circular encoder needs period > 0");
      }
    } else {
      fail(where + ": unknown scalar encoder kind");
    }
  };
  switch (record.type) {
    case SectionType::BasisArena:
      if (record.kind > 3 || record.method > 1) {
        fail(where + ": unknown basis kind or level method");
      }
      if (!(record.param_a >= 0.0 && record.param_a <= 1.0) ||
          record.param_b != 0.0) {
        fail(where + ": basis r out of [0, 1] or nonzero reserved param");
      }
      if (record.label_encoder != LabelEncoderKind::None ||
          record.aux_section != snapshot_no_aux) {
        fail(where + ": basis sections carry no encoder or aux fields");
      }
      require_no_aux_b();
      require_zero_scales();
      break;
    case SectionType::ClassifierClassVectors:
      if (record.kind != 0 || record.method != 0 || record.seed != 0 ||
          record.param_a != 0.0 || record.param_b != 0.0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.aux_section != snapshot_no_aux) {
        fail(where + ": classifier sections carry no basis or encoder fields");
      }
      require_no_aux_b();
      require_zero_scales();
      break;
    case SectionType::RegressorModel: {
      if (record.count != 1) {
        fail(where + ": regressor model must be exactly one row");
      }
      if (record.kind != 0 || record.method != 0 || record.seed != 0) {
        fail(where + ": regressor sections carry no basis fields");
      }
      const SectionRecord& labels = resolve(record.aux_section, "label basis");
      if (labels.type != SectionType::BasisArena || labels.count < 2) {
        fail(where + ": aux section is not a compatible label basis");
      }
      require_scalar_params();
      require_no_aux_b();
      require_zero_scales();
      break;
    }
    case SectionType::ScalarEncoderConfig: {
      if (record.kind != 0 || record.method != 0 || record.seed != 0) {
        fail(where + ": scalar encoder sections carry no basis fields");
      }
      const SectionRecord& basis = resolve(record.aux_section, "encoder basis");
      if (basis.type != SectionType::BasisArena || basis.count < 2) {
        fail(where + ": aux section is not a compatible encoder basis");
      }
      require_scalar_params();
      require_no_aux_b();
      require_zero_scales();
      break;
    }
    case SectionType::MultiScaleEncoderConfig: {
      if (record.method != 0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0) {
        fail(where + ": unexpected fields on a multiscale encoder section");
      }
      if (!(record.param_b > 0.0)) {
        fail(where + ": multiscale encoder needs period > 0");
      }
      if (record.count < 2) {
        fail(where + ": multiscale encoder needs at least two grid points");
      }
      const std::size_t num_scales = record.kind;
      if (num_scales == 0 || num_scales > snapshot_max_scales) {
        fail(where + ": scale count out of [1, " +
             std::to_string(snapshot_max_scales) + "]");
      }
      for (std::size_t s = 0; s < snapshot_max_scales; ++s) {
        if (s >= num_scales) {
          if (record.scales[s] != 0) {
            fail(where + ": trailing scale slots must be zero");
          }
        } else if (record.scales[s] < 2 ||
                   (s > 0 && record.scales[s] <= record.scales[s - 1])) {
          fail(where + ": scales must be >= 2 and strictly increasing");
        }
      }
      if (record.scales[num_scales - 1] != record.count) {
        fail(where + ": finest scale must equal the bound-arena row count");
      }
      const SectionRecord& finest = resolve(record.aux_section, "finest basis");
      if (finest.type != SectionType::BasisArena ||
          finest.count != record.count) {
        fail(where + ": aux section is not the finest-scale basis");
      }
      require_no_aux_b();
      break;
    }
    case SectionType::FeatureEncoderConfig: {
      if (record.count != 1) {
        fail(where + ": feature encoder payload is one tie-breaker row");
      }
      if (record.kind != 0 || record.method != 0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0 || record.param_b != 0.0) {
        fail(where + ": unexpected fields on a feature encoder section");
      }
      const SectionRecord& keys = resolve(record.aux_section, "key basis");
      if (keys.type != SectionType::BasisArena) {
        fail(where + ": aux section is not a key basis");
      }
      const SectionRecord& values =
          resolve(record.aux_section_b, "value encoder");
      if (values.type != SectionType::ScalarEncoderConfig &&
          values.type != SectionType::MultiScaleEncoderConfig) {
        fail(where + ": secondary aux section is not a value encoder");
      }
      require_zero_scales();
      break;
    }
    case SectionType::PipelineHead: {
      if (record.kind != 0 || record.method != 0 || record.seed != 0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0 || record.param_b != 0.0) {
        fail(where + ": unexpected fields on a pipeline head");
      }
      const SectionRecord& encoder =
          resolve(record.aux_section, "pipeline encoder");
      if (encoder.type != SectionType::ScalarEncoderConfig &&
          encoder.type != SectionType::MultiScaleEncoderConfig &&
          encoder.type != SectionType::FeatureEncoderConfig &&
          encoder.type != SectionType::ComposedEncoderConfig &&
          encoder.type != SectionType::SequenceEncoderConfig) {
        fail(where + ": aux section is not a pipeline encoder");
      }
      const SectionRecord& model =
          resolve(record.aux_section_b, "pipeline model");
      if (model.type != SectionType::ClassifierClassVectors &&
          model.type != SectionType::RegressorModel) {
        fail(where + ": secondary aux section is not a pipeline model");
      }
      require_zero_scales();
      break;
    }
    case SectionType::SequenceEncoderConfig:
      if (record.kind > 1 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0 || record.param_b != 0.0 ||
          record.aux_section != snapshot_no_aux) {
        fail(where + ": unexpected fields on a sequence encoder section");
      }
      // `method` carries n for n-gram encoders and must be zero otherwise.
      if (record.kind == 1 ? record.method == 0 : record.method != 0) {
        fail(where + ": n-gram sections need n >= 1, sequence sections n == 0");
      }
      require_no_aux_b();
      require_zero_scales();
      break;
    case SectionType::ComposedEncoderConfig: {
      if (record.method != 0 || record.seed != 0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0 || record.param_b != 0.0) {
        fail(where + ": unexpected fields on a composed encoder section");
      }
      const std::size_t num_parts = record.kind;
      if (num_parts < 2 || num_parts > snapshot_max_composed) {
        fail(where + ": composed sub-encoder count out of [2, " +
             std::to_string(snapshot_max_composed) + "]");
      }
      const auto require_sub_encoder = [&](std::uint64_t aux,
                                           std::size_t part) {
        const SectionRecord& sub =
            resolve(aux, "composed sub-encoder");
        if (sub.type != SectionType::ScalarEncoderConfig &&
            sub.type != SectionType::MultiScaleEncoderConfig) {
          fail(where + ": sub-encoder " + std::to_string(part) +
               " is not a scalar encoder config");
        }
      };
      require_sub_encoder(record.aux_section, 0);
      require_sub_encoder(record.aux_section_b, 1);
      // Sub-encoders beyond the first two reuse the scale slots, stored as
      // section index + 1 so 0 stays the "unused slot" sentinel.
      for (std::size_t s = 0; s < snapshot_max_scales; ++s) {
        if (s + 2 >= num_parts) {
          if (record.scales[s] != 0) {
            fail(where + ": trailing composed sub-encoder slots must be zero");
          }
        } else if (record.scales[s] == 0) {
          fail(where + ": missing composed sub-encoder reference");
        } else {
          require_sub_encoder(record.scales[s] - 1, s + 2);
        }
      }
      break;
    }
    case SectionType::DeltaPatch: {
      const auto target = static_cast<SectionType>(record.kind);
      if (target != SectionType::ClassifierClassVectors &&
          target != SectionType::RegressorModel) {
        fail(where + ": delta target must be a classifier or regressor model");
      }
      if (record.method != 0 ||
          record.label_encoder != LabelEncoderKind::None ||
          record.param_a != 0.0 || record.param_b != 0.0) {
        fail(where + ": unexpected fields on a delta patch section");
      }
      // `seed` is the base file's content hash (any value), `aux_section`
      // the patched section's index in the *base* file — the one cross-file
      // reference in the format, so it cannot resolve() here; bound it and
      // let apply_delta() check it against the actual base.
      if (record.aux_section >= snapshot_max_sections) {
        fail(where + ": implausible base section reference");
      }
      if (record.aux_section_b < record.count ||
          record.aux_section_b > snapshot_sanity_limit) {
        fail(where + ": base row count below patch rows or implausible");
      }
      if (target == SectionType::RegressorModel &&
          (record.count != 1 || record.aux_section_b != 1)) {
        fail(where + ": regressor delta must patch exactly the one model row");
      }
      require_zero_scales();
      break;
    }
    default:
      fail(where + ": unknown section type");
  }
}

}  // namespace

SnapshotLayout parse_snapshot_layout(std::span<const std::byte> file) {
  if constexpr (std::endian::native != std::endian::little) {
    fail("zero-copy snapshots require a little-endian host; use the "
         "hdc/core stream serialization instead");
  }
  if (file.size() < snapshot_header_bytes) {
    fail("file shorter than the 64-byte header");
  }
  for (std::size_t i = 0; i < snapshot_magic.size(); ++i) {
    if (file[i] != static_cast<std::byte>(snapshot_magic[i])) {
      fail("bad magic: not an HDCS snapshot");
    }
  }
  if (load_u16(file, 4) != snapshot_version) {
    fail("unsupported format version");
  }
  if (load_u16(file, 6) != snapshot_endian_marker) {
    fail("endianness marker mismatch: snapshot was not written little-endian");
  }
  if (load_u32(file, 8) != snapshot_header_bytes ||
      load_u32(file, 12) != snapshot_entry_bytes) {
    fail("header or section-entry size disagrees with version 4");
  }
  const std::uint32_t section_count = load_u32(file, 16);
  const std::uint32_t alignment = load_u32(file, 20);
  const std::uint64_t file_bytes = load_u64(file, 24);
  const std::uint64_t table_checksum = load_u64(file, 32);
  require_zero_bytes(file, 40, snapshot_header_bytes, "header");

  if (section_count == 0 || section_count > snapshot_max_sections) {
    fail("implausible section count");
  }
  if (alignment < snapshot_min_alignment ||
      alignment > snapshot_max_alignment ||
      !std::has_single_bit(alignment)) {
    fail("payload alignment must be a power of two in [64, 1 MiB]");
  }
  if (file_bytes != file.size()) {
    fail("recorded file size disagrees with the actual bytes (truncated?)");
  }
  const std::uint64_t table_end =
      snapshot_header_bytes +
      static_cast<std::uint64_t>(section_count) * snapshot_entry_bytes;
  if (table_end > file.size()) {
    fail("section table extends past the end of the file");
  }
  const auto table = file.subspan(
      snapshot_header_bytes, table_end - snapshot_header_bytes);
  if (xxhash64(table, snapshot_version) != table_checksum) {
    fail("section table checksum mismatch");
  }

  SnapshotLayout layout;
  layout.payload_alignment = alignment;
  layout.file_bytes = file_bytes;
  layout.sections.reserve(section_count);
  std::uint64_t previous_end = table_end;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    SectionRecord record =
        decode_section_entry(table, i * snapshot_entry_bytes);
    validate_section_metadata(record, i, layout.sections);
    if (record.payload_offset % alignment != 0) {
      fail("section " + std::to_string(i) + ": payload is not aligned");
    }
    // Sections are laid out in table order with no overlap; subtraction
    // form so corrupt offsets cannot overflow the bounds check.
    if (record.payload_offset < previous_end ||
        record.payload_offset > file_bytes ||
        record.payload_bytes > file_bytes - record.payload_offset) {
      fail("section " + std::to_string(i) +
           ": payload is out of order or out of bounds");
    }
    previous_end = record.payload_offset + record.payload_bytes;
    layout.sections.push_back(record);
  }
  return layout;
}

void verify_section_payload(std::span<const std::byte> file,
                            const SectionRecord& section) {
  const auto payload =
      file.subspan(section.payload_offset, section.payload_bytes);
  if (xxhash64(payload) != section.payload_checksum) {
    fail("payload checksum mismatch: section content is corrupt");
  }
}

}  // namespace hdc::io
