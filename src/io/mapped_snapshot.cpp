#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "hdc/core/scalar_encoder.hpp"
#include "hdc/io/snapshot.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HDC_IO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HDC_IO_HAS_MMAP 0
#endif

namespace hdc::io {

namespace {

/// Reads a whole stream into word-aligned heap storage (so payload word
/// spans over the buffer are always aligned), returning the byte count.
std::vector<std::uint64_t> slurp(std::istream& in, std::size_t& byte_size) {
  std::vector<char> bytes(std::istreambuf_iterator<char>(in), {});
  if (in.bad()) {
    throw SnapshotError("load_snapshot: stream read failure");
  }
  byte_size = bytes.size();
  std::vector<std::uint64_t> words((bytes.size() + 7) / 8, 0ULL);
  if (!bytes.empty()) {
    std::memcpy(words.data(), bytes.data(), bytes.size());
  }
  return words;
}

}  // namespace

struct MappedSnapshot::Impl {
  // Exactly one of heap/mapping backs `data`.
  std::vector<std::uint64_t> heap;
#if HDC_IO_HAS_MMAP
  void* mapping = nullptr;
  std::size_t mapping_bytes = 0;
#endif
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  bool mapped = false;
  bool locked = false;

  SnapshotLayout layout;
  SnapshotIntegrity integrity = SnapshotIntegrity::Checksum;
  mutable std::mutex verify_mutex;
  mutable std::vector<bool> verified;

  ~Impl() {
#if HDC_IO_HAS_MMAP
    if (mapping != nullptr) {
      ::munmap(mapping, mapping_bytes);
    }
#endif
  }

  [[nodiscard]] std::span<const std::byte> file() const noexcept {
    return {data, bytes};
  }

  void parse() {
    layout = parse_snapshot_layout(file());
    verified.assign(layout.sections.size(), false);
  }

  const SectionRecord& checked_section(std::size_t i) const {
    if (i >= layout.sections.size()) {
      throw std::out_of_range("MappedSnapshot: section index out of range");
    }
    return layout.sections[i];
  }

  /// Checksum-verifies section \p i before first use (thread-safe); no-op
  /// under Trust integrity.  An explicit MappedSnapshot::verify() call
  /// hashes even under Trust — the caller is asking for it by name.
  void ensure_verified(std::size_t i) const {
    if (integrity != SnapshotIntegrity::Trust) {
      verify_once(i);
    }
  }

  /// The O(payload) hash runs *outside* the lock so concurrent first
  /// touches of different sections verify in parallel; a race can at worst
  /// hash the same section twice, never skip it.
  void verify_once(std::size_t i) const {
    {
      const std::scoped_lock lock(verify_mutex);
      if (verified[i]) {
        return;
      }
    }
    verify_section_payload(file(), layout.sections[i]);
    const std::scoped_lock lock(verify_mutex);
    verified[i] = true;
  }

  [[nodiscard]] std::span<const std::uint64_t> payload_words(
      const SectionRecord& record) const noexcept {
    // Safe reinterpretation: the base is word-aligned (mmap returns
    // page-aligned memory; the heap buffer is a uint64_t vector) and the
    // parse validated payload_offset as a multiple of the >= 64-byte
    // payload alignment and in bounds.
    const auto* words = reinterpret_cast<const std::uint64_t*>(
        data + record.payload_offset);
    return {words, static_cast<std::size_t>(record.payload_bytes / 8)};
  }
};

MappedSnapshot::MappedSnapshot(std::unique_ptr<Impl> impl) noexcept
    : impl_(std::move(impl)) {}
MappedSnapshot::MappedSnapshot(MappedSnapshot&&) noexcept = default;
MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&&) noexcept = default;
MappedSnapshot::~MappedSnapshot() = default;

MappedSnapshot MappedSnapshot::open(const std::string& path,
                                    SnapshotIntegrity integrity,
                                    MappingOptions mapping_options) {
  auto impl = std::make_unique<Impl>();
  impl->integrity = integrity;
#if HDC_IO_HAS_MMAP
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SnapshotError("MappedSnapshot::open: cannot open " + path);
  }
  struct stat status {};
  if (::fstat(fd, &status) != 0 || status.st_size < 0) {
    ::close(fd);
    throw SnapshotError("MappedSnapshot::open: cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(status.st_size);
  if (size == 0) {
    ::close(fd);
    throw SnapshotError("MappedSnapshot::open: " + path + " is empty");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    throw SnapshotError("MappedSnapshot::open: mmap failed for " + path);
  }
  impl->mapping = mapping;
  impl->mapping_bytes = size;
  impl->data = static_cast<const std::byte*>(mapping);
  impl->bytes = size;
  impl->mapped = true;
  if (mapping_options.willneed) {
    // Purely advisory read-ahead over the whole mapping (offsets inside it
    // need not be page-aligned; the mapping base is): failure changes
    // warm-up behaviour only, so it is deliberately not checked.
    ::madvise(mapping, size, MADV_WILLNEED);
  }
  if (mapping_options.lock_memory) {
    if (::mlock(mapping, size) != 0) {
      // impl's destructor unmaps; do not serve with a silently unpinned
      // mapping when the caller asked for residency guarantees.
      throw SnapshotError("MappedSnapshot::open: mlock failed for " + path +
                          " (RLIMIT_MEMLOCK too low for " +
                          std::to_string(size) + " bytes?)");
    }
    impl->locked = true;
  }
#else
  // Heap fallback for platforms without mmap: same API, owned buffer.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("MappedSnapshot::open: cannot open " + path);
  }
  std::size_t byte_size = 0;
  impl->heap = slurp(in, byte_size);
  impl->data = reinterpret_cast<const std::byte*>(impl->heap.data());
  impl->bytes = byte_size;
  // Residency hints are meaningless for an owned heap buffer; the options
  // are documented no-ops here.
  (void)mapping_options;
#endif
  impl->parse();
  return MappedSnapshot(std::move(impl));
}

MappedSnapshot MappedSnapshot::from_bytes(std::span<const std::byte> bytes,
                                          SnapshotIntegrity integrity) {
  auto impl = std::make_unique<Impl>();
  impl->integrity = integrity;
  impl->heap.assign((bytes.size() + 7) / 8, 0ULL);
  if (!bytes.empty()) {
    std::memcpy(impl->heap.data(), bytes.data(), bytes.size());
  }
  impl->data = reinterpret_cast<const std::byte*>(impl->heap.data());
  impl->bytes = bytes.size();
  impl->parse();
  MappedSnapshot snapshot(std::move(impl));
  if (integrity == SnapshotIntegrity::Checksum) {
    // Heap-backed loads already paid the full read; verify everything
    // eagerly so a corrupt section fails at load, not first use.
    snapshot.verify();
  }
  return snapshot;
}

std::size_t MappedSnapshot::section_count() const noexcept {
  return impl_->layout.sections.size();
}

const SectionRecord& MappedSnapshot::section(std::size_t i) const {
  return impl_->checked_section(i);
}

bool MappedSnapshot::zero_copy() const noexcept { return impl_->mapped; }

bool MappedSnapshot::locked() const noexcept { return impl_->locked; }

std::uint64_t MappedSnapshot::file_bytes() const noexcept {
  return impl_->layout.file_bytes;
}

void MappedSnapshot::verify() const {
  for (std::size_t i = 0; i < impl_->layout.sections.size(); ++i) {
    impl_->verify_once(i);
  }
}

std::span<const std::uint64_t> MappedSnapshot::section_words(
    std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  impl_->ensure_verified(i);
  return impl_->payload_words(record);
}

Basis MappedSnapshot::basis(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::BasisArena) {
    throw SnapshotError("MappedSnapshot::basis: section " + std::to_string(i) +
                        " is not a basis arena");
  }
  impl_->ensure_verified(i);
  BasisInfo info;
  info.kind = static_cast<BasisKind>(record.kind);
  info.method = static_cast<LevelMethod>(record.method);
  info.dimension = static_cast<std::size_t>(record.dimension);
  info.size = static_cast<std::size_t>(record.count);
  info.r = record.param_a;
  info.seed = record.seed;
  const auto words = impl_->payload_words(record);
  if (impl_->integrity == SnapshotIntegrity::Checksum) {
    // Checksummed bytes re-validate cheaply relative to the hash already
    // paid; Trust mode must stay O(1) in the payload, so it relies on the
    // writer having validated the invariants.
    return Basis(info, words, hdc::borrowed);
  }
  return Basis(info, words, hdc::borrowed, hdc::unchecked);
}

CentroidClassifier MappedSnapshot::classifier(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::ClassifierClassVectors) {
    throw SnapshotError("MappedSnapshot::classifier: section " +
                        std::to_string(i) + " is not a class-vector arena");
  }
  impl_->ensure_verified(i);
  WordStorage storage(impl_->payload_words(record), hdc::borrowed);
  const auto num_classes = static_cast<std::size_t>(record.count);
  const auto dimension = static_cast<std::size_t>(record.dimension);
  if (impl_->integrity == SnapshotIntegrity::Checksum) {
    return CentroidClassifier::from_packed_class_words(num_classes, dimension,
                                                       std::move(storage));
  }
  return CentroidClassifier::from_packed_class_words(
      num_classes, dimension, std::move(storage), hdc::unchecked);
}

HDRegressor MappedSnapshot::regressor(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::RegressorModel) {
    throw SnapshotError("MappedSnapshot::regressor: section " +
                        std::to_string(i) + " is not a regressor model");
  }
  impl_->ensure_verified(i);
  // The label basis borrows from the snapshot; the model hypervector is one
  // row and is copied into the owning HDRegressor state.
  Basis labels_basis = basis(static_cast<std::size_t>(record.aux_section));
  ScalarEncoderPtr labels;
  if (record.label_encoder == LabelEncoderKind::Linear) {
    labels = std::make_shared<LinearScalarEncoder>(
        std::move(labels_basis), record.param_a, record.param_b);
  } else {
    labels = std::make_shared<CircularScalarEncoder>(std::move(labels_basis),
                                                     record.param_b);
  }
  const auto model_words = impl_->payload_words(record);
  Hypervector model(HypervectorView(
      static_cast<std::size_t>(record.dimension), model_words));
  return HDRegressor::from_model(std::move(labels), std::move(model));
}

ScalarEncoderPtr MappedSnapshot::scalar_encoder(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type == SectionType::ScalarEncoderConfig) {
    // Payload-less: the whole encoder is the referenced basis + parameters.
    Basis encoder_basis = basis(static_cast<std::size_t>(record.aux_section));
    if (record.label_encoder == LabelEncoderKind::Linear) {
      return std::make_shared<LinearScalarEncoder>(
          std::move(encoder_basis), record.param_a, record.param_b);
    }
    return std::make_shared<CircularScalarEncoder>(std::move(encoder_basis),
                                                   record.param_b);
  }
  if (record.type == SectionType::MultiScaleEncoderConfig) {
    impl_->ensure_verified(i);
    Basis finest = basis(static_cast<std::size_t>(record.aux_section));
    std::vector<std::size_t> scales(record.kind);
    for (std::size_t s = 0; s < scales.size(); ++s) {
      scales[s] = static_cast<std::size_t>(record.scales[s]);
    }
    const auto words = impl_->payload_words(record);
    if (impl_->integrity == SnapshotIntegrity::Checksum) {
      return std::make_shared<MultiScaleCircularEncoder>(
          std::move(finest), std::move(scales), record.param_b, record.seed,
          words, hdc::borrowed);
    }
    return std::make_shared<MultiScaleCircularEncoder>(
        std::move(finest), std::move(scales), record.param_b, record.seed,
        words, hdc::borrowed, hdc::unchecked);
  }
  throw SnapshotError("MappedSnapshot::scalar_encoder: section " +
                      std::to_string(i) + " is not a scalar encoder config");
}

KeyValueEncoder MappedSnapshot::feature_encoder(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::FeatureEncoderConfig) {
    throw SnapshotError("MappedSnapshot::feature_encoder: section " +
                        std::to_string(i) +
                        " is not a feature encoder config");
  }
  impl_->ensure_verified(i);
  Basis keys = basis(static_cast<std::size_t>(record.aux_section));
  ScalarEncoderPtr values =
      scalar_encoder(static_cast<std::size_t>(record.aux_section_b));
  // The tie-breaker is one row and is copied into the owning encoder state
  // (bundling scratch must not depend on the mapping's lifetime rules any
  // more than the regressor model row does).
  Hypervector tie_breaker(
      HypervectorView(static_cast<std::size_t>(record.dimension),
                      impl_->payload_words(record)));
  return KeyValueEncoder(std::move(keys), std::move(values),
                         std::move(tie_breaker), record.seed);
}

ComposedEncoder MappedSnapshot::composed_encoder(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::ComposedEncoderConfig) {
    throw SnapshotError("MappedSnapshot::composed_encoder: section " +
                        std::to_string(i) +
                        " is not a composed encoder config");
  }
  std::vector<ScalarEncoderPtr> parts;
  parts.reserve(record.kind);
  parts.push_back(scalar_encoder(static_cast<std::size_t>(record.aux_section)));
  parts.push_back(
      scalar_encoder(static_cast<std::size_t>(record.aux_section_b)));
  for (std::size_t s = 2; s < record.kind; ++s) {
    parts.push_back(scalar_encoder(
        static_cast<std::size_t>(record.scales[s - 2] - 1)));
  }
  return ComposedEncoder(std::move(parts));
}

SequenceEncoder MappedSnapshot::sequence_encoder(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::SequenceEncoderConfig || record.kind != 0) {
    throw SnapshotError("MappedSnapshot::sequence_encoder: section " +
                        std::to_string(i) +
                        " is not a sequence encoder config");
  }
  return SequenceEncoder(static_cast<std::size_t>(record.dimension),
                         record.seed);
}

NGramEncoder MappedSnapshot::ngram_encoder(std::size_t i) const {
  const SectionRecord& record = impl_->checked_section(i);
  if (record.type != SectionType::SequenceEncoderConfig || record.kind != 1) {
    throw SnapshotError("MappedSnapshot::ngram_encoder: section " +
                        std::to_string(i) + " is not an n-gram encoder config");
  }
  return NGramEncoder(static_cast<std::size_t>(record.dimension),
                      record.method, record.seed);
}

MappedSnapshot load_snapshot(std::istream& in, SnapshotIntegrity integrity) {
  std::size_t byte_size = 0;
  std::vector<std::uint64_t> words = slurp(in, byte_size);
  auto impl = std::make_unique<MappedSnapshot::Impl>();
  impl->integrity = integrity;
  impl->heap = std::move(words);
  impl->data = reinterpret_cast<const std::byte*>(impl->heap.data());
  impl->bytes = byte_size;
  impl->parse();
  MappedSnapshot snapshot(std::move(impl));
  if (integrity == SnapshotIntegrity::Checksum) {
    snapshot.verify();
  }
  return snapshot;
}

MappedSnapshot load_snapshot(const std::string& path,
                             SnapshotIntegrity integrity) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotError("load_snapshot: cannot open " + path);
  }
  return load_snapshot(in, integrity);
}

}  // namespace hdc::io
