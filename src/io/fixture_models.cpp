#include "hdc/io/fixture_models.hpp"

#include <array>
#include <cmath>
#include <filesystem>
#include <memory>
#include <utility>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/core/scatter_code.hpp"
#include "hdc/io/snapshot.hpp"

namespace hdc::io::fixtures {

namespace {

/// Per-model seed streams so editing one fixture never reshuffles another.
enum : std::uint64_t {
  stream_random = 1,
  stream_level = 2,
  stream_circular = 3,
  stream_scatter = 4,
  stream_classifier = 5,
  stream_regressor = 6,
  stream_pipeline_values = 7,
  stream_pipeline_keys = 8,
  stream_pipeline_classifier = 9,
  stream_pipeline_multiscale = 10,
  stream_pipeline_regressor = 11,
  stream_beijing_year = 12,
  stream_beijing_day = 13,
  stream_beijing_hour = 14,
  stream_beijing_labels = 15,
  stream_beijing_model = 16,
  stream_text_encoder = 17,
  stream_text_model = 18,
};

}  // namespace

Basis make_basis(BasisKind kind, const FixtureSpec& spec) {
  switch (kind) {
    case BasisKind::Random: {
      RandomBasisConfig config;
      config.dimension = spec.dimension;
      config.size = spec.size;
      config.seed = derive_seed(spec.seed, stream_random);
      return make_random_basis(config);
    }
    case BasisKind::Level: {
      LevelBasisConfig config;
      config.dimension = spec.dimension;
      config.size = spec.size;
      config.method = LevelMethod::Interpolation;
      config.r = 0.3;
      config.seed = derive_seed(spec.seed, stream_level);
      return make_level_basis(config);
    }
    case BasisKind::Circular: {
      CircularBasisConfig config;
      config.dimension = spec.dimension;
      config.size = spec.size;
      config.r = 0.25;
      config.seed = derive_seed(spec.seed, stream_circular);
      return make_circular_basis(config);
    }
    case BasisKind::Scatter: {
      ScatterBasisConfig config;
      config.dimension = spec.dimension;
      config.size = spec.size;
      config.seed = derive_seed(spec.seed, stream_scatter);
      return make_scatter_basis(config);
    }
  }
  throw SnapshotError("fixtures::make_basis: unknown basis kind");
}

CentroidClassifier make_classifier(const FixtureSpec& spec) {
  constexpr std::size_t num_classes = 3;
  constexpr std::size_t samples_per_class = 4;
  CentroidClassifier model(num_classes, spec.dimension,
                           derive_seed(spec.seed, stream_classifier));
  Rng rng(derive_seed(spec.seed, stream_classifier));
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t s = 0; s < samples_per_class; ++s) {
      model.add_sample(c, Hypervector::random(spec.dimension, rng));
    }
  }
  model.finalize();
  return model;
}

HDRegressor make_regressor(const FixtureSpec& spec) {
  LevelBasisConfig config;
  config.dimension = spec.dimension;
  config.size = 8;
  config.r = 0.0;
  config.seed = derive_seed(spec.seed, stream_regressor);
  auto labels = std::make_shared<LinearScalarEncoder>(
      make_level_basis(config), 0.0, 1.0);
  HDRegressor model(labels, derive_seed(spec.seed, stream_regressor));
  for (std::size_t k = 0; k < 8; ++k) {
    const double x = static_cast<double>(k) / 7.0;
    model.add_sample(labels->encode(x), x);
  }
  model.finalize();
  return model;
}

ClassifierPipeline make_classifier_pipeline(const FixtureSpec& spec) {
  constexpr std::size_t num_channels = 4;
  constexpr std::size_t num_classes = 3;
  constexpr std::size_t samples_per_class = 6;
  constexpr double period = 360.0;

  CircularBasisConfig values_config;
  values_config.dimension = spec.dimension;
  values_config.size = 8;
  values_config.r = 0.2;
  values_config.seed = derive_seed(spec.seed, stream_pipeline_values);
  auto values = std::make_shared<CircularScalarEncoder>(
      make_circular_basis(values_config), period);
  KeyValueEncoder encoder(num_channels, values,
                          derive_seed(spec.seed, stream_pipeline_keys));

  // Each class is a band of channel angles around its own mean direction;
  // samples straddle the 0/360 wrap for class 0, the regime the circular
  // values exist for.
  CentroidClassifier model(num_classes, spec.dimension,
                           derive_seed(spec.seed, stream_pipeline_classifier));
  Rng rng(derive_seed(spec.seed, stream_pipeline_classifier));
  for (std::size_t c = 0; c < num_classes; ++c) {
    const double mean = period * static_cast<double>(c) /
                        static_cast<double>(num_classes);
    for (std::size_t s = 0; s < samples_per_class; ++s) {
      std::array<double, num_channels> angles{};
      for (double& angle : angles) {
        angle = mean + rng.uniform(-40.0, 40.0);
      }
      model.add_sample(c, encoder.encode(angles));
    }
  }
  model.finalize();
  return {std::move(encoder), std::move(model)};
}

RegressorPipeline make_regressor_pipeline(const FixtureSpec& spec) {
  MultiScaleCircularEncoder::Config encoder_config;
  encoder_config.dimension = spec.dimension;
  encoder_config.scales = {4, 8};
  encoder_config.period = 1.0;
  encoder_config.seed = derive_seed(spec.seed, stream_pipeline_multiscale);
  auto encoder =
      std::make_shared<const MultiScaleCircularEncoder>(encoder_config);

  LevelBasisConfig label_config;
  label_config.dimension = spec.dimension;
  label_config.size = 8;
  label_config.r = 0.0;
  label_config.seed = derive_seed(spec.seed, stream_pipeline_regressor);
  auto labels = std::make_shared<LinearScalarEncoder>(
      make_level_basis(label_config), -1.0, 1.0);

  // A seasonal triangle wave over one period of the circular domain:
  // continuous across the 0/1 wrap, like the temperature curve it stands for.
  HDRegressor model(labels, derive_seed(spec.seed, stream_pipeline_regressor));
  for (std::size_t k = 0; k < 16; ++k) {
    const double phase = static_cast<double>(k) / 16.0;
    const double label = 2.0 * std::abs(2.0 * phase - 1.0) - 1.0;
    model.add_sample(encoder->encode(phase), label);
  }
  model.finalize();
  return {std::move(encoder), std::move(model)};
}

BeijingPipeline make_beijing_pipeline(const FixtureSpec& spec) {
  // The paper's Beijing product: year stays a level encoding (macro trend),
  // day and hour wrap with their own periods.  Small grids keep the fixture
  // bytes compact; the shape — three encoders, two distinct periods, one
  // XOR product — is what the format section exists for.
  LevelBasisConfig year_config;
  year_config.dimension = spec.dimension;
  year_config.size = 5;
  year_config.seed = derive_seed(spec.seed, stream_beijing_year);
  auto year = std::make_shared<LinearScalarEncoder>(
      make_level_basis(year_config), 0.0, 4.0);

  CircularBasisConfig day_config;
  day_config.dimension = spec.dimension;
  day_config.size = 12;
  day_config.r = 0.2;
  day_config.seed = derive_seed(spec.seed, stream_beijing_day);
  auto day = std::make_shared<CircularScalarEncoder>(
      make_circular_basis(day_config), 366.0);

  CircularBasisConfig hour_config;
  hour_config.dimension = spec.dimension;
  hour_config.size = 8;
  hour_config.r = 0.2;
  hour_config.seed = derive_seed(spec.seed, stream_beijing_hour);
  auto hour = std::make_shared<CircularScalarEncoder>(
      make_circular_basis(hour_config), 24.0);

  auto encoder = std::make_shared<const ComposedEncoder>(
      std::vector<ScalarEncoderPtr>{std::move(year), std::move(day),
                                    std::move(hour)});

  LevelBasisConfig label_config;
  label_config.dimension = spec.dimension;
  label_config.size = 16;
  label_config.seed = derive_seed(spec.seed, stream_beijing_labels);
  auto labels = std::make_shared<LinearScalarEncoder>(
      make_level_basis(label_config), -20.0, 40.0);

  // Seeded stand-in for the hourly series: annual harmonic (coldest
  // mid-January), diurnal harmonic (warmest mid-afternoon), slight warming
  // trend, and a little seeded weather noise.
  constexpr double two_pi = 6.283185307179586476925287;
  HDRegressor model(labels, derive_seed(spec.seed, stream_beijing_model));
  Rng rng(derive_seed(spec.seed, stream_beijing_model));
  for (std::size_t year_index = 0; year_index < 5; ++year_index) {
    for (std::size_t d = 0; d < 12; ++d) {
      const double day_of_year = 366.0 * static_cast<double>(d) / 12.0;
      for (std::size_t h = 0; h < 6; ++h) {
        const double hour_of_day = 24.0 * static_cast<double>(h) / 6.0;
        const double temperature =
            12.5 -
            14.5 * std::cos(two_pi * (day_of_year - 15.0) / 366.0 + two_pi) +
            4.0 * std::cos(two_pi * (hour_of_day - 15.0) / 24.0) +
            0.04 * static_cast<double>(year_index) + rng.uniform(-0.5, 0.5);
        const std::vector<double> row{static_cast<double>(year_index),
                                      day_of_year, hour_of_day};
        model.add_sample(encoder->encode(row), temperature);
      }
    }
  }
  model.finalize();
  return {std::move(encoder), std::move(model)};
}

TextPipeline make_text_pipeline(const FixtureSpec& spec) {
  constexpr std::size_t num_classes = 3;
  // One tiny pseudo-language per class; trigram statistics separate them.
  static constexpr std::array<std::array<const char*, 4>, num_classes>
      phrases{{
          {"the quick brown fox", "hello there again", "we shall meet today",
           "thank you very much"},
          {"el gato corre ahora", "buenos dias amigo", "gracias por la cena",
           "hasta luego entonces"},
          {"der hund lauft schnell", "guten morgen freund",
           "danke fur das essen", "bis spater dann"},
      }};

  NGramEncoder encoder(spec.dimension, 3,
                       derive_seed(spec.seed, stream_text_encoder));
  CentroidClassifier model(num_classes, spec.dimension,
                           derive_seed(spec.seed, stream_text_model));
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (const char* phrase : phrases[c]) {
      model.add_sample(c, encoder.encode(phrase));
    }
  }
  model.finalize();
  return {std::move(encoder), std::move(model)};
}

std::vector<std::string> fixture_names() {
  return {
      "basis_random.hdcs",   "basis_level.hdcs",
      "basis_circular.hdcs", "basis_scatter.hdcs",
      "classifier.hdcs",     "regressor.hdcs",
      "combined.hdcs",       "pipeline_classifier.hdcs",
      "pipeline_regressor.hdcs", "pipeline_combined.hdcs",
      "pipeline_beijing.hdcs", "pipeline_text.hdcs",
  };
}

std::vector<std::string> write_all(const std::string& dir,
                                   const FixtureSpec& spec) {
  std::filesystem::create_directories(dir);
  const auto path = [&dir](const std::string& name) {
    return (std::filesystem::path(dir) / name).string();
  };

  const Basis random = make_basis(BasisKind::Random, spec);
  const Basis level = make_basis(BasisKind::Level, spec);
  const Basis circular = make_basis(BasisKind::Circular, spec);
  const Basis scatter = make_basis(BasisKind::Scatter, spec);
  const CentroidClassifier classifier = make_classifier(spec);
  const HDRegressor regressor = make_regressor(spec);
  const ClassifierPipeline classifier_pipeline = make_classifier_pipeline(spec);
  const RegressorPipeline regressor_pipeline = make_regressor_pipeline(spec);
  const BeijingPipeline beijing_pipeline = make_beijing_pipeline(spec);
  const TextPipeline text_pipeline = make_text_pipeline(spec);

  std::vector<std::string> written;
  const auto write_one = [&](const std::string& name, const auto& add) {
    SnapshotWriter writer;
    add(writer);
    writer.write_file(path(name));
    written.push_back(path(name));
  };
  write_one("basis_random.hdcs",
            [&](SnapshotWriter& w) { w.add_basis(random); });
  write_one("basis_level.hdcs", [&](SnapshotWriter& w) { w.add_basis(level); });
  write_one("basis_circular.hdcs",
            [&](SnapshotWriter& w) { w.add_basis(circular); });
  write_one("basis_scatter.hdcs",
            [&](SnapshotWriter& w) { w.add_basis(scatter); });
  write_one("classifier.hdcs",
            [&](SnapshotWriter& w) { w.add_classifier(classifier); });
  write_one("regressor.hdcs",
            [&](SnapshotWriter& w) { w.add_regressor(regressor); });
  write_one("combined.hdcs", [&](SnapshotWriter& w) {
    w.add_basis(random);
    w.add_basis(level);
    w.add_basis(circular);
    w.add_basis(scatter);
    w.add_classifier(classifier);
    w.add_regressor(regressor);
  });
  write_one("pipeline_classifier.hdcs", [&](SnapshotWriter& w) {
    w.add_pipeline(classifier_pipeline.encoder, classifier_pipeline.model);
  });
  write_one("pipeline_regressor.hdcs", [&](SnapshotWriter& w) {
    w.add_pipeline(*regressor_pipeline.encoder, regressor_pipeline.model);
  });
  write_one("pipeline_combined.hdcs", [&](SnapshotWriter& w) {
    w.add_pipeline(classifier_pipeline.encoder, classifier_pipeline.model);
    w.add_pipeline(*regressor_pipeline.encoder, regressor_pipeline.model);
  });
  write_one("pipeline_beijing.hdcs", [&](SnapshotWriter& w) {
    w.add_pipeline(*beijing_pipeline.encoder, beijing_pipeline.model);
  });
  write_one("pipeline_text.hdcs", [&](SnapshotWriter& w) {
    w.add_pipeline(text_pipeline.encoder, text_pipeline.model);
  });
  return written;
}

}  // namespace hdc::io::fixtures
