#include "hdc/io/pipeline.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace hdc::io {

const char* to_string(PipelineKind kind) noexcept {
  return kind == PipelineKind::Classifier ? "classifier" : "regressor";
}

const char* to_string(PipelineInput input) noexcept {
  return input == PipelineInput::Text ? "text" : "numeric";
}

Pipeline Pipeline::restore(const MappedSnapshot& snapshot) {
  std::size_t head_index = 0;
  std::size_t heads = 0;
  for (std::size_t i = 0; i < snapshot.section_count(); ++i) {
    if (snapshot.section(i).type == SectionType::PipelineHead) {
      head_index = i;
      ++heads;
    }
  }
  if (heads == 0) {
    throw SnapshotError(
        "Pipeline::restore: snapshot carries no pipeline head section");
  }
  if (heads > 1) {
    throw SnapshotError(
        "Pipeline::restore: snapshot carries " + std::to_string(heads) +
        " pipeline heads; pass an explicit head section index");
  }
  return restore(snapshot, head_index);
}

Pipeline Pipeline::restore(const MappedSnapshot& snapshot,
                           std::size_t head_index) {
  const SectionRecord& head = snapshot.section(head_index);
  if (head.type != SectionType::PipelineHead) {
    throw SnapshotError("Pipeline::restore: section " +
                        std::to_string(head_index) +
                        " is not a pipeline head");
  }
  Pipeline pipeline;
  pipeline.dimension_ = static_cast<std::size_t>(head.dimension);

  const auto encoder_index = static_cast<std::size_t>(head.aux_section);
  switch (snapshot.section(encoder_index).type) {
    case SectionType::FeatureEncoderConfig:
      pipeline.features_ = std::make_shared<KeyValueEncoder>(
          snapshot.feature_encoder(encoder_index));
      break;
    case SectionType::ComposedEncoderConfig:
      pipeline.composed_ = std::make_shared<ComposedEncoder>(
          snapshot.composed_encoder(encoder_index));
      break;
    case SectionType::SequenceEncoderConfig:
      // Warm every single-byte symbol *before* freezing the encoder const:
      // serving shares one encoder across threads, and the const encode
      // path only reads already-materialized symbols.
      if (snapshot.section(encoder_index).kind == 0) {
        auto sequence = std::make_shared<SequenceEncoder>(
            snapshot.sequence_encoder(encoder_index));
        sequence->warm_bytes();
        pipeline.sequence_ = std::move(sequence);
      } else {
        auto ngram = std::make_shared<NGramEncoder>(
            snapshot.ngram_encoder(encoder_index));
        ngram->warm_bytes();
        pipeline.ngram_ = std::move(ngram);
      }
      break;
    default:
      pipeline.scalar_ = snapshot.scalar_encoder(encoder_index);
      break;
  }

  const auto model_index = static_cast<std::size_t>(head.aux_section_b);
  if (snapshot.section(model_index).type ==
      SectionType::ClassifierClassVectors) {
    pipeline.kind_ = PipelineKind::Classifier;
    pipeline.classifier_ = std::make_shared<CentroidClassifier>(
        snapshot.classifier(model_index));
  } else {
    pipeline.kind_ = PipelineKind::Regressor;
    pipeline.regressor_ =
        std::make_shared<HDRegressor>(snapshot.regressor(model_index));
  }
  return pipeline;
}

std::size_t Pipeline::num_features() const noexcept {
  if (features_) {
    return features_->num_features();
  }
  if (sequence_ || ngram_) {
    return 0;
  }
  return composed_ ? composed_->num_features() : 1;
}

Hypervector Pipeline::encode(std::span<const double> features) const {
  if (features_) {
    return features_->encode(features);
  }
  if (composed_) {
    return composed_->encode(features);
  }
  if (sequence_ || ngram_) {
    throw std::logic_error(
        "Pipeline::encode: text pipelines take raw rows via encode_text()");
  }
  if (features.size() != 1) {
    throw std::invalid_argument(
        "Pipeline::encode: scalar-encoder pipelines take exactly one "
        "feature");
  }
  return Hypervector(scalar_->encode(features[0]));
}

std::size_t Pipeline::classify(std::span<const double> features) const {
  return classifier().predict(encode(features));
}

double Pipeline::regress(std::span<const double> features) const {
  return regressor().predict(encode(features));
}

Hypervector Pipeline::encode_text(std::string_view text) const {
  if (sequence_) {
    return sequence_->encode_word(text);
  }
  if (ngram_) {
    return ngram_->encode(text);
  }
  throw std::logic_error(
      "Pipeline::encode_text: this is a numeric pipeline; use encode()");
}

std::size_t Pipeline::classify_text(std::string_view text) const {
  return classifier().predict(encode_text(text));
}

double Pipeline::regress_text(std::string_view text) const {
  return regressor().predict(encode_text(text));
}

const CentroidClassifier& Pipeline::classifier() const {
  if (!classifier_) {
    throw std::logic_error(
        "Pipeline::classifier: this is a regressor pipeline");
  }
  return *classifier_;
}

const HDRegressor& Pipeline::regressor() const {
  if (!regressor_) {
    throw std::logic_error(
        "Pipeline::regressor: this is a classifier pipeline");
  }
  return *regressor_;
}

std::shared_ptr<const CentroidClassifier> Pipeline::classifier_ptr() const {
  if (!classifier_) {
    throw std::logic_error(
        "Pipeline::classifier_ptr: this is a regressor pipeline");
  }
  return classifier_;
}

std::shared_ptr<const HDRegressor> Pipeline::regressor_ptr() const {
  if (!regressor_) {
    throw std::logic_error(
        "Pipeline::regressor_ptr: this is a classifier pipeline");
  }
  return regressor_;
}

runtime::BatchEncoder Pipeline::batch_encoder(
    runtime::ThreadPoolPtr pool) const {
  // Every branch captures the shared encoder state, not this Pipeline
  // object; the engine stays valid as long as the snapshot mapping does.
  if (sequence_ || ngram_) {
    throw std::logic_error(
        "Pipeline::batch_encoder: text pipelines batch via "
        "batch_text_encoder()");
  }
  runtime::BatchEncoder::EncodeFn encode;
  if (features_) {
    encode = [encoder = features_](std::span<const double> row) {
      return encoder->encode(row);
    };
  } else if (composed_) {
    encode = [encoder = composed_](std::span<const double> row) {
      return encoder->encode(row);
    };
  } else {
    encode = [encoder = scalar_](std::span<const double> row) {
      if (row.size() != 1) {
        throw std::invalid_argument(
            "Pipeline batch encoder: scalar-encoder pipelines take exactly "
            "one feature per row");
      }
      return Hypervector(encoder->encode(row[0]));
    };
  }
  return runtime::BatchEncoder(dimension_, std::move(encode), std::move(pool));
}

runtime::BatchTextEncoder Pipeline::batch_text_encoder(
    runtime::ThreadPoolPtr pool) const {
  // Capture the shared encoder handle, not this Pipeline object, so the
  // engine stays valid as long as the snapshot mapping does.
  runtime::BatchTextEncoder::TextEncodeFn encode;
  if (sequence_) {
    encode = [encoder = sequence_](std::string_view text) {
      return encoder->encode_word(text);
    };
  } else if (ngram_) {
    encode = [encoder = ngram_](std::string_view text) {
      return encoder->encode(text);
    };
  } else {
    throw std::logic_error(
        "Pipeline::batch_text_encoder: this is a numeric pipeline; use "
        "batch_encoder()");
  }
  return runtime::BatchTextEncoder(dimension_, std::move(encode),
                                   std::move(pool));
}

runtime::BatchClassifier Pipeline::batch_classifier(
    runtime::ThreadPoolPtr pool) const {
  return {CentroidClassifier(classifier()), std::move(pool)};
}

runtime::BatchRegressor Pipeline::batch_regressor(
    runtime::ThreadPoolPtr pool) const {
  return {HDRegressor(regressor()), std::move(pool)};
}

}  // namespace hdc::io
