#include "hdc/io/checksum.hpp"

namespace hdc::io {

namespace {

constexpr std::uint64_t prime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t prime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t prime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t prime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t prime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// Little-endian loads composed from bytes: portable regardless of host
/// endianness or alignment.
std::uint64_t load_le64(const std::byte* p) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 8; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint64_t>(p[i]);
  }
  return value;
}

std::uint32_t load_le32(const std::byte* p) noexcept {
  std::uint32_t value = 0;
  for (std::size_t i = 4; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint32_t>(p[i]);
  }
  return value;
}

constexpr std::uint64_t round_step(std::uint64_t acc,
                                   std::uint64_t input) noexcept {
  acc += input * prime2;
  acc = rotl(acc, 31);
  acc *= prime1;
  return acc;
}

constexpr std::uint64_t merge_round(std::uint64_t hash,
                                    std::uint64_t acc) noexcept {
  hash ^= round_step(0, acc);
  return hash * prime1 + prime4;
}

}  // namespace

std::uint64_t xxhash64(std::span<const std::byte> data,
                       std::uint64_t seed) noexcept {
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t hash;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + prime1 + prime2;
    std::uint64_t v2 = seed + prime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - prime1;
    const std::byte* const limit = end - 32;
    do {
      v1 = round_step(v1, load_le64(p));
      v2 = round_step(v2, load_le64(p + 8));
      v3 = round_step(v3, load_le64(p + 16));
      v4 = round_step(v4, load_le64(p + 24));
      p += 32;
    } while (p <= limit);
    hash = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    hash = merge_round(hash, v1);
    hash = merge_round(hash, v2);
    hash = merge_round(hash, v3);
    hash = merge_round(hash, v4);
  } else {
    hash = seed + prime5;
  }

  hash += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    hash ^= round_step(0, load_le64(p));
    hash = rotl(hash, 27) * prime1 + prime4;
    p += 8;
  }
  if (p + 4 <= end) {
    hash ^= static_cast<std::uint64_t>(load_le32(p)) * prime1;
    hash = rotl(hash, 23) * prime2 + prime3;
    p += 4;
  }
  while (p < end) {
    hash ^= static_cast<std::uint64_t>(*p) * prime5;
    hash = rotl(hash, 11) * prime1;
    ++p;
  }

  hash ^= hash >> 33;
  hash *= prime2;
  hash ^= hash >> 29;
  hash *= prime3;
  hash ^= hash >> 32;
  return hash;
}

}  // namespace hdc::io
