#ifndef HDC_IO_FIXTURE_MODELS_HPP
#define HDC_IO_FIXTURE_MODELS_HPP

/// \file fixture_models.hpp
/// \brief Canonical models behind the snapshot compatibility suite.
///
/// The golden-file tests commit small binary snapshots under
/// tests/io/fixtures/ and assert byte-exact write stability; CI regenerates
/// them with `hdcgen snap-fixtures` and diffs against the committed files.
/// Both sides — the test binary and the tool — must build the *same* models
/// from the same seeds, so the single definition lives here.  Every
/// generator below is deterministic and bit-portable (hdc::Rng), which is
/// what makes committing the binaries meaningful.
///
/// Changing anything in this file or in the format intentionally breaks the
/// golden tests: bump the fixture files and the format version together and
/// document the change in docs/snapshot_format.md.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hdc/core/basis.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/composed_encoder.hpp"
#include "hdc/core/feature_encoder.hpp"
#include "hdc/core/multiscale_encoder.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/sequence_encoder.hpp"

namespace hdc::io::fixtures {

/// Shared shape of the fixture models: small (d = 96 exercises a partial
/// tail word; m = 5 covers row boundaries) but structurally complete.
struct FixtureSpec {
  std::size_t dimension = 96;
  std::size_t size = 5;
  std::uint64_t seed = 2023;
};

/// The canonical basis of one family under \p spec (level method is
/// Interpolation; r is 0.3 for level, 0.25 for circular).
[[nodiscard]] Basis make_basis(BasisKind kind, const FixtureSpec& spec = {});

/// A finalized 3-class classifier trained on seeded random encodings.
[[nodiscard]] CentroidClassifier make_classifier(const FixtureSpec& spec = {});

/// A finalized regressor over a linear label encoder on [0, 1] with an
/// 8-point level basis.
[[nodiscard]] HDRegressor make_regressor(const FixtureSpec& spec = {});

/// A complete feature-encoder classification pipeline in the JIGSAWS shape:
/// 4 angular channels encoded as ⊕_i K_i ⊗ V(x_i) with circular-basis
/// values, plus a 3-class centroid model trained on seeded samples.
struct ClassifierPipeline {
  KeyValueEncoder encoder;
  CentroidClassifier model;
};
[[nodiscard]] ClassifierPipeline make_classifier_pipeline(
    const FixtureSpec& spec = {});

/// A complete multiscale-circular regression pipeline in the Beijing shape:
/// one periodic feature encoded at scales {4, 8} over period 1, plus a
/// regressor over a linear label encoder trained on a seeded seasonal curve.
struct RegressorPipeline {
  std::shared_ptr<const MultiScaleCircularEncoder> encoder;
  HDRegressor model;
};
[[nodiscard]] RegressorPipeline make_regressor_pipeline(
    const FixtureSpec& spec = {});

/// A composed three-encoder regression pipeline in the shape of the paper's
/// Beijing circular-regression experiment: temperature regressed on
/// Y ⊗ D ⊗ H, a level-encoded year index bound to circular encodings of
/// day-of-year (period 366) and hour-of-day (period 24) — heterogeneous
/// periods through one XOR product — trained on a seeded seasonal-diurnal
/// temperature curve.
struct BeijingPipeline {
  std::shared_ptr<const ComposedEncoder> encoder;
  HDRegressor model;
};
[[nodiscard]] BeijingPipeline make_beijing_pipeline(
    const FixtureSpec& spec = {});

/// A raw-text classification pipeline in the language-ID shape: character
/// trigrams (n = 3) bundled per phrase, plus a 3-class centroid model
/// trained on seeded phrase lists (one pseudo-language per class).  The
/// snapshot side is config-only — dimension, n, seed — so the committed
/// fixture stays a few hundred bytes.
struct TextPipeline {
  NGramEncoder encoder;
  CentroidClassifier model;
};
[[nodiscard]] TextPipeline make_text_pipeline(const FixtureSpec& spec = {});

/// File names of the canonical fixture set, in generation order: one
/// single-section snapshot per basis kind, a classifier, a regressor, one
/// combined multi-section snapshot, and the five pipeline snapshots
/// (classifier pipeline, regressor pipeline, both in one file, the Beijing
/// composed-encoder pipeline, and the n-gram text pipeline).
[[nodiscard]] std::vector<std::string> fixture_names();

/// Writes the canonical fixture snapshots into \p dir (created if missing)
/// and returns the paths written.  Deterministic: repeated runs produce
/// byte-identical files.
std::vector<std::string> write_all(const std::string& dir,
                                   const FixtureSpec& spec = {});

}  // namespace hdc::io::fixtures

#endif  // HDC_IO_FIXTURE_MODELS_HPP
