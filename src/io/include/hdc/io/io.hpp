#ifndef HDC_IO_IO_HPP
#define HDC_IO_IO_HPP

/// \file io.hpp
/// \brief Umbrella header: the full public API of the hdc::io subsystem.

#include "hdc/io/checksum.hpp"  // IWYU pragma: export
#include "hdc/io/delta.hpp"     // IWYU pragma: export
#include "hdc/io/format.hpp"    // IWYU pragma: export
#include "hdc/io/pipeline.hpp"  // IWYU pragma: export
#include "hdc/io/reload.hpp"    // IWYU pragma: export
#include "hdc/io/snapshot.hpp"  // IWYU pragma: export

#endif  // HDC_IO_IO_HPP
