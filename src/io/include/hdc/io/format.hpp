#ifndef HDC_IO_FORMAT_HPP
#define HDC_IO_FORMAT_HPP

/// \file format.hpp
/// \brief The HDCS snapshot on-disk format: constants, records, parsing.
///
/// An HDCS snapshot is a versioned, little-endian container whose payload
/// bytes *are* the runtime arena layout, so a reader can serve models
/// straight over a read-only mmap with zero deserialization copies:
///
///     [ file header            | 64 bytes, "HDCS" magic              ]
///     [ section table          | section_count x 128-byte entries    ]
///     [ ...zero padding to the payload alignment...                  ]
///     [ payload section 0      | packed little-endian 64-bit words   ]
///     [ ...zero padding...                                           ]
///     [ payload section 1      | ...                                 ]
///
/// Every payload section starts on a `payload_alignment` boundary (4096 by
/// default, so sections are page-aligned for mmap serving; the format
/// permits any power of two >= 64) and carries an XXH64 checksum in its
/// table entry; the table itself is covered by a checksum in the header.
/// All multi-byte fields are little-endian.  Full field-by-field layout:
/// docs/snapshot_format.md.
///
/// `parse_snapshot_layout` validates everything that can be checked without
/// touching payload bytes — magic, version, endianness, counts, alignment,
/// bounds, ordering, reserved bytes, the table checksum — and throws
/// `SnapshotError` on the first inconsistency, so no reader ever constructs
/// a model from a structurally corrupt file.  Payload integrity is a
/// separate, per-section step (`verify_section_payload`) because hashing a
/// payload pages it in: eager for the heap loader, on first access for the
/// mmap reader, skippable for trusted artifact stores.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace hdc::io {

/// Raised on malformed snapshot files, checksum mismatches and I/O
/// failures.  Readers throw before any partial model can escape.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::array<char, 4> snapshot_magic = {'H', 'D', 'C', 'S'};
/// Version 2 added the encoder/pipeline section types (4..8), the second
/// aux-reference field and the multiscale scale list; version 3 added the
/// ComposedEncoderConfig section (9) for N-way XOR-product encoder bindings
/// with heterogeneous periods; version 4 added the DeltaPatch section (10)
/// so an adapted model ships as base snapshot + changed-row patch; see
/// docs/snapshot_format.md for the migration notes.
inline constexpr std::uint16_t snapshot_version = 4;
/// 'E','L' on disk; a reader decoding the header little-endian sees 0x4C45.
inline constexpr std::uint16_t snapshot_endian_marker = 0x4C45;
inline constexpr std::size_t snapshot_header_bytes = 64;
inline constexpr std::size_t snapshot_entry_bytes = 128;
/// Default payload alignment: one page, so mmap'd sections are page-aligned.
inline constexpr std::size_t snapshot_default_alignment = 4096;
/// Smallest permitted payload alignment (cache-line / word alignment floor).
inline constexpr std::size_t snapshot_min_alignment = 64;
inline constexpr std::size_t snapshot_max_alignment = std::size_t{1} << 20;
/// Sentinel for "no auxiliary section".
inline constexpr std::uint64_t snapshot_no_aux = ~std::uint64_t{0};
/// Hard cap on dimensions/counts, mirroring hdc/core/serialization.cpp:
/// corrupted tables must not describe multi-gigabyte models.
inline constexpr std::uint64_t snapshot_sanity_limit = 1ULL << 28;
/// Hard cap on the section count (the table alone would be 128 MiB here).
inline constexpr std::uint64_t snapshot_max_sections = 1ULL << 20;
/// Most scales a MultiScaleEncoderConfig section can record: the scale list
/// lives in the fixed-size section entry (offsets [88, 128)).
inline constexpr std::size_t snapshot_max_scales = 5;
/// Most sub-encoders a ComposedEncoderConfig section can reference: the
/// first two ride in aux_section / aux_section_b, the rest reuse the five
/// entry slots at offsets [88, 128) (stored as section index + 1 so the
/// all-zero slot keeps meaning "unused").
inline constexpr std::size_t snapshot_max_composed = 2 + snapshot_max_scales;

/// What a payload section holds.
enum class SectionType : std::uint16_t {
  /// A basis arena: `count` rows of words_for(dimension) packed words —
  /// bit-identical to Basis::packed_words().
  BasisArena = 1,
  /// A finalized classifier's class-vector arena — bit-identical to
  /// CentroidClassifier::packed_class_words().
  ClassifierClassVectors = 2,
  /// A finalized regressor's quantized model hypervector (count == 1);
  /// `aux_section` indexes the label-basis section written alongside.
  RegressorModel = 3,
  /// A LinearScalarEncoder / CircularScalarEncoder configuration (no
  /// payload); `aux_section` indexes its basis, `label_encoder` carries the
  /// encoder family and param_a/param_b its lo/hi or period.
  ScalarEncoderConfig = 4,
  /// A MultiScaleCircularEncoder: the payload is the bound-vector arena
  /// (`count` rows, one per finest-grid index), `aux_section` indexes the
  /// finest-scale circular basis, `kind` is the number of bound scales and
  /// `scales` lists their ring sizes coarse -> fine.
  MultiScaleEncoderConfig = 5,
  /// A KeyValueEncoder: the payload is its bundling tie-breaker (count ==
  /// 1), `aux_section` indexes the key basis and `aux_section_b` the value
  /// encoder's config section (ScalarEncoderConfig or
  /// MultiScaleEncoderConfig).
  FeatureEncoderConfig = 6,
  /// A complete encode->predict pipeline (no payload): `aux_section`
  /// indexes the encoder config section, `aux_section_b` the model section
  /// (ClassifierClassVectors or RegressorModel).
  PipelineHead = 7,
  /// A SequenceEncoder / NGramEncoder configuration (no payload): both are
  /// fully determined by (dimension, seed[, n]); `kind` is 0 for sequence,
  /// 1 for n-gram, and `method` carries n for n-gram sections.
  SequenceEncoderConfig = 8,
  /// A ComposedEncoder (version 3, no payload): `kind` scalar-encoder
  /// config sections bound by XOR product, one feature each.  `aux_section`
  /// and `aux_section_b` reference sub-encoders 0 and 1; sub-encoders 2..6
  /// live in the `scales` slots as section index + 1 (0 = unused).  The
  /// paper's Beijing Y ⊗ D ⊗ H product with heterogeneous periods is the
  /// canonical instance.
  ComposedEncoderConfig = 9,
  /// A changed-row patch against a *base* snapshot file (version 4): the
  /// payload is `count` strictly increasing u64 row indices followed by
  /// `count` packed rows of words_for(dimension) words each.  `seed` is the
  /// XXH64 content hash of the entire base snapshot file, `aux_section` the
  /// patched model section's index *in the base file* (the one cross-file
  /// reference in the format), `kind` the target SectionType
  /// (ClassifierClassVectors or RegressorModel) and `aux_section_b` the base
  /// model's total row count.  Applying the patch to the base reproduces the
  /// adapted full snapshot byte-for-byte (hdc::io::apply_delta).
  DeltaPatch = 10,
};

/// Scalar-encoder family: the label encoder of a RegressorModel section and
/// the encoder family of a ScalarEncoderConfig section.
enum class LabelEncoderKind : std::uint16_t {
  None = 0,
  /// LinearScalarEncoder over [param_a, param_b].
  Linear = 1,
  /// CircularScalarEncoder with period param_b.
  Circular = 2,
};

/// One decoded section-table entry.
struct SectionRecord {
  SectionType type = SectionType::BasisArena;
  std::uint16_t kind = 0;    ///< BasisKind for BasisArena sections.
  std::uint16_t method = 0;  ///< LevelMethod for BasisArena sections.
  LabelEncoderKind label_encoder = LabelEncoderKind::None;
  std::uint64_t dimension = 0;
  std::uint64_t count = 0;  ///< Rows in the payload (m / classes / 1).
  double param_a = 0.0;     ///< Basis r, or encoder lo.
  double param_b = 0.0;     ///< Encoder hi or period.
  std::uint64_t seed = 0;
  std::uint64_t aux_section = snapshot_no_aux;
  std::uint64_t payload_offset = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_checksum = 0;
  /// Second section reference (version 2): the value-encoder section of a
  /// FeatureEncoderConfig, or the model section of a PipelineHead.
  std::uint64_t aux_section_b = snapshot_no_aux;
  /// Ring sizes of a MultiScaleEncoderConfig's bound scales, coarse -> fine
  /// in the first `kind` slots; on a ComposedEncoderConfig the first
  /// `kind - 2` slots carry sub-encoder section references as index + 1;
  /// all-zero for every other section type.
  std::array<std::uint64_t, snapshot_max_scales> scales{};
};

/// A structurally validated snapshot image: header fields + section table.
struct SnapshotLayout {
  std::size_t payload_alignment = snapshot_default_alignment;
  std::uint64_t file_bytes = 0;
  std::vector<SectionRecord> sections;
};

/// Validates the header and section table of an in-memory snapshot image
/// (magic, version, endianness, alignment, bounds, ordering, reserved
/// bytes, table checksum, per-entry metadata sanity) without reading any
/// payload bytes.  \throws SnapshotError on the first inconsistency.
[[nodiscard]] SnapshotLayout parse_snapshot_layout(
    std::span<const std::byte> file);

/// Hashes \p section's payload bytes in \p file and compares against the
/// recorded checksum.  \throws SnapshotError on mismatch.
void verify_section_payload(std::span<const std::byte> file,
                            const SectionRecord& section);

namespace detail {

/// Little-endian field stores/loads composed from bytes; the only codec the
/// format uses, so snapshots are byte-identical across platforms.
inline void store_u16(std::span<std::byte> out, std::size_t at,
                      std::uint16_t value) noexcept {
  out[at] = static_cast<std::byte>(value & 0xFFU);
  out[at + 1] = static_cast<std::byte>((value >> 8) & 0xFFU);
}

inline void store_u32(std::span<std::byte> out, std::size_t at,
                      std::uint32_t value) noexcept {
  for (std::size_t i = 0; i < 4; ++i) {
    out[at + i] = static_cast<std::byte>((value >> (8 * i)) & 0xFFU);
  }
}

inline void store_u64(std::span<std::byte> out, std::size_t at,
                      std::uint64_t value) noexcept {
  for (std::size_t i = 0; i < 8; ++i) {
    out[at + i] = static_cast<std::byte>((value >> (8 * i)) & 0xFFU);
  }
}

void store_f64(std::span<std::byte> out, std::size_t at, double value) noexcept;

[[nodiscard]] inline std::uint16_t load_u16(std::span<const std::byte> in,
                                            std::size_t at) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[at]) |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

[[nodiscard]] inline std::uint32_t load_u32(std::span<const std::byte> in,
                                            std::size_t at) noexcept {
  std::uint32_t value = 0;
  for (std::size_t i = 4; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint32_t>(in[at + i]);
  }
  return value;
}

[[nodiscard]] inline std::uint64_t load_u64(std::span<const std::byte> in,
                                            std::size_t at) noexcept {
  std::uint64_t value = 0;
  for (std::size_t i = 8; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint64_t>(in[at + i]);
  }
  return value;
}

[[nodiscard]] double load_f64(std::span<const std::byte> in,
                              std::size_t at) noexcept;

/// at rounded up to the next multiple of alignment (a power of two).
[[nodiscard]] constexpr std::uint64_t align_up(
    std::uint64_t at, std::uint64_t alignment) noexcept {
  return (at + alignment - 1) & ~(alignment - 1);
}

/// Encodes one section-table entry into its 128-byte slot.
void encode_section_entry(std::span<std::byte> out, std::size_t at,
                          const SectionRecord& record) noexcept;

}  // namespace detail

}  // namespace hdc::io

#endif  // HDC_IO_FORMAT_HPP
