#ifndef HDC_IO_SNAPSHOT_HPP
#define HDC_IO_SNAPSHOT_HPP

/// \file snapshot.hpp
/// \brief Mmap-able model snapshots: write, map, and load HDCS files.
///
/// Three entry points (see docs/snapshot_format.md for the byte layout):
///
///  * `SnapshotWriter` streams finalized models — `Basis` arenas,
///    `CentroidClassifier` class-vectors, `HDRegressor` models with their
///    label bases, encoder configurations, and whole encode->predict
///    pipelines (`add_pipeline`; restored by `hdc::io::Pipeline`) — into one
///    snapshot file whose payload bytes are the runtime arena layout.
///  * `MappedSnapshot` maps a snapshot read-only (POSIX mmap; a transparent
///    heap fallback elsewhere) and hands out models whose storage is a
///    borrowed span straight over the mapping: zero payload copies, so
///    cold-start latency is independent of model size.  Models borrow from
///    the snapshot and are valid only while it stays open.
///  * `load_snapshot` is the portable heap-backed fallback: it reads the
///    whole file (or any std::istream) into memory and serves the same API
///    with the snapshot owning the buffer.
///
/// Integrity: every reader fully validates the header and section table
/// (including the table checksum) before anything else, so a corrupt file
/// can never yield a partial model.  Payload checksums are verified eagerly
/// by `load_snapshot`, and on first access per section by `MappedSnapshot`
/// — pass `SnapshotIntegrity::Trust` to skip the payload hash for
/// content-addressed artifact stores whose bytes are already authenticated;
/// only then is section access O(1) in the payload size.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hdc/core/basis.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/composed_encoder.hpp"
#include "hdc/core/feature_encoder.hpp"
#include "hdc/core/multiscale_encoder.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/core/sequence_encoder.hpp"
#include "hdc/io/format.hpp"

namespace hdc::io {

struct DeltaPatch;

/// Streams finalized models into one HDCS snapshot.
///
/// `add_*` records a *reference* to the model's packed words (no copy); the
/// model must stay alive and unmodified until `write()`/`write_file()`.
class SnapshotWriter {
 public:
  /// \param payload_alignment  Boundary every payload section starts on; a
  /// power of two in [64, 1 MiB].  The 4096 default keeps sections
  /// page-aligned for mmap serving; tests use smaller alignments to keep
  /// golden files compact.
  /// \throws SnapshotError on an invalid alignment.
  explicit SnapshotWriter(
      std::size_t payload_alignment = snapshot_default_alignment);

  /// Adds a basis arena section; returns its section index.
  std::size_t add_basis(const Basis& basis);

  /// Adds a finalized classifier's class-vector arena; returns its section
  /// index.  \throws SnapshotError if the model is not finalized.
  std::size_t add_classifier(const CentroidClassifier& model);

  /// Adds a finalized regressor as *two* sections — its label basis, then
  /// the quantized model hypervector referencing it — and returns the index
  /// of the model section.  \throws SnapshotError if the model is not
  /// finalized or its label encoder is not a LinearScalarEncoder /
  /// CircularScalarEncoder.
  std::size_t add_regressor(const HDRegressor& model);

  /// Adds a scalar encoder and returns the index of its *config* section.
  /// A LinearScalarEncoder / CircularScalarEncoder becomes its basis
  /// section plus a payload-less ScalarEncoderConfig; a
  /// MultiScaleCircularEncoder becomes its finest-scale basis plus a
  /// MultiScaleEncoderConfig whose payload is the bound-vector arena.
  /// \throws SnapshotError on any other encoder type, or on a multiscale
  /// encoder with duplicate scales or more than `snapshot_max_scales`.
  std::size_t add_scalar_encoder(const ScalarEncoder& encoder);

  /// Adds a KeyValueEncoder — its value encoder (as add_scalar_encoder),
  /// its key basis, then a FeatureEncoderConfig whose payload is the
  /// bundling tie-breaker — and returns the index of the config section.
  /// \throws SnapshotError as add_scalar_encoder.
  std::size_t add_feature_encoder(const KeyValueEncoder& encoder);

  /// Adds a ComposedEncoder — each sub-encoder via add_scalar_encoder, then
  /// a payload-less ComposedEncoderConfig referencing them all — and
  /// returns the index of the config section.  \throws SnapshotError if the
  /// encoder has more than `snapshot_max_composed` sub-encoders, or as
  /// add_scalar_encoder for each part.
  std::size_t add_composed_encoder(const ComposedEncoder& encoder);

  /// Adds a sequence / n-gram encoder as one payload-less config section
  /// (both are fully determined by dimension, seed and n) and returns its
  /// index.  \throws SnapshotError if an n-gram n exceeds 65535.
  std::size_t add_sequence_encoder(const SequenceEncoder& encoder);
  std::size_t add_sequence_encoder(const NGramEncoder& encoder);

  /// Adds a complete encode->predict pipeline — the encoder's sections, the
  /// model's sections, and a PipelineHead tying them together — in one
  /// call, and returns the index of the head section.  The restored
  /// counterpart is `Pipeline::restore` (hdc/io/pipeline.hpp).
  /// \throws SnapshotError if the encoder and model dimensions disagree, or
  /// as the underlying add_* calls.
  std::size_t add_pipeline(const ScalarEncoder& encoder,
                           const CentroidClassifier& model);
  std::size_t add_pipeline(const ScalarEncoder& encoder,
                           const HDRegressor& model);
  std::size_t add_pipeline(const KeyValueEncoder& encoder,
                           const CentroidClassifier& model);
  std::size_t add_pipeline(const KeyValueEncoder& encoder,
                           const HDRegressor& model);
  std::size_t add_pipeline(const ComposedEncoder& encoder,
                           const CentroidClassifier& model);
  std::size_t add_pipeline(const ComposedEncoder& encoder,
                           const HDRegressor& model);
  std::size_t add_pipeline(const SequenceEncoder& encoder,
                           const CentroidClassifier& model);
  std::size_t add_pipeline(const SequenceEncoder& encoder,
                           const HDRegressor& model);
  std::size_t add_pipeline(const NGramEncoder& encoder,
                           const CentroidClassifier& model);
  std::size_t add_pipeline(const NGramEncoder& encoder,
                           const HDRegressor& model);

  /// Adds a version-4 delta section (hdc/io/delta.hpp): the changed rows of
  /// an adapted model against a hashed base snapshot.  Like every add_*,
  /// records a reference — \p patch must outlive write()/write_file().
  /// Returns the section index.  \throws SnapshotError if the patch has no
  /// changed rows or fails its payload invariants.
  std::size_t add_delta(const DeltaPatch& patch);

  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }

  /// Writes the snapshot: header, checksummed section table, aligned
  /// payloads.  Deterministic — the same models and alignment produce
  /// byte-identical output (the golden-file guarantee).
  /// \throws SnapshotError if no sections were added or on write failure.
  void write(std::ostream& out) const;

  /// write() into a fresh binary file at \p path.
  /// \throws SnapshotError if the file cannot be created.
  void write_file(const std::string& path) const;

 private:
  struct Pending {
    SectionRecord record;
    std::span<const std::uint64_t> payload;
  };

  /// Appends the payload-less PipelineHead section tying an already-added
  /// encoder config to an already-added model section.
  std::size_t add_pipeline_head(std::size_t encoder_section,
                                std::size_t model_section,
                                std::size_t dimension);

  std::size_t alignment_;
  std::vector<Pending> sections_;
};

/// Residency hints for the mapped file (POSIX mmap backend only; both
/// fields are documented no-ops on the heap fallback and on non-POSIX
/// platforms, where the pages are ordinary owned memory anyway).
struct MappingOptions {
  /// Issue madvise(MADV_WILLNEED) over the whole mapping right after
  /// mmap so the kernel starts read-ahead immediately: the first serving
  /// request then touches warm pages instead of paying cold-start major
  /// faults one 4 KiB page at a time.
  bool willneed = true;
  /// Pin the mapping with mlock(2) so a payload access can never major-
  /// fault once serving has started (tail-latency insurance for
  /// `hdcgen serve --mlock`).  Needs RLIMIT_MEMLOCK headroom for the
  /// whole file; a failed mlock throws SnapshotError rather than serving
  /// with a silently unpinned mapping.
  bool lock_memory = false;
};

/// Payload-integrity policy for snapshot readers.
enum class SnapshotIntegrity {
  /// Verify each section's XXH64 payload checksum before handing out a
  /// model over it (default; `load_snapshot` verifies eagerly at load).
  Checksum,
  /// Skip payload hashing; structural validation only.  Section access is
  /// then O(1) in payload size.  Only for stores whose bytes are already
  /// authenticated (content-addressed artifacts, verified-once replicas).
  Trust,
};

/// A read-only snapshot serving models with zero payload copies.
///
/// Move-only.  Every model handed out borrows its storage from this object
/// and must not outlive it; use `Basis::detach()` /
/// `CentroidClassifier::detach()` to break the tie.  Const accessors are
/// safe to call from multiple threads concurrently.
class MappedSnapshot {
 public:
  /// Maps \p path read-only and validates the header and section table.
  /// On platforms without mmap the file is read into a heap buffer instead
  /// (`zero_copy()` reports which) and \p mapping is ignored.  \throws
  /// SnapshotError on any open, map, validation, or mlock failure.
  [[nodiscard]] static MappedSnapshot open(
      const std::string& path,
      SnapshotIntegrity integrity = SnapshotIntegrity::Checksum,
      MappingOptions mapping = MappingOptions{});

  /// Heap-backed snapshot over a copy of \p bytes (the in-memory entry
  /// point; `load_snapshot` builds on it).  With `Checksum`, every payload
  /// is verified here, eagerly.  \throws SnapshotError on validation
  /// failure.
  [[nodiscard]] static MappedSnapshot from_bytes(
      std::span<const std::byte> bytes,
      SnapshotIntegrity integrity = SnapshotIntegrity::Checksum);

  MappedSnapshot(MappedSnapshot&&) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&&) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  ~MappedSnapshot();

  [[nodiscard]] std::size_t section_count() const noexcept;

  /// Decoded table entry \p i. \throws std::out_of_range if out of range.
  [[nodiscard]] const SectionRecord& section(std::size_t i) const;

  /// True when the payload bytes are served straight off an mmap; false for
  /// the heap-backed fallback.
  [[nodiscard]] bool zero_copy() const noexcept;

  /// True when the mapping is pinned in memory
  /// (`MappingOptions::lock_memory` on an mmap-backed snapshot).
  [[nodiscard]] bool locked() const noexcept;

  [[nodiscard]] std::uint64_t file_bytes() const noexcept;

  /// Verifies every section's payload checksum now (idempotent; sections
  /// already verified are skipped).  Hashes even on a Trust-integrity
  /// snapshot — an explicit call asks for it by name.
  /// \throws SnapshotError on mismatch.
  void verify() const;

  /// Section \p i's payload as packed words over the snapshot storage —
  /// the raw material for borrowed arenas (runtime::VectorArena::borrow).
  /// Verifies the payload checksum first under `Checksum` integrity.
  /// \throws std::out_of_range / SnapshotError.
  [[nodiscard]] std::span<const std::uint64_t> section_words(
      std::size_t i) const;

  /// Basis section \p i as a borrowed, zero-copy `Basis`.
  /// \throws SnapshotError if the section is not a BasisArena or fails its
  /// checksum; std::out_of_range if out of range.
  [[nodiscard]] Basis basis(std::size_t i) const;

  /// Classifier section \p i as a borrowed, inference-only
  /// `CentroidClassifier`.  \throws as basis().
  [[nodiscard]] CentroidClassifier classifier(std::size_t i) const;

  /// Regressor section \p i as an inference-only `HDRegressor` whose label
  /// basis borrows from the snapshot.  \throws as basis().
  [[nodiscard]] HDRegressor regressor(std::size_t i) const;

  /// Scalar-encoder config section \p i (ScalarEncoderConfig or
  /// MultiScaleEncoderConfig) as a shared encoder whose basis — and, for
  /// multiscale, bound arena — borrows from the snapshot.  \throws as
  /// basis().
  [[nodiscard]] ScalarEncoderPtr scalar_encoder(std::size_t i) const;

  /// Feature-encoder config section \p i as a restored `KeyValueEncoder`
  /// (key basis and value encoder borrow from the snapshot).  \throws as
  /// basis().
  [[nodiscard]] KeyValueEncoder feature_encoder(std::size_t i) const;

  /// Composed-encoder config section \p i as a restored `ComposedEncoder`
  /// (every sub-encoder's basis borrows from the snapshot).  \throws as
  /// basis().
  [[nodiscard]] ComposedEncoder composed_encoder(std::size_t i) const;

  /// Sequence-encoder config section \p i as a `SequenceEncoder` /
  /// `NGramEncoder`, rebuilt bit-exactly from (dimension, seed[, n]).
  /// \throws SnapshotError if the section is not a SequenceEncoderConfig of
  /// the matching kind; std::out_of_range if out of range.
  [[nodiscard]] SequenceEncoder sequence_encoder(std::size_t i) const;
  [[nodiscard]] NGramEncoder ngram_encoder(std::size_t i) const;

 private:
  struct Impl;
  explicit MappedSnapshot(std::unique_ptr<Impl> impl) noexcept;

  /// The heap loader constructs Impl directly to avoid an extra buffer copy.
  friend MappedSnapshot load_snapshot(std::istream& in,
                                      SnapshotIntegrity integrity);

  std::unique_ptr<Impl> impl_;
};

/// Heap-backed fallback loader: reads the whole snapshot into memory
/// through portable stream I/O and returns it with all payload checksums
/// verified (unless `Trust`).  \throws SnapshotError on any failure.
[[nodiscard]] MappedSnapshot load_snapshot(
    std::istream& in,
    SnapshotIntegrity integrity = SnapshotIntegrity::Checksum);

/// load_snapshot() over a file path.
[[nodiscard]] MappedSnapshot load_snapshot(
    const std::string& path,
    SnapshotIntegrity integrity = SnapshotIntegrity::Checksum);

}  // namespace hdc::io

#endif  // HDC_IO_SNAPSHOT_HPP
