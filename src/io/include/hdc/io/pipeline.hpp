#ifndef HDC_IO_PIPELINE_HPP
#define HDC_IO_PIPELINE_HPP

/// \file pipeline.hpp
/// \brief One-file cold-start: restore a complete encode->predict pipeline.
///
/// PR 3's snapshots restored bases, classifiers and regressors, but a
/// serving replica still had to reconstruct the *encoding* side (which
/// feature encoder, which scale set, which r) out of band.  A PipelineHead
/// section closes that gap: `SnapshotWriter::add_pipeline` writes encoder
/// configuration and model into one artifact, and `Pipeline::restore` hands
/// back a ready-to-serve object — features in, prediction out — from a
/// single `MappedSnapshot` (borrowed, zero-copy storage end to end,
/// `SnapshotIntegrity::Trust` fast path included) or from `load_snapshot`.
///
/// A restored Pipeline borrows its basis arenas from the snapshot and must
/// not outlive it.  All prediction paths are const and safe to call
/// concurrently; the `batch_*` bridges fan a pipeline out over the
/// hdc::runtime thread pool.

#include <cstddef>
#include <memory>
#include <span>

#include "hdc/core/classifier.hpp"
#include "hdc/core/composed_encoder.hpp"
#include "hdc/core/feature_encoder.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/io/snapshot.hpp"
#include "hdc/runtime/batch_classifier.hpp"
#include "hdc/runtime/batch_encoder.hpp"
#include "hdc/runtime/batch_regressor.hpp"

namespace hdc::io {

/// What a restored pipeline predicts.
enum class PipelineKind : std::uint8_t {
  Classifier = 0,
  Regressor = 1,
};

/// Human-readable kind name ("classifier" / "regressor").
[[nodiscard]] const char* to_string(PipelineKind kind) noexcept;

/// A ready-to-serve encode->predict pipeline restored from a snapshot.
///
/// Copyable (copies share the immutable encoder/model state); every model
/// and basis inside may borrow the snapshot mapping, so the pipeline — and
/// anything built from it — is valid only while the snapshot stays open.
class Pipeline {
 public:
  /// Restores the snapshot's single pipeline.  \throws SnapshotError if the
  /// snapshot holds no PipelineHead section or more than one (pass the
  /// explicit head index then).
  [[nodiscard]] static Pipeline restore(const MappedSnapshot& snapshot);

  /// Restores the pipeline rooted at head section \p head_index.
  /// \throws SnapshotError if the section is not a PipelineHead or any
  /// referenced section fails its checksum; std::out_of_range if out of
  /// range.
  [[nodiscard]] static Pipeline restore(const MappedSnapshot& snapshot,
                                        std::size_t head_index);

  [[nodiscard]] PipelineKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Features per sample: the key count of a feature-encoder pipeline, the
  /// sub-encoder count of a composed-encoder pipeline, 1 for a
  /// scalar-encoder pipeline.
  [[nodiscard]] std::size_t num_features() const noexcept;

  /// Encodes one feature row exactly as the written pipeline did.
  /// \throws std::invalid_argument if features.size() != num_features().
  [[nodiscard]] Hypervector encode(std::span<const double> features) const;

  /// encode() + nearest-class prediction.  \throws std::logic_error on a
  /// regressor pipeline; std::invalid_argument as encode().
  [[nodiscard]] std::size_t classify(std::span<const double> features) const;

  /// encode() + paper-faithful regression readout.  \throws
  /// std::logic_error on a classifier pipeline; std::invalid_argument as
  /// encode().
  [[nodiscard]] double regress(std::span<const double> features) const;

  /// The restored model.  \throws std::logic_error when the pipeline is not
  /// of that kind — query kind() first.
  [[nodiscard]] const CentroidClassifier& classifier() const;
  [[nodiscard]] const HDRegressor& regressor() const;

  /// The restored model as its shared handle, for adaptation overlays
  /// (hdc::AdaptiveClassifier / AdaptiveRegressor) that must keep the model
  /// alive independently of this Pipeline object.  \throws std::logic_error
  /// when the pipeline is not of that kind.
  [[nodiscard]] std::shared_ptr<const CentroidClassifier> classifier_ptr()
      const;
  [[nodiscard]] std::shared_ptr<const HDRegressor> regressor_ptr() const;

  /// The restored encoder: exactly one of these is non-null.
  [[nodiscard]] const KeyValueEncoder* feature_encoder() const noexcept {
    return features_.get();
  }
  [[nodiscard]] const ScalarEncoder* scalar_encoder() const noexcept {
    return scalar_.get();
  }
  [[nodiscard]] const ComposedEncoder* composed_encoder() const noexcept {
    return composed_.get();
  }

  /// hdc::runtime bridges: a BatchEncoder wrapping this pipeline's encode()
  /// and Batch{Classifier,Regressor} engines adopting (a shallow copy of)
  /// the restored model.  The encoder lambda shares the pipeline's encoder
  /// state, so the engines outlive this Pipeline object — but never the
  /// snapshot it borrows from.  \throws std::invalid_argument if pool is
  /// null; std::logic_error on a kind mismatch.
  [[nodiscard]] runtime::BatchEncoder batch_encoder(
      runtime::ThreadPoolPtr pool) const;
  [[nodiscard]] runtime::BatchClassifier batch_classifier(
      runtime::ThreadPoolPtr pool) const;
  [[nodiscard]] runtime::BatchRegressor batch_regressor(
      runtime::ThreadPoolPtr pool) const;

 private:
  Pipeline() = default;

  PipelineKind kind_ = PipelineKind::Classifier;
  std::size_t dimension_ = 0;
  /// Exactly one encoder and one model slot is set, per kind_.
  std::shared_ptr<const KeyValueEncoder> features_;
  ScalarEncoderPtr scalar_;
  std::shared_ptr<const ComposedEncoder> composed_;
  std::shared_ptr<const CentroidClassifier> classifier_;
  std::shared_ptr<const HDRegressor> regressor_;
};

}  // namespace hdc::io

#endif  // HDC_IO_PIPELINE_HPP
