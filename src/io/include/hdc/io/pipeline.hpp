#ifndef HDC_IO_PIPELINE_HPP
#define HDC_IO_PIPELINE_HPP

/// \file pipeline.hpp
/// \brief One-file cold-start: restore a complete encode->predict pipeline.
///
/// PR 3's snapshots restored bases, classifiers and regressors, but a
/// serving replica still had to reconstruct the *encoding* side (which
/// feature encoder, which scale set, which r) out of band.  A PipelineHead
/// section closes that gap: `SnapshotWriter::add_pipeline` writes encoder
/// configuration and model into one artifact, and `Pipeline::restore` hands
/// back a ready-to-serve object — features in, prediction out — from a
/// single `MappedSnapshot` (borrowed, zero-copy storage end to end,
/// `SnapshotIntegrity::Trust` fast path included) or from `load_snapshot`.
///
/// A restored Pipeline borrows its basis arenas from the snapshot and must
/// not outlive it.  All prediction paths are const and safe to call
/// concurrently; the `batch_*` bridges fan a pipeline out over the
/// hdc::runtime thread pool.

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>

#include "hdc/core/classifier.hpp"
#include "hdc/core/composed_encoder.hpp"
#include "hdc/core/feature_encoder.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/core/sequence_encoder.hpp"
#include "hdc/io/snapshot.hpp"
#include "hdc/runtime/batch_classifier.hpp"
#include "hdc/runtime/batch_encoder.hpp"
#include "hdc/runtime/batch_regressor.hpp"
#include "hdc/runtime/batch_text_encoder.hpp"

namespace hdc::io {

/// What a restored pipeline predicts.
enum class PipelineKind : std::uint8_t {
  Classifier = 0,
  Regressor = 1,
};

/// Human-readable kind name ("classifier" / "regressor").
[[nodiscard]] const char* to_string(PipelineKind kind) noexcept;

/// What a restored pipeline consumes: numeric feature rows (every scalar /
/// feature / composed encoder) or raw text (sequence / n-gram encoders).
/// The two input modes have disjoint entry points — encode()/classify()/
/// regress() for Numeric, encode_text()/classify_text()/regress_text() for
/// Text — and crossing them throws std::logic_error.
enum class PipelineInput : std::uint8_t {
  Numeric = 0,
  Text = 1,
};

/// Human-readable input-mode name ("numeric" / "text").
[[nodiscard]] const char* to_string(PipelineInput input) noexcept;

/// A ready-to-serve encode->predict pipeline restored from a snapshot.
///
/// Copyable (copies share the immutable encoder/model state); every model
/// and basis inside may borrow the snapshot mapping, so the pipeline — and
/// anything built from it — is valid only while the snapshot stays open.
class Pipeline {
 public:
  /// Restores the snapshot's single pipeline.  \throws SnapshotError if the
  /// snapshot holds no PipelineHead section or more than one (pass the
  /// explicit head index then).
  [[nodiscard]] static Pipeline restore(const MappedSnapshot& snapshot);

  /// Restores the pipeline rooted at head section \p head_index.
  /// \throws SnapshotError if the section is not a PipelineHead or any
  /// referenced section fails its checksum; std::out_of_range if out of
  /// range.
  [[nodiscard]] static Pipeline restore(const MappedSnapshot& snapshot,
                                        std::size_t head_index);

  [[nodiscard]] PipelineKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Input mode: Text for sequence/n-gram-encoder pipelines, else Numeric.
  [[nodiscard]] PipelineInput input() const noexcept {
    return sequence_ || ngram_ ? PipelineInput::Text : PipelineInput::Numeric;
  }

  /// Features per sample: the key count of a feature-encoder pipeline, the
  /// sub-encoder count of a composed-encoder pipeline, 1 for a
  /// scalar-encoder pipeline, 0 for a text pipeline (rows are strings, not
  /// feature vectors — check input() first).
  [[nodiscard]] std::size_t num_features() const noexcept;

  /// Encodes one feature row exactly as the written pipeline did.
  /// \throws std::invalid_argument if features.size() != num_features().
  [[nodiscard]] Hypervector encode(std::span<const double> features) const;

  /// encode() + nearest-class prediction.  \throws std::logic_error on a
  /// regressor pipeline; std::invalid_argument as encode().
  [[nodiscard]] std::size_t classify(std::span<const double> features) const;

  /// encode() + paper-faithful regression readout.  \throws
  /// std::logic_error on a classifier pipeline; std::invalid_argument as
  /// encode().
  [[nodiscard]] double regress(std::span<const double> features) const;

  /// Encodes one raw text row exactly as the written pipeline did (the
  /// const, warmed-symbol path — safe to call concurrently).  \throws
  /// std::logic_error on a numeric pipeline; std::invalid_argument if text
  /// is empty.
  [[nodiscard]] Hypervector encode_text(std::string_view text) const;

  /// encode_text() + nearest-class prediction.  \throws std::logic_error on
  /// a regressor or numeric pipeline.
  [[nodiscard]] std::size_t classify_text(std::string_view text) const;

  /// encode_text() + regression readout.  \throws std::logic_error on a
  /// classifier or numeric pipeline.
  [[nodiscard]] double regress_text(std::string_view text) const;

  /// The restored model.  \throws std::logic_error when the pipeline is not
  /// of that kind — query kind() first.
  [[nodiscard]] const CentroidClassifier& classifier() const;
  [[nodiscard]] const HDRegressor& regressor() const;

  /// The restored model as its shared handle, for adaptation overlays
  /// (hdc::AdaptiveClassifier / AdaptiveRegressor) that must keep the model
  /// alive independently of this Pipeline object.  \throws std::logic_error
  /// when the pipeline is not of that kind.
  [[nodiscard]] std::shared_ptr<const CentroidClassifier> classifier_ptr()
      const;
  [[nodiscard]] std::shared_ptr<const HDRegressor> regressor_ptr() const;

  /// The restored encoder: exactly one of these is non-null.
  [[nodiscard]] const KeyValueEncoder* feature_encoder() const noexcept {
    return features_.get();
  }
  [[nodiscard]] const ScalarEncoder* scalar_encoder() const noexcept {
    return scalar_.get();
  }
  [[nodiscard]] const ComposedEncoder* composed_encoder() const noexcept {
    return composed_.get();
  }
  [[nodiscard]] const SequenceEncoder* sequence_encoder() const noexcept {
    return sequence_.get();
  }
  [[nodiscard]] const NGramEncoder* ngram_encoder() const noexcept {
    return ngram_.get();
  }

  /// hdc::runtime bridges: a BatchEncoder wrapping this pipeline's encode()
  /// and Batch{Classifier,Regressor} engines adopting (a shallow copy of)
  /// the restored model.  The encoder lambda shares the pipeline's encoder
  /// state, so the engines outlive this Pipeline object — but never the
  /// snapshot it borrows from.  \throws std::invalid_argument if pool is
  /// null; std::logic_error on a kind mismatch.
  [[nodiscard]] runtime::BatchEncoder batch_encoder(
      runtime::ThreadPoolPtr pool) const;
  [[nodiscard]] runtime::BatchClassifier batch_classifier(
      runtime::ThreadPoolPtr pool) const;
  [[nodiscard]] runtime::BatchRegressor batch_regressor(
      runtime::ThreadPoolPtr pool) const;

  /// The text twin of batch_encoder(): a BatchTextEncoder wrapping this
  /// pipeline's encode_text().  \throws std::logic_error on a numeric
  /// pipeline; std::invalid_argument if pool is null.
  [[nodiscard]] runtime::BatchTextEncoder batch_text_encoder(
      runtime::ThreadPoolPtr pool) const;

 private:
  Pipeline() = default;

  PipelineKind kind_ = PipelineKind::Classifier;
  std::size_t dimension_ = 0;
  /// Exactly one encoder and one model slot is set, per kind_.
  std::shared_ptr<const KeyValueEncoder> features_;
  ScalarEncoderPtr scalar_;
  std::shared_ptr<const ComposedEncoder> composed_;
  /// Text encoders are warmed (warm_bytes()) before being frozen const, so
  /// encode_text() never mutates shared state.
  std::shared_ptr<const SequenceEncoder> sequence_;
  std::shared_ptr<const NGramEncoder> ngram_;
  std::shared_ptr<const CentroidClassifier> classifier_;
  std::shared_ptr<const HDRegressor> regressor_;
};

}  // namespace hdc::io

#endif  // HDC_IO_PIPELINE_HPP
