#ifndef HDC_IO_RELOAD_HPP
#define HDC_IO_RELOAD_HPP

/// \file reload.hpp
/// \brief Validated pipeline (re)loading for long-lived serving replicas.
///
/// A serving process that hot-swaps its model mid-traffic must never flip
/// to a snapshot it has not fully vetted: a corrupt file, a file holding no
/// pipeline, or a retrained model whose input shape silently changed would
/// all turn live traffic into garbage.  `load_pipeline` is the one entry
/// point that takes a path and returns a mapping *and* the pipeline
/// restored over it — every structural and checksum validation the restore
/// path performs has already passed by the time it returns — and
/// `ensure_swappable` is the shape gate a replica applies before flipping
/// its active pointer: the incumbent keeps serving unless the replacement
/// predicts the same kind of output from the same number of features.
///
/// The returned `LoadedPipeline` keeps the snapshot and the pipeline
/// restored from it together because the pipeline borrows the mapping: the
/// pair must live and die as one (`hdc::serve::ServingState` wraps exactly
/// this bundle behind a `shared_ptr` for the hot-swap protocol).

#include <string>

#include "hdc/io/pipeline.hpp"
#include "hdc/io/snapshot.hpp"

namespace hdc::io {

/// A snapshot mapping and the pipeline restored over it, bound together so
/// the borrow can never outlive its storage.  Move-only (the snapshot is);
/// moving keeps every borrowed span valid because the mapping itself never
/// relocates.
struct LoadedPipeline {
  MappedSnapshot snapshot;
  Pipeline pipeline;
};

/// Maps \p path and restores its single pipeline, validating everything the
/// restore path touches (header, section table, referenced-section
/// checksums under `Checksum` integrity) before returning.  This is the
/// reload entry point: a caller that wants to replace a live pipeline calls
/// this first, then `ensure_swappable`, and only then flips — on any throw
/// the incumbent pipeline is untouched.
/// \throws SnapshotError on open/validation failure or when the snapshot
/// holds no (or more than one) pipeline head.
[[nodiscard]] LoadedPipeline load_pipeline(
    const std::string& path,
    SnapshotIntegrity integrity = SnapshotIntegrity::Checksum,
    MappingOptions mapping = MappingOptions{});

/// Verifies \p fresh can replace \p incumbent without breaking the wire
/// contract of clients already streaming rows: same prediction kind
/// (classifier labels vs regression values) and same feature arity.  The
/// dimension is deliberately *not* checked — retraining at a different d is
/// a legitimate redeploy and invisible on the wire.
/// \throws SnapshotError naming the mismatch otherwise.
void ensure_swappable(const Pipeline& fresh, const Pipeline& incumbent);

}  // namespace hdc::io

#endif  // HDC_IO_RELOAD_HPP
