#ifndef HDC_IO_CHECKSUM_HPP
#define HDC_IO_CHECKSUM_HPP

/// \file checksum.hpp
/// \brief XXH64-style payload checksums for the snapshot format.
///
/// Snapshot sections are integrity-checked with a from-the-spec
/// re-implementation of the XXH64 algorithm (Yann Collet's xxHash, a
/// public-domain specification): a fast, non-cryptographic 64-bit hash whose
/// throughput is a small fraction of memory bandwidth, so verifying a mapped
/// model costs little more than paging it in.  The implementation here is
/// self-contained (no external dependency) and byte-portable: it consumes
/// the on-disk little-endian byte stream, so the digest of a snapshot file
/// is identical on every platform.

#include <cstddef>
#include <cstdint>
#include <span>

namespace hdc::io {

/// XXH64 digest of \p data with the given seed.  Matches the reference
/// xxHash XXH64 output for the same bytes and seed.
[[nodiscard]] std::uint64_t xxhash64(std::span<const std::byte> data,
                                     std::uint64_t seed = 0) noexcept;

}  // namespace hdc::io

#endif  // HDC_IO_CHECKSUM_HPP
