#ifndef HDC_IO_DELTA_HPP
#define HDC_IO_DELTA_HPP

/// \file delta.hpp
/// \brief HDCS v4 delta snapshots: ship an adapted model as base + patch.
///
/// Online adaptation (hdc/core/adaptive.hpp) changes a handful of class
/// rows in a model that may be gigabytes on disk.  A *delta file* is an
/// ordinary HDCS snapshot whose single section is a `DeltaPatch`: the base
/// file's content hash, the patched model section's index in the base, and
/// the changed rows (strictly increasing row indices + packed row words).
///
/// The core guarantee is byte-exactness: `apply_delta` takes the raw bytes
/// of the base file and returns bytes identical to a full snapshot of the
/// adapted model — it patches the changed rows into the model payload,
/// recomputes that section's payload checksum and the table checksum, and
/// re-validates the result.  `diff_snapshots` is the inverse: given base
/// and adapted full snapshots that differ only in the model payload, it
/// recovers the patch.  Round trip:
///
///     apply_delta(base_bytes, diff_snapshots(base, adapted)) == adapted
///
/// `load_pipeline_or_delta` is the serving entry point: it accepts either a
/// full snapshot (mapped zero-copy, exactly `load_pipeline`) or a delta
/// file, which is applied in memory against the tracked base path and
/// restored heap-backed — so `!reload` takes base or patch transparently.
///
/// Every reader path validates before any model can escape: the base hash
/// must match (`seed` field), indices must be strictly increasing and in
/// range, and patched rows must keep the tail-bits-zero invariant.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "hdc/io/reload.hpp"
#include "hdc/io/snapshot.hpp"

namespace hdc::io {

/// A decoded changed-row patch against one model section of a base
/// snapshot file.
struct DeltaPatch {
  /// What the patch targets: ClassifierClassVectors or RegressorModel.
  SectionType target_type = SectionType::ClassifierClassVectors;
  /// Index of the patched model section *in the base file*.
  std::uint64_t base_section = 0;
  /// XXH64 over the entire base snapshot file; apply refuses any other base.
  std::uint64_t base_hash = 0;
  /// Total rows of the base model section (>= changed_rows()).
  std::uint64_t base_rows = 0;
  std::uint64_t dimension = 0;
  /// The payload words: changed_rows() strictly increasing u64 row indices,
  /// then changed_rows() packed rows of bits::words_for(dimension) words.
  std::vector<std::uint64_t> words;

  [[nodiscard]] std::uint64_t words_per_row() const noexcept {
    return (dimension + 63) / 64;
  }
  [[nodiscard]] std::uint64_t changed_rows() const noexcept {
    return dimension == 0 ? 0 : words.size() / (1 + words_per_row());
  }
  /// The i-th changed row's global index / packed words.
  [[nodiscard]] std::uint64_t row_index(std::uint64_t i) const {
    return words.at(i);
  }
  [[nodiscard]] std::span<const std::uint64_t> row_words(
      std::uint64_t i) const {
    return std::span<const std::uint64_t>(words).subspan(
        changed_rows() + i * words_per_row(), words_per_row());
  }
};

/// XXH64 content hash of an entire file — the identity `DeltaPatch` pins
/// its base with.  \throws SnapshotError if the file cannot be read.
[[nodiscard]] std::uint64_t snapshot_file_hash(const std::string& path);

/// Index of the model section (ClassifierClassVectors or RegressorModel)
/// the snapshot's single PipelineHead references; for head-less snapshots,
/// the single model section.  \throws SnapshotError when there is no such
/// section or more than one candidate.
[[nodiscard]] std::size_t find_model_section(const MappedSnapshot& snapshot);

/// Builds a patch from explicit changed rows (row index -> packed words,
/// e.g. AdaptiveClassifier::changed_rows()) against an open base snapshot.
/// \throws SnapshotError if \p rows is empty, an index is out of range, a
/// row has the wrong word count or nonzero tail bits, or \p model_section
/// is not a model section.
[[nodiscard]] DeltaPatch make_delta(
    const MappedSnapshot& base, std::uint64_t base_hash,
    std::size_t model_section,
    const std::map<std::size_t, std::vector<std::uint64_t>>& rows);

/// Rows of the base snapshot's model section whose packed words differ from
/// `current_row(i)` — the changed-row set a live overlay exports.
/// `current_row` is called once per row with i in [0, section rows) and must
/// return that row of the *adapted* model; comparing against the file (not
/// an in-memory base) keeps rows changed by an earlier delta reload in the
/// patch and drops overlay rows that ended up identical to the base.
/// \throws SnapshotError if \p model_section is not a model section or a
/// returned row has the wrong word count.
[[nodiscard]] std::map<std::size_t, std::vector<std::uint64_t>> diff_rows(
    const MappedSnapshot& base, std::size_t model_section,
    const std::function<std::span<const std::uint64_t>(std::size_t)>&
        current_row);

/// Recovers the patch between two full snapshots that are byte-identical
/// except in the model payload (the pair an adapt pass produces).
/// \throws SnapshotError if the files differ anywhere else, their layouts
/// disagree, or no row differs.
[[nodiscard]] DeltaPatch diff_snapshots(const std::string& base_path,
                                        const std::string& adapted_path);

/// Writes \p patch as a standalone single-section HDCS delta file.
/// \throws SnapshotError if the patch has no changed rows or on write
/// failure.
void write_delta_file(const DeltaPatch& patch, const std::string& path);

/// Reads a delta file back into a `DeltaPatch` (with full structural +
/// payload-level validation).  \throws SnapshotError if \p path is not a
/// single-section delta snapshot.
[[nodiscard]] DeltaPatch read_delta_file(
    const std::string& path,
    SnapshotIntegrity integrity = SnapshotIntegrity::Checksum);

/// True when \p path parses as an HDCS snapshot whose single section is a
/// DeltaPatch; false for full snapshots.  \throws SnapshotError only on
/// open/parse failure (a corrupt file is neither).
[[nodiscard]] bool snapshot_is_delta(const std::string& path);

/// Applies \p patch to the raw bytes of its base snapshot and returns the
/// adapted full snapshot, byte-identical to independently writing the
/// adapted model (same layout, patched rows, refreshed checksums).  The
/// result is re-validated before it is returned.  \throws SnapshotError on
/// a base-hash mismatch ("patch was made against a different base") or any
/// inconsistency between patch and base.
[[nodiscard]] std::vector<std::byte> apply_delta(
    std::span<const std::byte> base_file, const DeltaPatch& patch);

/// File-level apply: reads \p base_path and \p delta_path, applies, and
/// writes the adapted full snapshot to \p out_path (`hdcgen patch`).
void apply_delta_file(const std::string& base_path,
                      const std::string& delta_path,
                      const std::string& out_path);

/// `load_pipeline` that accepts either a full snapshot or a delta file at
/// \p path.  A full snapshot loads exactly as `load_pipeline(path, ...)`;
/// a delta is applied in memory to the bytes of \p base_path and the
/// result restored heap-backed (MappingOptions do not apply to it).
/// \throws SnapshotError as load_pipeline/apply_delta; a delta with an
/// empty \p base_path reports that no base is tracked.
[[nodiscard]] LoadedPipeline load_pipeline_or_delta(
    const std::string& path, const std::string& base_path,
    SnapshotIntegrity integrity = SnapshotIntegrity::Checksum,
    MappingOptions mapping = MappingOptions{});

}  // namespace hdc::io

#endif  // HDC_IO_DELTA_HPP
