#include "hdc/io/reload.hpp"

#include <string>
#include <utility>

namespace hdc::io {

LoadedPipeline load_pipeline(const std::string& path,
                             SnapshotIntegrity integrity,
                             MappingOptions mapping) {
  MappedSnapshot snapshot = MappedSnapshot::open(path, integrity, mapping);
  // Restore before the snapshot moves into the result so every section the
  // pipeline references is checksum-verified (under Checksum integrity)
  // while we still hold the mapping by name; the borrowed spans stay valid
  // across the move because MappedSnapshot's storage never relocates.
  Pipeline pipeline = Pipeline::restore(snapshot);
  return LoadedPipeline{std::move(snapshot), std::move(pipeline)};
}

void ensure_swappable(const Pipeline& fresh, const Pipeline& incumbent) {
  if (fresh.kind() != incumbent.kind()) {
    throw SnapshotError(
        std::string("reload rejected: replacement pipeline is a ") +
        to_string(fresh.kind()) + " but the serving pipeline is a " +
        to_string(incumbent.kind()));
  }
  if (fresh.input() != incumbent.input()) {
    throw SnapshotError(
        std::string("reload rejected: replacement pipeline takes ") +
        to_string(fresh.input()) + " rows but clients are streaming " +
        to_string(incumbent.input()) + " rows");
  }
  if (fresh.num_features() != incumbent.num_features()) {
    throw SnapshotError(
        "reload rejected: replacement pipeline takes " +
        std::to_string(fresh.num_features()) +
        " features/row but clients are streaming " +
        std::to_string(incumbent.num_features()));
  }
}

}  // namespace hdc::io
