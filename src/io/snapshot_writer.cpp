#include <algorithm>
#include <array>
#include <bit>
#include <fstream>
#include <ostream>
#include <span>
#include <vector>

#include "hdc/core/scalar_encoder.hpp"
#include "hdc/io/checksum.hpp"
#include "hdc/io/snapshot.hpp"

namespace hdc::io {

namespace {

using detail::align_up;
using detail::encode_section_entry;
using detail::store_u16;
using detail::store_u32;
using detail::store_u64;

/// Payload words encoded as the on-disk little-endian byte stream; the
/// returned buffer is both what gets written and what gets checksummed, so
/// the digest always matches the file bytes (on little-endian hosts this is
/// a straight byte copy of the arena).
std::vector<std::byte> encode_payload(std::span<const std::uint64_t> words) {
  std::vector<std::byte> bytes(words.size() * sizeof(std::uint64_t));
  for (std::size_t i = 0; i < words.size(); ++i) {
    store_u64(bytes, i * sizeof(std::uint64_t), words[i]);
  }
  return bytes;
}

void write_zeros(std::ostream& out, std::uint64_t count) {
  static constexpr std::array<char, 256> zeros{};
  while (count > 0) {
    const auto chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(count, zeros.size()));
    out.write(zeros.data(), static_cast<std::streamsize>(chunk));
    count -= chunk;
  }
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::size_t payload_alignment)
    : alignment_(payload_alignment) {
  if (payload_alignment < snapshot_min_alignment ||
      payload_alignment > snapshot_max_alignment ||
      !std::has_single_bit(payload_alignment)) {
    throw SnapshotError(
        "SnapshotWriter: payload alignment must be a power of two in "
        "[64, 1 MiB]");
  }
}

std::size_t SnapshotWriter::add_basis(const Basis& basis) {
  const BasisInfo& info = basis.info();
  SectionRecord record;
  record.type = SectionType::BasisArena;
  record.kind = static_cast<std::uint16_t>(info.kind);
  record.method = static_cast<std::uint16_t>(info.method);
  record.dimension = info.dimension;
  record.count = info.size;
  record.param_a = info.r;
  record.seed = info.seed;
  sections_.push_back(Pending{record, basis.packed_words()});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_classifier(const CentroidClassifier& model) {
  if (!model.finalized()) {
    throw SnapshotError(
        "SnapshotWriter::add_classifier: model is not finalized");
  }
  SectionRecord record;
  record.type = SectionType::ClassifierClassVectors;
  record.dimension = model.dimension();
  record.count = model.num_classes();
  sections_.push_back(Pending{record, model.packed_class_words()});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_regressor(const HDRegressor& model) {
  if (!model.finalized()) {
    throw SnapshotError(
        "SnapshotWriter::add_regressor: model is not finalized");
  }
  const ScalarEncoder& labels = model.labels();
  SectionRecord record;
  record.type = SectionType::RegressorModel;
  record.dimension = model.dimension();
  record.count = 1;
  if (const auto* linear =
          dynamic_cast<const LinearScalarEncoder*>(&labels)) {
    record.label_encoder = LabelEncoderKind::Linear;
    record.param_a = linear->low();
    record.param_b = linear->high();
  } else if (const auto* circular =
                 dynamic_cast<const CircularScalarEncoder*>(&labels)) {
    record.label_encoder = LabelEncoderKind::Circular;
    record.param_b = circular->period();
  } else {
    throw SnapshotError(
        "SnapshotWriter::add_regressor: only LinearScalarEncoder and "
        "CircularScalarEncoder label encoders are snapshot-able");
  }
  record.aux_section = add_basis(labels.basis());
  sections_.push_back(Pending{record, model.model().words()});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_scalar_encoder(const ScalarEncoder& encoder) {
  if (const auto* multiscale =
          dynamic_cast<const MultiScaleCircularEncoder*>(&encoder)) {
    const std::vector<std::size_t>& scales = multiscale->scales();
    if (scales.size() > snapshot_max_scales) {
      throw SnapshotError(
          "SnapshotWriter::add_scalar_encoder: multiscale encoders with more "
          "than " + std::to_string(snapshot_max_scales) +
          " scales are not snapshot-able");
    }
    for (std::size_t s = 1; s < scales.size(); ++s) {
      if (scales[s] == scales[s - 1]) {
        throw SnapshotError(
            "SnapshotWriter::add_scalar_encoder: multiscale encoders with "
            "duplicate scales are not snapshot-able");
      }
    }
    SectionRecord record;
    record.type = SectionType::MultiScaleEncoderConfig;
    record.kind = static_cast<std::uint16_t>(scales.size());
    record.dimension = multiscale->dimension();
    record.count = multiscale->basis().size();
    record.param_b = multiscale->period();
    record.seed = multiscale->seed();
    record.aux_section = add_basis(multiscale->basis());
    for (std::size_t s = 0; s < scales.size(); ++s) {
      record.scales[s] = scales[s];
    }
    sections_.push_back(Pending{record, multiscale->packed_words()});
    return sections_.size() - 1;
  }
  SectionRecord record;
  record.type = SectionType::ScalarEncoderConfig;
  record.dimension = encoder.dimension();
  if (const auto* linear =
          dynamic_cast<const LinearScalarEncoder*>(&encoder)) {
    record.label_encoder = LabelEncoderKind::Linear;
    record.param_a = linear->low();
    record.param_b = linear->high();
  } else if (const auto* circular =
                 dynamic_cast<const CircularScalarEncoder*>(&encoder)) {
    record.label_encoder = LabelEncoderKind::Circular;
    record.param_b = circular->period();
  } else {
    throw SnapshotError(
        "SnapshotWriter::add_scalar_encoder: only LinearScalarEncoder, "
        "CircularScalarEncoder and MultiScaleCircularEncoder are "
        "snapshot-able");
  }
  record.aux_section = add_basis(encoder.basis());
  sections_.push_back(Pending{record, {}});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_feature_encoder(
    const KeyValueEncoder& encoder) {
  SectionRecord record;
  record.type = SectionType::FeatureEncoderConfig;
  record.dimension = encoder.dimension();
  record.count = 1;
  record.seed = encoder.seed();
  record.aux_section_b = add_scalar_encoder(encoder.values());
  record.aux_section = add_basis(encoder.keys());
  sections_.push_back(Pending{record, encoder.tie_breaker().words()});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_composed_encoder(
    const ComposedEncoder& encoder) {
  const std::vector<ScalarEncoderPtr>& parts = encoder.parts();
  if (parts.size() > snapshot_max_composed) {
    throw SnapshotError(
        "SnapshotWriter::add_composed_encoder: composed encoders with more "
        "than " + std::to_string(snapshot_max_composed) +
        " sub-encoders are not snapshot-able");
  }
  // Each part's sections land before the config section; the loop is
  // explicitly sequenced so golden snapshots are compiler-independent.
  std::vector<std::size_t> part_sections;
  part_sections.reserve(parts.size());
  for (const ScalarEncoderPtr& part : parts) {
    part_sections.push_back(add_scalar_encoder(*part));
  }
  SectionRecord record;
  record.type = SectionType::ComposedEncoderConfig;
  record.kind = static_cast<std::uint16_t>(parts.size());
  record.dimension = encoder.dimension();
  record.aux_section = part_sections[0];
  record.aux_section_b = part_sections[1];
  for (std::size_t s = 2; s < part_sections.size(); ++s) {
    record.scales[s - 2] = part_sections[s] + 1;
  }
  sections_.push_back(Pending{record, {}});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_sequence_encoder(
    const SequenceEncoder& encoder) {
  SectionRecord record;
  record.type = SectionType::SequenceEncoderConfig;
  record.kind = 0;
  record.dimension = encoder.dimension();
  record.seed = encoder.seed();
  sections_.push_back(Pending{record, {}});
  return sections_.size() - 1;
}

std::size_t SnapshotWriter::add_sequence_encoder(const NGramEncoder& encoder) {
  if (encoder.n() > 0xFFFFU) {
    throw SnapshotError(
        "SnapshotWriter::add_sequence_encoder: n-gram n exceeds the 16-bit "
        "section field");
  }
  SectionRecord record;
  record.type = SectionType::SequenceEncoderConfig;
  record.kind = 1;
  record.method = static_cast<std::uint16_t>(encoder.n());
  record.dimension = encoder.dimension();
  record.seed = encoder.seed();
  sections_.push_back(Pending{record, {}});
  return sections_.size() - 1;
}

namespace {

void require_pipeline_dimensions(std::size_t encoder_dimension,
                                 std::size_t model_dimension) {
  if (encoder_dimension != model_dimension) {
    throw SnapshotError(
        "SnapshotWriter::add_pipeline: encoder and model dimensions "
        "disagree");
  }
}

}  // namespace

// Encoder sections are added before model sections with explicitly
// sequenced statements: golden snapshots must be byte-identical across
// compilers, and C++ argument evaluation order is unspecified.

std::size_t SnapshotWriter::add_pipeline(const ScalarEncoder& encoder,
                                         const CentroidClassifier& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_scalar_encoder(encoder);
  const std::size_t model_section = add_classifier(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const ScalarEncoder& encoder,
                                         const HDRegressor& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_scalar_encoder(encoder);
  const std::size_t model_section = add_regressor(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const KeyValueEncoder& encoder,
                                         const CentroidClassifier& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_feature_encoder(encoder);
  const std::size_t model_section = add_classifier(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const KeyValueEncoder& encoder,
                                         const HDRegressor& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_feature_encoder(encoder);
  const std::size_t model_section = add_regressor(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const ComposedEncoder& encoder,
                                         const CentroidClassifier& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_composed_encoder(encoder);
  const std::size_t model_section = add_classifier(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const ComposedEncoder& encoder,
                                         const HDRegressor& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_composed_encoder(encoder);
  const std::size_t model_section = add_regressor(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const SequenceEncoder& encoder,
                                         const CentroidClassifier& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_sequence_encoder(encoder);
  const std::size_t model_section = add_classifier(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const SequenceEncoder& encoder,
                                         const HDRegressor& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_sequence_encoder(encoder);
  const std::size_t model_section = add_regressor(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const NGramEncoder& encoder,
                                         const CentroidClassifier& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_sequence_encoder(encoder);
  const std::size_t model_section = add_classifier(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline(const NGramEncoder& encoder,
                                         const HDRegressor& model) {
  require_pipeline_dimensions(encoder.dimension(), model.dimension());
  const std::size_t encoder_section = add_sequence_encoder(encoder);
  const std::size_t model_section = add_regressor(model);
  return add_pipeline_head(encoder_section, model_section, model.dimension());
}

std::size_t SnapshotWriter::add_pipeline_head(std::size_t encoder_section,
                                              std::size_t model_section,
                                              std::size_t dimension) {
  SectionRecord record;
  record.type = SectionType::PipelineHead;
  record.dimension = dimension;
  record.aux_section = encoder_section;
  record.aux_section_b = model_section;
  sections_.push_back(Pending{record, {}});
  return sections_.size() - 1;
}

void SnapshotWriter::write(std::ostream& out) const {
  if (sections_.empty()) {
    throw SnapshotError("SnapshotWriter::write: no sections added");
  }

  // Lay out payload offsets in section order, then checksum the encoded
  // payloads so the table can be finished before any payload is written.
  std::vector<SectionRecord> records;
  std::vector<std::vector<std::byte>> payloads;
  records.reserve(sections_.size());
  payloads.reserve(sections_.size());
  const std::uint64_t table_end =
      snapshot_header_bytes + sections_.size() * snapshot_entry_bytes;
  std::uint64_t offset = align_up(table_end, alignment_);
  for (const Pending& pending : sections_) {
    SectionRecord record = pending.record;
    payloads.push_back(encode_payload(pending.payload));
    record.payload_offset = offset;
    record.payload_bytes = payloads.back().size();
    record.payload_checksum = xxhash64(payloads.back());
    offset = align_up(offset + record.payload_bytes, alignment_);
    records.push_back(record);
  }
  // The file ends with the last payload byte, not its alignment padding.
  const std::uint64_t file_bytes =
      records.back().payload_offset + records.back().payload_bytes;

  std::vector<std::byte> head(static_cast<std::size_t>(table_end));
  for (std::size_t i = 0; i < snapshot_magic.size(); ++i) {
    head[i] = static_cast<std::byte>(snapshot_magic[i]);
  }
  store_u16(head, 4, snapshot_version);
  store_u16(head, 6, snapshot_endian_marker);
  store_u32(head, 8, snapshot_header_bytes);
  store_u32(head, 12, snapshot_entry_bytes);
  store_u32(head, 16, static_cast<std::uint32_t>(records.size()));
  store_u32(head, 20, static_cast<std::uint32_t>(alignment_));
  store_u64(head, 24, file_bytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    encode_section_entry(head, snapshot_header_bytes + i * snapshot_entry_bytes,
                         records[i]);
  }
  const auto table = std::span<const std::byte>(head).subspan(
      snapshot_header_bytes, head.size() - snapshot_header_bytes);
  store_u64(head, 32, xxhash64(table, snapshot_version));

  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  std::uint64_t written = table_end;
  for (std::size_t i = 0; i < records.size(); ++i) {
    write_zeros(out, records[i].payload_offset - written);
    out.write(reinterpret_cast<const char*>(payloads[i].data()),
              static_cast<std::streamsize>(payloads[i].size()));
    written = records[i].payload_offset + records[i].payload_bytes;
  }
  if (!out) {
    throw SnapshotError("SnapshotWriter::write: stream write failure");
  }
}

void SnapshotWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw SnapshotError("SnapshotWriter::write_file: cannot create " + path);
  }
  write(out);
  out.flush();
  if (!out) {
    throw SnapshotError("SnapshotWriter::write_file: write failed for " +
                        path);
  }
}

}  // namespace hdc::io
