#include "hdc/io/delta.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include "hdc/core/bitops.hpp"
#include "hdc/io/checksum.hpp"

namespace hdc::io {

namespace {

using detail::load_u64;
using detail::store_u64;

[[noreturn]] void fail(const std::string& what) {
  throw SnapshotError("delta: " + what);
}

std::vector<std::byte> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    fail("cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    fail("cannot read " + path);
  }
  return bytes;
}

bool is_model_section(SectionType type) noexcept {
  return type == SectionType::ClassifierClassVectors ||
         type == SectionType::RegressorModel;
}

/// Validates the payload-level invariants structural parsing cannot see:
/// strictly increasing in-range indices and zero tail bits on every row.
void validate_patch_payload(const DeltaPatch& patch) {
  const std::uint64_t count = patch.changed_rows();
  if (count == 0 ||
      patch.words.size() != count * (1 + patch.words_per_row())) {
    fail("patch carries no complete changed rows");
  }
  if (patch.base_rows < count) {
    fail("patch has more rows than the base model");
  }
  if (!is_model_section(patch.target_type)) {
    fail("patch target is not a model section type");
  }
  const std::uint64_t tail = bits::tail_mask(patch.dimension);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t index = patch.row_index(i);
    if (index >= patch.base_rows) {
      fail("changed-row index " + std::to_string(index) +
           " is outside the base model");
    }
    if (i > 0 && index <= patch.row_index(i - 1)) {
      fail("changed-row indices must be strictly increasing");
    }
    const auto row = patch.row_words(i);
    if ((row.back() & ~tail) != 0) {
      fail("changed row " + std::to_string(index) +
           " has set bits beyond the dimension");
    }
  }
}

}  // namespace

std::uint64_t snapshot_file_hash(const std::string& path) {
  return xxhash64(read_file_bytes(path));
}

std::size_t SnapshotWriter::add_delta(const DeltaPatch& patch) {
  validate_patch_payload(patch);
  SectionRecord record;
  record.type = SectionType::DeltaPatch;
  record.kind = static_cast<std::uint16_t>(patch.target_type);
  record.dimension = patch.dimension;
  record.count = patch.changed_rows();
  record.seed = patch.base_hash;
  record.aux_section = patch.base_section;
  record.aux_section_b = patch.base_rows;
  sections_.push_back(Pending{record, patch.words});
  return sections_.size() - 1;
}

std::size_t find_model_section(const MappedSnapshot& snapshot) {
  // Prefer the pipeline's own model reference; a bare model file (e.g. the
  // classifier golden fixture) falls back to its single model section.
  std::size_t head = snapshot.section_count();
  std::size_t model = snapshot.section_count();
  std::size_t model_candidates = 0;
  for (std::size_t i = 0; i < snapshot.section_count(); ++i) {
    const SectionRecord& record = snapshot.section(i);
    if (record.type == SectionType::PipelineHead) {
      if (head != snapshot.section_count()) {
        fail("snapshot holds more than one pipeline head");
      }
      head = i;
    } else if (is_model_section(record.type)) {
      model = i;
      ++model_candidates;
    }
  }
  if (head != snapshot.section_count()) {
    return static_cast<std::size_t>(snapshot.section(head).aux_section_b);
  }
  if (model_candidates != 1) {
    fail("snapshot holds no single model section to patch");
  }
  return model;
}

DeltaPatch make_delta(
    const MappedSnapshot& base, std::uint64_t base_hash,
    std::size_t model_section,
    const std::map<std::size_t, std::vector<std::uint64_t>>& rows) {
  if (rows.empty()) {
    fail("no changed rows to patch");
  }
  const SectionRecord& record = base.section(model_section);
  if (!is_model_section(record.type)) {
    fail("section " + std::to_string(model_section) +
         " of the base is not a model section");
  }
  DeltaPatch patch;
  patch.target_type = record.type;
  patch.base_section = model_section;
  patch.base_hash = base_hash;
  patch.base_rows = record.count;
  patch.dimension = record.dimension;
  patch.words.reserve(rows.size() * (1 + patch.words_per_row()));
  for (const auto& [index, _] : rows) {
    patch.words.push_back(index);
  }
  for (const auto& [index, row] : rows) {
    if (row.size() != patch.words_per_row()) {
      fail("changed row " + std::to_string(index) +
           " has the wrong word count for dimension " +
           std::to_string(patch.dimension));
    }
    patch.words.insert(patch.words.end(), row.begin(), row.end());
  }
  validate_patch_payload(patch);
  return patch;
}

std::map<std::size_t, std::vector<std::uint64_t>> diff_rows(
    const MappedSnapshot& base, std::size_t model_section,
    const std::function<std::span<const std::uint64_t>(std::size_t)>&
        current_row) {
  const SectionRecord& record = base.section(model_section);
  if (!is_model_section(record.type)) {
    fail("section " + std::to_string(model_section) +
         " of the base is not a model section");
  }
  const std::uint64_t words_per_row = (record.dimension + 63) / 64;
  const auto arena = base.section_words(model_section);
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  for (std::uint64_t r = 0; r < record.count; ++r) {
    const auto now = current_row(static_cast<std::size_t>(r));
    if (now.size() != words_per_row) {
      fail("adapted row " + std::to_string(r) +
           " has the wrong word count for the base model");
    }
    const auto was = arena.subspan(r * words_per_row, words_per_row);
    if (!std::equal(now.begin(), now.end(), was.begin())) {
      rows.emplace(r, std::vector<std::uint64_t>(now.begin(), now.end()));
    }
  }
  return rows;
}

DeltaPatch diff_snapshots(const std::string& base_path,
                          const std::string& adapted_path) {
  const std::vector<std::byte> base = read_file_bytes(base_path);
  const std::vector<std::byte> adapted = read_file_bytes(adapted_path);
  if (base.size() != adapted.size()) {
    fail("base and adapted snapshots have different sizes: a delta patches "
         "model rows, not layout changes");
  }
  const SnapshotLayout base_layout = parse_snapshot_layout(base);
  const SnapshotLayout adapted_layout = parse_snapshot_layout(adapted);
  const MappedSnapshot base_snapshot = MappedSnapshot::from_bytes(base);
  const std::size_t model = find_model_section(base_snapshot);
  const SectionRecord& record = base_layout.sections[model];
  const SectionRecord& adapted_record = adapted_layout.sections[model];
  if (adapted_record.type != record.type ||
      adapted_record.dimension != record.dimension ||
      adapted_record.count != record.count ||
      adapted_record.payload_offset != record.payload_offset) {
    fail("model sections of base and adapted snapshots disagree");
  }
  // Everything outside the model payload, its checksum entry, and the table
  // checksum must match byte for byte — otherwise base + patch cannot
  // reproduce the adapted file.
  const std::size_t entry_at = snapshot_header_bytes +
                               model * snapshot_entry_bytes + 72;
  const auto excluded = [&](std::size_t i) {
    return (i >= record.payload_offset &&
            i < record.payload_offset + record.payload_bytes) ||
           (i >= entry_at && i < entry_at + 8) || (i >= 32 && i < 40);
  };
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (base[i] != adapted[i] && !excluded(i)) {
      fail("snapshots differ outside the model payload (byte " +
           std::to_string(i) + "); a delta cannot bridge them");
    }
  }
  const std::uint64_t words_per_row = (record.dimension + 63) / 64;
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  for (std::uint64_t r = 0; r < record.count; ++r) {
    const std::size_t at =
        record.payload_offset + r * words_per_row * 8;
    if (std::memcmp(base.data() + at, adapted.data() + at,
                    words_per_row * 8) != 0) {
      std::vector<std::uint64_t> row(words_per_row);
      for (std::uint64_t w = 0; w < words_per_row; ++w) {
        row[w] = load_u64(adapted, at + w * 8);
      }
      rows.emplace(r, std::move(row));
    }
  }
  if (rows.empty()) {
    fail("snapshots are identical: nothing to patch");
  }
  return make_delta(base_snapshot, xxhash64(base), model, rows);
}

void write_delta_file(const DeltaPatch& patch, const std::string& path) {
  validate_patch_payload(patch);
  SnapshotWriter writer;
  writer.add_delta(patch);
  writer.write_file(path);
}

DeltaPatch read_delta_file(const std::string& path,
                           SnapshotIntegrity integrity) {
  const MappedSnapshot snapshot = MappedSnapshot::open(path, integrity);
  if (snapshot.section_count() != 1 ||
      snapshot.section(0).type != SectionType::DeltaPatch) {
    fail(path + " is not a single-section delta snapshot");
  }
  const SectionRecord& record = snapshot.section(0);
  const auto words = snapshot.section_words(0);
  DeltaPatch patch;
  patch.target_type = static_cast<SectionType>(record.kind);
  patch.base_section = record.aux_section;
  patch.base_hash = record.seed;
  patch.base_rows = record.aux_section_b;
  patch.dimension = record.dimension;
  patch.words.assign(words.begin(), words.end());
  validate_patch_payload(patch);
  return patch;
}

bool snapshot_is_delta(const std::string& path) {
  const std::vector<std::byte> bytes = read_file_bytes(path);
  const SnapshotLayout layout = parse_snapshot_layout(bytes);
  for (const SectionRecord& record : layout.sections) {
    if (record.type == SectionType::DeltaPatch) {
      return true;
    }
  }
  return false;
}

std::vector<std::byte> apply_delta(std::span<const std::byte> base_file,
                                   const DeltaPatch& patch) {
  validate_patch_payload(patch);
  const std::uint64_t base_hash = xxhash64(base_file);
  if (base_hash != patch.base_hash) {
    fail("base snapshot content hash mismatch: the patch was made against a "
         "different base file");
  }
  const SnapshotLayout layout = parse_snapshot_layout(base_file);
  if (patch.base_section >= layout.sections.size()) {
    fail("patch references section " + std::to_string(patch.base_section) +
         " but the base has only " + std::to_string(layout.sections.size()));
  }
  const SectionRecord& record =
      layout.sections[static_cast<std::size_t>(patch.base_section)];
  if (record.type != patch.target_type ||
      record.dimension != patch.dimension ||
      record.count != patch.base_rows) {
    fail("patch and base model section disagree on type, dimension or rows");
  }

  std::vector<std::byte> out(base_file.begin(), base_file.end());
  const std::uint64_t count = patch.changed_rows();
  const std::uint64_t words_per_row = patch.words_per_row();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::size_t at = static_cast<std::size_t>(
        record.payload_offset + patch.row_index(i) * words_per_row * 8);
    const auto row = patch.row_words(i);
    for (std::uint64_t w = 0; w < words_per_row; ++w) {
      store_u64(out, at + w * 8, row[w]);
    }
  }
  // Refresh the patched section's payload checksum, then the table checksum
  // that covers it — same order and seeds as SnapshotWriter::write, so the
  // result is byte-identical to writing the adapted model directly.
  const auto payload = std::span<const std::byte>(out).subspan(
      record.payload_offset, record.payload_bytes);
  const std::size_t entry_at =
      snapshot_header_bytes +
      static_cast<std::size_t>(patch.base_section) * snapshot_entry_bytes;
  store_u64(out, entry_at + 72, xxhash64(payload));
  const std::uint64_t table_end =
      snapshot_header_bytes + layout.sections.size() * snapshot_entry_bytes;
  const auto table = std::span<const std::byte>(out).subspan(
      snapshot_header_bytes, table_end - snapshot_header_bytes);
  store_u64(out, 32, xxhash64(table, snapshot_version));
  // The patched image must still be a valid snapshot before anyone maps it.
  (void)parse_snapshot_layout(out);
  return out;
}

void apply_delta_file(const std::string& base_path,
                      const std::string& delta_path,
                      const std::string& out_path) {
  const DeltaPatch patch = read_delta_file(delta_path);
  const std::vector<std::byte> base = read_file_bytes(base_path);
  const std::vector<std::byte> out = apply_delta(base, patch);
  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  if (!file) {
    fail("cannot create " + out_path);
  }
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) {
    fail("write failed for " + out_path);
  }
}

LoadedPipeline load_pipeline_or_delta(const std::string& path,
                                      const std::string& base_path,
                                      SnapshotIntegrity integrity,
                                      MappingOptions mapping) {
  if (!snapshot_is_delta(path)) {
    return load_pipeline(path, integrity, mapping);
  }
  if (base_path.empty()) {
    fail(path + " is a delta snapshot but no base snapshot is tracked; load "
                "a full snapshot first");
  }
  const DeltaPatch patch = read_delta_file(path, integrity);
  const std::vector<std::byte> base = read_file_bytes(base_path);
  const std::vector<std::byte> patched = apply_delta(base, patch);
  MappedSnapshot snapshot = MappedSnapshot::from_bytes(patched, integrity);
  Pipeline pipeline = Pipeline::restore(snapshot);
  return LoadedPipeline{std::move(snapshot), std::move(pipeline)};
}

}  // namespace hdc::io
