#ifndef HDC_BASE_REQUIRE_HPP
#define HDC_BASE_REQUIRE_HPP

/// \file require.hpp
/// \brief Precondition-checking helpers used at every public API boundary.
///
/// Following the C++ Core Guidelines (I.5 "State preconditions", E.x), public
/// entry points validate their arguments and throw `std::invalid_argument`
/// with a message that names the offending parameter.  Internal code relies on
/// those checks and uses plain assertions.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hdc {

/// Throws `std::invalid_argument` composed as "<where>: <what>".
[[noreturn]] void throw_invalid(std::string_view where, std::string_view what);

/// Throws `std::out_of_range` composed as "<where>: <what>".
[[noreturn]] void throw_out_of_range(std::string_view where,
                                     std::string_view what);

/// Requires `index < size`; otherwise throws `std::out_of_range` (the
/// standard-library convention for checked element access, e.g. vector::at).
inline void require_index(std::size_t index, std::size_t size,
                          std::string_view where) {
  if (index >= size) {
    throw_out_of_range(where, "index " + std::to_string(index) +
                                  " out of range [0, " + std::to_string(size) +
                                  ")");
  }
}

/// Requires `cond` to hold; otherwise throws `std::invalid_argument`.
/// \param where  Name of the API entry point (e.g. "make_level_basis").
/// \param what   Description of the violated precondition.
inline void require(bool cond, std::string_view where, std::string_view what) {
  if (!cond) {
    throw_invalid(where, what);
  }
}

/// Requires a strictly positive count-like argument.
template <typename Int>
void require_positive(Int value, std::string_view where,
                      std::string_view name) {
  if (!(value > Int{0})) {
    throw_invalid(where, std::string(name) + " must be positive, got " +
                             std::to_string(value));
  }
}

/// Requires `value` to lie in the closed interval [lo, hi].
template <typename T>
void require_in_range(T value, T lo, T hi, std::string_view where,
                      std::string_view name) {
  if (!(value >= lo && value <= hi)) {
    throw_invalid(where, std::string(name) + " out of range [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "], got " + std::to_string(value));
  }
}

}  // namespace hdc

#endif  // HDC_BASE_REQUIRE_HPP
