#ifndef HDC_BASE_RNG_HPP
#define HDC_BASE_RNG_HPP

/// \file rng.hpp
/// \brief Deterministic, platform-portable pseudo-random number generation.
///
/// Every stochastic component of the library takes an explicit 64-bit seed and
/// draws from `hdc::Rng`, a xoshiro256** engine seeded through SplitMix64.
/// Unlike `std::mt19937` + standard-library distributions, the output of this
/// generator (including the floating-point and bounded-integer helpers below)
/// is bit-identical across compilers and platforms, which makes every
/// experiment in the repository exactly reproducible from its seed.

#include <array>
#include <cstdint>

namespace hdc {

/// SplitMix64 step; used to expand a single 64-bit seed into engine state.
/// Public because derived-seed schemes (per-level, per-feature sub-streams)
/// use it directly.
[[nodiscard]] constexpr std::uint64_t splitmix64(
    std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from a base seed and a stream index.
/// Used to give sub-components (e.g. each anchor of a concatenated level set)
/// decorrelated randomness while staying reproducible.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t s = base ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  // Two SplitMix64 rounds fully mix the stream index into the seed.
  (void)splitmix64(s);
  return splitmix64(s);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// re-implemented here; period 2^256 - 1, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine by expanding \p seed with SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision; bit-portable.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Unbiased uniform integer in [0, bound) via Lemire-style rejection.
  /// \pre bound > 0.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Rejection sampling on the top of the range keeps the result unbiased
    // without 128-bit arithmetic portability concerns.
    // threshold = (2^64 - bound) % bound
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  /// \pre lo <= hi.
  [[nodiscard]] constexpr std::int64_t between(std::int64_t lo,
                                               std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
  }

  /// Fair coin flip.
  [[nodiscard]] constexpr bool flip() noexcept {
    return ((*this)() >> 63) != 0;
  }

  /// Standard normal deviate (Marsaglia polar method; portable).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hdc

#endif  // HDC_BASE_RNG_HPP
