#ifndef HDC_BASE_VERSION_HPP
#define HDC_BASE_VERSION_HPP

/// \file version.hpp
/// \brief Library version constants.

namespace hdc {

/// Semantic version of the hdcpp library.
inline constexpr int version_major = 1;
inline constexpr int version_minor = 0;
inline constexpr int version_patch = 0;

/// Human-readable version string.
inline constexpr const char* version_string = "1.0.0";

}  // namespace hdc

#endif  // HDC_BASE_VERSION_HPP
