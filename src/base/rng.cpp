#include "hdc/base/rng.hpp"

#include <cmath>

namespace hdc {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: draw a point uniformly in the unit disc and map
  // it to two independent standard normals.  Chosen over std::normal_
  // distribution for cross-platform bit reproducibility.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

}  // namespace hdc
