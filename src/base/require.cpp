#include "hdc/base/require.hpp"

namespace hdc {

void throw_invalid(std::string_view where, std::string_view what) {
  std::string message;
  message.reserve(where.size() + 2 + what.size());
  message.append(where);
  message.append(": ");
  message.append(what);
  throw std::invalid_argument(message);
}

void throw_out_of_range(std::string_view where, std::string_view what) {
  std::string message;
  message.reserve(where.size() + 2 + what.size());
  message.append(where);
  message.append(": ");
  message.append(what);
  throw std::out_of_range(message);
}

}  // namespace hdc
