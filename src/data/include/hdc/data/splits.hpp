#ifndef HDC_DATA_SPLITS_HPP
#define HDC_DATA_SPLITS_HPP

/// \file splits.hpp
/// \brief Train/test index splits used by the regression experiments.
///
/// The paper trains the Beijing model on the *first* 70% of the series
/// (chronological split) and the Mars Express model on a *random* 70%
/// (Section 6.2); both splitters are provided.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hdc::data {

/// Index partition into train and test sets.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// First `round(n * train_fraction)` indices train, the rest test.
/// \throws std::invalid_argument if n == 0 or fraction not in (0, 1).
[[nodiscard]] SplitIndices chronological_split(std::size_t n,
                                               double train_fraction);

/// Uniformly random partition with the given train fraction (seeded
/// Fisher-Yates shuffle; deterministic).
/// \throws std::invalid_argument if n == 0 or fraction not in (0, 1).
[[nodiscard]] SplitIndices random_split(std::size_t n, double train_fraction,
                                        std::uint64_t seed);

}  // namespace hdc::data

#endif  // HDC_DATA_SPLITS_HPP
