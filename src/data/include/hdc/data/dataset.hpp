#ifndef HDC_DATA_DATASET_HPP
#define HDC_DATA_DATASET_HPP

/// \file dataset.hpp
/// \brief Sample and dataset containers shared by the synthetic generators.
///
/// The paper evaluates on three datasets that cannot be redistributed here;
/// each has a seeded synthetic substitute that preserves the property the
/// experiment exercises (angular structure straddling the wrap point).  See
/// DESIGN.md section 3 for the substitution rationale.

#include <cstddef>
#include <string>
#include <vector>

namespace hdc::data {

/// One surgical-gesture sample: angular kinematic channels plus labels.
struct GestureSample {
  std::vector<double> angles;  ///< Channel values in [0, 2*pi).
  std::size_t gesture = 0;     ///< Class label in [0, num_gestures).
  std::size_t surgeon = 0;     ///< Performing surgeon in [0, num_surgeons).
};

/// A train/test gesture dataset for one surgical task.
struct GestureDataset {
  std::string task_name;
  std::size_t num_gestures = 0;
  std::size_t num_channels = 0;
  std::size_t num_surgeons = 0;
  std::size_t train_surgeon = 0;  ///< The surgeon whose data trains the model.
  std::vector<GestureSample> train;
  std::vector<GestureSample> test;
};

/// One hourly weather record of the Beijing-like series.
struct BeijingRecord {
  std::size_t year_index = 0;  ///< 0 = 2013, ..., 4 = 2017.
  std::size_t day_of_year = 1; ///< 1..366.
  std::size_t hour = 0;        ///< 0..23.
  double temperature = 0.0;    ///< Degrees Celsius.
};

/// One telemetry record of the Mars-Express-like series.
struct MarsRecord {
  double mean_anomaly = 0.0;  ///< Elapsed orbit fraction as angle [0, 2*pi).
  double power = 0.0;         ///< Available power level (watts).
};

}  // namespace hdc::data

#endif  // HDC_DATA_DATASET_HPP
