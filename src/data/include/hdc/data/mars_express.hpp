#ifndef HDC_DATA_MARS_EXPRESS_HPP
#define HDC_DATA_MARS_EXPRESS_HPP

/// \file mars_express.hpp
/// \brief Synthetic Mars Express power series (Section 6.2, second task).
///
/// The paper uses ESA's Mars Express power-challenge telemetry: the input is
/// the elapsed fraction of Mars' orbit around the sun (the mean anomaly) and
/// the label is the available power level, which fluctuates with the orbit
/// and on-board consumption.  The substitute models power as smooth
/// harmonics of the mean anomaly — solar distance and panel-aspect terms —
/// plus a von-Mises-shaped eclipse-season dip centred at one anomaly region
/// and Gaussian telemetry noise.  The response is a purely circular-linear
/// function of a single angular input, exactly the structure the experiment
/// probes; the split is random 70/30 as in the paper.

#include <cstdint>
#include <vector>

#include "hdc/data/dataset.hpp"

namespace hdc::data {

/// Configuration for `make_mars_express_dataset`.
struct MarsExpressConfig {
  /// Telemetry sample count.  Kept deliberately modest: the experiment
  /// regime of Section 6.2 is sparse per-anomaly-bin sampling with noisy
  /// power readings, where uncorrelated (random-basis) encodings cannot
  /// interpolate between bins.
  std::size_t num_samples = 800;
  std::uint64_t seed = 11;

  double base_power = 118.0;        ///< Mean available power, W.
  double orbit_amplitude = 30.0;    ///< First-harmonic swing (solar distance).
  double orbit_phase = 0.9;         ///< Perihelion phase offset, rad.
  double second_amplitude = 14.0;   ///< Second harmonic (panel aspect), W.
  double second_phase = 2.1;        ///< Second-harmonic phase, rad.
  double eclipse_depth = 45.0;      ///< Depth of the eclipse-season dip, W.
  double eclipse_kappa = 3.0;       ///< Sharpness of the dip.
  /// Telemetry noise, W.  Real power telemetry has large unexplained
  /// variance (on-board consumption states the anomaly cannot predict).
  double noise_sigma = 12.0;
};

/// Generates telemetry with mean anomalies sampled uniformly on [0, 2*pi).
/// \throws std::invalid_argument if num_samples == 0.
[[nodiscard]] std::vector<MarsRecord> make_mars_express_dataset(
    const MarsExpressConfig& config);

/// The noiseless model power at a given mean anomaly; exposed for tests.
[[nodiscard]] double mars_model_power(const MarsExpressConfig& config,
                                      double mean_anomaly);

}  // namespace hdc::data

#endif  // HDC_DATA_MARS_EXPRESS_HPP
