#ifndef HDC_DATA_JIGSAWS_HPP
#define HDC_DATA_JIGSAWS_HPP

/// \file jigsaws.hpp
/// \brief Synthetic JIGSAWS-like surgical-gesture dataset (Section 6.1).
///
/// The paper uses the JHU-ISI Gesture and Skill Assessment Working Set:
/// 18 kinematic variables (the rotation matrices of the left master tool
/// manipulator and patient-side manipulator) for three surgical tasks,
/// labelled with 15 surgical gestures, performed by eight surgeons; the
/// model trains on surgeon "D" and is tested on the others.
///
/// The substitute generator preserves exactly the structure that drives the
/// experiment: per gesture, 18 *angular* kinematic channels (orientation
/// angles of the two manipulators across temporal taps) drawn from von Mises
/// distributions.  Channel mean directions are biased toward the 0/2*pi wrap
/// point on half of the channels, so a gesture's samples routinely straddle
/// the boundary — the regime where level encodings tear the circle and
/// circular encodings do not.  Per-surgeon style biases make the
/// train-on-one-surgeon split a genuine generalization test, and per-task
/// concentrations make Suturing the hardest task, as in the paper.

#include <cstdint>

#include "hdc/data/dataset.hpp"

namespace hdc::data {

/// The three JIGSAWS surgical tasks evaluated in Table 1.
enum class SurgicalTask : std::uint8_t {
  KnotTying = 0,
  NeedlePassing = 1,
  Suturing = 2,
};

/// Human-readable task name ("Knot Tying", ...).
[[nodiscard]] const char* to_string(SurgicalTask task) noexcept;

/// Configuration for `make_jigsaws_dataset`.
struct JigsawsConfig {
  SurgicalTask task = SurgicalTask::KnotTying;
  std::size_t num_gestures = 15;   ///< Gesture classes (paper: 15).
  std::size_t num_channels = 18;   ///< Angular kinematic channels (paper: 18).
  std::size_t num_surgeons = 8;    ///< Paper: 8 surgeons.
  std::size_t train_surgeon = 3;   ///< Index of surgeon "D".
  std::size_t train_samples_per_gesture = 120;
  std::size_t test_samples_per_gesture_per_surgeon = 20;
  std::uint64_t seed = 42;

  /// Spread of gesture mean directions around the 0/2*pi wrap point (radians
  /// of the wrapped normal).  Small values pack the gesture structure into a
  /// narrow band straddling the boundary — the regime that separates
  /// circular- from level-hypervectors.
  double wrap_band_sigma = 0.6;
  /// Standard deviation of the per-surgeon constant channel bias (radians);
  /// controls how hard the cross-surgeon generalization is.
  double surgeon_bias_sigma = 0.08;
  /// Multiplies the per-task von Mises concentration (1.0 = defaults).
  double kappa_scale = 1.0;
  /// Poses a gesture visits per channel: each sample draws one of this many
  /// von Mises modes.  Real gestures are trajectories through several poses;
  /// multimodal channels are what separate the basis families (see
  /// DESIGN.md).
  std::size_t modes_per_channel = 4;
};

/// Generates the dataset for one surgical task.
/// \throws std::invalid_argument on degenerate configuration.
[[nodiscard]] GestureDataset make_jigsaws_dataset(const JigsawsConfig& config);

}  // namespace hdc::data

#endif  // HDC_DATA_JIGSAWS_HPP
