#ifndef HDC_DATA_BEIJING_HPP
#define HDC_DATA_BEIJING_HPP

/// \file beijing.hpp
/// \brief Synthetic Beijing temperature series (Section 6.2, first task).
///
/// The paper uses hourly temperature measured at the Aotizhongxin station
/// from March 2013 to February 2017 (UCI Beijing Multi-Site Air-Quality
/// dataset).  The substitute is a seeded climate model over the identical
/// date range: annual harmonic (coldest mid-January), season-modulated
/// diurnal harmonic (warmest mid-afternoon), a slow warming trend, and AR(1)
/// synoptic weather noise.  It preserves the circular-linear correlation of
/// temperature with both day-of-year and hour-of-day — the two features the
/// experiment encodes with the basis family under test — and the
/// chronological 70/30 split whose test window wraps across Dec 31 -> Jan 1.

#include <cstdint>
#include <vector>

#include "hdc/data/dataset.hpp"

namespace hdc::data {

/// Configuration for `make_beijing_dataset`.
struct BeijingConfig {
  std::uint64_t seed = 7;

  double mean_temperature = 12.5;     ///< Annual mean, deg C.
  double annual_amplitude = 14.5;     ///< Seasonal swing, deg C.
  double diurnal_amplitude = 4.0;     ///< Base day/night swing, deg C.
  double diurnal_summer_boost = 1.5;  ///< Extra diurnal swing in summer.
  double trend_per_year = 0.04;       ///< Slow warming trend, deg C / year.
  double noise_ar1 = 0.97;            ///< AR(1) coefficient of weather noise.
  double noise_sigma = 0.55;          ///< Innovation std dev, deg C.
};

/// Generates the hourly series from 2013-03-01 00:00 to 2017-02-28 23:00
/// (35,064 records; 2016 is a leap year).
[[nodiscard]] std::vector<BeijingRecord> make_beijing_dataset(
    const BeijingConfig& config);

/// The noiseless model temperature for a given time point; exposed so tests
/// can verify the generator against its specification.
[[nodiscard]] double beijing_model_temperature(const BeijingConfig& config,
                                               std::size_t year_index,
                                               std::size_t day_of_year,
                                               std::size_t hour);

}  // namespace hdc::data

#endif  // HDC_DATA_BEIJING_HPP
