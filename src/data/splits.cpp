#include "hdc/data/splits.hpp"

#include <cmath>
#include <numeric>

#include "hdc/base/require.hpp"
#include "hdc/base/rng.hpp"

namespace hdc::data {

namespace {

std::size_t train_count(std::size_t n, double train_fraction,
                        const char* where) {
  require_positive(n, where, "n");
  require(train_fraction > 0.0 && train_fraction < 1.0, where,
          "train_fraction must be in (0, 1)");
  auto count = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * train_fraction));
  if (count == 0) {
    count = 1;
  }
  if (count >= n) {
    count = n - 1;
  }
  return count;
}

}  // namespace

SplitIndices chronological_split(std::size_t n, double train_fraction) {
  const std::size_t k = train_count(n, train_fraction, "chronological_split");
  SplitIndices out;
  out.train.resize(k);
  out.test.resize(n - k);
  std::iota(out.train.begin(), out.train.end(), std::size_t{0});
  std::iota(out.test.begin(), out.test.end(), k);
  return out;
}

SplitIndices random_split(std::size_t n, double train_fraction,
                          std::uint64_t seed) {
  const std::size_t k = train_count(n, train_fraction, "random_split");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  for (std::size_t i = n; i-- > 1;) {
    const auto j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(order[i], order[j]);
  }
  SplitIndices out;
  out.train.assign(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(k));
  out.test.assign(order.begin() + static_cast<std::ptrdiff_t>(k), order.end());
  return out;
}

}  // namespace hdc::data
