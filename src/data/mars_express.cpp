#include "hdc/data/mars_express.hpp"

#include <cmath>
#include <numbers>

#include "hdc/base/require.hpp"
#include "hdc/base/rng.hpp"
#include "hdc/stats/circular.hpp"

namespace hdc::data {

double mars_model_power(const MarsExpressConfig& config, double mean_anomaly) {
  const double orbit =
      config.orbit_amplitude * std::cos(mean_anomaly - config.orbit_phase);
  const double aspect = config.second_amplitude *
                        std::cos(2.0 * mean_anomaly + config.second_phase);
  // von-Mises-shaped dip centred at anomaly pi (eclipse season).
  const double eclipse =
      -config.eclipse_depth *
      std::exp(config.eclipse_kappa *
               (std::cos(mean_anomaly - std::numbers::pi) - 1.0));
  return config.base_power + orbit + aspect + eclipse;
}

std::vector<MarsRecord> make_mars_express_dataset(
    const MarsExpressConfig& config) {
  require_positive(config.num_samples, "make_mars_express_dataset",
                   "num_samples");
  Rng rng(config.seed);
  std::vector<MarsRecord> records;
  records.reserve(config.num_samples);
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    MarsRecord record;
    record.mean_anomaly = rng.uniform(0.0, stats::two_pi);
    record.power = mars_model_power(config, record.mean_anomaly) +
                   rng.normal(0.0, config.noise_sigma);
    records.push_back(record);
  }
  return records;
}

}  // namespace hdc::data
