#include "hdc/data/jigsaws.hpp"

#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/base/rng.hpp"
#include "hdc/stats/circular.hpp"
#include "hdc/stats/von_mises.hpp"

namespace hdc::data {

const char* to_string(SurgicalTask task) noexcept {
  switch (task) {
    case SurgicalTask::KnotTying:
      return "Knot Tying";
    case SurgicalTask::NeedlePassing:
      return "Needle Passing";
    case SurgicalTask::Suturing:
      return "Suturing";
  }
  return "unknown";
}

namespace {

/// Per-task von Mises concentration of the gesture channels.  Lower
/// concentration means broader, more overlapping gestures; Suturing is the
/// hardest task in the paper's Table 1 and gets the broadest distributions.
double task_kappa(SurgicalTask task) noexcept {
  switch (task) {
    case SurgicalTask::KnotTying:
      return 30.0;
    case SurgicalTask::NeedlePassing:
      return 26.0;
    case SurgicalTask::Suturing:
      return 21.0;
  }
  return 30.0;
}

}  // namespace

GestureDataset make_jigsaws_dataset(const JigsawsConfig& config) {
  require(config.num_gestures >= 2, "make_jigsaws_dataset",
          "num_gestures must be >= 2");
  require_positive(config.num_channels, "make_jigsaws_dataset", "num_channels");
  require(config.num_surgeons >= 2, "make_jigsaws_dataset",
          "num_surgeons must be >= 2");
  require(config.train_surgeon < config.num_surgeons, "make_jigsaws_dataset",
          "train_surgeon out of range");
  require_positive(config.train_samples_per_gesture, "make_jigsaws_dataset",
                   "train_samples_per_gesture");
  require_positive(config.test_samples_per_gesture_per_surgeon,
                   "make_jigsaws_dataset",
                   "test_samples_per_gesture_per_surgeon");

  require(config.wrap_band_sigma > 0.0, "make_jigsaws_dataset",
          "wrap_band_sigma must be positive");
  require(config.surgeon_bias_sigma >= 0.0, "make_jigsaws_dataset",
          "surgeon_bias_sigma must be non-negative");
  require(config.kappa_scale > 0.0, "make_jigsaws_dataset",
          "kappa_scale must be positive");

  const auto task_index = static_cast<std::uint64_t>(config.task);
  const std::uint64_t task_seed = derive_seed(config.seed, task_index);
  const double kappa = task_kappa(config.task) * config.kappa_scale;

  // Gesture signatures: each (gesture, channel) has `modes_per_channel`
  // characteristic poses concentrated around the 0/2*pi wrap point
  // (manipulator orientations hover near the neutral pose), so gesture mass
  // routinely straddles the boundary.  A sample draws one pose per channel
  // and adds von Mises noise — gestures are trajectories through poses, not
  // single points.
  require_positive(config.modes_per_channel, "make_jigsaws_dataset",
                   "modes_per_channel");
  Rng signature_rng(derive_seed(task_seed, 0x516EULL));
  // gesture_modes[g][v] lists the pose angles of gesture g on channel v.
  std::vector<std::vector<std::vector<double>>> gesture_modes(
      config.num_gestures);
  for (std::size_t g = 0; g < config.num_gestures; ++g) {
    gesture_modes[g].resize(config.num_channels);
    for (std::size_t v = 0; v < config.num_channels; ++v) {
      gesture_modes[g][v].resize(config.modes_per_channel);
      for (double& mode : gesture_modes[g][v]) {
        mode = stats::wrap_angle(
            signature_rng.normal(0.0, config.wrap_band_sigma));
      }
    }
  }

  // Per-surgeon style bias: a small constant rotation of every channel,
  // making cross-surgeon testing a generalization problem.
  Rng surgeon_rng(derive_seed(task_seed, 0x5A6EULL));
  std::vector<std::vector<double>> surgeon_bias(config.num_surgeons);
  for (std::size_t s = 0; s < config.num_surgeons; ++s) {
    surgeon_bias[s].resize(config.num_channels);
    for (std::size_t v = 0; v < config.num_channels; ++v) {
      surgeon_bias[s][v] =
          surgeon_rng.normal(0.0, config.surgeon_bias_sigma);
    }
  }

  GestureDataset dataset;
  dataset.task_name = to_string(config.task);
  dataset.num_gestures = config.num_gestures;
  dataset.num_channels = config.num_channels;
  dataset.num_surgeons = config.num_surgeons;
  dataset.train_surgeon = config.train_surgeon;

  Rng sample_rng(derive_seed(task_seed, 0x5A3EULL));
  const auto draw_sample = [&](std::size_t gesture,
                               std::size_t surgeon) -> GestureSample {
    GestureSample sample;
    sample.gesture = gesture;
    sample.surgeon = surgeon;
    sample.angles.resize(config.num_channels);
    for (std::size_t v = 0; v < config.num_channels; ++v) {
      const std::vector<double>& modes = gesture_modes[gesture][v];
      const double pose =
          modes[static_cast<std::size_t>(sample_rng.below(modes.size()))];
      const double mu =
          stats::wrap_angle(pose + surgeon_bias[surgeon][v]);
      const stats::VonMises dist(mu, kappa);
      sample.angles[v] = dist.sample(sample_rng);
    }
    return sample;
  };

  for (std::size_t g = 0; g < config.num_gestures; ++g) {
    for (std::size_t i = 0; i < config.train_samples_per_gesture; ++i) {
      dataset.train.push_back(draw_sample(g, config.train_surgeon));
    }
  }
  for (std::size_t s = 0; s < config.num_surgeons; ++s) {
    if (s == config.train_surgeon) {
      continue;
    }
    for (std::size_t g = 0; g < config.num_gestures; ++g) {
      for (std::size_t i = 0; i < config.test_samples_per_gesture_per_surgeon;
           ++i) {
        dataset.test.push_back(draw_sample(g, s));
      }
    }
  }
  return dataset;
}

}  // namespace hdc::data
