#include "hdc/data/beijing.hpp"

#include <cmath>

#include "hdc/base/rng.hpp"
#include "hdc/stats/circular.hpp"

namespace hdc::data {

namespace {

bool is_leap_year(std::size_t year) noexcept {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

std::size_t days_in_year(std::size_t year) noexcept {
  return is_leap_year(year) ? 366 : 365;
}

}  // namespace

double beijing_model_temperature(const BeijingConfig& config,
                                 std::size_t year_index,
                                 std::size_t day_of_year, std::size_t hour) {
  // Annual cycle: coldest around Jan 15 (day 15), warmest mid-July.
  const double annual_angle = stats::two_pi *
                              (static_cast<double>(day_of_year) - 15.0) /
                              365.25;
  const double seasonal = -config.annual_amplitude * std::cos(annual_angle);

  // Diurnal cycle: warmest around 15:00, swing slightly larger in summer.
  const double summer_weight = 0.5 * (1.0 - std::cos(annual_angle));
  const double diurnal_amp =
      config.diurnal_amplitude + config.diurnal_summer_boost * summer_weight;
  const double diurnal_angle =
      stats::two_pi * (static_cast<double>(hour) - 15.0) / 24.0;
  const double diurnal = diurnal_amp * std::cos(diurnal_angle);

  const double trend =
      config.trend_per_year * static_cast<double>(year_index);

  return config.mean_temperature + seasonal + diurnal + trend;
}

std::vector<BeijingRecord> make_beijing_dataset(const BeijingConfig& config) {
  std::vector<BeijingRecord> records;
  records.reserve(35'064);

  Rng rng(config.seed);
  // Stationary start for the AR(1) weather process.
  const double stationary_sigma =
      config.noise_sigma /
      std::sqrt(1.0 - config.noise_ar1 * config.noise_ar1);
  double weather = rng.normal(0.0, stationary_sigma);

  // Hourly walk from 2013-03-01 (day-of-year 60 in a non-leap year) through
  // 2017-02-28 inclusive.
  std::size_t year = 2013;
  std::size_t day_of_year = 31 + 28 + 1;  // March 1st
  std::size_t hour = 0;
  for (;;) {
    BeijingRecord record;
    record.year_index = year - 2013;
    record.day_of_year = day_of_year;
    record.hour = hour;
    record.temperature =
        beijing_model_temperature(config, record.year_index, day_of_year,
                                  hour) +
        weather;
    records.push_back(record);

    weather = config.noise_ar1 * weather +
              rng.normal(0.0, config.noise_sigma);

    // Advance one hour.
    if (++hour == 24) {
      hour = 0;
      if (++day_of_year > days_in_year(year)) {
        day_of_year = 1;
        ++year;
      }
    }
    if (year == 2017 && day_of_year == 31 + 28 + 1) {
      break;  // reached 2017-03-01 00:00, one past the final record
    }
  }
  return records;
}

}  // namespace hdc::data
