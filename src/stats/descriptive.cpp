#include "hdc/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hdc/base/require.hpp"

namespace hdc::stats {

double mean(std::span<const double> xs) {
  require(!xs.empty(), "mean", "sample must be non-empty");
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  require(xs.size() >= 2, "sample_variance", "need at least 2 samples");
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    ss += (x - m) * (x - m);
  }
  return ss / static_cast<double>(xs.size() - 1);
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double population_variance(std::span<const double> xs) {
  require(!xs.empty(), "population_variance", "sample must be non-empty");
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) {
    ss += (x - m) * (x - m);
  }
  return ss / static_cast<double>(xs.size());
}

double minimum(std::span<const double> xs) {
  require(!xs.empty(), "minimum", "sample must be non-empty");
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) {
  require(!xs.empty(), "maximum", "sample must be non-empty");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require(!xs.empty(), "quantile", "sample must be non-empty");
  require_in_range(q, 0.0, 1.0, "quantile", "q");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  require(xs.size() == ys.size(), "pearson_correlation",
          "samples must have equal length");
  require(xs.size() >= 2, "pearson_correlation", "need at least 2 samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace hdc::stats
