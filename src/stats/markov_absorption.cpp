#include "hdc/stats/markov_absorption.hpp"

#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/stats/tridiagonal.hpp"

namespace hdc::stats {

namespace {

void validate(std::size_t dimension, std::size_t target_bits,
              const char* where) {
  require_positive(dimension, where, "dimension");
  require_positive(target_bits, where, "target_bits");
  require(target_bits <= dimension, where, "target_bits must be <= dimension");
}

}  // namespace

std::vector<double> absorption_times(std::size_t dimension,
                                     std::size_t target_bits) {
  validate(dimension, target_bits, "absorption_times");
  const auto d = static_cast<double>(dimension);
  // Let v(k) = u(k) - u(k+1).  Substituting into the paper's recurrence
  //   u(k) = 1 + ((d-k) u(k+1) + k u(k-1)) / d,  u(0) = 1 + u(1)
  // yields v(0) = 1 and (d - k) v(k) = d + k v(k-1).  Then
  //   u(k) = sum_{j=k}^{target-1} v(j)   (since u(target) = 0).
  std::vector<double> v(target_bits);
  v[0] = 1.0;
  for (std::size_t k = 1; k < target_bits; ++k) {
    const auto kd = static_cast<double>(k);
    v[k] = (d + kd * v[k - 1]) / (d - kd);
  }
  std::vector<double> u(target_bits + 1);
  u[target_bits] = 0.0;
  for (std::size_t k = target_bits; k-- > 0;) {
    u[k] = u[k + 1] + v[k];
  }
  return u;
}

std::vector<double> absorption_times_tridiagonal(std::size_t dimension,
                                                 std::size_t target_bits) {
  validate(dimension, target_bits, "absorption_times_tridiagonal");
  const auto d = static_cast<double>(dimension);
  const std::size_t n = target_bits;  // unknowns u(0) .. u(target-1)

  // Row k encodes: d*u(k) - (d-k)*u(k+1) - k*u(k-1) = d, with u(target) = 0
  // folded into the last row's right-hand side (its coefficient is zero there
  // only when target == d; otherwise the term simply vanishes because
  // u(target) = 0).  Row 0 encodes u(0) - u(1) = 1.
  std::vector<double> lower(n > 1 ? n - 1 : 0);
  std::vector<double> diag(n);
  std::vector<double> upper(n > 1 ? n - 1 : 0);
  std::vector<double> rhs(n);

  diag[0] = 1.0;
  rhs[0] = 1.0;
  if (n > 1) {
    upper[0] = -1.0;
  }
  for (std::size_t k = 1; k < n; ++k) {
    const auto kd = static_cast<double>(k);
    lower[k - 1] = -kd;
    diag[k] = d;
    if (k < n - 1) {
      upper[k] = -(d - kd);
    }
    rhs[k] = d;  // the -(d-k) u(k+1) term is zero at k = n-1 since u(n) = 0
  }
  std::vector<double> u = solve_tridiagonal(lower, diag, upper, rhs);
  u.push_back(0.0);  // u(target) = 0 for symmetry with absorption_times().
  return u;
}

double expected_flips_to_distance(std::size_t dimension,
                                  std::size_t target_bits) {
  return absorption_times(dimension, target_bits).front();
}

double simulate_absorption_steps(std::size_t dimension, std::size_t target_bits,
                                 std::size_t trials, Rng& rng) {
  validate(dimension, target_bits, "simulate_absorption_steps");
  require_positive(trials, "simulate_absorption_steps", "trials");
  // The walk only needs the current Hamming distance k, not the actual
  // vector: a uniformly chosen position is one of the k differing bits with
  // probability k/d.
  double total_steps = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t k = 0;
    std::uint64_t steps = 0;
    while (k < target_bits) {
      ++steps;
      if (rng.below(dimension) >= k) {
        ++k;  // flipped an agreeing position: moved away from the start
      } else {
        --k;  // re-flipped a differing position: moved back
      }
    }
    total_steps += static_cast<double>(steps);
  }
  return total_steps / static_cast<double>(trials);
}

double expected_distance_after_flips(std::size_t dimension, double flips) {
  require_positive(dimension, "expected_distance_after_flips", "dimension");
  require(flips >= 0.0, "expected_distance_after_flips",
          "flips must be non-negative");
  const double q = 1.0 - 2.0 / static_cast<double>(dimension);
  return 0.5 * (1.0 - std::pow(q, flips));
}

double flips_for_expected_distance(std::size_t dimension, double target_delta) {
  require_positive(dimension, "flips_for_expected_distance", "dimension");
  require(target_delta >= 0.0 && target_delta < 0.5,
          "flips_for_expected_distance", "target_delta must be in [0, 0.5)");
  if (target_delta == 0.0) {
    return 0.0;
  }
  const double q = 1.0 - 2.0 / static_cast<double>(dimension);
  return std::log(1.0 - 2.0 * target_delta) / std::log(q);
}

}  // namespace hdc::stats
