#include "hdc/stats/metrics.hpp"

#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/stats/descriptive.hpp"

namespace hdc::stats {

double accuracy(std::span<const std::size_t> truth,
                std::span<const std::size_t> predicted) {
  require(truth.size() == predicted.size(), "accuracy",
          "truth and predicted must have equal length");
  require(!truth.empty(), "accuracy", "sample must be non-empty");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    correct += (truth[i] == predicted[i]) ? 1U : 0U;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

double mean_squared_error(std::span<const double> truth,
                          std::span<const double> predicted) {
  require(truth.size() == predicted.size(), "mean_squared_error",
          "truth and predicted must have equal length");
  require(!truth.empty(), "mean_squared_error", "sample must be non-empty");
  double ss = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double e = truth[i] - predicted[i];
    ss += e * e;
  }
  return ss / static_cast<double>(truth.size());
}

double root_mean_squared_error(std::span<const double> truth,
                               std::span<const double> predicted) {
  return std::sqrt(mean_squared_error(truth, predicted));
}

double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> predicted) {
  require(truth.size() == predicted.size(), "mean_absolute_error",
          "truth and predicted must have equal length");
  require(!truth.empty(), "mean_absolute_error", "sample must be non-empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    sum += std::abs(truth[i] - predicted[i]);
  }
  return sum / static_cast<double>(truth.size());
}

double r_squared(std::span<const double> truth,
                 std::span<const double> predicted) {
  require(truth.size() == predicted.size(), "r_squared",
          "truth and predicted must have equal length");
  require(!truth.empty(), "r_squared", "sample must be non-empty");
  const double mean_truth = mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - mean_truth) * (truth[i] - mean_truth);
  }
  if (ss_tot <= 0.0) {
    return 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

double normalized_mse(double mse, double reference_mse) {
  require(reference_mse > 0.0, "normalized_mse",
          "reference_mse must be positive");
  require(mse >= 0.0, "normalized_mse", "mse must be non-negative");
  return mse / reference_mse;
}

double normalized_accuracy_error(double accuracy_value,
                                 double reference_accuracy) {
  require_in_range(accuracy_value, 0.0, 1.0, "normalized_accuracy_error",
                   "accuracy_value");
  require(reference_accuracy >= 0.0 && reference_accuracy < 1.0,
          "normalized_accuracy_error", "reference_accuracy must be in [0, 1)");
  return (1.0 - accuracy_value) / (1.0 - reference_accuracy);
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes) : k_(num_classes) {
  require_positive(num_classes, "ConfusionMatrix", "num_classes");
  cells_.assign(k_ * k_, 0);
}

void ConfusionMatrix::record(std::size_t truth, std::size_t predicted) {
  require(truth < k_, "ConfusionMatrix::record", "truth label out of range");
  require(predicted < k_, "ConfusionMatrix::record",
          "predicted label out of range");
  ++cells_[truth * k_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  require(truth < k_, "ConfusionMatrix::count", "truth label out of range");
  require(predicted < k_, "ConfusionMatrix::count",
          "predicted label out of range");
  return cells_[truth * k_ + predicted];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) {
    return 0.0;
  }
  std::size_t diag = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    diag += cells_[i * k_ + i];
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> out(k_, 0.0);
  for (std::size_t i = 0; i < k_; ++i) {
    std::size_t row = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      row += cells_[i * k_ + j];
    }
    if (row > 0) {
      out[i] =
          static_cast<double>(cells_[i * k_ + i]) / static_cast<double>(row);
    }
  }
  return out;
}

std::vector<double> ConfusionMatrix::per_class_precision() const {
  std::vector<double> out(k_, 0.0);
  for (std::size_t j = 0; j < k_; ++j) {
    std::size_t col = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      col += cells_[i * k_ + j];
    }
    if (col > 0) {
      out[j] =
          static_cast<double>(cells_[j * k_ + j]) / static_cast<double>(col);
    }
  }
  return out;
}

double ConfusionMatrix::macro_f1() const {
  const std::vector<double> recall = per_class_recall();
  const std::vector<double> precision = per_class_precision();
  double sum = 0.0;
  for (std::size_t i = 0; i < k_; ++i) {
    const double denom = recall[i] + precision[i];
    sum += denom > 0.0 ? 2.0 * recall[i] * precision[i] / denom : 0.0;
  }
  return sum / static_cast<double>(k_);
}

}  // namespace hdc::stats
