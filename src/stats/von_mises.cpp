#include "hdc/stats/von_mises.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/stats/circular.hpp"

namespace hdc::stats {

VonMises::VonMises(double mu, double kappa)
    : mu_(wrap_angle(mu)), kappa_(kappa) {
  require(std::isfinite(kappa) && kappa >= 0.0, "VonMises",
          "kappa must be finite and non-negative");
  log_norm_ = std::log(two_pi) + std::log(bessel_i0(kappa_));
  if (kappa_ > 0.0) {
    const double tau = 1.0 + std::sqrt(1.0 + 4.0 * kappa_ * kappa_);
    const double rho = (tau - std::sqrt(2.0 * tau)) / (2.0 * kappa_);
    r0_ = (1.0 + rho * rho) / (2.0 * rho);
    b_ = rho;
  }
}

double VonMises::pdf(double theta) const noexcept {
  return std::exp(log_pdf(theta));
}

double VonMises::log_pdf(double theta) const noexcept {
  return kappa_ * std::cos(theta - mu_) - log_norm_;
}

double VonMises::sample(Rng& rng) const noexcept {
  if (kappa_ == 0.0) {
    return rng.uniform(0.0, two_pi);
  }
  // Best & Fisher (1979) wrapped-Cauchy envelope rejection sampler.
  for (;;) {
    const double u1 = rng.uniform();
    const double z = std::cos(std::numbers::pi * u1);
    const double f = (1.0 + r0_ * z) / (r0_ + z);
    const double c = kappa_ * (r0_ - f);
    const double u2 = rng.uniform();
    if (c * (2.0 - c) - u2 > 0.0 || std::log(c / u2) + 1.0 - c >= 0.0) {
      const double u3 = rng.uniform();
      const double sign = (u3 < 0.5) ? -1.0 : 1.0;
      return wrap_angle(mu_ + sign * std::acos(std::clamp(f, -1.0, 1.0)));
    }
  }
}

std::vector<double> VonMises::sample(Rng& rng, std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(sample(rng));
  }
  return out;
}

VonMises VonMises::fit(std::span<const double> angles) {
  const CircularSummary summary = circular_summary(angles);
  const double r = summary.resultant_length;
  // Piecewise A^{-1}(R-bar) approximation, Fisher (1995) eq. 4.40.
  double kappa = 0.0;
  if (r < 0.53) {
    kappa = 2.0 * r + r * r * r + 5.0 * r * r * r * r * r / 6.0;
  } else if (r < 0.85) {
    kappa = -0.4 + 1.39 * r + 0.43 / (1.0 - r);
  } else if (r < 1.0) {
    kappa = 1.0 / (r * r * r - 4.0 * r * r + 3.0 * r);
  } else {
    kappa = 1e8;  // Degenerate: all mass at one point.
  }
  return VonMises(summary.mean_direction, kappa);
}

double VonMises::bessel_i0(double x) noexcept {
  const double ax = std::abs(x);
  if (ax < 15.0) {
    // Power series: I0(x) = sum_k (x^2/4)^k / (k!)^2, converges fast here.
    const double q = ax * ax / 4.0;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k < 200; ++k) {
      term *= q / (static_cast<double>(k) * static_cast<double>(k));
      sum += term;
      if (term < sum * 1e-17) {
        break;
      }
    }
    return sum;
  }
  // Asymptotic expansion for large argument.
  const double inv = 1.0 / ax;
  const double series =
      1.0 + inv * (0.125 + inv * (0.0703125 + inv * 0.0732421875));
  return std::exp(ax) * series / std::sqrt(two_pi * ax);
}

}  // namespace hdc::stats
