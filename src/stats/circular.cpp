#include "hdc/stats/circular.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hdc/base/require.hpp"

namespace hdc::stats {

double wrap_angle(double theta) noexcept {
  double wrapped = std::fmod(theta, two_pi);
  if (wrapped < 0.0) {
    wrapped += two_pi;
  }
  return wrapped;
}

double angular_difference(double alpha, double beta) noexcept {
  double diff = std::fmod(alpha - beta, two_pi);
  if (diff > std::numbers::pi) {
    diff -= two_pi;
  } else if (diff <= -std::numbers::pi) {
    diff += two_pi;
  }
  return diff;
}

double circular_distance(double alpha, double beta) noexcept {
  return 0.5 * (1.0 - std::cos(alpha - beta));
}

double arc_distance(double alpha, double beta) noexcept {
  return std::abs(angular_difference(alpha, beta));
}

std::size_t index_arc_distance(std::size_t i, std::size_t j,
                               std::size_t m) noexcept {
  const std::size_t direct = i > j ? i - j : j - i;
  return std::min(direct, m - direct);
}

CircularSummary circular_summary(std::span<const double> angles) {
  require(!angles.empty(), "circular_summary", "sample must be non-empty");
  double sum_cos = 0.0;
  double sum_sin = 0.0;
  for (const double theta : angles) {
    sum_cos += std::cos(theta);
    sum_sin += std::sin(theta);
  }
  const auto n = static_cast<double>(angles.size());
  const double c = sum_cos / n;
  const double s = sum_sin / n;
  const double r = std::sqrt(c * c + s * s);
  CircularSummary out{};
  out.mean_direction = wrap_angle(std::atan2(s, c));
  out.resultant_length = std::min(r, 1.0);
  out.variance = 1.0 - out.resultant_length;
  out.stddev =
      out.resultant_length > 0.0
          ? std::sqrt(std::max(0.0, -2.0 * std::log(out.resultant_length)))
          : std::numeric_limits<double>::infinity();
  return out;
}

double circular_mean(std::span<const double> angles) {
  return circular_summary(angles).mean_direction;
}

double circular_linear_correlation(std::span<const double> angles,
                                   std::span<const double> values) {
  require(angles.size() == values.size(), "circular_linear_correlation",
          "angles and values must have equal length");
  require(angles.size() >= 3, "circular_linear_correlation",
          "need at least 3 samples");
  const auto n = static_cast<double>(angles.size());

  double mean_y = 0.0;
  for (const double y : values) {
    mean_y += y;
  }
  mean_y /= n;

  // Pearson correlations of y with cos(theta) and sin(theta), plus the
  // cos-sin cross correlation, combined per Mardia & Jupp (11.2.3).
  double sc = 0.0, ss = 0.0;  // centered sums for cos and sin
  double mean_c = 0.0, mean_s = 0.0;
  for (const double theta : angles) {
    mean_c += std::cos(theta);
    mean_s += std::sin(theta);
  }
  mean_c /= n;
  mean_s /= n;

  double syc = 0.0, sys = 0.0, scs = 0.0, syy = 0.0, scc = 0.0, sss = 0.0;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    const double dc = std::cos(angles[i]) - mean_c;
    const double ds = std::sin(angles[i]) - mean_s;
    const double dy = values[i] - mean_y;
    syc += dy * dc;
    sys += dy * ds;
    scs += dc * ds;
    syy += dy * dy;
    scc += dc * dc;
    sss += ds * ds;
  }
  sc = scc;
  ss = sss;
  if (syy <= 0.0 || sc <= 0.0 || ss <= 0.0) {
    return 0.0;
  }
  const double rxc = syc / std::sqrt(syy * sc);
  const double rxs = sys / std::sqrt(syy * ss);
  const double rcs = scs / std::sqrt(sc * ss);
  const double denom = 1.0 - rcs * rcs;
  if (denom <= 0.0) {
    return 0.0;
  }
  const double r2 =
      (rxc * rxc + rxs * rxs - 2.0 * rxc * rxs * rcs) / denom;
  return std::clamp(r2, 0.0, 1.0);
}

}  // namespace hdc::stats
