#ifndef HDC_STATS_CIRCULAR_HPP
#define HDC_STATS_CIRCULAR_HPP

/// \file circular.hpp
/// \brief Directional-statistics primitives (circular data substrate).
///
/// The paper's Section 5 defines the distance between two angles
/// alpha, beta in [0, 2*pi] as rho(alpha, beta) = (1 - cos(alpha - beta)) / 2
/// (Lund, 1999).  This header provides that distance plus the standard
/// descriptive statistics of directional data (circular mean, resultant
/// length, circular variance/std) used by the synthetic dataset generators
/// and by the tests that validate the circular basis-hypervector profile.

#include <cstddef>
#include <numbers>
#include <span>

namespace hdc::stats {

/// 2*pi as a double; the period of all angular quantities in this library.
inline constexpr double two_pi = 2.0 * std::numbers::pi;

/// Wraps an angle (radians) into [0, 2*pi).
[[nodiscard]] double wrap_angle(double theta) noexcept;

/// Signed minimal angular difference alpha - beta wrapped into (-pi, pi].
[[nodiscard]] double angular_difference(double alpha, double beta) noexcept;

/// Circular distance rho(alpha, beta) = (1 - cos(alpha - beta)) / 2 in [0, 1].
/// This is the distance the paper adopts for angles (Section 5, eq. for rho).
[[nodiscard]] double circular_distance(double alpha, double beta) noexcept;

/// Arc-length distance |alpha - beta| measured around the circle, in [0, pi].
[[nodiscard]] double arc_distance(double alpha, double beta) noexcept;

/// Circular distance between indices i and j of m equidistant points on the
/// circle, in index units: min(|i-j|, m-|i-j|).  Used by the triangular
/// distance profile of circular-hypervectors.
[[nodiscard]] std::size_t index_arc_distance(std::size_t i, std::size_t j,
                                             std::size_t m) noexcept;

/// Summary of a sample of directions.
struct CircularSummary {
  double mean_direction;    ///< Argument of the resultant vector, in [0, 2*pi).
  double resultant_length;  ///< Mean resultant length R-bar in [0, 1].
  double variance;          ///< Circular variance 1 - R-bar in [0, 1].
  double stddev;            ///< Circular standard deviation sqrt(-2 ln R-bar).
};

/// Computes the circular summary statistics of a sample of angles (radians).
/// \throws std::invalid_argument if the sample is empty.
[[nodiscard]] CircularSummary circular_summary(std::span<const double> angles);

/// Circular mean direction of a sample of angles (radians), in [0, 2*pi).
/// \throws std::invalid_argument if the sample is empty.
[[nodiscard]] double circular_mean(std::span<const double> angles);

/// Circular-linear association: the squared correlation of a linear variable
/// y with (cos theta, sin theta) regressors (Mardia & Jupp, 2000, sec. 11.2).
/// Returns a value in [0, 1]; 0 means no circular-linear correlation.
/// \throws std::invalid_argument if sizes differ or fewer than 3 samples.
[[nodiscard]] double circular_linear_correlation(
    std::span<const double> angles, std::span<const double> values);

}  // namespace hdc::stats

#endif  // HDC_STATS_CIRCULAR_HPP
