#ifndef HDC_STATS_DESCRIPTIVE_HPP
#define HDC_STATS_DESCRIPTIVE_HPP

/// \file descriptive.hpp
/// \brief Linear descriptive statistics used by tests and the bench harness.

#include <cstddef>
#include <span>

namespace hdc::stats {

/// Arithmetic mean. \throws std::invalid_argument on an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator).
/// \throws std::invalid_argument if fewer than 2 samples.
[[nodiscard]] double sample_variance(std::span<const double> xs);

/// Unbiased sample standard deviation.
/// \throws std::invalid_argument if fewer than 2 samples.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Population variance (n denominator).
/// \throws std::invalid_argument on an empty sample.
[[nodiscard]] double population_variance(std::span<const double> xs);

/// Minimum value. \throws std::invalid_argument on an empty sample.
[[nodiscard]] double minimum(std::span<const double> xs);

/// Maximum value. \throws std::invalid_argument on an empty sample.
[[nodiscard]] double maximum(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1] (q = 0.5 gives the median).
/// \throws std::invalid_argument on an empty sample or q outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
/// \throws std::invalid_argument if sizes differ or fewer than 2 samples.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

}  // namespace hdc::stats

#endif  // HDC_STATS_DESCRIPTIVE_HPP
