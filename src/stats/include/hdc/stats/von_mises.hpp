#ifndef HDC_STATS_VON_MISES_HPP
#define HDC_STATS_VON_MISES_HPP

/// \file von_mises.hpp
/// \brief The von Mises distribution, the circular analogue of the normal.
///
/// Used by the synthetic JIGSAWS-like gesture generator to draw angular
/// kinematic channels around class-specific mean directions (the paper's real
/// datasets are angular; see DESIGN.md section 3 for the substitution).

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/base/rng.hpp"

namespace hdc::stats {

/// von Mises distribution VM(mu, kappa) on the circle [0, 2*pi).
///
/// kappa = 0 degenerates to the uniform distribution on the circle; large
/// kappa approaches a wrapped normal with variance 1/kappa.
class VonMises {
 public:
  /// \param mu     Mean direction in radians (wrapped into [0, 2*pi)).
  /// \param kappa  Concentration, must be >= 0.
  /// \throws std::invalid_argument if kappa < 0 or not finite.
  VonMises(double mu, double kappa);

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double kappa() const noexcept { return kappa_; }

  /// Probability density at angle theta.
  [[nodiscard]] double pdf(double theta) const noexcept;

  /// Natural log of the density at angle theta.
  [[nodiscard]] double log_pdf(double theta) const noexcept;

  /// Draws one sample using the Best-Fisher (1979) rejection algorithm.
  [[nodiscard]] double sample(Rng& rng) const noexcept;

  /// Draws \p n samples.
  [[nodiscard]] std::vector<double> sample(Rng& rng, std::size_t n) const;

  /// Maximum-likelihood estimate of (mu, kappa) from a sample, using the
  /// standard A(kappa) inversion approximation (Fisher, 1995, eq. 4.40-4.41).
  /// \throws std::invalid_argument if the sample is empty.
  [[nodiscard]] static VonMises fit(std::span<const double> angles);

  /// Modified Bessel function of the first kind, order zero (series +
  /// asymptotic regimes); exposed for tests.
  [[nodiscard]] static double bessel_i0(double x) noexcept;

 private:
  double mu_;
  double kappa_;
  double log_norm_;  ///< log(2*pi*I0(kappa)), cached normalization constant.
  // Cached constants of the Best-Fisher sampler.
  double b_ = 0.0;
  double r0_ = 0.0;
};

}  // namespace hdc::stats

#endif  // HDC_STATS_VON_MISES_HPP
