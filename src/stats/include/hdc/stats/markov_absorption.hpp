#ifndef HDC_STATS_MARKOV_ABSORPTION_HPP
#define HDC_STATS_MARKOV_ABSORPTION_HPP

/// \file markov_absorption.hpp
/// \brief Expected absorption times of the paper's bit-flipping Markov chain.
///
/// Section 4.2 (Figure 4) models the creation of a hypervector at expected
/// normalized distance Delta from a start vector as a random walk on Hamming
/// distance: each step flips one uniformly random position of a d-bit vector,
/// which moves the walk away from the start with probability (d - k)/d when
/// the current distance is k bits, and back with probability k/d.  The number
/// of flips F(i,j) needed so that E[delta(L_i, L_j)] = Delta(i,j) is the
/// expected number of steps until the walk is absorbed at k = Delta * d.
///
/// This module computes u(k) — the expected steps-to-absorption from distance
/// k — three ways, which the tests cross-check:
///   1. the tridiagonal linear system of the paper, solved by the Thomas
///      algorithm (`absorption_times_tridiagonal`);
///   2. a closed forward recurrence v(k) = (d + k v(k-1)) / (d - k)
///      (`absorption_times`), derived from the same system;
///   3. Monte-Carlo simulation of the walk (`simulate_absorption_steps`).
///
/// It also provides the closed-form expected distance after F *independent*
/// uniform flips (with replacement), used to calibrate scatter codes.

#include <cstdint>
#include <vector>

#include "hdc/base/rng.hpp"

namespace hdc::stats {

/// Expected steps-to-absorption u(k) for k = 0..target_bits, computed with
/// the forward recurrence.  u(target_bits) == 0.
///
/// \param dimension    d, number of bits in the hypervector (> 0).
/// \param target_bits  absorption state Delta*d in bits (0 < target <= d).
/// \throws std::invalid_argument on invalid arguments.
[[nodiscard]] std::vector<double> absorption_times(std::size_t dimension,
                                                   std::size_t target_bits);

/// Same quantity computed by assembling the (target_bits x target_bits)
/// tridiagonal system of Section 4.2 and solving it with the Thomas
/// algorithm.  Exposed so tests can verify both derivations agree.
[[nodiscard]] std::vector<double> absorption_times_tridiagonal(
    std::size_t dimension, std::size_t target_bits);

/// Expected number of single-bit flips to walk from distance 0 to
/// `target_bits`; this is u(0), i.e. the paper's F(i,j).
[[nodiscard]] double expected_flips_to_distance(std::size_t dimension,
                                                std::size_t target_bits);

/// Monte-Carlo estimate of the absorption step count from state 0: simulates
/// `trials` random walks and averages the step counts.  Used by tests and the
/// Figure 4 bench to validate the analytic solutions.
[[nodiscard]] double simulate_absorption_steps(std::size_t dimension,
                                               std::size_t target_bits,
                                               std::size_t trials, Rng& rng);

/// Closed-form expected normalized Hamming distance after `flips` uniform
/// independent single-bit flips (positions drawn with replacement):
/// E[delta] = (1 - (1 - 2/d)^F) / 2.
[[nodiscard]] double expected_distance_after_flips(std::size_t dimension,
                                                   double flips);

/// Inverse of `expected_distance_after_flips`: the (real-valued) flip count
/// F such that E[delta] = target_delta.  Requires 0 <= target_delta < 0.5.
[[nodiscard]] double flips_for_expected_distance(std::size_t dimension,
                                                 double target_delta);

}  // namespace hdc::stats

#endif  // HDC_STATS_MARKOV_ABSORPTION_HPP
