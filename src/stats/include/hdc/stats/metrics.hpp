#ifndef HDC_STATS_METRICS_HPP
#define HDC_STATS_METRICS_HPP

/// \file metrics.hpp
/// \brief Evaluation metrics used by the paper's experiments (Section 6).
///
/// Includes the two normalizations used in Figures 7 and 8: normalized MSE
/// (MSE divided by a reference MSE) and the normalized accuracy error
/// (1 - a) / (1 - a_ref).

#include <cstddef>
#include <span>
#include <vector>

namespace hdc::stats {

/// Fraction of positions where predicted label equals the true label.
/// \throws std::invalid_argument if sizes differ or the sample is empty.
[[nodiscard]] double accuracy(std::span<const std::size_t> truth,
                              std::span<const std::size_t> predicted);

/// Mean squared error. \throws std::invalid_argument on size mismatch/empty.
[[nodiscard]] double mean_squared_error(std::span<const double> truth,
                                        std::span<const double> predicted);

/// Root mean squared error.
[[nodiscard]] double root_mean_squared_error(std::span<const double> truth,
                                             std::span<const double> predicted);

/// Mean absolute error.
[[nodiscard]] double mean_absolute_error(std::span<const double> truth,
                                         std::span<const double> predicted);

/// Coefficient of determination R^2 (1 - SS_res / SS_tot); returns 0 when the
/// truth has zero variance.
[[nodiscard]] double r_squared(std::span<const double> truth,
                               std::span<const double> predicted);

/// Figure 7/8 normalization: mse / reference_mse.
/// \throws std::invalid_argument if reference_mse <= 0.
[[nodiscard]] double normalized_mse(double mse, double reference_mse);

/// Figure 8 normalization for classification: (1 - a) / (1 - a_ref), where
/// `a` is the accuracy under test and `a_ref` the reference accuracy.
/// \throws std::invalid_argument unless 0 <= a <= 1 and 0 <= a_ref < 1.
[[nodiscard]] double normalized_accuracy_error(double accuracy_value,
                                               double reference_accuracy);

/// Dense confusion matrix for k-way classification.
class ConfusionMatrix {
 public:
  /// \param num_classes k, must be positive.
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Records one (truth, predicted) pair. \throws std::invalid_argument on
  /// out-of-range labels.
  void record(std::size_t truth, std::size_t predicted);

  [[nodiscard]] std::size_t num_classes() const noexcept { return k_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Count of samples with the given true and predicted labels.
  [[nodiscard]] std::size_t count(std::size_t truth,
                                  std::size_t predicted) const;

  /// Overall accuracy; 0 if no samples recorded.
  [[nodiscard]] double accuracy() const noexcept;

  /// Per-class recall (diagonal / row sum); 0 for classes never seen.
  [[nodiscard]] std::vector<double> per_class_recall() const;

  /// Per-class precision (diagonal / column sum); 0 for classes never
  /// predicted.
  [[nodiscard]] std::vector<double> per_class_precision() const;

  /// Macro-averaged F1 score over all classes.
  [[nodiscard]] double macro_f1() const;

 private:
  std::size_t k_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row-major [truth][predicted]
};

}  // namespace hdc::stats

#endif  // HDC_STATS_METRICS_HPP
