#include "hdc/stats/tridiagonal.hpp"

#include <cmath>
#include <stdexcept>

#include "hdc/base/require.hpp"

namespace hdc::stats {

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  const std::size_t n = diag.size();
  require(n > 0, "solve_tridiagonal", "system must be non-empty");
  require(rhs.size() == n, "solve_tridiagonal",
          "rhs size must equal diag size");
  require(lower.size() == n - 1, "solve_tridiagonal",
          "lower diagonal must have n-1 entries");
  require(upper.size() == n - 1, "solve_tridiagonal",
          "upper diagonal must have n-1 entries");

  // Forward sweep: eliminate the sub-diagonal, storing modified coefficients.
  std::vector<double> c_prime(n - 1 > 0 ? n - 1 : 0);
  std::vector<double> d_prime(n);
  double pivot = diag[0];
  if (pivot == 0.0 || !std::isfinite(pivot)) {
    throw std::domain_error("solve_tridiagonal: zero or non-finite pivot");
  }
  if (n > 1) {
    c_prime[0] = upper[0] / pivot;
  }
  d_prime[0] = rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = diag[i] - lower[i - 1] * c_prime[i - 1];
    if (pivot == 0.0 || !std::isfinite(pivot)) {
      throw std::domain_error("solve_tridiagonal: zero or non-finite pivot");
    }
    if (i < n - 1) {
      c_prime[i] = upper[i] / pivot;
    }
    d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / pivot;
  }

  // Back substitution.
  std::vector<double> x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  }
  return x;
}

}  // namespace hdc::stats
