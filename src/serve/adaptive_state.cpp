#include "hdc/serve/adaptive_state.hpp"

#include <stdexcept>
#include <utility>

#include "hdc/io/delta.hpp"

namespace hdc::serve {

AdaptiveState::AdaptiveState(ServingStatePtr base, std::uint64_t seed)
    : base_(std::move(base)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("AdaptiveState: base state must not be null");
  }
  if (base_->pipeline().kind() == io::PipelineKind::Classifier) {
    classifier_ = std::make_unique<AdaptiveClassifier>(
        base_->pipeline().classifier_ptr(), seed);
  } else {
    regressor_ = std::make_unique<AdaptiveRegressor>(
        base_->pipeline().regressor_ptr(), seed);
  }
}

AdaptOutcome AdaptiveState::adapt_encoded(const Hypervector& encoded,
                                          double target) {
  AdaptOutcome out;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (classifier_ != nullptr) {
    const std::size_t label =
        checked_class_label(target, classifier_->num_classes());
    const std::uint64_t before = classifier_->updates();
    out.predicted =
        static_cast<double>(classifier_->adapt(label, encoded));
    out.feedback_rows = classifier_->feedback_rows();
    out.updates = classifier_->updates();
    out.updated = out.updates != before;
    out.overlay_rows = classifier_->touched_classes();
  } else {
    const std::uint64_t before = regressor_->updates();
    out.predicted = regressor_->adapt(encoded, target);
    out.feedback_rows = regressor_->feedback_rows();
    out.updates = regressor_->updates();
    out.updated = out.updates != before;
    out.overlay_rows = regressor_->touched() ? 1 : 0;
  }
  return out;
}

AdaptOutcome AdaptiveState::adapt(std::span<const double> features,
                                  double target) {
  // Encoding is const over shared encoder state; only the overlay update
  // itself needs the lock.
  return adapt_encoded(base_->pipeline().encode(features), target);
}

AdaptOutcome AdaptiveState::adapt_text(std::string_view text, double target) {
  return adapt_encoded(base_->pipeline().encode_text(text), target);
}

double AdaptiveState::predict_encoded(const Hypervector& encoded) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (classifier_ != nullptr) {
    return static_cast<double>(classifier_->predict(encoded));
  }
  return regressor_->predict(encoded);
}

double AdaptiveState::predict(std::span<const double> features) const {
  return predict_encoded(base_->pipeline().encode(features));
}

double AdaptiveState::predict_text(std::string_view text) const {
  return predict_encoded(base_->pipeline().encode_text(text));
}

Top2 AdaptiveState::top2_encoded(const Hypervector& encoded) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (classifier_ == nullptr) {
    throw std::logic_error(
        "AdaptiveState: confidence heads come from classifier overlays");
  }
  return classifier_->predict_top2(encoded);
}

Top2 AdaptiveState::predict_top2(std::span<const double> features) const {
  return top2_encoded(base_->pipeline().encode(features));
}

Top2 AdaptiveState::predict_top2_text(std::string_view text) const {
  return top2_encoded(base_->pipeline().encode_text(text));
}

Band AdaptiveState::band_encoded(const Hypervector& encoded) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (regressor_ == nullptr) {
    throw std::logic_error(
        "AdaptiveState: band heads come from regressor overlays");
  }
  return regressor_->predict_band(encoded);
}

Band AdaptiveState::predict_band(std::span<const double> features) const {
  return band_encoded(base_->pipeline().encode(features));
}

Band AdaptiveState::predict_band_text(std::string_view text) const {
  return band_encoded(base_->pipeline().encode_text(text));
}

std::uint64_t AdaptiveState::overlay_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return classifier_ != nullptr ? classifier_->touched_classes()
                                : (regressor_->touched() ? 1 : 0);
}

std::uint64_t AdaptiveState::feedback_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return classifier_ != nullptr ? classifier_->feedback_rows()
                                : regressor_->feedback_rows();
}

std::uint64_t AdaptiveState::updates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return classifier_ != nullptr ? classifier_->updates()
                                : regressor_->updates();
}

std::map<std::size_t, std::vector<std::uint64_t>> AdaptiveState::changed_rows()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return classifier_ != nullptr ? classifier_->changed_rows()
                                : regressor_->changed_rows();
}

std::size_t AdaptiveState::export_delta(const std::string& base_path,
                                        const std::string& out_path) const {
  const io::MappedSnapshot base = io::MappedSnapshot::open(base_path);
  const std::size_t section = io::find_model_section(base);
  const io::SectionRecord& record = base.section(section);
  const std::size_t model_rows =
      classifier_ != nullptr ? classifier_->num_classes() : 1;
  const std::size_t dimension = classifier_ != nullptr
                                    ? classifier_->dimension()
                                    : regressor_->dimension();
  if (record.count != model_rows || record.dimension != dimension) {
    throw io::SnapshotError(
        "delta export: the base snapshot's model shape disagrees with the "
        "serving model (" +
        base_path + ")");
  }
  const std::uint64_t hash = io::snapshot_file_hash(base_path);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto rows =
      io::diff_rows(base, section, [this](std::size_t i) {
        return classifier_ != nullptr ? classifier_->class_row(i)
                                      : regressor_->model_words();
      });
  if (rows.empty()) {
    throw std::runtime_error(
        "delta export: the adapted model does not differ from " + base_path);
  }
  io::write_delta_file(io::make_delta(base, hash, section, rows), out_path);
  return rows.size();
}

void AdaptiveState::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (classifier_ != nullptr) {
    classifier_->reset();
  } else {
    regressor_->reset();
  }
}

}  // namespace hdc::serve
