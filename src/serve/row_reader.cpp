#include "hdc/serve/row_reader.hpp"

#include <charconv>
#include <cmath>
#include <istream>

namespace hdc::serve {

namespace {

bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f';
}

bool is_blank(const std::string& line) noexcept {
  for (const char c : line) {
    if (!is_space(c)) {
      return false;
    }
  }
  return true;
}

/// Parses one numeric field spanning [begin, end) of \p line (the caller
/// owns the diagnostic, which needs the line number).
NumberParse parse_field(const std::string& line, std::size_t begin,
                        std::size_t end, double& value) {
  return parse_strict_number(
      std::string_view(line).substr(begin, end - begin), value);
}

}  // namespace

NumberParse parse_strict_number(std::string_view text, double& value) {
  // std::from_chars rather than strtod: the wire format must not depend on
  // the host application's LC_NUMERIC locale (and strtod's hex-float
  // extension must not leak into any accepting front end).  from_chars
  // happily accepts "nan" and "inf"; those are rejected here — a non-finite
  // value fed onward corrupts results silently instead of failing at the
  // parse edge.
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) {
    ++begin;
  }
  while (end > begin && is_space(text[end - 1])) {
    --end;
  }
  if (begin < end && text[begin] == '+') {
    ++begin;  // from_chars takes '-' but not the conventional '+'
    if (begin < end && text[begin] == '-') {
      return NumberParse::Malformed;
    }
  }
  if (begin == end) {
    return NumberParse::Malformed;
  }
  const auto [parsed_end, error] =
      std::from_chars(text.data() + begin, text.data() + end, value);
  if (error == std::errc::result_out_of_range &&
      parsed_end == text.data() + end) {
    // "1e999" parses but overflows to +-inf: same poison, same rejection.
    return NumberParse::NonFinite;
  }
  if (error != std::errc{} || parsed_end != text.data() + end) {
    return NumberParse::Malformed;
  }
  return std::isfinite(value) ? NumberParse::Ok : NumberParse::NonFinite;
}

RowFormat parse_row_format(const std::string& name) {
  if (name == "csv") {
    return RowFormat::Csv;
  }
  if (name == "jsonl") {
    return RowFormat::Jsonl;
  }
  if (name == "text") {
    return RowFormat::Text;
  }
  throw std::invalid_argument("unknown row format '" + name +
                              "' (expected csv, jsonl or text)");
}

namespace {

/// Numeric formats need a positive arity; Text rows have none (matching
/// io::Pipeline::num_features() == 0 for text pipelines), so the two
/// mistakes — a text reader on a numeric pipeline or vice versa — both
/// fail at construction.
void require_arity(std::size_t num_features, RowFormat format) {
  if (format == RowFormat::Text) {
    if (num_features != 0) {
      throw std::invalid_argument(
          "RowReader: text format takes num_features == 0 (rows are raw "
          "lines, not feature vectors)");
    }
  } else if (num_features == 0) {
    throw std::invalid_argument("RowReader: num_features must be > 0");
  }
}

}  // namespace

RowReader::RowReader(std::istream& in, std::size_t num_features,
                     RowFormat format)
    : in_(&in), num_features_(num_features), format_(format) {
  require_arity(num_features, format);
}

RowReader::RowReader(std::size_t num_features, RowFormat format)
    : in_(nullptr), num_features_(num_features), format_(format) {
  require_arity(num_features, format);
}

void RowReader::fail(const std::string& what) const {
  throw RowError("row " + std::to_string(line_) + ": " + what);
}

bool RowReader::parse_line(const std::string& line, std::vector<double>& out) {
  if (format_ == RowFormat::Text) {
    throw std::logic_error(
        "RowReader::parse_line: text-format reader (use parse_text_line)");
  }
  ++line_;
  // CRLF producers (and text-mode Windows pipes) leave a trailing CR; the
  // copy is taken only on that path.
  const std::string* text = &line;
  std::string stripped;
  if (!line.empty() && line.back() == '\r') {
    stripped.assign(line, 0, line.size() - 1);
    text = &stripped;
  }
  if (is_blank(*text)) {
    return false;
  }
  out.resize(num_features_);
  if (format_ == RowFormat::Csv) {
    parse_csv(*text, out);
  } else {
    parse_jsonl(*text, out);
  }
  ++rows_;
  return true;
}

bool RowReader::parse_text_line(const std::string& line, std::string& out) {
  if (format_ != RowFormat::Text) {
    throw std::logic_error(
        "RowReader::parse_text_line: numeric-format reader (use "
        "parse_line)");
  }
  ++line_;
  out = line;
  if (!out.empty() && out.back() == '\r') {
    out.pop_back();
  }
  if (is_blank(out)) {
    return false;
  }
  ++rows_;
  return true;
}

bool RowReader::next(std::vector<double>& out) {
  if (in_ == nullptr) {
    throw std::logic_error(
        "RowReader::next: stream-less reader (use parse_line)");
  }
  std::string line;
  while (std::getline(*in_, line)) {
    if (parse_line(line, out)) {
      return true;
    }
  }
  if (in_->bad()) {
    fail("stream read failure");
  }
  return false;
}

bool RowReader::next_text(std::string& out) {
  if (in_ == nullptr) {
    throw std::logic_error(
        "RowReader::next_text: stream-less reader (use parse_text_line)");
  }
  std::string line;
  while (std::getline(*in_, line)) {
    if (parse_text_line(line, out)) {
      return true;
    }
  }
  if (in_->bad()) {
    fail("stream read failure");
  }
  return false;
}

bool RowReader::may_block() const {
  return in_ == nullptr || !in_->good() || in_->rdbuf() == nullptr ||
         in_->rdbuf()->in_avail() <= 0;
}

void RowReader::parse_csv(const std::string& line,
                          std::vector<double>& out) const {
  std::size_t begin = 0;
  std::size_t field = 0;
  while (true) {
    const std::size_t comma = line.find(',', begin);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    if (field >= num_features_) {
      fail("expected " + std::to_string(num_features_) +
           " fields, got more (extra field starts at column " +
           std::to_string(begin + 1) + ")");
    }
    switch (parse_field(line, begin, end, out[field])) {
      case NumberParse::Ok:
        break;
      case NumberParse::Malformed:
        fail("field " + std::to_string(field + 1) + " ('" +
             line.substr(begin, end - begin) + "') is not a number");
      case NumberParse::NonFinite:
        fail("field " + std::to_string(field + 1) + " ('" +
             line.substr(begin, end - begin) +
             "') is not finite (nan/inf rejected)");
    }
    ++field;
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  if (field != num_features_) {
    fail("expected " + std::to_string(num_features_) + " fields, got " +
         std::to_string(field));
  }
}

void RowReader::parse_jsonl(const std::string& line,
                            std::vector<double>& out) const {
  std::size_t at = 0;
  const auto skip_spaces = [&] {
    while (at < line.size() && is_space(line[at])) {
      ++at;
    }
  };
  skip_spaces();
  if (at >= line.size() || line[at] != '[') {
    fail("JSONL rows must be arrays of numbers ('[v, ...]')");
  }
  ++at;
  std::size_t field = 0;
  while (true) {
    skip_spaces();
    if (at < line.size() && line[at] == ']' && field == 0) {
      break;  // `[]` — caught as wrong arity below.
    }
    // A number token runs until the next delimiter.
    const std::size_t begin = at;
    while (at < line.size() && line[at] != ',' && line[at] != ']') {
      ++at;
    }
    if (at >= line.size()) {
      fail("unterminated JSON array (missing ']')");
    }
    if (field >= num_features_) {
      fail("expected " + std::to_string(num_features_) +
           " fields, got more (extra field starts at column " +
           std::to_string(begin + 1) + ")");
    }
    switch (parse_field(line, begin, at, out[field])) {
      case NumberParse::Ok:
        break;
      case NumberParse::Malformed:
        fail("field " + std::to_string(field + 1) + " ('" +
             line.substr(begin, at - begin) + "') is not a number");
      case NumberParse::NonFinite:
        fail("field " + std::to_string(field + 1) + " ('" +
             line.substr(begin, at - begin) +
             "') is not finite (nan/inf rejected)");
    }
    ++field;
    if (line[at] == ']') {
      break;
    }
    ++at;  // consume the comma
  }
  ++at;  // consume the ']'
  skip_spaces();
  if (at != line.size()) {
    fail("trailing bytes after the JSON array (column " +
         std::to_string(at + 1) + ")");
  }
  if (field != num_features_) {
    fail("expected " + std::to_string(num_features_) + " fields, got " +
         std::to_string(field));
  }
}

}  // namespace hdc::serve
