#include "hdc/serve/net_server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <iostream>
#include <list>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "hdc/io/delta.hpp"
#include "hdc/runtime/batch_classifier.hpp"
#include "hdc/runtime/batch_regressor.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace hdc::serve {

namespace {

using clock = std::chrono::steady_clock;

double microseconds_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Shortest round-trip decimal of a double (the `!adapt` reply's predicted=
/// field; classifier labels print as integers this way too).
std::string format_double(double value) {
  char buffer[64];
  const auto [end, error] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return error == std::errc{} ? std::string(buffer, end) : std::string("?");
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

#if !defined(_WIN32)

namespace {

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Sends the whole buffer, suppressing SIGPIPE; false when the peer is gone.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool send_all(int fd, const std::string& text) {
  return send_all(fd, text.data(), text.size());
}

int make_tcp_listener(const std::string& host, std::uint16_t port,
                      std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("NetServer: socket");
  }
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("NetServer: '" + host +
                             "' is not an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("NetServer: bind/listen on " + host + ":" +
                std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("NetServer: getsockname");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("NetServer: unix socket path too long: " + path);
  }
  std::copy(path.begin(), path.end(), addr.sun_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("NetServer: socket(AF_UNIX)");
  }
  set_cloexec(fd);
  ::unlink(path.c_str());  // A stale socket file would make bind fail.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("NetServer: bind/listen on " + path);
  }
  return fd;
}

}  // namespace

/// Connection registry + counters, kept out of the header so the header
/// stays free of <thread>/<list> and platform details.
struct NetServer::Impl {
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  std::mutex conns_mutex;
  std::list<Conn> conns;  ///< Stable addresses for the `done` flags.
  std::mutex pool_mutex;  ///< Guards the lazy worker-pool creation.
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> ran{false};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> rows{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> rejected_reloads{0};

  /// Joins (only) connections that have finished; called opportunistically
  /// from the accept loop so a long-lived server does not accumulate dead
  /// threads.
  void reap_finished() {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->done.load(std::memory_order_acquire)) {
        it->thread.join();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void join_all() {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    for (Conn& conn : conns) {
      conn.thread.join();
    }
    conns.clear();
  }
};

NetServer::NetServer(io::LoadedPipeline loaded, std::string snapshot_path,
                     NetServerOptions options, runtime::ThreadPoolPtr pool)
    : options_(std::move(options)),
      pool_(std::move(pool)),
      swap_(std::move(loaded), std::move(snapshot_path)),
      base_snapshot_path_(swap_.load()->source_path()),
      num_features_(swap_.load()->pipeline().num_features()),
      classifies_(swap_.load()->pipeline().kind() ==
                  io::PipelineKind::Classifier),
      text_input_(swap_.load()->pipeline().input() ==
                  io::PipelineInput::Text),
      impl_(new Impl) {
  try {
    if (options_.batch_size == 0) {
      throw std::invalid_argument("NetServer: batch_size must be > 0");
    }
    if (text_input_ != (options_.input == RowFormat::Text)) {
      throw std::invalid_argument(
          std::string("NetServer: the pipeline takes ") +
          io::to_string(swap_.load()->pipeline().input()) +
          " rows but the configured input format disagrees");
    }
    if (options_.head == HeadMode::Confidence && !classifies_) {
      throw std::invalid_argument(
          "NetServer: confidence heads come from classifiers; regressor "
          "pipelines emit bands");
    }
    if (options_.head == HeadMode::Band && classifies_) {
      throw std::invalid_argument(
          "NetServer: band heads come from regressors; classifier "
          "pipelines emit confidences");
    }
    if (options_.host.empty() && options_.unix_path.empty()) {
      throw std::invalid_argument(
          "NetServer: no listener configured (need a host or a unix path)");
    }
    if (::pipe(stop_pipe_) != 0 || ::pipe(reload_pipe_) != 0) {
      throw_errno("NetServer: pipe");
    }
    for (const int fd : {stop_pipe_[0], stop_pipe_[1], reload_pipe_[0],
                         reload_pipe_[1]}) {
      set_cloexec(fd);
    }
    // The notify write end must never block inside a signal handler.
    ::fcntl(reload_pipe_[1], F_SETFL, O_NONBLOCK);
    if (!options_.host.empty()) {
      tcp_fd_ = make_tcp_listener(options_.host, options_.port, port_);
    }
    if (!options_.unix_path.empty()) {
      unix_fd_ = make_unix_listener(options_.unix_path);
    }
  } catch (...) {
    for (const int fd : {tcp_fd_, unix_fd_, stop_pipe_[0], stop_pipe_[1],
                         reload_pipe_[0], reload_pipe_[1]}) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    delete impl_;
    throw;
  }
}

NetServer::~NetServer() {
  stop();
  impl_->join_all();
  for (const int fd : {tcp_fd_, unix_fd_, stop_pipe_[0], stop_pipe_[1],
                       reload_pipe_[0], reload_pipe_[1]}) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
  delete impl_;
}

void NetServer::stop() {
  if (!impl_->stop_requested.exchange(true)) {
    // One byte, never drained: level-triggered POLLIN keeps waking every
    // poller (accept loop and all connection loops) until they exit.
    const char byte = 's';
    [[maybe_unused]] const ssize_t ignored =
        ::write(stop_pipe_[1], &byte, 1);
  }
}

ServingStatePtr NetServer::reload(const std::string& path) {
  try {
    // A delta file is applied in memory against the tracked base; a full
    // snapshot loads as before and *becomes* the tracked base.  The check
    // runs before the load so base tracking and loading agree on what the
    // file was even if it changes on disk mid-reload (the loaded bytes are
    // authoritative either way: validation rejects torn files).
    const bool is_delta = io::snapshot_is_delta(path);
    io::LoadedPipeline fresh = io::load_pipeline_or_delta(
        path, base_snapshot_path(), io::SnapshotIntegrity::Checksum,
        options_.mapping);
    ServingStatePtr state = swap_.swap_to(std::move(fresh), path);
    if (!is_delta) {
      const std::lock_guard<std::mutex> lock(adapt_mutex_);
      base_snapshot_path_ = path;
    }
    impl_->reloads.fetch_add(1, std::memory_order_relaxed);
    return state;
  } catch (...) {
    impl_->rejected_reloads.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

std::string NetServer::base_snapshot_path() const {
  const std::lock_guard<std::mutex> lock(adapt_mutex_);
  return base_snapshot_path_;
}

AdaptiveStatePtr NetServer::adaptive_state() {
  const ServingStatePtr active = swap_.load();
  const std::lock_guard<std::mutex> lock(adapt_mutex_);
  if (!adaptive_ || adaptive_->base_state() != active) {
    adaptive_ = std::make_shared<AdaptiveState>(active);
  }
  return adaptive_;
}

ServingStatePtr NetServer::reload() {
  return reload(swap_.load()->source_path());
}

std::uint64_t NetServer::generation() const {
  if (options_.cluster.generation) {
    return options_.cluster.generation();
  }
  return swap_.generation();
}

runtime::ThreadPoolPtr NetServer::ensure_worker_pool() {
  const std::lock_guard<std::mutex> lock(impl_->pool_mutex);
  if (!pool_) {
    pool_ = std::make_shared<runtime::ThreadPool>(options_.num_threads);
  }
  return pool_;
}

NetServer::Stats NetServer::stats() const noexcept {
  Stats out;
  out.connections = impl_->connections.load(std::memory_order_relaxed);
  out.rows = impl_->rows.load(std::memory_order_relaxed);
  out.batches = impl_->batches.load(std::memory_order_relaxed);
  out.reloads = impl_->reloads.load(std::memory_order_relaxed);
  out.rejected_reloads =
      impl_->rejected_reloads.load(std::memory_order_relaxed);
  return out;
}

void NetServer::handle_async_reload() {
  // Coalesce queued notifications (several HUPs before we got scheduled)
  // into one reload; the read end saw POLLIN so this does not block.
  char drain[64];
  [[maybe_unused]] const ssize_t drained =
      ::read(reload_pipe_[0], drain, sizeof(drain));
  if (options_.cluster.reload) {
    const std::string path =
        options_.cluster.source ? options_.cluster.source() : std::string{};
    try {
      const std::uint64_t gen = options_.cluster.reload(std::string{});
      impl_->reloads.fetch_add(1, std::memory_order_relaxed);
      std::cerr << "hdc::serve: reloaded " << path << " (generation " << gen
                << ")\n";
    } catch (const std::exception& e) {
      impl_->rejected_reloads.fetch_add(1, std::memory_order_relaxed);
      std::cerr << "hdc::serve: reload of " << path
                << " rejected, old model still serving: " << e.what() << "\n";
    }
    return;
  }
  const std::string path = swap_.load()->source_path();
  try {
    const ServingStatePtr state = reload();
    std::cerr << "hdc::serve: reloaded " << path << " (generation "
              << state->generation() << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "hdc::serve: reload of " << path
              << " rejected, old model still serving: " << e.what() << "\n";
  }
}

void NetServer::run() {
  if (impl_->ran.exchange(true)) {
    throw std::logic_error("NetServer::run: already run");
  }
  accept_loop();
  impl_->join_all();
}

void NetServer::accept_loop() {
  std::vector<pollfd> fds;
  fds.push_back({stop_pipe_[0], POLLIN, 0});
  fds.push_back({reload_pipe_[0], POLLIN, 0});
  if (tcp_fd_ >= 0) {
    fds.push_back({tcp_fd_, POLLIN, 0});
  }
  if (unix_fd_ >= 0) {
    fds.push_back({unix_fd_, POLLIN, 0});
  }
  while (!impl_->stop_requested.load(std::memory_order_acquire)) {
    for (pollfd& p : fds) {
      p.revents = 0;
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("NetServer: poll");
    }
    if (fds[0].revents != 0) {
      break;  // stop(); the byte stays so connection pollers wake too.
    }
    if (fds[1].revents != 0) {
      handle_async_reload();
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      const int conn = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn < 0) {
        continue;  // Peer vanished between poll and accept; not fatal.
      }
      set_cloexec(conn);
      if (fds[i].fd == tcp_fd_) {
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      impl_->reap_finished();
      {
        const std::lock_guard<std::mutex> lock(impl_->conns_mutex);
        if (impl_->conns.size() >= options_.max_connections) {
          send_all(conn, "!error server full\n");
          ::close(conn);
          continue;
        }
        impl_->connections.fetch_add(1, std::memory_order_relaxed);
        Impl::Conn& slot = impl_->conns.emplace_back();
        slot.thread = std::thread([this, conn, &slot] {
          serve_connection(conn);
          slot.done.store(true, std::memory_order_release);
        });
      }
    }
  }
}

void NetServer::serve_connection(int fd) {
  try {
    serve_connection_body(fd);
  } catch (const std::exception& e) {
    // Building the serving machinery (worker pool, batch engines) or a
    // cluster exchange failed: answer *something* instead of silently
    // closing, and drop only this connection — the server keeps running.
    send_all(fd, std::string("!error server error: ") + e.what() + "\n");
  }
  ::close(fd);
}

void NetServer::serve_connection_body(int fd) {
  // Everything the model generation determines, bundled so a hot swap
  // replaces it wholesale.  `state` is declared first: members are
  // destroyed in reverse order, so the engines borrowing the mapping die
  // before the bundle that may hold its last reference.
  struct Engines {
    ServingStatePtr state;
    std::optional<runtime::BatchEncoder> encoder;
    std::optional<runtime::BatchTextEncoder> text_encoder;
    std::optional<runtime::BatchClassifier> classifier;
    std::optional<runtime::BatchRegressor> regressor;
  };
  const auto make_engines = [this](ServingStatePtr state) {
    const runtime::ThreadPoolPtr pool = ensure_worker_pool();
    auto engines = std::make_unique<Engines>();
    engines->state = state;
    if (text_input_) {
      engines->text_encoder.emplace(
          state->pipeline().batch_text_encoder(pool));
    } else {
      engines->encoder.emplace(state->pipeline().batch_encoder(pool));
    }
    if (classifies_) {
      engines->classifier.emplace(state->pipeline().batch_classifier(pool));
    } else {
      engines->regressor.emplace(state->pipeline().batch_regressor(pool));
    }
    return engines;
  };

  RowReader reader(num_features_, options_.input);
  std::ostringstream response;
  PredictionWriter writer(response, options_.output, options_.with_latency,
                          options_.head);
  // A cluster-backed connection never builds local engines (or the pool):
  // its batches go through the coordinator.  Local engines are built on the
  // first data batch, not at accept time, so a control-only connection
  // needs no pool and a pool-construction failure surfaces as an `!error`
  // reply exactly where the first prediction was requested.
  const bool clustered = static_cast<bool>(options_.cluster.predict);
  std::unique_ptr<Engines> engines;
  // `!use adapted` routes this connection's data rows through the overlay;
  // other connections (and the default) keep reading the base — the A/B.
  bool use_adapted = false;
  // `!adapt` rows ride inside a control line, so they must not advance the
  // data reader's line accounting: separate reader, same format and arity.
  RowReader adapt_reader(num_features_, options_.input);

  // One of the two row buffers stays empty, per the input mode.
  std::vector<std::vector<double>> rows;
  std::vector<std::string> text_rows;
  std::vector<clock::time_point> admitted;
  admitted.reserve(options_.batch_size);
  std::size_t next_row_index = 0;
  const HeadMode head = options_.head;

  const auto latency_of = [&](std::size_t i) {
    return microseconds_between(admitted[i], clock::now());
  };
  // Emits one already-predicted row in the configured head mode; the four
  // prediction planes below (cluster, adapted, local classifier/regressor)
  // all funnel through these.
  const auto emit_class = [&](std::size_t i, std::size_t label,
                              double confidence) {
    if (head == HeadMode::Confidence) {
      writer.write_class(next_row_index + i, label, confidence,
                         latency_of(i));
    } else {
      writer.write_class(next_row_index + i, label, latency_of(i));
    }
  };
  const auto emit_value = [&](std::size_t i, double prediction,
                              const Band& band) {
    if (head == HeadMode::Band) {
      writer.write_band(next_row_index + i, prediction, band, latency_of(i));
    } else {
      writer.write(next_row_index + i, prediction, latency_of(i));
    }
  };

  // Predicts the pending rows and sends the formatted batch; false when the
  // peer is gone.  Each batch re-loads the swap state, so a reload takes
  // effect at the very next micro-batch boundary on every connection.
  const auto flush = [&]() -> bool {
    const std::size_t count = text_input_ ? text_rows.size() : rows.size();
    if (count == 0) {
      return true;
    }
    if (clustered) {
      if (head != HeadMode::None) {
        const HeadBatch batch =
            text_input_ ? options_.cluster.predict_text_head(text_rows)
                        : options_.cluster.predict_head(rows);
        for (std::size_t i = 0; i < batch.values.size(); ++i) {
          if (classifies_) {
            emit_class(i, static_cast<std::size_t>(batch.values[i]),
                       batch.confidences[i]);
          } else {
            emit_value(i, batch.values[i], batch.bands[i]);
          }
        }
      } else {
        const std::vector<double> predictions =
            text_input_ ? options_.cluster.predict_text(text_rows)
                        : options_.cluster.predict(rows);
        for (std::size_t i = 0; i < predictions.size(); ++i) {
          if (classifies_) {
            emit_class(i, static_cast<std::size_t>(predictions[i]), 0.0);
          } else {
            emit_value(i, predictions[i], Band{});
          }
        }
      }
    } else if (use_adapted) {
      // The adapted side of the A/B: row-at-a-time through the overlay.
      // Feedback is a low-rate refinement stream, so the adapted side
      // trades batch throughput for the freshest model on every row.
      const AdaptiveStatePtr adapted = adaptive_state();
      for (std::size_t i = 0; i < count; ++i) {
        if (classifies_ && head == HeadMode::Confidence) {
          const Top2 top2 = text_input_
                                ? adapted->predict_top2_text(text_rows[i])
                                : adapted->predict_top2(rows[i]);
          emit_class(i, static_cast<std::size_t>(top2.best.index),
                     margin_confidence(top2));
          continue;
        }
        const double prediction = text_input_
                                      ? adapted->predict_text(text_rows[i])
                                      : adapted->predict(rows[i]);
        if (classifies_) {
          emit_class(i, static_cast<std::size_t>(prediction), 0.0);
        } else if (head == HeadMode::Band) {
          emit_value(i, prediction,
                     text_input_ ? adapted->predict_band_text(text_rows[i])
                                 : adapted->predict_band(rows[i]));
        } else {
          emit_value(i, prediction, Band{});
        }
      }
    } else {
      const ServingStatePtr latest = swap_.load();
      if (!engines || latest != engines->state) {
        engines = make_engines(latest);
      }
      const runtime::VectorArena encoded =
          text_input_ ? engines->text_encoder->encode(text_rows)
                      : engines->encoder->encode(rows);
      if (classifies_) {
        if (head == HeadMode::Confidence) {
          const std::vector<Top2> top2 =
              engines->classifier->predict_top2(encoded);
          for (std::size_t i = 0; i < top2.size(); ++i) {
            emit_class(i, static_cast<std::size_t>(top2[i].best.index),
                       margin_confidence(top2[i]));
          }
        } else {
          const std::vector<std::size_t> labels =
              engines->classifier->predict(encoded);
          for (std::size_t i = 0; i < labels.size(); ++i) {
            emit_class(i, labels[i], 0.0);
          }
        }
      } else {
        const std::vector<double> predictions =
            engines->regressor->predict(encoded);
        if (head == HeadMode::Band) {
          const std::vector<Band> bands =
              engines->regressor->predict_band(encoded);
          for (std::size_t i = 0; i < predictions.size(); ++i) {
            emit_value(i, predictions[i], bands[i]);
          }
        } else {
          for (std::size_t i = 0; i < predictions.size(); ++i) {
            emit_value(i, predictions[i], Band{});
          }
        }
      }
    }
    next_row_index += count;
    impl_->rows.fetch_add(count, std::memory_order_relaxed);
    impl_->batches.fetch_add(1, std::memory_order_relaxed);
    rows.clear();
    text_rows.clear();
    admitted.clear();
    std::string text = response.str();
    response.str(std::string());
    return send_all(fd, text);
  };

  // Control replies are ordered after the predictions for every row the
  // client sent first, so `!stats` and `!reload` acks are sequencing
  // points; returns false when the connection should close.
  const auto handle_control = [&](const std::string& line) -> bool {
    if (!flush()) {
      return false;
    }
    const std::size_t space = line.find(' ');
    const std::string cmd = line.substr(0, space);
    const std::string arg =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    std::string reply;
    bool keep_open = true;
    if (cmd == "!ping") {
      reply = "!ok pong generation=" + std::to_string(generation()) + "\n";
    } else if (cmd == "!stats") {
      const Stats snap = stats();
      reply = "!ok rows=" + std::to_string(snap.rows) +
              " batches=" + std::to_string(snap.batches) +
              " generation=" + std::to_string(generation());
      if (options_.cluster.stats_suffix) {
        reply += options_.cluster.stats_suffix();
      }
      reply += "\n";
    } else if (cmd == "!reload") {
      if (options_.cluster.reload) {
        try {
          const std::uint64_t gen = options_.cluster.reload(arg);
          std::string src = arg;
          if (src.empty()) {
            src = options_.cluster.source ? options_.cluster.source()
                                          : std::string{"active"};
          }
          impl_->reloads.fetch_add(1, std::memory_order_relaxed);
          reply = "!ok reloaded generation=" + std::to_string(gen) +
                  " source=" + src + "\n";
        } catch (const std::exception& e) {
          impl_->rejected_reloads.fetch_add(1, std::memory_order_relaxed);
          reply = std::string("!error reload rejected: ") + e.what() + "\n";
        }
      } else {
        try {
          const ServingStatePtr state = arg.empty() ? reload() : reload(arg);
          reply = "!ok reloaded generation=" +
                  std::to_string(state->generation()) +
                  " source=" + state->source_path() + "\n";
        } catch (const std::exception& e) {
          reply = std::string("!error reload rejected: ") + e.what() + "\n";
        }
      }
    } else if (cmd == "!adapt") {
      const std::size_t cut = arg.find(' ');
      double target = 0.0;
      if (cut == std::string::npos ||
          parse_strict_number(std::string_view(arg).substr(0, cut), target) !=
              NumberParse::Ok) {
        reply =
            "!error adapt rejected: expected '!adapt TARGET ROW' with a "
            "finite numeric TARGET\n";
      } else {
        try {
          AdaptOutcome outcome;
          if (text_input_) {
            std::string sample;
            if (!adapt_reader.parse_text_line(arg.substr(cut + 1), sample)) {
              throw RowError("adapt: ROW must not be blank");
            }
            outcome = options_.cluster.adapt_text
                          ? options_.cluster.adapt_text(target, sample)
                          : adaptive_state()->adapt_text(sample, target);
          } else {
            std::vector<double> sample;
            if (!adapt_reader.parse_line(arg.substr(cut + 1), sample)) {
              throw RowError("adapt: ROW must not be blank");
            }
            outcome = options_.cluster.adapt
                          ? options_.cluster.adapt(target, sample)
                          : adaptive_state()->adapt(sample, target);
          }
          reply = "!ok adapt predicted=" + format_double(outcome.predicted) +
                  " updated=" + std::to_string(outcome.updated ? 1 : 0) +
                  " feedback=" + std::to_string(outcome.feedback_rows) +
                  " updates=" + std::to_string(outcome.updates) +
                  " overlay_rows=" + std::to_string(outcome.overlay_rows) +
                  " generation=" + std::to_string(generation()) + "\n";
        } catch (const std::exception& e) {
          reply = std::string("!error adapt rejected: ") + e.what() + "\n";
        }
      }
    } else if (cmd == "!use") {
      if (options_.cluster.predict) {
        reply =
            "!error use rejected: cluster ranks serve the adapted model as "
            "soon as feedback arrives (no per-connection A/B)\n";
      } else if (arg == "base") {
        use_adapted = false;
        reply = "!ok use base\n";
      } else if (arg == "adapted") {
        use_adapted = true;
        reply = "!ok use adapted\n";
      } else {
        reply = "!error use rejected: expected '!use base' or '!use "
                "adapted'\n";
      }
    } else if (cmd == "!delta") {
      if (arg.empty()) {
        reply = "!error delta rejected: expected '!delta PATH'\n";
      } else {
        try {
          const std::uint64_t changed =
              options_.cluster.export_delta
                  ? options_.cluster.export_delta(arg)
                  : adaptive_state()->export_delta(base_snapshot_path(), arg);
          reply = "!ok delta rows=" + std::to_string(changed) +
                  " path=" + arg + "\n";
        } catch (const std::exception& e) {
          reply = std::string("!error delta rejected: ") + e.what() + "\n";
        }
      }
    } else if (cmd == "!quit") {
      reply = "!ok bye\n";
      keep_open = false;
    } else {
      reply = "!error unknown control command '" + cmd +
              "' (expected !ping, !stats, !reload [PATH], !adapt TARGET "
              "ROW, !use base|adapted, !delta PATH, !quit)\n";
    }
    return send_all(fd, reply) && keep_open;
  };

  std::string inbuf;
  std::string line;
  std::vector<double> row;
  char chunk[4096];
  bool open = true;
  while (open) {
    // The flush deadline *is* the poll timeout: a partial batch can wait at
    // most until the oldest admitted row's deadline, whether or not the
    // client ever sends another byte.  flush_interval == 0 degenerates to
    // "flush as soon as the socket has nothing more for us".
    int timeout_ms = -1;
    if (!admitted.empty()) {
      if (options_.flush_interval.count() <= 0) {
        timeout_ms = 0;
      } else {
        const clock::time_point deadline =
            admitted.front() +
            std::chrono::duration_cast<clock::duration>(
                options_.flush_interval);
        const clock::time_point now = clock::now();
        if (now >= deadline) {
          timeout_ms = 0;
        } else {
          const auto wait =
              std::chrono::ceil<std::chrono::milliseconds>(deadline - now)
                  .count();
          timeout_ms = wait > 1000 ? 1000 : static_cast<int>(wait);
        }
      }
    }
    pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (fds[1].revents != 0) {
      break;  // Server stopping; drop the connection.
    }
    if (ready == 0 || fds[0].revents == 0) {
      if (!flush()) {
        break;  // Deadline flush found the peer gone.
      }
      continue;
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (got == 0) {
      // Clean shutdown from the client: answer everything admitted, then
      // close.  (A client that wants its tail predictions does
      // shutdown(SHUT_WR) and keeps reading.)
      flush();
      break;
    }
    inbuf.append(chunk, static_cast<std::size_t>(got));
    std::size_t begin = 0;
    std::size_t newline;
    while (open && (newline = inbuf.find('\n', begin)) != std::string::npos) {
      line.assign(inbuf, begin, newline - begin);
      begin = newline + 1;
      if (!line.empty() && line.front() == '!') {
        open = handle_control(line);
        continue;
      }
      try {
        if (text_input_) {
          std::string text_row;
          if (!reader.parse_text_line(line, text_row)) {
            continue;  // Blank line.
          }
          text_rows.push_back(std::move(text_row));
        } else {
          if (!reader.parse_line(line, row)) {
            continue;  // Blank line.
          }
          rows.push_back(row);
        }
      } catch (const RowError& e) {
        // Serve every row admitted before the bad one, report, and close
        // this connection only — the server keeps running.
        flush();
        send_all(fd, std::string("!error ") + e.what() + "\n");
        open = false;
        break;
      }
      admitted.push_back(clock::now());
      if (admitted.size() >= options_.batch_size && !flush()) {
        open = false;
        break;
      }
    }
    inbuf.erase(0, begin);
  }
}

#else  // !defined(_WIN32)

struct NetServer::Impl {};

NetServer::NetServer(io::LoadedPipeline loaded, std::string snapshot_path,
                     NetServerOptions options, runtime::ThreadPoolPtr)
    : options_(std::move(options)),
      swap_(std::move(loaded), std::move(snapshot_path)),
      num_features_(0),
      classifies_(false),
      text_input_(false),
      impl_(nullptr) {
  throw std::runtime_error("NetServer: POSIX sockets are not available");
}
NetServer::~NetServer() = default;
void NetServer::run() {}
void NetServer::stop() {}
ServingStatePtr NetServer::reload(const std::string&) { return nullptr; }
ServingStatePtr NetServer::reload() { return nullptr; }
NetServer::Stats NetServer::stats() const noexcept { return {}; }
std::uint64_t NetServer::generation() const { return swap_.generation(); }
std::string NetServer::base_snapshot_path() const { return {}; }
AdaptiveStatePtr NetServer::adaptive_state() { return nullptr; }
runtime::ThreadPoolPtr NetServer::ensure_worker_pool() { return nullptr; }
void NetServer::accept_loop() {}
void NetServer::serve_connection(int) {}
void NetServer::serve_connection_body(int) {}
void NetServer::handle_async_reload() {}

#endif  // !defined(_WIN32)

}  // namespace hdc::serve
