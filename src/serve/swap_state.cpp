#include "hdc/serve/swap_state.hpp"

namespace hdc::serve {

SwapState::SwapState(io::LoadedPipeline initial, std::string source_path) {
  auto state = std::make_shared<const ServingState>(
      std::move(initial), /*generation=*/0, std::move(source_path));
#if defined(__cpp_lib_atomic_shared_ptr)
  active_.store(std::move(state), std::memory_order_release);
#else
  active_ = std::move(state);
#endif
}

ServingStatePtr SwapState::load() const noexcept {
#if defined(__cpp_lib_atomic_shared_ptr)
  return active_.load(std::memory_order_acquire);
#else
  const std::lock_guard<std::mutex> lock(active_mutex_);
  return active_;
#endif
}

ServingStatePtr SwapState::swap_to(io::LoadedPipeline replacement,
                                   std::string source_path) {
  const std::lock_guard<std::mutex> lock(swap_mutex_);
  const ServingStatePtr incumbent = load();
  io::ensure_swappable(replacement.pipeline, incumbent->pipeline());
  auto fresh = std::make_shared<const ServingState>(
      std::move(replacement), next_generation_++, std::move(source_path));
#if defined(__cpp_lib_atomic_shared_ptr)
  active_.store(fresh, std::memory_order_release);
#else
  {
    const std::lock_guard<std::mutex> active_lock(active_mutex_);
    active_ = fresh;
  }
#endif
  return fresh;
}

}  // namespace hdc::serve
