#include "hdc/serve/server.hpp"

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hdc::serve {

namespace {

using clock = std::chrono::steady_clock;

runtime::ThreadPoolPtr ensure_pool(runtime::ThreadPoolPtr pool,
                                   std::size_t num_threads) {
  if (pool) {
    return pool;
  }
  return std::make_shared<runtime::ThreadPool>(num_threads);
}

double microseconds_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

Server::Server(io::Pipeline pipeline, ServerOptions options,
               runtime::ThreadPoolPtr pool)
    : pipeline_(std::move(pipeline)),
      options_(options),
      pool_(ensure_pool(std::move(pool), options.num_threads)) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("Server: batch_size must be > 0");
  }
  if (pipeline_.input() == io::PipelineInput::Text) {
    text_encoder_.emplace(pipeline_.batch_text_encoder(pool_));
  } else {
    encoder_.emplace(pipeline_.batch_encoder(pool_));
  }
}

std::vector<double> Server::predict(
    std::span<const std::vector<double>> rows) const {
  if (!encoder_) {
    throw std::logic_error(
        "Server::predict: text pipeline (use predict_text)");
  }
  if (rows.empty()) {
    return {};
  }
  const runtime::VectorArena encoded = encoder_->encode(rows);
  if (pipeline_.kind() == io::PipelineKind::Classifier) {
    const std::vector<std::size_t> labels =
        pipeline_.batch_classifier(pool_).predict(encoded);
    return {labels.begin(), labels.end()};
  }
  return pipeline_.batch_regressor(pool_).predict(encoded);
}

std::vector<double> Server::predict_text(
    std::span<const std::string> rows) const {
  if (!text_encoder_) {
    throw std::logic_error(
        "Server::predict_text: numeric pipeline (use predict)");
  }
  if (rows.empty()) {
    return {};
  }
  const runtime::VectorArena encoded = text_encoder_->encode(rows);
  if (pipeline_.kind() == io::PipelineKind::Classifier) {
    const std::vector<std::size_t> labels =
        pipeline_.batch_classifier(pool_).predict(encoded);
    return {labels.begin(), labels.end()};
  }
  return pipeline_.batch_regressor(pool_).predict(encoded);
}

Server::Stats Server::run(RowReader& reader, PredictionWriter& writer) const {
  const bool text = pipeline_.input() == io::PipelineInput::Text;
  if (text != (reader.format() == RowFormat::Text)) {
    throw std::invalid_argument(
        std::string("Server::run: the pipeline takes ") +
        io::to_string(pipeline_.input()) +
        " rows but the reader's format disagrees");
  }
  if (!text && reader.num_features() != pipeline_.num_features()) {
    throw std::invalid_argument(
        "Server::run: reader arity " + std::to_string(reader.num_features()) +
        " disagrees with the pipeline's " +
        std::to_string(pipeline_.num_features()) + " features");
  }
  const bool classifies = pipeline_.kind() == io::PipelineKind::Classifier;
  const HeadMode head = writer.head();
  if (head == HeadMode::Confidence && !classifies) {
    throw std::invalid_argument(
        "Server::run: confidence heads come from classifiers; regressor "
        "pipelines emit bands");
  }
  if (head == HeadMode::Band && classifies) {
    throw std::invalid_argument(
        "Server::run: band heads come from regressors; classifier "
        "pipelines emit confidences");
  }
  // Per-kind engines constructed once per run, not per micro-batch.
  std::optional<runtime::BatchClassifier> classifier;
  std::optional<runtime::BatchRegressor> regressor;
  if (classifies) {
    classifier.emplace(pipeline_.batch_classifier(pool_));
  } else {
    regressor.emplace(pipeline_.batch_regressor(pool_));
  }

  Stats stats;
  const clock::time_point start = clock::now();
  // One of the two row buffers stays empty, per the input mode.
  std::vector<std::vector<double>> rows;
  std::vector<std::string> text_rows;
  std::vector<clock::time_point> admitted;
  admitted.reserve(options_.batch_size);
  std::size_t next_row_index = 0;

  const auto flush = [&] {
    const std::size_t count = text ? text_rows.size() : rows.size();
    if (count == 0) {
      return;
    }
    const runtime::VectorArena encoded =
        text ? text_encoder_->encode(text_rows) : encoder_->encode(rows);
    if (classifies) {
      if (head == HeadMode::Confidence) {
        const std::vector<Top2> top2 = classifier->predict_top2(encoded);
        for (std::size_t i = 0; i < top2.size(); ++i) {
          writer.write_class(next_row_index + i,
                             static_cast<std::size_t>(top2[i].best.index),
                             margin_confidence(top2[i]),
                             microseconds_between(admitted[i], clock::now()));
        }
      } else {
        const std::vector<std::size_t> labels = classifier->predict(encoded);
        for (std::size_t i = 0; i < labels.size(); ++i) {
          writer.write_class(next_row_index + i, labels[i],
                             microseconds_between(admitted[i], clock::now()));
        }
      }
    } else {
      const std::vector<double> predictions = regressor->predict(encoded);
      if (head == HeadMode::Band) {
        const std::vector<Band> bands = regressor->predict_band(encoded);
        for (std::size_t i = 0; i < predictions.size(); ++i) {
          writer.write_band(next_row_index + i, predictions[i], bands[i],
                            microseconds_between(admitted[i], clock::now()));
        }
      } else {
        for (std::size_t i = 0; i < predictions.size(); ++i) {
          writer.write(next_row_index + i, predictions[i],
                       microseconds_between(admitted[i], clock::now()));
        }
      }
    }
    writer.flush();
    next_row_index += count;
    stats.rows += count;
    ++stats.batches;
    rows.clear();
    text_rows.clear();
    admitted.clear();
  };

  std::vector<double> row;
  std::string text_row;
  try {
    while (true) {
      // Bounded-staleness guard: with a flush interval configured, pending
      // rows are flushed *before* a read that may block — either their
      // deadline has already passed, or the stream has nothing buffered
      // and the next getline could stall unboundedly (the PR-5 latency
      // bug: the timer was only ever evaluated after a new row arrived,
      // so admitted rows waited as long as the input paused).
      if (!admitted.empty() && options_.flush_interval.count() > 0) {
        const bool deadline_passed =
            clock::now() - admitted.front() >= options_.flush_interval;
        if (deadline_passed || reader.may_block()) {
          flush();
        }
      }
      if (text) {
        if (!reader.next_text(text_row)) {
          break;
        }
        text_rows.push_back(text_row);
      } else {
        if (!reader.next(row)) {
          break;
        }
        rows.push_back(row);
      }
      admitted.push_back(clock::now());
      if (admitted.size() >= options_.batch_size) {
        flush();
      }
    }
  } catch (const RowError&) {
    // Serve every row that parsed before the bad one, then surface it.
    flush();
    throw;
  }
  flush();
  stats.seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  return stats;
}

}  // namespace hdc::serve
