#include "hdc/serve/prediction_writer.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace hdc::serve {

namespace {

/// Shortest round-trip decimal of a double via std::to_chars: re-parses
/// bit-exactly (the golden-diff guarantee) and, unlike printf, cannot be
/// bent by the host application's LC_NUMERIC locale.
std::string format_double(double value) {
  char buffer[32];
  const auto [end, error] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return {buffer, error == std::errc{} ? end : buffer};
}

}  // namespace

OutputFormat parse_output_format(const std::string& name) {
  if (name == "plain") {
    return OutputFormat::Plain;
  }
  if (name == "csv") {
    return OutputFormat::Csv;
  }
  if (name == "jsonl") {
    return OutputFormat::Jsonl;
  }
  throw std::invalid_argument("unknown output format '" + name +
                              "' (expected plain, csv or jsonl)");
}

PredictionWriter::PredictionWriter(std::ostream& out, OutputFormat format,
                                   bool with_latency)
    : out_(&out), format_(format), with_latency_(with_latency) {}

void PredictionWriter::write_row(std::size_t row, const std::string& value,
                                 double latency_us) {
  switch (format_) {
    case OutputFormat::Plain:
      *out_ << value << '\n';
      break;
    case OutputFormat::Csv:
      if (!header_written_) {
        *out_ << (with_latency_ ? "row,prediction,latency_us"
                                : "row,prediction")
              << '\n';
        header_written_ = true;
      }
      *out_ << row << ',' << value;
      if (with_latency_) {
        *out_ << ',' << format_double(latency_us);
      }
      *out_ << '\n';
      break;
    case OutputFormat::Jsonl:
      *out_ << "{\"row\": " << row << ", \"prediction\": " << value;
      if (with_latency_) {
        *out_ << ", \"latency_us\": " << format_double(latency_us);
      }
      *out_ << "}\n";
      break;
  }
  ++rows_;
}

void PredictionWriter::write(std::size_t row, double prediction,
                             double latency_us) {
  write_row(row, format_double(prediction), latency_us);
}

void PredictionWriter::write_class(std::size_t row, std::size_t label,
                                   double latency_us) {
  write_row(row, std::to_string(label), latency_us);
}

void PredictionWriter::flush() {
  out_->flush();
  if (!out_->good()) {
    throw WriteError(
        "prediction stream write failure after " + std::to_string(rows_) +
        " rows (downstream consumer closed?)");
  }
}

}  // namespace hdc::serve
