#include "hdc/serve/prediction_writer.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace hdc::serve {

namespace {

/// Shortest round-trip decimal of a double via std::to_chars: re-parses
/// bit-exactly (the golden-diff guarantee) and, unlike printf, cannot be
/// bent by the host application's LC_NUMERIC locale.
std::string format_double(double value) {
  char buffer[32];
  const auto [end, error] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return {buffer, error == std::errc{} ? end : buffer};
}

}  // namespace

OutputFormat parse_output_format(const std::string& name) {
  if (name == "plain") {
    return OutputFormat::Plain;
  }
  if (name == "csv") {
    return OutputFormat::Csv;
  }
  if (name == "jsonl") {
    return OutputFormat::Jsonl;
  }
  throw std::invalid_argument("unknown output format '" + name +
                              "' (expected plain, csv or jsonl)");
}

PredictionWriter::PredictionWriter(std::ostream& out, OutputFormat format,
                                   bool with_latency, HeadMode head)
    : out_(&out), format_(format), with_latency_(with_latency), head_(head) {}

void PredictionWriter::require_head(HeadMode required,
                                    const char* method) const {
  if (head_ != required) {
    throw std::logic_error(std::string("PredictionWriter::") + method +
                           ": head mode disagrees with the stream's "
                           "configured head (columns must not change "
                           "mid-stream)");
  }
}

void PredictionWriter::write_row(std::size_t row, const std::string& value,
                                 const HeadField* fields,
                                 std::size_t num_fields, double latency_us) {
  switch (format_) {
    case OutputFormat::Plain:
      *out_ << value;
      for (std::size_t i = 0; i < num_fields; ++i) {
        *out_ << ' ' << fields[i].value;
      }
      *out_ << '\n';
      break;
    case OutputFormat::Csv:
      if (!header_written_) {
        *out_ << "row,prediction";
        for (std::size_t i = 0; i < num_fields; ++i) {
          *out_ << ',' << fields[i].name;
        }
        if (with_latency_) {
          *out_ << ",latency_us";
        }
        *out_ << '\n';
        header_written_ = true;
      }
      *out_ << row << ',' << value;
      for (std::size_t i = 0; i < num_fields; ++i) {
        *out_ << ',' << fields[i].value;
      }
      if (with_latency_) {
        *out_ << ',' << format_double(latency_us);
      }
      *out_ << '\n';
      break;
    case OutputFormat::Jsonl:
      *out_ << "{\"row\": " << row << ", \"prediction\": " << value;
      for (std::size_t i = 0; i < num_fields; ++i) {
        *out_ << ", \"" << fields[i].name << "\": " << fields[i].value;
      }
      if (with_latency_) {
        *out_ << ", \"latency_us\": " << format_double(latency_us);
      }
      *out_ << "}\n";
      break;
  }
  ++rows_;
}

void PredictionWriter::write(std::size_t row, double prediction,
                             double latency_us) {
  require_head(HeadMode::None, "write");
  write_row(row, format_double(prediction), nullptr, 0, latency_us);
}

void PredictionWriter::write_class(std::size_t row, std::size_t label,
                                   double latency_us) {
  require_head(HeadMode::None, "write_class");
  write_row(row, std::to_string(label), nullptr, 0, latency_us);
}

void PredictionWriter::write_class(std::size_t row, std::size_t label,
                                   double confidence, double latency_us) {
  require_head(HeadMode::Confidence, "write_class");
  const HeadField fields[] = {{"confidence", format_double(confidence)}};
  write_row(row, std::to_string(label), fields, 1, latency_us);
}

void PredictionWriter::write_band(std::size_t row, double prediction,
                                  const Band& band, double latency_us) {
  require_head(HeadMode::Band, "write_band");
  const HeadField fields[] = {{"p10", format_double(band.p10)},
                              {"p50", format_double(band.p50)},
                              {"p90", format_double(band.p90)}};
  write_row(row, format_double(prediction), fields, 3, latency_us);
}

void PredictionWriter::flush() {
  out_->flush();
  if (!out_->good()) {
    throw WriteError(
        "prediction stream write failure after " + std::to_string(rows_) +
        " rows (downstream consumer closed?)");
  }
}

}  // namespace hdc::serve
