#ifndef HDC_SERVE_PREDICTION_WRITER_HPP
#define HDC_SERVE_PREDICTION_WRITER_HPP

/// \file prediction_writer.hpp
/// \brief Prediction emission for the serving front end.
///
/// Three wire formats, one writer:
///
///  * `Plain` — one prediction per line, nothing else.  This is the golden
///    diff format of the serve-e2e CI suite: deterministic down to the last
///    byte (std::to_chars emits the shortest locale-independent decimal
///    that round-trips every double bit-exactly).
///  * `Csv`   — `row,prediction[,latency_us]` with a header line.
///  * `Jsonl` — `{"row": i, "prediction": p[, "latency_us": l]}`.
///
/// Per-row latency (micro-batch admission to prediction write-out) is
/// opt-in because it is inherently nondeterministic: golden-file pipelines
/// use Plain, operators watching tail latency use Csv/Jsonl with latency.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

namespace hdc::serve {

/// Raised when the prediction stream can no longer be written — typically
/// the downstream consumer closed its end (EPIPE with SIGPIPE ignored).
/// Serving loops treat it as "this client is gone", not as a parse error:
/// the stdin front end exits nonzero with a summary, the socket front end
/// closes the one connection.
class WriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Output wire format.
enum class OutputFormat : std::uint8_t {
  Plain,
  Csv,
  Jsonl,
};

/// Parses \p name ("plain" / "csv" / "jsonl") into an OutputFormat.
/// \throws std::invalid_argument on anything else.
[[nodiscard]] OutputFormat parse_output_format(const std::string& name);

/// Streaming prediction emitter; one instance per response stream.
class PredictionWriter {
 public:
  /// \param out           Destination stream; must outlive the writer.
  /// \param with_latency  Emit the per-row latency column/field (ignored by
  ///                      Plain, which stays byte-deterministic).
  PredictionWriter(std::ostream& out, OutputFormat format,
                   bool with_latency = false);

  /// Emits one regression prediction (classifier labels go through
  /// write_class so Plain/Csv print them as integers).
  void write(std::size_t row, double prediction, double latency_us);
  void write_class(std::size_t row, std::size_t label, double latency_us);

  /// Flushes the underlying stream (end of a micro-batch, so a downstream
  /// consumer never waits on a full buffer for predictions already made).
  /// \throws WriteError when the stream has failed — predictions that can
  /// no longer reach the consumer must stop the loop, not scroll into a
  /// dead buffer.
  void flush();

  [[nodiscard]] OutputFormat format() const noexcept { return format_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_row(std::size_t row, const std::string& value,
                 double latency_us);

  std::ostream* out_;
  OutputFormat format_;
  bool with_latency_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_PREDICTION_WRITER_HPP
