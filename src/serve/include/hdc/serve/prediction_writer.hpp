#ifndef HDC_SERVE_PREDICTION_WRITER_HPP
#define HDC_SERVE_PREDICTION_WRITER_HPP

/// \file prediction_writer.hpp
/// \brief Prediction emission for the serving front end.
///
/// Three wire formats, one writer:
///
///  * `Plain` — one prediction per line, nothing else.  This is the golden
///    diff format of the serve-e2e CI suite: deterministic down to the last
///    byte (std::to_chars emits the shortest locale-independent decimal
///    that round-trips every double bit-exactly).
///  * `Csv`   — `row,prediction[,latency_us]` with a header line.
///  * `Jsonl` — `{"row": i, "prediction": p[, "latency_us": l]}`.
///
/// Per-row latency (micro-batch admission to prediction write-out) is
/// opt-in because it is inherently nondeterministic: golden-file pipelines
/// use Plain, operators watching tail latency use Csv/Jsonl with latency.
///
/// ## Prediction heads
///
/// With a `HeadMode`, every row additionally carries the prediction head
/// (hdc/core/confidence.hpp): a normalized similarity-margin confidence for
/// classifiers (`Confidence`), or a p10/p50/p90 distributional band for
/// regressors (`Band`).  Head fields are deterministic — derived from
/// Hamming distances, not timing — so goldens cover them:
///
///  * Plain  — `label confidence` / `value p10 p50 p90`, space-separated.
///  * Csv    — extra `confidence` / `p10,p50,p90` columns before
///             `latency_us`.
///  * Jsonl  — extra `"confidence"` / `"p10"/"p50"/"p90"` fields.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "hdc/core/confidence.hpp"

namespace hdc::serve {

/// Raised when the prediction stream can no longer be written — typically
/// the downstream consumer closed its end (EPIPE with SIGPIPE ignored).
/// Serving loops treat it as "this client is gone", not as a parse error:
/// the stdin front end exits nonzero with a summary, the socket front end
/// closes the one connection.
class WriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Output wire format.
enum class OutputFormat : std::uint8_t {
  Plain,
  Csv,
  Jsonl,
};

/// Parses \p name ("plain" / "csv" / "jsonl") into an OutputFormat.
/// \throws std::invalid_argument on anything else.
[[nodiscard]] OutputFormat parse_output_format(const std::string& name);

/// Which prediction head every row carries (fixed per stream: headers and
/// column counts must not change mid-stream).
enum class HeadMode : std::uint8_t {
  None,        ///< Prediction only.
  Confidence,  ///< + margin confidence (classifiers; write_class overload).
  Band,        ///< + p10/p50/p90 band (regressors; write_band).
};

/// Streaming prediction emitter; one instance per response stream.
class PredictionWriter {
 public:
  /// \param out           Destination stream; must outlive the writer.
  /// \param with_latency  Emit the per-row latency column/field (ignored by
  ///                      Plain, which stays byte-deterministic).
  /// \param head          Per-row prediction head; the matching write
  ///                      method must then be used for every row.
  PredictionWriter(std::ostream& out, OutputFormat format,
                   bool with_latency = false, HeadMode head = HeadMode::None);

  /// Emits one regression prediction (classifier labels go through
  /// write_class so Plain/Csv print them as integers).  \throws
  /// std::logic_error when a head mode is configured (use the head-carrying
  /// overloads; mixing would shear the column contract mid-stream).
  void write(std::size_t row, double prediction, double latency_us);
  void write_class(std::size_t row, std::size_t label, double latency_us);

  /// HeadMode::Confidence rows: label + margin confidence in [0, 1].
  /// \throws std::logic_error unless head() == Confidence.
  void write_class(std::size_t row, std::size_t label, double confidence,
                   double latency_us);

  /// HeadMode::Band rows: the point prediction + its p10/p50/p90 band.
  /// \throws std::logic_error unless head() == Band.
  void write_band(std::size_t row, double prediction, const Band& band,
                  double latency_us);

  /// Flushes the underlying stream (end of a micro-batch, so a downstream
  /// consumer never waits on a full buffer for predictions already made).
  /// \throws WriteError when the stream has failed — predictions that can
  /// no longer reach the consumer must stop the loop, not scroll into a
  /// dead buffer.
  void flush();

  [[nodiscard]] OutputFormat format() const noexcept { return format_; }
  [[nodiscard]] HeadMode head() const noexcept { return head_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  /// One named head field ("confidence", "p10", ...) with its formatted
  /// value; the wire format decides how name and value are joined.
  struct HeadField {
    const char* name;
    std::string value;
  };

  void write_row(std::size_t row, const std::string& value,
                 const HeadField* fields, std::size_t num_fields,
                 double latency_us);
  void require_head(HeadMode required, const char* method) const;

  std::ostream* out_;
  OutputFormat format_;
  bool with_latency_;
  HeadMode head_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_PREDICTION_WRITER_HPP
