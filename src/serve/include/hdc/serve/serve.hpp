#ifndef HDC_SERVE_SERVE_HPP
#define HDC_SERVE_SERVE_HPP

/// \file serve.hpp
/// \brief Umbrella header: the full public API of the hdc::serve subsystem.

#include "hdc/serve/net_server.hpp"         // IWYU pragma: export
#include "hdc/serve/prediction_writer.hpp"  // IWYU pragma: export
#include "hdc/serve/row_reader.hpp"         // IWYU pragma: export
#include "hdc/serve/server.hpp"             // IWYU pragma: export
#include "hdc/serve/swap_state.hpp"         // IWYU pragma: export

#endif  // HDC_SERVE_SERVE_HPP
