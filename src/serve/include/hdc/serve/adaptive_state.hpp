#ifndef HDC_SERVE_ADAPTIVE_STATE_HPP
#define HDC_SERVE_ADAPTIVE_STATE_HPP

/// \file adaptive_state.hpp
/// \brief The serving-side online-adaptation overlay behind `!adapt`.
///
/// A `ServingState` is immutable by design — that is what makes the RCU
/// hot swap safe.  Online feedback therefore cannot touch it; instead an
/// `AdaptiveState` pins one serving generation and grows a copy-on-write
/// overlay (hdc/core/adaptive.hpp) next to it:
///
///  * `adapt()` takes one `(features, target)` feedback row, encodes it
///    over the pinned pipeline and applies the mistake-driven update —
///    only the touched class rows are cloned; the mmapped base keeps
///    serving untouched, so base and adapted generations are A/B-servable
///    from one process (`!use base|adapted`);
///  * `predict()` answers over the overlay (the "adapted" side of the A/B);
///  * `export_delta()` writes the adapted-vs-base difference as an HDCS v4
///    delta file — every row is compared against the base snapshot *file*,
///    so rows inherited from an earlier delta reload stay in the patch and
///    overlay rows that drifted back to the base drop out.
///
/// All methods serialize on one internal mutex: feedback is a low-rate
/// control-plane stream, and `AdaptiveClassifier::adapt` requires external
/// serialization.  The pinned `ServingStatePtr` keeps the snapshot mapping
/// alive even after a hot swap replaces the active state; the server drops
/// the whole `AdaptiveState` when its generation is no longer the active
/// one (feedback against a retired model is meaningless).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hdc/core/adaptive.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/serve/swap_state.hpp"

namespace hdc::serve {

/// What one feedback row did — the `!adapt` reply fields, identical for
/// the local overlay and the cluster broadcast (ClusterHooks::adapt).
struct AdaptOutcome {
  double predicted = 0.0;  ///< Pre-update prediction for the feedback row.
  bool updated = false;    ///< Whether the row actually changed the model.
  std::uint64_t feedback_rows = 0;  ///< Feedback rows seen on this overlay.
  std::uint64_t updates = 0;        ///< Rows that changed the model.
  std::uint64_t overlay_rows = 0;   ///< Distinct model rows now overlaid.
};

/// Mutex-guarded adaptation overlay over one pinned serving generation.
class AdaptiveState {
 public:
  /// Pins \p base (which must hold a finalized model) and starts with an
  /// empty overlay: predictions are bit-identical to the base until the
  /// first effective adapt().  \throws std::invalid_argument if base is
  /// null.
  explicit AdaptiveState(ServingStatePtr base,
                         std::uint64_t seed = kDefaultAdaptSeed);

  /// The pinned generation (compare against SwapState::load() to detect
  /// that a reload retired this overlay).
  [[nodiscard]] const ServingStatePtr& base_state() const noexcept {
    return base_;
  }
  [[nodiscard]] bool classifies() const noexcept {
    return classifier_ != nullptr;
  }

  /// One feedback row: encodes \p features over the pinned pipeline and
  /// applies the mistake-driven update.  Classifier targets must be
  /// integral labels in range (hdc::checked_class_label).
  /// \throws std::invalid_argument on arity, dimension or target errors;
  /// std::logic_error on a text pipeline (use adapt_text).
  AdaptOutcome adapt(std::span<const double> features, double target);

  /// The text twin of adapt(): one raw-text feedback sample.
  /// \throws std::logic_error on a numeric pipeline.
  AdaptOutcome adapt_text(std::string_view text, double target);

  /// Prediction over the overlay (class index as double for classifiers) —
  /// the "adapted" side of the `!use` A/B switch.
  /// \throws std::invalid_argument on arity mismatch.
  [[nodiscard]] double predict(std::span<const double> features) const;
  [[nodiscard]] double predict_text(std::string_view text) const;

  /// Head-carrying predictions over the overlay, mirroring the batch
  /// engines' heads (hdc/core/confidence.hpp) for the adapted side of the
  /// A/B.  top2 variants \throws std::logic_error on regressor overlays,
  /// band variants on classifier overlays; _text variants on numeric
  /// pipelines and the numeric ones on text pipelines.
  [[nodiscard]] Top2 predict_top2(std::span<const double> features) const;
  [[nodiscard]] Top2 predict_top2_text(std::string_view text) const;
  [[nodiscard]] Band predict_band(std::span<const double> features) const;
  [[nodiscard]] Band predict_band_text(std::string_view text) const;

  /// Counters, as in the overlay classes.
  [[nodiscard]] std::uint64_t overlay_rows() const;
  [[nodiscard]] std::uint64_t feedback_rows() const;
  [[nodiscard]] std::uint64_t updates() const;

  /// The touched rows in delta form (class index -> packed words).
  [[nodiscard]] std::map<std::size_t, std::vector<std::uint64_t>>
  changed_rows() const;

  /// Writes the adapted-vs-base difference as a standalone HDCS delta file
  /// at \p out_path and returns the changed-row count.  \p base_path must
  /// be the full snapshot the server tracks as its delta base; the patch
  /// pins its content hash, so `!reload out_path` on any replica of that
  /// base restores a model bit-identical to this overlay.
  /// \throws io::SnapshotError on shape disagreement or write failure;
  /// std::runtime_error when nothing differs from the base.
  std::size_t export_delta(const std::string& base_path,
                           const std::string& out_path) const;

  /// Drops the overlay; the adapted side is the base again.
  void reset();

 private:
  /// Locked update/readout over an already-encoded feedback row (the
  /// numeric and text entry points share everything past encoding).
  AdaptOutcome adapt_encoded(const Hypervector& encoded, double target);
  [[nodiscard]] double predict_encoded(const Hypervector& encoded) const;
  [[nodiscard]] Top2 top2_encoded(const Hypervector& encoded) const;
  [[nodiscard]] Band band_encoded(const Hypervector& encoded) const;

  mutable std::mutex mutex_;
  ServingStatePtr base_;
  std::unique_ptr<AdaptiveClassifier> classifier_;
  std::unique_ptr<AdaptiveRegressor> regressor_;
};

using AdaptiveStatePtr = std::shared_ptr<AdaptiveState>;

}  // namespace hdc::serve

#endif  // HDC_SERVE_ADAPTIVE_STATE_HPP
