#ifndef HDC_SERVE_SERVER_HPP
#define HDC_SERVE_SERVER_HPP

/// \file server.hpp
/// \brief Micro-batching prediction server over a restored pipeline.
///
/// The serving shape the ROADMAP asks for: a replica cold-starts from one
/// mmapped snapshot (`hdc::io::Pipeline::restore`), then streams feature
/// rows through the `hdc::runtime` thread pool in micro-batches — rows are
/// admitted until the batch is full *or* the configured flush interval has
/// elapsed since the batch opened, then encoded and predicted batch-at-a-
/// time via the BatchEncoder/BatchClassifier/BatchRegressor bridges and
/// written out in admission order.
///
/// Predictions are bit-identical to calling `Pipeline::classify`/`regress`
/// per row, for any batch size and any thread count (the batch engines'
/// determinism contract); the serve-e2e CI suite diffs the CLI output
/// against committed goldens to pin exactly that.

#include <chrono>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hdc/io/pipeline.hpp"
#include "hdc/runtime/batch_classifier.hpp"
#include "hdc/runtime/batch_encoder.hpp"
#include "hdc/runtime/batch_regressor.hpp"
#include "hdc/runtime/batch_text_encoder.hpp"
#include "hdc/serve/prediction_writer.hpp"
#include "hdc/serve/row_reader.hpp"

namespace hdc::serve {

/// Micro-batching policy.
struct ServerOptions {
  /// Rows per micro-batch (> 0).  Small batches bound per-row latency,
  /// large batches amortize the fork-join fan-out.
  std::size_t batch_size = 64;
  /// Flush a partial batch once this much time has passed since its first
  /// row was admitted; zero disables the timer (flush on full/EOF only).
  /// Rows are read with blocking stream I/O, so the interval is enforced
  /// as a *bounded-staleness* guarantee: the deadline is checked before
  /// every read, and a partial batch is additionally flushed whenever the
  /// stream has nothing buffered and the next read could therefore stall —
  /// admitted rows never wait on a paused producer.  (`NetServer` goes
  /// further and turns the deadline into a poll timeout.)
  std::chrono::microseconds flush_interval{0};
  /// Worker threads for the internally created pool when none is passed
  /// (0 = hardware concurrency).
  std::size_t num_threads = 0;
};

/// A ready-to-serve prediction loop around one restored pipeline.
///
/// The pipeline (and everything the Server builds from it) may borrow a
/// snapshot mapping: the Server must not outlive the `MappedSnapshot` it
/// was restored from.  `predict()` and `run()` are not re-entrant on one
/// Server, but distinct Servers may share one thread pool.
class Server {
 public:
  /// \throws std::invalid_argument if options.batch_size == 0.
  explicit Server(io::Pipeline pipeline, ServerOptions options = {},
                  runtime::ThreadPoolPtr pool = nullptr);

  [[nodiscard]] const io::Pipeline& pipeline() const noexcept {
    return pipeline_;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// One micro-batch through the thread pool: encode every row, predict,
  /// return predictions in row order (classifier labels as doubles).
  /// \throws std::invalid_argument on a row of the wrong arity;
  /// std::logic_error on a text pipeline (use predict_text).
  [[nodiscard]] std::vector<double> predict(
      std::span<const std::vector<double>> rows) const;

  /// The text twin of predict(): one raw-text sample per element.
  /// \throws std::logic_error on a numeric pipeline.
  [[nodiscard]] std::vector<double> predict_text(
      std::span<const std::string> rows) const;

  /// Serving-loop outcome.
  struct Stats {
    std::size_t rows = 0;
    std::size_t batches = 0;
    double seconds = 0.0;
  };

  /// Reads rows until end of stream, predicting in micro-batches and
  /// writing every prediction (with its admission-to-write latency) in
  /// input order.  The reader's format must match the pipeline's input
  /// mode (Text readers for text pipelines) and the writer's head mode its
  /// kind (Confidence heads come from classifiers, Band heads from
  /// regressors).  \throws RowError on malformed input — every row that
  /// parsed before the bad one is predicted, written and flushed first;
  /// std::invalid_argument if the reader's format/arity or the writer's
  /// head disagrees with the pipeline.
  Stats run(RowReader& reader, PredictionWriter& writer) const;

 private:
  io::Pipeline pipeline_;
  ServerOptions options_;
  runtime::ThreadPoolPtr pool_;
  /// Exactly one is engaged, per the pipeline's input mode.
  std::optional<runtime::BatchEncoder> encoder_;
  std::optional<runtime::BatchTextEncoder> text_encoder_;
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_SERVER_HPP
