#ifndef HDC_SERVE_NET_SERVER_HPP
#define HDC_SERVE_NET_SERVER_HPP

/// \file net_server.hpp
/// \brief Long-lived socket front end over the hdc::serve pipeline stack.
///
/// `Server` serves one blocking byte stream and returns; a replica fleet
/// needs the other shape: a process that listens on a TCP (and/or
/// unix-domain) socket, serves many persistent connections concurrently,
/// and keeps serving while its model is retrained and redeployed.
/// `NetServer` is that front end:
///
///  * every accepted connection gets its own `RowReader`/`PredictionWriter`
///    pair and a poll-driven micro-batch loop whose flush deadline is a
///    *real* latency bound — the poll timeout is the time left until the
///    oldest admitted row's deadline, so a stalled client can never pin
///    rows in a partial batch (the blocking `Server::run` can only
///    approximate this; see ServerOptions::flush_interval);
///  * batches from all connections fan out over one shared
///    `hdc::runtime::ThreadPool`;
///  * the model is held in a `SwapState` and hot-swapped with zero
///    downtime: `reload()` maps and fully validates the new snapshot off
///    to the side (`io::load_pipeline` + `io::ensure_swappable`), then
///    flips the active `shared_ptr` atomically.  Batches already encoding
///    finish on the mapping they started with; the old mapping is dropped
///    when its last in-flight batch releases it.  A rejected reload
///    (corrupt file, wrong arity, wrong kind) leaves the incumbent serving
///    untouched.
///
/// ## Wire protocol
///
/// Lines in, lines out — exactly the `hdcgen serve` stdin format, so the
/// same producers work against both front ends.  Data lines are CSV/JSONL
/// feature rows — or, for text pipelines served with `--input text`, raw
/// text samples (one per line; a leading `!` still marks a control line).
/// Responses are emitted in admission order per connection, optionally
/// carrying a prediction head (NetServerOptions::head): a margin
/// confidence per classifier row or a p10/p50/p90 band per regressor row.
/// Lines starting with `!` are control commands:
///
///   * `!ping`          → `!ok pong generation=G`
///   * `!stats`         → `!ok rows=N batches=B generation=G`
///   * `!reload [PATH]` → `!ok reloaded generation=G source=PATH`, or
///                        `!error reload rejected: ...` with the old model
///                        still serving.  Without PATH the snapshot the
///                        server is currently serving from is re-read
///                        (SIGHUP triggers exactly this via
///                        reload_notify_fd()).  PATH may also be an HDCS
///                        delta file: it is applied against the last *full*
///                        snapshot the server loaded (the tracked base) and
///                        the patched model hot-swaps in like any other.
///   * `!adapt T ROW`   → one online-feedback sample: ROW is a data line in
///                        the configured input format, T the true target
///                        (an integral class label for classifiers).
///                        Replies `!ok adapt predicted=P updated=U
///                        feedback=N updates=M overlay_rows=K generation=G`
///                        without touching the serving base model — the
///                        update lands in a copy-on-write overlay pinned to
///                        the current generation (and is dropped when a
///                        reload retires that generation).
///   * `!use base|adapted` → A/B switch for *this connection's* data rows:
///                        `adapted` routes them through the overlay,
///                        `base` (the default) through the swap state.
///   * `!delta PATH`    → exports the overlay-vs-base difference as an HDCS
///                        delta file at PATH (`!ok delta rows=N path=PATH`);
///                        `!reload PATH` on any replica of the same base —
///                        or `hdcgen patch` — restores the adapted model
///                        bit-identically.
///   * `!quit`          → `!ok bye`, then the connection closes.
///
/// In cluster mode (`--replicas`), `!adapt` broadcasts the sample to every
/// rank, which apply it to deterministic rank-local overlays and serve the
/// adapted model immediately; `!use` is rejected and `!delta` gathers the
/// changed rows from rank 0.
///
/// A malformed data line flushes every row admitted before it, answers
/// `!error row N: ...` and closes that one connection; the server and all
/// other connections keep running.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "hdc/io/reload.hpp"
#include "hdc/runtime/batch_encoder.hpp"
#include "hdc/serve/adaptive_state.hpp"
#include "hdc/serve/prediction_writer.hpp"
#include "hdc/serve/row_reader.hpp"
#include "hdc/serve/swap_state.hpp"

namespace hdc::serve {

/// Optional delegation of the model plane to an external coordinator
/// (hdc::cluster::ShardedServer behind `hdcgen serve --replicas`).  When
/// `predict` is set, connection loops route micro-batches through it
/// instead of the in-process batch engines — the socket front end fans
/// in/out of the cluster transparently — and the control protocol follows:
/// `!reload` goes through `reload` (throws to reject), `generation`/
/// `source` back the `!ping`/`!reload` replies, and `stats_suffix` is
/// appended verbatim to the `!stats` reply (per-rank counters).  All
/// callables must be thread-safe; unset members fall back to the local
/// swap-state behaviour.
/// One head-carrying batch result from the cluster: values[i] is row i's
/// prediction; confidences (classifiers) or bands (regressors) run
/// parallel to it, the other stays empty.
struct HeadBatch {
  std::vector<double> values;
  std::vector<double> confidences;
  std::vector<Band> bands;
};

struct ClusterHooks {
  std::function<std::vector<double>(std::span<const std::vector<double>>)>
      predict;
  std::function<std::uint64_t(const std::string& path)> reload;
  std::function<std::uint64_t()> generation;
  std::function<std::string()> source;
  std::function<std::string()> stats_suffix;
  /// `!adapt` feedback: broadcast (target, features) to every rank and
  /// return the agreed outcome (ranks must agree bit-identically).
  std::function<AdaptOutcome(double target, std::span<const double> features)>
      adapt;
  /// `!delta PATH`: write the cluster's adapted-vs-base difference as a
  /// delta file; returns the changed-row count.
  std::function<std::uint64_t(const std::string& out_path)> export_delta;
  /// Text-pipeline twins: raw-text micro-batches and feedback rows.  Must
  /// be set when the server's input format is Text and `predict` is set.
  std::function<std::vector<double>(std::span<const std::string>)>
      predict_text;
  std::function<AdaptOutcome(double target, std::string_view text)> adapt_text;
  /// Head-carrying prediction planes, used instead of `predict` /
  /// `predict_text` when the server emits a prediction head.  Must be set
  /// when a head mode is configured and `predict` is set.
  std::function<HeadBatch(std::span<const std::vector<double>>)> predict_head;
  std::function<HeadBatch(std::span<const std::string>)> predict_text_head;
};

/// Listener + micro-batching policy for the socket front end.
struct NetServerOptions {
  /// TCP bind address (IPv4 dotted quad); empty disables the TCP listener.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (query port()).
  std::uint16_t port = 0;
  /// Unix-domain socket path; empty disables the unix listener.  A stale
  /// socket file at the path is unlinked before bind.
  std::string unix_path;
  /// Rows per micro-batch per connection (> 0).
  std::size_t batch_size = 64;
  /// Upper bound on how long an admitted row may wait in a partial batch
  /// (enforced via the poll timeout, millisecond granularity).  Zero means
  /// "flush whenever the connection has no more bytes ready" — the lowest
  /// latency, least batching setting.
  std::chrono::microseconds flush_interval{2000};
  /// Worker threads for the internally created pool when none is passed
  /// (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Wire formats, as in the stdin front end.  `input` must match the
  /// pipeline's input mode (Text for text pipelines) and `head` its kind
  /// (Confidence for classifiers, Band for regressors) — both are checked
  /// at construction.
  RowFormat input = RowFormat::Csv;
  OutputFormat output = OutputFormat::Plain;
  bool with_latency = false;
  HeadMode head = HeadMode::None;
  /// Connections beyond this are refused with `!error server full`.
  std::size_t max_connections = 256;
  /// Residency hints applied when reload() maps a replacement snapshot
  /// (reloads always checksum-verify regardless of how the initial
  /// snapshot was opened: a hot-swap must never trust unvetted bytes).
  io::MappingOptions mapping{};
  /// Sharded-serving delegation; inactive while `cluster.predict` is unset.
  ClusterHooks cluster{};
};

/// The persistent socket server.  Construction binds the listeners (so
/// port() is answerable immediately); run() serves until stop().  Not
/// copyable or movable; destroy it only after run() has returned.
class NetServer {
 public:
  /// \throws std::invalid_argument on batch_size == 0 or no listener
  /// configured; std::runtime_error when a socket cannot be bound.
  NetServer(io::LoadedPipeline loaded, std::string snapshot_path,
            NetServerOptions options = {},
            runtime::ThreadPoolPtr pool = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolved when options.port was 0); 0 when the
  /// TCP listener is disabled.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const NetServerOptions& options() const noexcept {
    return options_;
  }

  /// Accepts and serves connections until stop(); joins every connection
  /// thread before returning.  Call at most once.
  void run();

  /// Asks run() to wind down: stops accepting, wakes every connection,
  /// flushes nothing further.  Safe from any thread; idempotent.
  void stop();

  /// Hot-swaps the serving model to the (fully validated) snapshot at
  /// \p path; in-flight batches finish on the old mapping.  \p path may be
  /// an HDCS delta file, which is applied against base_snapshot_path()
  /// in memory; a full snapshot becomes the new tracked base.  Returns the
  /// new active state.  \throws io::SnapshotError and leaves the incumbent
  /// serving on any validation failure.  Safe from any thread.
  ServingStatePtr reload(const std::string& path);

  /// reload() of the path the active state was loaded from — the SIGHUP
  /// semantic ("the trainer overwrote my snapshot; pick it up").
  ServingStatePtr reload();

  /// Write end of the self-pipe that requests an asynchronous reload():
  /// writing one byte (async-signal-safe) makes the accept loop perform
  /// reload() and log the outcome to stderr — wire a SIGHUP handler to
  /// exactly this.
  [[nodiscard]] int reload_notify_fd() const noexcept {
    return reload_pipe_[1];
  }

  /// The active model generation (0 = the snapshot run() started with;
  /// the cluster generation when ClusterHooks are active).
  [[nodiscard]] std::uint64_t generation() const;

  /// The last *full* snapshot loaded — what delta reloads patch against and
  /// what `!delta` diffs against.  Thread-safe.
  [[nodiscard]] std::string base_snapshot_path() const;

  /// Monotonic serving counters (snapshot; concurrently updated).
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t rows = 0;
    std::uint64_t batches = 0;
    std::uint64_t reloads = 0;
    std::uint64_t rejected_reloads = 0;
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  struct Impl;

  void accept_loop();
  void serve_connection(int fd);
  void serve_connection_body(int fd);
  void handle_async_reload();

  /// The adaptation overlay pinned to the *current* generation, created on
  /// first use and replaced (feedback discarded, by design: it targeted a
  /// retired model) whenever a reload has swapped the active state since.
  [[nodiscard]] AdaptiveStatePtr adaptive_state();

  /// The shared worker pool, created on first use.  Lazy on purpose: an
  /// impossible thread count must surface as an `!error` reply on the
  /// first connection that needs engines (see serve_connection), not tear
  /// the whole server down at construction — and a cluster-backed server
  /// never pays for a pool at all.
  [[nodiscard]] runtime::ThreadPoolPtr ensure_worker_pool();

  NetServerOptions options_;
  runtime::ThreadPoolPtr pool_;
  SwapState swap_;
  /// Guards base_snapshot_path_ and the adaptive_ slot (not the overlay's
  /// own updates — AdaptiveState has its own mutex).
  mutable std::mutex adapt_mutex_;
  std::string base_snapshot_path_;
  AdaptiveStatePtr adaptive_;
  std::size_t num_features_;
  bool classifies_;
  bool text_input_;
  std::uint16_t port_ = 0;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int reload_pipe_[2] = {-1, -1};
  Impl* impl_;  ///< Connection registry + counters (net_server.cpp).
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_NET_SERVER_HPP
