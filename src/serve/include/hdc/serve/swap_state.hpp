#ifndef HDC_SERVE_SWAP_STATE_HPP
#define HDC_SERVE_SWAP_STATE_HPP

/// \file swap_state.hpp
/// \brief The zero-downtime hot-swap holder for a serving replica's model.
///
/// A long-lived server cannot re-open its snapshot per request, and it
/// cannot drop the mapping while a batch encoded over it is still in
/// flight.  The protocol here is the classic RCU-by-shared_ptr shape:
///
///  * `ServingState` is an immutable bundle — the mmapped snapshot and the
///    pipeline restored over it — refcounted by `shared_ptr`.
///  * `SwapState` holds the *active* state behind an atomic pointer.  A
///    serving loop `load()`s at each micro-batch boundary and keeps its
///    copy for the duration of the batch; a reloader builds and validates a
///    complete replacement off to the side and `swap_to()`s it in one
///    atomic flip.
///
/// In-flight batches therefore always finish on the mapping they started
/// on, new batches pick up the replacement immediately, and the old
/// mapping is unmapped exactly when its last in-flight holder releases it
/// — no lock is ever held across a predict.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "hdc/io/reload.hpp"

namespace hdc::serve {

/// One immutable generation of the serving model: the snapshot mapping and
/// the pipeline borrowing it, tagged with the generation counter and the
/// path it was loaded from (SIGHUP re-reads that path).
class ServingState {
 public:
  ServingState(io::LoadedPipeline loaded, std::uint64_t generation,
               std::string source_path)
      : loaded_(std::move(loaded)),
        generation_(generation),
        source_path_(std::move(source_path)) {}

  [[nodiscard]] const io::Pipeline& pipeline() const noexcept {
    return loaded_.pipeline;
  }
  [[nodiscard]] const io::MappedSnapshot& snapshot() const noexcept {
    return loaded_.snapshot;
  }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const std::string& source_path() const noexcept {
    return source_path_;
  }

 private:
  io::LoadedPipeline loaded_;
  std::uint64_t generation_;
  std::string source_path_;
};

using ServingStatePtr = std::shared_ptr<const ServingState>;

/// Atomic holder of the active ServingState (see the file comment for the
/// protocol).  load() is wait-free for readers; swap_to() validates the
/// replacement against the incumbent and flips, serializing concurrent
/// reloaders behind a mutex that readers never touch.
class SwapState {
 public:
  /// Seeds generation 0 with the state a server starts from.
  /// \throws std::invalid_argument if \p initial is null.
  explicit SwapState(io::LoadedPipeline initial, std::string source_path);

  /// The currently active state (acquire; never null).
  [[nodiscard]] ServingStatePtr load() const noexcept;

  /// Validates \p replacement against the incumbent (`io::ensure_swappable`
  /// — same kind, same arity) and atomically makes it the active state.
  /// Returns the new state (already active when this returns).  On throw
  /// the incumbent stays active and untouched.
  /// \throws io::SnapshotError on a shape mismatch.
  ServingStatePtr swap_to(io::LoadedPipeline replacement,
                          std::string source_path);

  /// Generation of the active state.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return load()->generation();
  }

 private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<ServingStatePtr> active_;
#else
  // Pre-atomic<shared_ptr> toolchains: a spare mutex copy on load().  The
  // hot-swap semantics (in-flight batches drain on the old state) are
  // identical, only reader wait-freedom is lost.
  mutable std::mutex active_mutex_;
  ServingStatePtr active_;
#endif
  std::mutex swap_mutex_;  ///< Serializes swap_to() callers only.
  std::uint64_t next_generation_ = 1;
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_SWAP_STATE_HPP
