#ifndef HDC_SERVE_ROW_READER_HPP
#define HDC_SERVE_ROW_READER_HPP

/// \file row_reader.hpp
/// \brief Line-oriented feature-row parsing for the serving front end.
///
/// A serving replica reads feature rows off a byte stream (stdin, a socket,
/// a file) and must reject malformed traffic with a *diagnosable* error —
/// line number, column context, reason — instead of crashing or silently
/// mispredicting.  `RowReader` parses CSV (`1.5, 2, -3e4`) or JSONL
/// (`[1.5, 2, -3e4]`) lines against the restored pipeline's declared
/// feature arity.  Empty lines are skipped, trailing CR (CRLF input) is
/// stripped, and every parse failure throws `RowError` naming the line.
/// Non-finite fields (`nan`, `inf`, `-inf`) are rejected like any other
/// malformed input: fed to the encoder they would silently corrupt every
/// prediction in the batch instead of failing loudly at the parse edge.
///
/// The reader never buffers beyond the current line, so it serves unbounded
/// streams in constant memory.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hdc::serve {

/// Outcome of parsing one numeric token: the two failure shapes carry
/// distinct diagnostics (a stray word vs a syntactically valid nan/inf).
enum class NumberParse : std::uint8_t {
  Ok,
  Malformed,
  NonFinite,
};

/// The one strict numeric-token policy every text front end shares: CSV
/// fields, JSONL array elements, `!adapt` targets and `--real` flag values
/// all accept exactly the same strings.  Surrounding spaces/tabs are
/// trimmed, a conventional leading `+` is taken, and the rest must be a
/// full, finite std::from_chars general-format number — so hex floats
/// ("0x1p3") and locale-dependent strtod extensions are rejected
/// everywhere, not just on the row path.
[[nodiscard]] NumberParse parse_strict_number(std::string_view text,
                                              double& value);

/// Raised on malformed feature rows; the message names the 1-based input
/// line and the reason, so a client can fix its producer.
class RowError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wire format of the incoming feature rows.
enum class RowFormat : std::uint8_t {
  /// One sample per line, comma-separated numeric fields.
  Csv,
  /// One sample per line, a JSON array of numbers (`[1.0, 2.5]`).
  Jsonl,
  /// One sample per line, the raw line *is* the sample (text pipelines).
  /// No numeric parsing happens: every byte after the CR strip belongs to
  /// the sample, so text rows cannot be malformed — only blank.
  Text,
};

/// Parses \p name ("csv" / "jsonl" / "text") into a RowFormat.
/// \throws std::invalid_argument on anything else.
[[nodiscard]] RowFormat parse_row_format(const std::string& name);

/// Streaming feature-row parser with a fixed arity contract.  Numeric
/// formats (Csv/Jsonl) parse into feature vectors; the Text format passes
/// raw lines through (next_text()/parse_text_line()).  The arity contract
/// mirrors io::Pipeline::num_features(): > 0 for numeric formats, exactly
/// 0 for Text.
class RowReader {
 public:
  /// \param in            Source stream; must outlive the reader.
  /// \param num_features  Required fields per row (> 0 for Csv/Jsonl, 0
  ///                      for Text).
  /// \throws std::invalid_argument if num_features disagrees with the
  /// format's arity contract.
  RowReader(std::istream& in, std::size_t num_features,
            RowFormat format = RowFormat::Csv);

  /// Stream-less reader for front ends that own their I/O (the socket
  /// server reads lines off a polled fd and feeds them to parse_line()).
  /// next() on such a reader throws std::logic_error.
  /// \throws std::invalid_argument as the stream constructor.
  explicit RowReader(std::size_t num_features,
                     RowFormat format = RowFormat::Csv);

  /// Reads the next non-empty line into \p out (resized to num_features()).
  /// Returns false on clean end of stream.  \throws RowError on wrong
  /// arity, non-numeric or non-finite fields, malformed JSON arrays, or
  /// stream failure; std::logic_error on a Text reader (use next_text()).
  [[nodiscard]] bool next(std::vector<double>& out);

  /// Parses one already-read line as the next input line: counts it,
  /// strips a trailing CR, and returns false (without consuming arity)
  /// when it is blank.  \throws RowError exactly as next().
  [[nodiscard]] bool parse_line(const std::string& line,
                                std::vector<double>& out);

  /// Text-format twins of next()/parse_line(): the (CR-stripped) line is
  /// the sample.  Returns false on end of stream / a blank line.  \throws
  /// std::logic_error on a numeric-format reader; RowError on stream
  /// failure.
  [[nodiscard]] bool next_text(std::string& out);
  [[nodiscard]] bool parse_text_line(const std::string& line,
                                     std::string& out);

  [[nodiscard]] std::size_t num_features() const noexcept {
    return num_features_;
  }
  [[nodiscard]] RowFormat format() const noexcept { return format_; }

  /// Best-effort "would next() block?" probe for latency-bounded serving
  /// loops: true when the underlying stream reports no buffered characters
  /// (or the reader is stream-less / already at EOF).  A buffered partial
  /// line can still block, so this is a heuristic — callers use it to
  /// flush pending work *before* a probably-blocking read, never for
  /// correctness.
  [[nodiscard]] bool may_block() const;

  /// 1-based number of the last line read (0 before the first read).
  [[nodiscard]] std::size_t line_number() const noexcept { return line_; }

  /// Rows successfully parsed so far.
  [[nodiscard]] std::size_t rows_read() const noexcept { return rows_; }

 private:
  void parse_csv(const std::string& line, std::vector<double>& out) const;
  void parse_jsonl(const std::string& line, std::vector<double>& out) const;
  [[noreturn]] void fail(const std::string& what) const;

  std::istream* in_;  ///< Null for the stream-less (parse_line-only) mode.
  std::size_t num_features_;
  RowFormat format_;
  std::size_t line_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace hdc::serve

#endif  // HDC_SERVE_ROW_READER_HPP
