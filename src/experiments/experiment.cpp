#include "hdc/experiments/experiment.hpp"

#include <chrono>
#include <cmath>
#include <memory>

#include "hdc/base/require.hpp"
#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/feature_encoder.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/data/beijing.hpp"
#include "hdc/data/mars_express.hpp"
#include "hdc/data/splits.hpp"
#include "hdc/stats/circular.hpp"
#include "hdc/stats/descriptive.hpp"
#include "hdc/stats/metrics.hpp"

namespace hdc::exp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(BasisChoice choice) noexcept {
  switch (choice) {
    case BasisChoice::Random:
      return "Random";
    case BasisChoice::Level:
      return "Level";
    case BasisChoice::Circular:
      return "Circular";
    case BasisChoice::CircularCosine:
      return "Circular-cos";
  }
  return "unknown";
}

const char* to_string(DatasetId id) noexcept {
  switch (id) {
    case DatasetId::Beijing:
      return "Beijing";
    case DatasetId::MarsExpress:
      return "Mars Express";
    case DatasetId::KnotTying:
      return "Knot Tying";
    case DatasetId::NeedlePassing:
      return "Needle Passing";
    case DatasetId::Suturing:
      return "Suturing";
  }
  return "unknown";
}

ScalarEncoderPtr make_value_encoder(BasisChoice choice, double r,
                                    std::size_t dimension, std::size_t size,
                                    double span, std::uint64_t seed) {
  require(span > 0.0, "make_value_encoder", "span must be positive");
  require_in_range(r, 0.0, 1.0, "make_value_encoder", "r");
  switch (choice) {
    case BasisChoice::Random: {
      RandomBasisConfig config;
      config.dimension = dimension;
      config.size = size;
      config.seed = seed;
      return std::make_shared<LinearScalarEncoder>(make_random_basis(config),
                                                   0.0, span);
    }
    case BasisChoice::Level: {
      LevelBasisConfig config;
      config.dimension = dimension;
      config.size = size;
      config.method = LevelMethod::Interpolation;
      config.r = r;
      config.seed = seed;
      return std::make_shared<LinearScalarEncoder>(make_level_basis(config),
                                                   0.0, span);
    }
    case BasisChoice::Circular: {
      CircularBasisConfig config;
      config.dimension = dimension;
      config.size = size;
      config.r = r;
      config.seed = seed;
      return std::make_shared<CircularScalarEncoder>(
          make_circular_basis(config), span);
    }
    case BasisChoice::CircularCosine: {
      require(r == 0.0, "make_value_encoder",
              "the cosine profile does not support r-relaxation");
      CircularBasisConfig config;
      config.dimension = dimension;
      config.size = size;
      config.profile = CircularProfile::Cosine;
      config.seed = seed;
      return std::make_shared<CircularScalarEncoder>(
          make_circular_basis(config), span);
    }
  }
  throw_invalid("make_value_encoder", "unknown basis choice");
}

ClassificationRun run_gesture_classification(data::SurgicalTask task,
                                             BasisChoice choice, double r,
                                             const ExperimentParams& params) {
  data::JigsawsConfig data_config;
  data_config.task = task;
  data_config.seed = derive_seed(params.seed, 0xDA7AULL);
  const data::GestureDataset dataset = data::make_jigsaws_dataset(data_config);

  const ScalarEncoderPtr values = make_value_encoder(
      choice, r, params.dimension, params.value_levels, stats::two_pi,
      derive_seed(params.seed, 0x7A1ULL));
  const KeyValueEncoder encoder(dataset.num_channels, values,
                                derive_seed(params.seed, 0x7A2ULL));

  ClassificationRun run;
  run.train_size = dataset.train.size();
  run.test_size = dataset.test.size();

  CentroidClassifier model(dataset.num_gestures, params.dimension,
                           derive_seed(params.seed, 0x7A3ULL));
  const auto train_start = Clock::now();
  for (const data::GestureSample& sample : dataset.train) {
    model.add_sample(sample.gesture, encoder.encode(sample.angles));
  }
  model.finalize();
  run.train_seconds = seconds_since(train_start);

  const auto test_start = Clock::now();
  std::vector<std::size_t> truth;
  std::vector<std::size_t> predicted;
  truth.reserve(dataset.test.size());
  predicted.reserve(dataset.test.size());
  for (const data::GestureSample& sample : dataset.test) {
    truth.push_back(sample.gesture);
    predicted.push_back(model.predict(encoder.encode(sample.angles)));
  }
  run.test_seconds = seconds_since(test_start);
  run.accuracy = stats::accuracy(truth, predicted);
  return run;
}

namespace {

/// Shared tail of both regression tasks: train on (input HV, label) pairs,
/// evaluate MSE on (a strided subsample of) the test pairs.
RegressionRun evaluate_regression(const std::vector<Hypervector>& inputs,
                                  const std::vector<double>& labels,
                                  const data::SplitIndices& split,
                                  const ScalarEncoderPtr& label_encoder,
                                  const ExperimentParams& params,
                                  std::uint64_t seed) {
  RegressionRun run;
  run.train_size = split.train.size();

  HDRegressor model(label_encoder, seed);
  const auto train_start = Clock::now();
  for (const std::size_t index : split.train) {
    model.add_sample(inputs[index], labels[index]);
  }
  model.finalize();
  run.train_seconds = seconds_since(train_start);

  // Evenly strided test subsample (all of it when it already fits).
  std::vector<std::size_t> test_indices;
  const std::size_t limit =
      params.max_test_samples > 0 ? params.max_test_samples
                                  : split.test.size();
  if (split.test.size() <= limit) {
    test_indices = split.test;
  } else {
    test_indices.reserve(limit);
    for (std::size_t k = 0; k < limit; ++k) {
      test_indices.push_back(split.test[k * split.test.size() / limit]);
    }
  }
  run.test_size = test_indices.size();

  const auto test_start = Clock::now();
  std::vector<double> truth;
  std::vector<double> predicted;
  truth.reserve(test_indices.size());
  predicted.reserve(test_indices.size());
  for (const std::size_t index : test_indices) {
    truth.push_back(labels[index]);
    predicted.push_back(params.integer_decode
                            ? model.predict_integer(inputs[index])
                            : model.predict(inputs[index]));
  }
  run.test_seconds = seconds_since(test_start);
  run.mse = stats::mean_squared_error(truth, predicted);
  run.rmse = std::sqrt(run.mse);
  return run;
}

/// Label encoder over the observed range, padded by 5% on both sides.
ScalarEncoderPtr make_label_encoder(const std::vector<double>& labels,
                                    const ExperimentParams& params,
                                    std::uint64_t seed) {
  const double lo = stats::minimum(labels);
  const double hi = stats::maximum(labels);
  const double pad = 0.05 * (hi - lo);
  LevelBasisConfig config;
  config.dimension = params.dimension;
  config.size = params.label_levels;
  config.method = LevelMethod::Interpolation;
  config.seed = seed;
  return std::make_shared<LinearScalarEncoder>(make_level_basis(config),
                                               lo - pad, hi + pad);
}

}  // namespace

RegressionRun run_beijing_regression(BasisChoice choice, double r,
                                     const ExperimentParams& params) {
  data::BeijingConfig data_config;
  data_config.seed = derive_seed(params.seed, 0xBE111ULL);
  const std::vector<data::BeijingRecord> records =
      data::make_beijing_dataset(data_config);

  // Year stays a level encoding in every configuration (it captures macro
  // trends; Section 6.2); day and hour use the basis family under test.
  LevelBasisConfig year_config;
  year_config.dimension = params.dimension;
  year_config.size = 5;
  year_config.seed = derive_seed(params.seed, 0x4EA4ULL);
  const LinearScalarEncoder year_encoder(make_level_basis(year_config), 0.0,
                                         4.0);

  const ScalarEncoderPtr day_encoder = make_value_encoder(
      choice, r, params.dimension, params.value_levels, 366.0,
      derive_seed(params.seed, 0xDA4ULL));
  const ScalarEncoderPtr hour_encoder =
      make_value_encoder(choice, r, params.dimension, 24, 24.0,
                         derive_seed(params.seed, 0x404ULL));

  std::vector<Hypervector> inputs;
  std::vector<double> labels;
  inputs.reserve(records.size());
  labels.reserve(records.size());
  for (const data::BeijingRecord& record : records) {
    const HypervectorView year = year_encoder.encode(
        static_cast<double>(record.year_index));
    const HypervectorView day = day_encoder->encode(
        static_cast<double>(record.day_of_year - 1));
    const HypervectorView hour =
        hour_encoder->encode(static_cast<double>(record.hour));
    inputs.push_back(year ^ day ^ hour);
    labels.push_back(record.temperature);
  }

  const data::SplitIndices split =
      data::chronological_split(records.size(), 0.7);
  const ScalarEncoderPtr label_encoder = make_label_encoder(
      labels, params, derive_seed(params.seed, 0x1ABE1ULL));
  return evaluate_regression(inputs, labels, split, label_encoder, params,
                             derive_seed(params.seed, 0x4E64ULL));
}

RegressionRun run_mars_regression(BasisChoice choice, double r,
                                  const ExperimentParams& params) {
  data::MarsExpressConfig data_config;
  data_config.seed = derive_seed(params.seed, 0x3A45ULL);
  const std::vector<data::MarsRecord> records =
      data::make_mars_express_dataset(data_config);

  const ScalarEncoderPtr anomaly_encoder = make_value_encoder(
      choice, r, params.dimension, params.mars_value_levels, stats::two_pi,
      derive_seed(params.seed, 0xA40ULL));

  std::vector<Hypervector> inputs;
  std::vector<double> labels;
  inputs.reserve(records.size());
  labels.reserve(records.size());
  for (const data::MarsRecord& record : records) {
    inputs.emplace_back(anomaly_encoder->encode(record.mean_anomaly));
    labels.push_back(record.power);
  }

  const data::SplitIndices split = data::random_split(
      records.size(), 0.7, derive_seed(params.seed, 0x5911ULL));
  const ScalarEncoderPtr label_encoder = make_label_encoder(
      labels, params, derive_seed(params.seed, 0x1ABE2ULL));
  return evaluate_regression(inputs, labels, split, label_encoder, params,
                             derive_seed(params.seed, 0x4E65ULL));
}

namespace {

/// Raw error of one dataset under one basis choice: MSE for regression,
/// 1 - accuracy for classification.
double raw_error(DatasetId id, BasisChoice choice, double r,
                 const ExperimentParams& params) {
  switch (id) {
    case DatasetId::Beijing:
      return run_beijing_regression(choice, r, params).mse;
    case DatasetId::MarsExpress:
      return run_mars_regression(choice, r, params).mse;
    case DatasetId::KnotTying:
      return 1.0 - run_gesture_classification(data::SurgicalTask::KnotTying,
                                              choice, r, params)
                       .accuracy;
    case DatasetId::NeedlePassing:
      return 1.0 -
             run_gesture_classification(data::SurgicalTask::NeedlePassing,
                                        choice, r, params)
                 .accuracy;
    case DatasetId::Suturing:
      return 1.0 - run_gesture_classification(data::SurgicalTask::Suturing,
                                              choice, r, params)
                       .accuracy;
  }
  throw_invalid("raw_error", "unknown dataset");
}

}  // namespace

RSweepResult run_r_sweep(DatasetId id, std::span<const double> r_values,
                         const ExperimentParams& params) {
  require(!r_values.empty(), "run_r_sweep", "r_values must be non-empty");
  for (const double r : r_values) {
    require_in_range(r, 0.0, 1.0, "run_r_sweep", "r");
  }
  RSweepResult result;
  result.dataset = id;
  result.reference_error = raw_error(id, BasisChoice::Random, 0.0, params);
  result.r_values.assign(r_values.begin(), r_values.end());
  result.normalized_error.reserve(r_values.size());
  for (const double r : r_values) {
    const double error = raw_error(id, BasisChoice::Circular, r, params);
    result.normalized_error.push_back(error / result.reference_error);
  }
  return result;
}

}  // namespace hdc::exp
