#ifndef HDC_EXPERIMENTS_TABLE_HPP
#define HDC_EXPERIMENTS_TABLE_HPP

/// \file table.hpp
/// \brief Plain-text table and heat-map rendering for the bench binaries.

#include <string>
#include <vector>

namespace hdc::exp {

/// Column-aligned plain-text table.
class TextTable {
 public:
  /// Sets the header row and fixes the column count.
  /// \throws std::invalid_argument if header is empty.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row. \throws std::invalid_argument if the cell count
  /// differs from the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column padding, a header rule, and a trailing newline.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
[[nodiscard]] std::string format_double(double value, int decimals);

/// Formats a fraction as a percentage ("84.0%").
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);

/// Renders a matrix of values in [lo, hi] as an ASCII heat map (one glyph
/// per cell, darker = larger), for the Figure 3 similarity matrices.
/// \throws std::invalid_argument if the matrix is empty/ragged or lo >= hi.
[[nodiscard]] std::string render_heatmap(
    const std::vector<std::vector<double>>& matrix, double lo, double hi);

}  // namespace hdc::exp

#endif  // HDC_EXPERIMENTS_TABLE_HPP
