#ifndef HDC_EXPERIMENTS_EXPERIMENT_HPP
#define HDC_EXPERIMENTS_EXPERIMENT_HPP

/// \file experiment.hpp
/// \brief Shared runners for every experiment in the paper's Section 6.
///
/// Each bench binary (one per table/figure) is a thin wrapper around these
/// runners, so tests can validate the exact code paths the benches execute.
/// All runners are deterministic functions of their parameters.

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/scalar_encoder.hpp"
#include "hdc/data/jigsaws.hpp"

namespace hdc::exp {

/// Which basis-hypervector family encodes the values under test.
/// `CircularCosine` is the repository's extension profile (E[delta to the
/// reference] = rho/2, the relation Section 5.1 states; see
/// hdc/core/basis_circular.hpp) and is exercised by the ablation benches.
enum class BasisChoice : std::uint8_t {
  Random = 0,
  Level = 1,
  Circular = 2,
  CircularCosine = 3,
};

[[nodiscard]] const char* to_string(BasisChoice choice) noexcept;

/// Hyperparameters shared by all experiments.  The paper fixes d = 10,000
/// and leaves the grid sizes unstated; these defaults are reported in every
/// bench header (DESIGN.md section 3).
struct ExperimentParams {
  std::size_t dimension = 10'000;
  std::size_t value_levels = 64;   ///< Grid size m of input value encoders.
  std::size_t label_levels = 128;  ///< Label grid for regression.
  /// Grid size of the Mars Express mean-anomaly encoder.  The anomaly is the
  /// only input of that task, so a finer grid (sparser per-bin sampling) is
  /// what exercises the interpolation ability of correlated bases.
  std::size_t mars_value_levels = 512;
  /// Regression readout: true (default) scores the label basis against the
  /// integer bundle accumulator (non-quantized, torchhd-style); false uses
  /// the binary majority-quantized model of Section 2.3 verbatim.  See
  /// EXPERIMENTS.md for why the integer readout is the faithful choice for
  /// Table 2.
  bool integer_decode = true;
  /// Upper bound on evaluated test samples per regression run (evenly
  /// strided subsample); bounds the cost of the integer readout.
  std::size_t max_test_samples = 3'000;
  std::uint64_t seed = 1;
};

/// Builds a scalar encoder over the normalized domain [0, span):
/// Circular  -> circular basis (with the given r) and periodic quantization;
/// Level     -> interpolation level basis (Algorithm 1, with r) over [0, span];
/// Random    -> random basis over the same linear grid (the uncorrelated
///              baseline of the experiments).
/// \throws std::invalid_argument on invalid arguments.
[[nodiscard]] ScalarEncoderPtr make_value_encoder(BasisChoice choice, double r,
                                                  std::size_t dimension,
                                                  std::size_t size, double span,
                                                  std::uint64_t seed);

/// Result of one classification run (Table 1 cell).
struct ClassificationRun {
  double accuracy = 0.0;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
};

/// Trains and evaluates the Section 6.1 gesture classifier: samples encoded
/// as ⊕_{i=1..18} K_i ⊗ V_i, one model per surgical task, trained on
/// surgeon "D" and tested on the remaining surgeons.
[[nodiscard]] ClassificationRun run_gesture_classification(
    data::SurgicalTask task, BasisChoice choice, double r,
    const ExperimentParams& params);

/// Result of one regression run (Table 2 cell).
struct RegressionRun {
  double mse = 0.0;
  double rmse = 0.0;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
};

/// Section 6.2 Beijing temperature task: samples encoded as Y ⊗ D ⊗ H (year
/// always a level basis; day-of-year and hour-of-day use the basis family
/// under test), chronological 70/30 split, level-encoded labels.
[[nodiscard]] RegressionRun run_beijing_regression(
    BasisChoice choice, double r, const ExperimentParams& params);

/// Section 6.2 Mars Express task: the mean anomaly is the single encoded
/// input, random 70/30 split, level-encoded power labels.
[[nodiscard]] RegressionRun run_mars_regression(BasisChoice choice, double r,
                                                const ExperimentParams& params);

/// The five datasets of Figure 8.
enum class DatasetId : std::uint8_t {
  Beijing = 0,
  MarsExpress = 1,
  KnotTying = 2,
  NeedlePassing = 3,
  Suturing = 4,
};

[[nodiscard]] const char* to_string(DatasetId id) noexcept;

/// Figure 8: normalized error of circular-hypervectors as a function of r,
/// normalized against the random-hypervector reference on the same dataset
/// (normalized MSE for regression, normalized accuracy error (1-a)/(1-a_ref)
/// for classification).
struct RSweepResult {
  DatasetId dataset = DatasetId::Beijing;
  double reference_error = 0.0;  ///< Random-basis raw error (MSE or 1-acc).
  std::vector<double> r_values;
  std::vector<double> normalized_error;
};

/// Runs the sweep for one dataset.  \throws std::invalid_argument if
/// r_values is empty or any r is outside [0, 1].
[[nodiscard]] RSweepResult run_r_sweep(DatasetId id,
                                       std::span<const double> r_values,
                                       const ExperimentParams& params);

}  // namespace hdc::exp

#endif  // HDC_EXPERIMENTS_EXPERIMENT_HPP
