#include "hdc/experiments/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "hdc/base/require.hpp"

namespace hdc::exp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable", "header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "TextTable::add_row",
          "cell count must match the header");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << ' ';
    }
    out << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << '|' << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

std::string render_heatmap(const std::vector<std::vector<double>>& matrix,
                           double lo, double hi) {
  require(!matrix.empty(), "render_heatmap", "matrix must be non-empty");
  require(lo < hi, "render_heatmap", "lo must be < hi");
  const std::size_t cols = matrix.front().size();
  require(cols > 0, "render_heatmap", "matrix must have columns");
  // Light -> dark ramp; one glyph per cell, doubled for aspect ratio.
  static constexpr std::string_view ramp = " .:-=+*#%@";
  std::ostringstream out;
  for (const auto& row : matrix) {
    require(row.size() == cols, "render_heatmap", "matrix must be rectangular");
    for (const double value : row) {
      const double unit = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(
          std::min<double>(std::floor(unit * static_cast<double>(ramp.size())),
                           static_cast<double>(ramp.size() - 1)));
      out << ramp[idx] << ramp[idx];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace hdc::exp
