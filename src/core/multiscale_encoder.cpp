#include "hdc/core/multiscale_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc {

namespace {

std::vector<std::size_t> sorted_scales(
    const MultiScaleCircularEncoder::Config& config) {
  require_positive(config.dimension, "MultiScaleCircularEncoder", "dimension");
  require(!config.scales.empty(), "MultiScaleCircularEncoder",
          "need at least one scale");
  require(std::isfinite(config.period) && config.period > 0.0,
          "MultiScaleCircularEncoder", "period must be positive");

  std::vector<std::size_t> scales = config.scales;
  std::sort(scales.begin(), scales.end());
  for (const std::size_t m : scales) {
    require(m >= 2, "MultiScaleCircularEncoder", "every scale must be >= 2");
  }
  return scales;
}

std::vector<Basis> make_scale_bases(
    const MultiScaleCircularEncoder::Config& config,
    const std::vector<std::size_t>& scales) {
  std::vector<Basis> bases;
  bases.reserve(scales.size());
  for (std::size_t s = 0; s < scales.size(); ++s) {
    CircularBasisConfig basis_config;
    basis_config.dimension = config.dimension;
    basis_config.size = scales[s];
    basis_config.seed = derive_seed(config.seed, s);
    bases.push_back(make_circular_basis(basis_config));
  }
  return bases;
}

}  // namespace

MultiScaleCircularEncoder::MultiScaleCircularEncoder(const Config& config)
    : scales_(sorted_scales(config)),
      period_(config.period),
      seed_(config.seed) {
  bases_ = make_scale_bases(config, scales_);
  // Pack every bound vector straight into the arena up front: encode() and
  // decode() then only read immutable state, which is what makes concurrent
  // use safe.  Each scale quantizes the same representative angle onto its
  // own ring.
  const std::size_t m_fine = bases_.back().size();
  words_per_vector_ = bits::words_for(bases_.back().dimension());
  std::vector<std::uint64_t> arena(m_fine * words_per_vector_, 0ULL);
  for (std::size_t index = 0; index < m_fine; ++index) {
    const double theta = value_of(index);
    Hypervector bound(bases_.back()[index]);
    for (std::size_t s = 0; s + 1 < bases_.size(); ++s) {
      const Basis& basis = bases_[s];
      const auto m = static_cast<double>(basis.size());
      const auto coarse = static_cast<std::size_t>(
                              std::llround(theta / period_ * m)) %
                          basis.size();
      bound ^= basis[coarse];
    }
    pack_row(bound, arena, words_per_vector_, index);
  }
  packed_ = WordStorage(std::move(arena));
}

MultiScaleCircularEncoder::MultiScaleCircularEncoder(
    Basis finest, std::vector<std::size_t> scales, double period,
    std::uint64_t seed, WordStorage bound_arena)
    : scales_(std::move(scales)),
      period_(period),
      seed_(seed),
      packed_(std::move(bound_arena)) {
  require(!scales_.empty(), "MultiScaleCircularEncoder",
          "need at least one scale");
  for (std::size_t s = 0; s < scales_.size(); ++s) {
    require(scales_[s] >= 2 && (s == 0 || scales_[s] > scales_[s - 1]),
            "MultiScaleCircularEncoder",
            "restored scales must be >= 2 and strictly increasing");
  }
  require(std::isfinite(period_) && period_ > 0.0,
          "MultiScaleCircularEncoder", "period must be positive");
  require(finest.size() == scales_.back(), "MultiScaleCircularEncoder",
          "finest basis size must equal the finest scale");
  words_per_vector_ = bits::words_for(finest.dimension());
  require(packed_.size() == finest.size() * words_per_vector_,
          "MultiScaleCircularEncoder",
          "bound arena word count disagrees with the finest scale");
  bases_.push_back(std::move(finest));
}

MultiScaleCircularEncoder::MultiScaleCircularEncoder(
    Basis finest, std::vector<std::size_t> scales, double period,
    std::uint64_t seed, std::span<const std::uint64_t> bound_arena, borrow_t)
    : MultiScaleCircularEncoder(std::move(finest), std::move(scales), period,
                                seed, WordStorage(bound_arena, borrowed)) {
  const std::uint64_t tail = bits::tail_mask(bases_.back().dimension());
  const auto words = packed_.words();
  for (std::size_t row = 0; row < scales_.back(); ++row) {
    require((words[(row + 1) * words_per_vector_ - 1] & ~tail) == 0,
            "MultiScaleCircularEncoder",
            "bound arena rows must keep tail bits zero");
  }
}

MultiScaleCircularEncoder::MultiScaleCircularEncoder(
    Basis finest, std::vector<std::size_t> scales, double period,
    std::uint64_t seed, std::span<const std::uint64_t> bound_arena, borrow_t,
    unchecked_t)
    : MultiScaleCircularEncoder(std::move(finest), std::move(scales), period,
                                seed, WordStorage(bound_arena, borrowed)) {}

std::size_t MultiScaleCircularEncoder::index_of(double value) const {
  const auto m = static_cast<double>(bases_.back().size());
  double wrapped = std::fmod(value, period_);
  if (wrapped < 0.0) {
    wrapped += period_;
  }
  const auto index =
      static_cast<std::size_t>(std::llround(wrapped / period_ * m));
  return index % bases_.back().size();
}

double MultiScaleCircularEncoder::value_of(std::size_t index) const {
  require(index < bases_.back().size(),
          "MultiScaleCircularEncoder::value_of", "index out of range");
  return static_cast<double>(index) * period_ /
         static_cast<double>(bases_.back().size());
}

HypervectorView MultiScaleCircularEncoder::encode(double value) const {
  return row_view(packed_.words(), bases_.back().dimension(),
                  words_per_vector_, index_of(value));
}

double MultiScaleCircularEncoder::decode(HypervectorView query) const {
  require(query.dimension() == bases_.back().dimension(),
          "MultiScaleCircularEncoder::decode", "query dimension mismatch");
  return value_of(bits::nearest_hamming(query.words(), packed_.words(),
                                        words_per_vector_,
                                        bases_.back().size())
                      .index);
}

}  // namespace hdc
