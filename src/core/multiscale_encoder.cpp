#include "hdc/core/multiscale_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc {

namespace {

std::vector<Basis> make_scale_bases(
    const MultiScaleCircularEncoder::Config& config) {
  require_positive(config.dimension, "MultiScaleCircularEncoder", "dimension");
  require(!config.scales.empty(), "MultiScaleCircularEncoder",
          "need at least one scale");
  require(std::isfinite(config.period) && config.period > 0.0,
          "MultiScaleCircularEncoder", "period must be positive");

  std::vector<std::size_t> scales = config.scales;
  std::sort(scales.begin(), scales.end());
  for (const std::size_t m : scales) {
    require(m >= 2, "MultiScaleCircularEncoder", "every scale must be >= 2");
  }

  std::vector<Basis> bases;
  bases.reserve(scales.size());
  for (std::size_t s = 0; s < scales.size(); ++s) {
    CircularBasisConfig basis_config;
    basis_config.dimension = config.dimension;
    basis_config.size = scales[s];
    basis_config.seed = derive_seed(config.seed, s);
    bases.push_back(make_circular_basis(basis_config));
  }
  return bases;
}

}  // namespace

MultiScaleCircularEncoder::MultiScaleCircularEncoder(const Config& config)
    : bases_(make_scale_bases(config)), period_(config.period) {
  // Pack every bound vector straight into the arena up front: encode() and
  // decode() then only read immutable state, which is what makes concurrent
  // use safe.  Each scale quantizes the same representative angle onto its
  // own ring.
  const std::size_t m_fine = bases_.back().size();
  words_per_vector_ = bits::words_for(bases_.back().dimension());
  packed_.assign(m_fine * words_per_vector_, 0ULL);
  for (std::size_t index = 0; index < m_fine; ++index) {
    const double theta = value_of(index);
    Hypervector bound(bases_.back()[index]);
    for (std::size_t s = 0; s + 1 < bases_.size(); ++s) {
      const Basis& basis = bases_[s];
      const auto m = static_cast<double>(basis.size());
      const auto coarse = static_cast<std::size_t>(
                              std::llround(theta / period_ * m)) %
                          basis.size();
      bound ^= basis[coarse];
    }
    pack_row(bound, packed_, words_per_vector_, index);
  }
}

std::size_t MultiScaleCircularEncoder::index_of(double value) const {
  const auto m = static_cast<double>(bases_.back().size());
  double wrapped = std::fmod(value, period_);
  if (wrapped < 0.0) {
    wrapped += period_;
  }
  const auto index =
      static_cast<std::size_t>(std::llround(wrapped / period_ * m));
  return index % bases_.back().size();
}

double MultiScaleCircularEncoder::value_of(std::size_t index) const {
  require(index < bases_.back().size(),
          "MultiScaleCircularEncoder::value_of", "index out of range");
  return static_cast<double>(index) * period_ /
         static_cast<double>(bases_.back().size());
}

HypervectorView MultiScaleCircularEncoder::encode(double value) const {
  return row_view(packed_, bases_.back().dimension(), words_per_vector_,
                  index_of(value));
}

double MultiScaleCircularEncoder::decode(HypervectorView query) const {
  require(query.dimension() == bases_.back().dimension(),
          "MultiScaleCircularEncoder::decode", "query dimension mismatch");
  return value_of(bits::nearest_hamming(query.words(), packed_,
                                        words_per_vector_,
                                        bases_.back().size())
                      .index);
}

}  // namespace hdc
