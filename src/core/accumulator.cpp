#include "hdc/core/accumulator.hpp"

#include <algorithm>
#include <cstdlib>

#include "hdc/base/require.hpp"

namespace hdc {

BundleAccumulator::BundleAccumulator(std::size_t dimension)
    : dimension_(dimension), counters_(dimension, 0) {
  require_positive(dimension, "BundleAccumulator", "dimension");
}

namespace {

/// Applies `counter += sign * weight` per dimension, unpacking 64 bits at a
/// time.  The inner loop is branch-free on the bit value.
void apply(std::span<std::int32_t> counters,
           std::span<const std::uint64_t> words, std::int32_t weight) {
  const std::size_t d = counters.size();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bitsword = words[w];
    const std::size_t base = w * bits::word_bits;
    const std::size_t limit = std::min(bits::word_bits, d - base);
    for (std::size_t b = 0; b < limit; ++b) {
      // bit set -> +weight, clear -> -weight
      const std::int32_t sign = static_cast<std::int32_t>(bitsword & 1U) * 2 - 1;
      counters[base + b] += sign * weight;
      bitsword >>= 1U;
    }
  }
}

}  // namespace

void BundleAccumulator::add(HypervectorView hv) {
  require(hv.dimension() == dimension_, "BundleAccumulator::add",
          "dimension mismatch");
  apply(counters_, hv.words(), 1);
  ++count_;
}

void BundleAccumulator::add_words(std::span<const std::uint64_t> words) {
  require(words.size() == bits::words_for(dimension_),
          "BundleAccumulator::add_words", "word-count mismatch");
  apply(counters_, words, 1);
  ++count_;
}

void BundleAccumulator::subtract(HypervectorView hv) {
  require(hv.dimension() == dimension_, "BundleAccumulator::subtract",
          "dimension mismatch");
  apply(counters_, hv.words(), -1);
  ++count_;
}

void BundleAccumulator::add_weighted(HypervectorView hv,
                                     std::int32_t weight) {
  require(hv.dimension() == dimension_, "BundleAccumulator::add_weighted",
          "dimension mismatch");
  require(weight != 0, "BundleAccumulator::add_weighted",
          "weight must be non-zero");
  apply(counters_, hv.words(), weight);
  count_ += static_cast<std::size_t>(std::abs(weight));
}

void BundleAccumulator::merge(const BundleAccumulator& other) {
  require(other.dimension_ == dimension_, "BundleAccumulator::merge",
          "dimension mismatch");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  count_ += other.count_;
}

Hypervector BundleAccumulator::finalize(Rng& tie_rng) const {
  const Hypervector tie = Hypervector::random(dimension_, tie_rng);
  return finalize(tie);
}

Hypervector BundleAccumulator::finalize(HypervectorView tie_breaker) const {
  require(tie_breaker.dimension() == dimension_, "BundleAccumulator::finalize",
          "tie_breaker dimension mismatch");
  Hypervector out(dimension_);
  for (std::size_t i = 0; i < dimension_; ++i) {
    const std::int32_t c = counters_[i];
    const bool bit = c > 0 || (c == 0 && tie_breaker.bit(i));
    if (bit) {
      bits::set_bit(out.words(), i, true);
    }
  }
  return out;
}

std::int64_t BundleAccumulator::signed_projection(HypervectorView hv) const {
  require(hv.dimension() == dimension_, "BundleAccumulator::signed_projection",
          "dimension mismatch");
  // total = sum_set(c) - sum_clear(c) = 2 * sum_set(c) - sum_all(c); walking
  // words keeps the inner loop branch-free and auto-vectorizable.
  const std::span<const std::uint64_t> words = hv.words();
  std::int64_t sum_all = 0;
  std::int64_t sum_set = 0;
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bitsword = words[w];
    const std::size_t base = w * bits::word_bits;
    const std::size_t limit = std::min(bits::word_bits, dimension_ - base);
    for (std::size_t b = 0; b < limit; ++b) {
      const std::int64_t c = counters_[base + b];
      sum_all += c;
      sum_set += static_cast<std::int64_t>(bitsword & 1U) * c;
      bitsword >>= 1U;
    }
  }
  return 2 * sum_set - sum_all;
}

void BundleAccumulator::clear() noexcept {
  std::fill(counters_.begin(), counters_.end(), 0);
  count_ = 0;
}

}  // namespace hdc
