// AVX-512 kernel variant: 512-bit XOR + native vector popcount
// (VPOPCNTDQ).  _mm512_popcnt_epi64 counts eight words per instruction;
// the per-lane counts accumulate in a vector register across the row and
// reduce once at the end — the widest per-cycle popcount x86 offers, and
// exactly the workload shape HDC inference is (wide bitwise sweeps).
//
// Compiled with -mavx512f/bw/vl/vpopcntdq only when the compiler supports
// them; otherwise this TU is the nullptr stub.  The dispatcher offers the
// variant only when the running CPU reports avx512f + avx512vpopcntdq, so
// none of this code executes on narrower machines.

#include "kernel_detail.hpp"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

#include <bit>

namespace hdc::bits::detail {

namespace {

std::size_t avx512_hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) noexcept {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  // Two 512-bit lanes (16 words) per iteration with independent
  // accumulators: popcount latency overlaps across the pair.
  for (; i + 16 <= n; i += 16) {
    const __m512i x0 = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i));
    const __m512i x1 = _mm512_xor_si512(_mm512_loadu_si512(a + i + 8),
                                        _mm512_loadu_si512(b + i + 8));
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(x0));
    acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(x1));
  }
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(x));
  }
  std::size_t total = static_cast<std::size_t>(
      _mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

NearestMatch avx512_nearest(const std::uint64_t* query, std::size_t words,
                            const std::uint64_t* arena, std::size_t stride,
                            std::size_t count) noexcept {
  return nearest_rows(avx512_hamming, query, words, arena, stride, count);
}

void avx512_hamming_many(const std::uint64_t* query, std::size_t words,
                         const std::uint64_t* arena, std::size_t stride,
                         std::size_t count, std::size_t* out) noexcept {
  hamming_rows(avx512_hamming, query, words, arena, stride, count, out);
}

std::size_t avx512_count_ones(const std::uint64_t* words,
                              std::size_t n) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_loadu_si512(words + i)));
  }
  std::size_t total =
      static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

void avx512_xor_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(_mm512_loadu_si512(dst + i),
                                         _mm512_loadu_si512(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void avx512_xor_rows(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                         _mm512_loadu_si512(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

constexpr Kernels kAvx512Kernels = {
    .name = "avx512",
    .supported = cpu_has_avx512,
    .hamming = avx512_hamming,
    .nearest_hamming = avx512_nearest,
    .hamming_many = avx512_hamming_many,
    .count_ones = avx512_count_ones,
    .xor_into = avx512_xor_into,
    .xor_rows = avx512_xor_rows,
};

}  // namespace

const Kernels* avx512_variant() noexcept { return &kAvx512Kernels; }

}  // namespace hdc::bits::detail

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__)

namespace hdc::bits::detail {

const Kernels* avx512_variant() noexcept { return nullptr; }

}  // namespace hdc::bits::detail

#endif
