// Kernel dispatcher: CPU-feature probing and the process-wide active
// variant (hdc/core/kernels.hpp).
//
// This TU is compiled with the portable baseline ISA on purpose: the
// support predicates live here, not in the per-ISA TUs, so probing for a
// feature can never itself execute an instruction the CPU lacks.

#include "hdc/core/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "kernel_detail.hpp"

namespace hdc::bits {

namespace detail {

bool cpu_always() noexcept { return true; }

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))

bool cpu_has_avx2() noexcept { return __builtin_cpu_supports("avx2") != 0; }

bool cpu_has_avx512() noexcept {
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512vpopcntdq") != 0;
}

#else

bool cpu_has_avx2() noexcept { return false; }
bool cpu_has_avx512() noexcept { return false; }

#endif

// AArch64 makes Advanced SIMD architecturally mandatory; there is nothing
// to probe at runtime.
#if defined(__aarch64__) && defined(__ARM_NEON)
bool cpu_has_neon() noexcept { return true; }
#else
bool cpu_has_neon() noexcept { return false; }
#endif

}  // namespace detail

namespace {

/// Candidate slots in preference order (widest first); a slot is null when
/// its TU was compiled without the ISA.  Scalar is always present and last.
constexpr std::size_t kVariantSlots = 4;

const Kernels* variant_slot(std::size_t i) noexcept {
  switch (i) {
    case 0:
      return detail::avx512_variant();
    case 1:
      return detail::avx2_variant();
    case 2:
      return detail::neon_variant();
    default:
      return detail::scalar_variant();
  }
}

/// First compiled-in variant named \p name; null when absent.
const Kernels* find_variant(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kVariantSlots; ++i) {
    const Kernels* variant = variant_slot(i);
    if (variant != nullptr && name == variant->name) {
      return variant;
    }
  }
  return nullptr;
}

/// Best variant the running CPU supports: the auto-selection default.
const Kernels* best_supported() noexcept {
  for (std::size_t i = 0; i < kVariantSlots; ++i) {
    const Kernels* variant = variant_slot(i);
    if (variant != nullptr && variant->supported()) {
      return variant;
    }
  }
  return detail::scalar_variant();  // unreachable: scalar always supports
}

/// Resolves the initial selection once: the HDC_KERNELS override when it
/// names a usable variant, the best supported variant otherwise.  A bad
/// override is diagnosed, never fatal — a typo in an env var must only
/// cost speed, not bring a replica down.
const Kernels* initial_selection() noexcept {
  const char* request = std::getenv("HDC_KERNELS");
  if (request != nullptr && *request != '\0') {
    const Kernels* variant = find_variant(request);
    if (variant == nullptr) {
      std::fprintf(stderr,
                   "hdc: HDC_KERNELS=%s is not a compiled-in kernel variant; "
                   "using auto selection\n",
                   request);
    } else if (!variant->supported()) {
      std::fprintf(stderr,
                   "hdc: HDC_KERNELS=%s is not supported by this CPU; "
                   "using auto selection\n",
                   request);
    } else {
      return variant;
    }
  }
  return best_supported();
}

std::atomic<const Kernels*>& active_slot() noexcept {
  // Function-local static: thread-safe one-time init on first use, after
  // which active_kernels() is a single acquire load.
  static std::atomic<const Kernels*> slot{initial_selection()};
  return slot;
}

}  // namespace

const Kernels& active_kernels() noexcept {
  return *active_slot().load(std::memory_order_acquire);
}

const Kernels& scalar_kernels() noexcept {
  return *detail::scalar_variant();
}

std::vector<const Kernels*> compiled_kernels() {
  std::vector<const Kernels*> out;
  for (std::size_t i = 0; i < kVariantSlots; ++i) {
    const Kernels* variant = variant_slot(i);
    if (variant != nullptr) {
      out.push_back(variant);
    }
  }
  return out;
}

std::vector<const Kernels*> available_kernels() {
  std::vector<const Kernels*> out;
  for (std::size_t i = 0; i < kVariantSlots; ++i) {
    const Kernels* variant = variant_slot(i);
    if (variant != nullptr && variant->supported()) {
      out.push_back(variant);
    }
  }
  return out;
}

const Kernels& select_kernels(std::string_view name) {
  const Kernels* variant = find_variant(name);
  if (variant == nullptr || !variant->supported()) {
    std::string message = "select_kernels: '";
    message += name;
    message += variant == nullptr ? "' is not a compiled-in kernel variant"
                                  : "' is not supported by this CPU";
    message += " (available:";
    for (const Kernels* candidate : available_kernels()) {
      message += ' ';
      message += candidate->name;
    }
    message += ')';
    throw std::invalid_argument(message);
  }
  active_slot().store(variant, std::memory_order_release);
  return *variant;
}

CpuFeatures cpu_features() noexcept {
  CpuFeatures features;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  features.popcnt = __builtin_cpu_supports("popcnt") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.avx512f = __builtin_cpu_supports("avx512f") != 0;
  features.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
  features.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
  features.avx512vpopcntdq =
      __builtin_cpu_supports("avx512vpopcntdq") != 0;
#endif
  features.neon = detail::cpu_has_neon();
  return features;
}

}  // namespace hdc::bits
