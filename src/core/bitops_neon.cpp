// NEON kernel variant (AArch64): 128-bit XOR + CNT byte popcount.
//
// AArch64 makes Advanced SIMD mandatory, so no extra compile flags are
// needed and the runtime predicate is a constant — this TU simply compiles
// to the nullptr stub everywhere else.  Per 16-byte vector: VEOR, VCNT
// (per-byte popcount), then UADALP chains fold bytes pairwise into 16-bit
// and 64-bit lane accumulators, reduced once at the end of the row.
// Correctness contract: bit-exact with the scalar variant (property-tested).

#include "kernel_detail.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <bit>

namespace hdc::bits::detail {

namespace {

std::size_t neon_hamming(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) noexcept {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64x2_t x0 = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    const uint64x2_t x1 =
        veorq_u64(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2));
    // Per-byte counts (<= 8 each); one pairwise-add-long chain per pair of
    // vectors keeps every intermediate lane far from saturation.
    const uint8x16_t c0 = vcntq_u8(vreinterpretq_u8_u64(x0));
    const uint8x16_t c1 = vcntq_u8(vreinterpretq_u8_u64(x1));
    const uint16x8_t bytes16 = vaddl_u8(vget_low_u8(c0), vget_high_u8(c0));
    const uint16x8_t sum16 =
        vaddq_u16(bytes16, vaddl_u8(vget_low_u8(c1), vget_high_u8(c1)));
    acc = vpadalq_u32(acc, vpaddlq_u16(sum16));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0) +
                                               vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

NearestMatch neon_nearest(const std::uint64_t* query, std::size_t words,
                          const std::uint64_t* arena, std::size_t stride,
                          std::size_t count) noexcept {
  return nearest_rows(neon_hamming, query, words, arena, stride, count);
}

void neon_hamming_many(const std::uint64_t* query, std::size_t words,
                       const std::uint64_t* arena, std::size_t stride,
                       std::size_t count, std::size_t* out) noexcept {
  hamming_rows(neon_hamming, query, words, arena, stride, count, out);
}

std::size_t neon_count_ones(const std::uint64_t* words, std::size_t n) noexcept {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t counts =
        vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(words + i)));
    acc = vpadalq_u32(acc, vpaddlq_u16(vpaddlq_u8(counts)));
  }
  std::size_t total = static_cast<std::size_t>(vgetq_lane_u64(acc, 0) +
                                               vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

void neon_xor_into(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void neon_xor_rows(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

constexpr Kernels kNeonKernels = {
    .name = "neon",
    .supported = cpu_has_neon,
    .hamming = neon_hamming,
    .nearest_hamming = neon_nearest,
    .hamming_many = neon_hamming_many,
    .count_ones = neon_count_ones,
    .xor_into = neon_xor_into,
    .xor_rows = neon_xor_rows,
};

}  // namespace

const Kernels* neon_variant() noexcept { return &kNeonKernels; }

}  // namespace hdc::bits::detail

#else  // !(__aarch64__ && __ARM_NEON)

namespace hdc::bits::detail {

const Kernels* neon_variant() noexcept { return nullptr; }

}  // namespace hdc::bits::detail

#endif
