#include "hdc/core/basis_random.hpp"

#include "hdc/base/require.hpp"

namespace hdc {

Basis make_random_basis(const RandomBasisConfig& config) {
  require_positive(config.dimension, "make_random_basis", "dimension");
  require_positive(config.size, "make_random_basis", "size");

  Rng rng(config.seed);
  std::vector<Hypervector> vectors;
  vectors.reserve(config.size);
  for (std::size_t i = 0; i < config.size; ++i) {
    vectors.push_back(Hypervector::random(config.dimension, rng));
  }

  BasisInfo info;
  info.kind = BasisKind::Random;
  info.dimension = config.dimension;
  info.size = config.size;
  info.r = 1.0;  // Random sets are the r = 1 endpoint of the interpolation.
  info.seed = config.seed;
  return Basis(info, std::move(vectors));
}

}  // namespace hdc
