// Shift and rotate over bit-packed vectors.  The fused XOR+popcount
// kernels that used to live here are now runtime-dispatched per-ISA
// variants — see bitops_scalar.cpp / bitops_avx2.cpp / bitops_avx512.cpp /
// bitops_neon.cpp and the dispatcher in kernels.cpp.

#include "hdc/core/bitops.hpp"

#include <algorithm>
#include <vector>

namespace hdc::bits {

void shift_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                std::size_t bit_count, std::size_t shift) noexcept {
  const std::size_t n = out.size();
  if (shift >= bit_count) {
    std::fill(out.begin(), out.end(), 0ULL);
    return;
  }
  const std::size_t word_shift = shift / word_bits;
  const std::size_t bit_shift = shift % word_bits;
  // Walk from the top so the routine would also be safe if in == out;
  // the public contract still forbids aliasing to keep reasoning simple.
  for (std::size_t w = n; w-- > 0;) {
    std::uint64_t value = 0;
    if (w >= word_shift) {
      value = in[w - word_shift] << bit_shift;
      if (bit_shift != 0 && w > word_shift) {
        value |= in[w - word_shift - 1] >> (word_bits - bit_shift);
      }
    }
    out[w] = value;
  }
  if (n > 0) {
    out[n - 1] &= tail_mask(bit_count);
  }
}

void shift_right(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept {
  const std::size_t n = out.size();
  if (shift >= bit_count) {
    std::fill(out.begin(), out.end(), 0ULL);
    return;
  }
  const std::size_t word_shift = shift / word_bits;
  const std::size_t bit_shift = shift % word_bits;
  for (std::size_t w = 0; w < n; ++w) {
    std::uint64_t value = 0;
    if (w + word_shift < n) {
      value = in[w + word_shift] >> bit_shift;
      if (bit_shift != 0 && w + word_shift + 1 < n) {
        value |= in[w + word_shift + 1] << (word_bits - bit_shift);
      }
    }
    out[w] = value;
  }
  if (n > 0) {
    out[n - 1] &= tail_mask(bit_count);
  }
}

void rotate_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept {
  if (bit_count == 0) {
    return;
  }
  const std::size_t s = shift % bit_count;
  if (s == 0) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  // rot(x, s) = (x << s) | (x >> (d - s)) over d-bit vectors.
  shift_left(in, out, bit_count, s);
  std::vector<std::uint64_t> wrapped(in.size());
  shift_right(in, wrapped, bit_count, bit_count - s);
  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w] |= wrapped[w];
  }
}

}  // namespace hdc::bits
