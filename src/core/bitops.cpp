#include "hdc/core/bitops.hpp"

#include <algorithm>
#include <vector>

namespace hdc::bits {

std::size_t hamming(std::span<const std::uint64_t> a,
                    std::span<const std::uint64_t> b) noexcept {
  const std::size_t n = a.size();
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  std::size_t c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c0 + c1 + c2 + c3;
}

void shift_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                std::size_t bit_count, std::size_t shift) noexcept {
  const std::size_t n = out.size();
  if (shift >= bit_count) {
    std::fill(out.begin(), out.end(), 0ULL);
    return;
  }
  const std::size_t word_shift = shift / word_bits;
  const std::size_t bit_shift = shift % word_bits;
  // Walk from the top so the routine would also be safe if in == out;
  // the public contract still forbids aliasing to keep reasoning simple.
  for (std::size_t w = n; w-- > 0;) {
    std::uint64_t value = 0;
    if (w >= word_shift) {
      value = in[w - word_shift] << bit_shift;
      if (bit_shift != 0 && w > word_shift) {
        value |= in[w - word_shift - 1] >> (word_bits - bit_shift);
      }
    }
    out[w] = value;
  }
  if (n > 0) {
    out[n - 1] &= tail_mask(bit_count);
  }
}

void shift_right(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept {
  const std::size_t n = out.size();
  if (shift >= bit_count) {
    std::fill(out.begin(), out.end(), 0ULL);
    return;
  }
  const std::size_t word_shift = shift / word_bits;
  const std::size_t bit_shift = shift % word_bits;
  for (std::size_t w = 0; w < n; ++w) {
    std::uint64_t value = 0;
    if (w + word_shift < n) {
      value = in[w + word_shift] >> bit_shift;
      if (bit_shift != 0 && w + word_shift + 1 < n) {
        value |= in[w + word_shift + 1] << (word_bits - bit_shift);
      }
    }
    out[w] = value;
  }
  if (n > 0) {
    out[n - 1] &= tail_mask(bit_count);
  }
}

void rotate_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept {
  if (bit_count == 0) {
    return;
  }
  const std::size_t s = shift % bit_count;
  if (s == 0) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  // rot(x, s) = (x << s) | (x >> (d - s)) over d-bit vectors.
  shift_left(in, out, bit_count, s);
  std::vector<std::uint64_t> wrapped(in.size());
  shift_right(in, wrapped, bit_count, bit_count - s);
  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w] |= wrapped[w];
  }
}

NearestMatch nearest_hamming(std::span<const std::uint64_t> query,
                             std::span<const std::uint64_t> arena,
                             std::size_t stride, std::size_t count) noexcept {
  NearestMatch best{0, ~std::size_t{0}};
  const std::size_t words = query.size();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t dist = hamming(query, arena.subspan(i * stride, words));
    if (dist < best.distance) {
      best.distance = dist;
      best.index = i;
    }
  }
  return best;
}

void hamming_many(std::span<const std::uint64_t> query,
                  std::span<const std::uint64_t> arena, std::size_t stride,
                  std::size_t count, std::span<std::size_t> out) noexcept {
  const std::size_t words = query.size();
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = hamming(query, arena.subspan(i * stride, words));
  }
}

}  // namespace hdc::bits
