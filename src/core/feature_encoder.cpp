#include "hdc/core/feature_encoder.hpp"

#include <utility>

#include "hdc/base/require.hpp"
#include "hdc/core/accumulator.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

namespace {

Basis make_keys(std::size_t num_features, const ScalarEncoderPtr& values,
                std::uint64_t seed) {
  require(values != nullptr, "KeyValueEncoder",
          "values encoder must not be null");
  require_positive(num_features, "KeyValueEncoder", "num_features");
  RandomBasisConfig config;
  config.dimension = values->dimension();
  config.size = num_features;
  config.seed = derive_seed(seed, 0x4B455953ULL);  // "KEYS"
  return make_random_basis(config);
}

}  // namespace

KeyValueEncoder::KeyValueEncoder(std::size_t num_features,
                                 ScalarEncoderPtr values, std::uint64_t seed)
    : keys_(make_keys(num_features, values, seed)),
      values_(std::move(values)),
      seed_(seed) {
  Rng rng(derive_seed(seed, 0x7EBCULL));
  tie_breaker_ = Hypervector::random(dimension(), rng);
}

KeyValueEncoder::KeyValueEncoder(Basis keys, ScalarEncoderPtr values,
                                 Hypervector tie_breaker, std::uint64_t seed)
    : keys_(std::move(keys)),
      values_(std::move(values)),
      tie_breaker_(std::move(tie_breaker)),
      seed_(seed) {
  require(values_ != nullptr, "KeyValueEncoder",
          "values encoder must not be null");
  require_positive(keys_.size(), "KeyValueEncoder", "num_features");
  require(keys_.dimension() == values_->dimension() &&
              keys_.dimension() == tie_breaker_.dimension(),
          "KeyValueEncoder",
          "key, value and tie-breaker dimensions must agree");
}

Hypervector KeyValueEncoder::encode(std::span<const double> features) const {
  require(features.size() == keys_.size(), "KeyValueEncoder::encode",
          "feature count mismatch");
  BundleAccumulator acc(dimension());
  // K_i ⊗ V(x_i) is XORed straight from the two basis arenas into one
  // scratch row, so the loop never materializes a Hypervector.
  std::vector<std::uint64_t> scratch(bits::words_for(dimension()));
  for (std::size_t i = 0; i < features.size(); ++i) {
    bits::xor_rows(scratch, keys_[i].words(),
                   values_->encode(features[i]).words());
    acc.add_words(scratch);
  }
  return acc.finalize(tie_breaker_);
}

}  // namespace hdc
