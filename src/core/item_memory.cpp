#include "hdc/core/item_memory.hpp"

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

ItemMemory::ItemMemory(std::size_t dimension, std::uint64_t seed)
    : dimension_(dimension), seed_(seed) {
  require_positive(dimension, "ItemMemory", "dimension");
}

const Hypervector& ItemMemory::get(std::string_view symbol) {
  const auto it = table_.find(std::string(symbol));
  if (it != table_.end()) {
    return it->second;
  }
  Rng rng(derive_seed(seed_, fnv1a64(symbol)));
  auto [inserted, _] =
      table_.emplace(std::string(symbol), Hypervector::random(dimension_, rng));
  order_.push_back(inserted->first);
  return inserted->second;
}

const Hypervector* ItemMemory::find(std::string_view symbol) const noexcept {
  const auto it = table_.find(std::string(symbol));
  return it != table_.end() ? &it->second : nullptr;
}

std::optional<CleanupResult> ItemMemory::cleanup(
    HypervectorView query) const {
  require(query.dimension() == dimension_, "ItemMemory::cleanup",
          "query dimension mismatch");
  if (table_.empty()) {
    return std::nullopt;
  }
  CleanupResult best;
  double best_distance = 2.0;  // farther than any normalized distance
  for (const std::string& symbol : order_) {
    const double dist = normalized_distance(query, table_.at(symbol));
    if (dist < best_distance) {
      best_distance = dist;
      best.symbol = symbol;
    }
  }
  best.distance = best_distance;
  return best;
}

}  // namespace hdc
