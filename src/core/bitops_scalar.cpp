// Scalar kernel variant: portable 4-way-unrolled XOR+popcount.
//
// This TU is the always-correct fallback and the bit-exactness reference
// every SIMD variant is property-tested against
// (tests/core/kernel_dispatch_test.cpp).  The build may compile it with
// -mpopcnt (HDC_KERNEL_POPCNT, ~2x on query sweeps) — that changes the
// instruction used for std::popcount, never the results.

#include <bit>

#include "kernel_detail.hpp"

namespace hdc::bits::detail {

namespace {

std::size_t scalar_hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) noexcept {
  // Four independent accumulators keep the popcount chains out of each
  // other's dependency shadow, so the compiler can issue them in parallel.
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  std::size_t c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    c1 += static_cast<std::size_t>(std::popcount(a[i + 1] ^ b[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(a[i + 2] ^ b[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(a[i + 3] ^ b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return c0 + c1 + c2 + c3;
}

NearestMatch scalar_nearest(const std::uint64_t* query, std::size_t words,
                            const std::uint64_t* arena, std::size_t stride,
                            std::size_t count) noexcept {
  return nearest_rows(scalar_hamming, query, words, arena, stride, count);
}

void scalar_hamming_many(const std::uint64_t* query, std::size_t words,
                         const std::uint64_t* arena, std::size_t stride,
                         std::size_t count, std::size_t* out) noexcept {
  hamming_rows(scalar_hamming, query, words, arena, stride, count, out);
}

std::size_t scalar_count_ones(const std::uint64_t* words,
                              std::size_t n) noexcept {
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  std::size_t c2 = 0;
  std::size_t c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<std::size_t>(std::popcount(words[i]));
    c1 += static_cast<std::size_t>(std::popcount(words[i + 1]));
    c2 += static_cast<std::size_t>(std::popcount(words[i + 2]));
    c3 += static_cast<std::size_t>(std::popcount(words[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return c0 + c1 + c2 + c3;
}

void scalar_xor_into(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void scalar_xor_rows(std::uint64_t* dst, const std::uint64_t* a,
                     const std::uint64_t* b, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

constexpr Kernels kScalarKernels = {
    .name = "scalar",
    .supported = cpu_always,
    .hamming = scalar_hamming,
    .nearest_hamming = scalar_nearest,
    .hamming_many = scalar_hamming_many,
    .count_ones = scalar_count_ones,
    .xor_into = scalar_xor_into,
    .xor_rows = scalar_xor_rows,
};

}  // namespace

const Kernels* scalar_variant() noexcept { return &kScalarKernels; }

}  // namespace hdc::bits::detail
