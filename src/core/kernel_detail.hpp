#ifndef HDC_CORE_KERNEL_DETAIL_HPP
#define HDC_CORE_KERNEL_DETAIL_HPP

/// \file kernel_detail.hpp
/// \brief Private glue between the kernel dispatcher and the per-ISA TUs.
///
/// Not installed.  Each variant TU (bitops_scalar.cpp, bitops_avx2.cpp,
/// bitops_avx512.cpp, bitops_neon.cpp) defines one `*_kernels()` accessor
/// returning its table, or nullptr when the TU was compiled without the ISA
/// (the build probes compiler flags; a TU whose ISA macro is absent
/// compiles to the stub).  The dispatcher in kernels.cpp owns the CPU
/// predicates so that support probing never executes code from a
/// wider-ISA TU.

#include <cstddef>
#include <cstdint>

#include "hdc/core/kernels.hpp"

namespace hdc::bits::detail {

/// Variant accessors; null when not compiled in.  scalar_variant() is
/// always non-null.
const Kernels* scalar_variant() noexcept;
const Kernels* avx2_variant() noexcept;
const Kernels* avx512_variant() noexcept;
const Kernels* neon_variant() noexcept;

/// Runtime CPU predicates, defined in the baseline-ISA dispatcher TU.
bool cpu_always() noexcept;
bool cpu_has_avx2() noexcept;
bool cpu_has_avx512() noexcept;
bool cpu_has_neon() noexcept;

/// Shared row loops: every variant's nearest_hamming / hamming_many is the
/// same scan instantiated over that variant's hamming core, compiled inside
/// the variant's own TU so the core inlines under its ISA flags.
template <typename HammingFn>
inline NearestMatch nearest_rows(HammingFn hamming_fn,
                                 const std::uint64_t* query,
                                 std::size_t words,
                                 const std::uint64_t* arena,
                                 std::size_t stride,
                                 std::size_t count) noexcept {
  NearestMatch best{0, ~std::size_t{0}};
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t dist = hamming_fn(query, arena + i * stride, words);
    // Strict less-than: ties keep the lowest index.
    if (dist < best.distance) {
      best.distance = dist;
      best.index = i;
    }
  }
  return best;
}

template <typename HammingFn>
inline void hamming_rows(HammingFn hamming_fn, const std::uint64_t* query,
                         std::size_t words, const std::uint64_t* arena,
                         std::size_t stride, std::size_t count,
                         std::size_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = hamming_fn(query, arena + i * stride, words);
  }
}

}  // namespace hdc::bits::detail

#endif  // HDC_CORE_KERNEL_DETAIL_HPP
