#include "hdc/core/basis.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

const char* to_string(BasisKind kind) noexcept {
  switch (kind) {
    case BasisKind::Random:
      return "random";
    case BasisKind::Level:
      return "level";
    case BasisKind::Circular:
      return "circular";
    case BasisKind::Scatter:
      return "scatter";
  }
  return "unknown";
}

const char* to_string(LevelMethod method) noexcept {
  switch (method) {
    case LevelMethod::ExactFlip:
      return "exact-flip";
    case LevelMethod::Interpolation:
      return "interpolation";
  }
  return "unknown";
}

Basis::Basis(BasisInfo info, std::vector<Hypervector> vectors)
    : info_(info), vectors_(std::move(vectors)) {
  require(!vectors_.empty(), "Basis", "vector set must be non-empty");
  require(info_.size == vectors_.size(), "Basis",
          "info.size must match the number of vectors");
  for (const Hypervector& hv : vectors_) {
    require(hv.dimension() == info_.dimension, "Basis",
            "all vectors must have info.dimension dimensions");
  }
  words_per_vector_ = bits::words_for(info_.dimension);
  packed_ = pack_words(vectors_);
}

const Hypervector& Basis::at(std::size_t i) const {
  require(i < vectors_.size(), "Basis::at", "index out of range");
  return vectors_[i];
}

std::size_t Basis::nearest(const Hypervector& query) const {
  require(query.dimension() == info_.dimension, "Basis::nearest",
          "query dimension mismatch");
  return nearest_words(query.words());
}

std::size_t Basis::nearest_words(
    std::span<const std::uint64_t> query_words) const noexcept {
  return bits::nearest_hamming(query_words, packed_, words_per_vector_,
                               vectors_.size())
      .index;
}

std::vector<std::vector<double>> Basis::pairwise_distances() const {
  const std::size_t m = vectors_.size();
  std::vector<std::vector<double>> out(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double d = normalized_distance(vectors_[i], vectors_[j]);
      out[i][j] = d;
      out[j][i] = d;
    }
  }
  return out;
}

std::vector<std::vector<double>> Basis::pairwise_similarities() const {
  std::vector<std::vector<double>> out = pairwise_distances();
  for (auto& row : out) {
    for (double& value : row) {
      value = 1.0 - value;
    }
  }
  return out;
}

}  // namespace hdc
