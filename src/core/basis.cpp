#include "hdc/core/basis.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

const char* to_string(BasisKind kind) noexcept {
  switch (kind) {
    case BasisKind::Random:
      return "random";
    case BasisKind::Level:
      return "level";
    case BasisKind::Circular:
      return "circular";
    case BasisKind::Scatter:
      return "scatter";
  }
  return "unknown";
}

const char* to_string(LevelMethod method) noexcept {
  switch (method) {
    case LevelMethod::ExactFlip:
      return "exact-flip";
    case LevelMethod::Interpolation:
      return "interpolation";
  }
  return "unknown";
}

Basis::Basis(BasisInfo info, std::vector<Hypervector> vectors) : info_(info) {
  require(!vectors.empty(), "Basis", "vector set must be non-empty");
  require(info_.size == vectors.size(), "Basis",
          "info.size must match the number of vectors");
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == info_.dimension, "Basis",
            "all vectors must have info.dimension dimensions");
  }
  words_per_vector_ = bits::words_for(info_.dimension);
  packed_ = pack_words(vectors);
  packed_.shrink_to_fit();
}

Basis::Basis(BasisInfo info, std::vector<std::uint64_t> packed_words)
    : Basis(info, WordStorage(std::move(packed_words))) {}

Basis::Basis(BasisInfo info, std::span<const std::uint64_t> packed_words,
             borrow_t)
    : Basis(info, WordStorage(packed_words, borrowed)) {}

Basis::Basis(BasisInfo info, WordStorage storage)
    : info_(info),
      packed_(std::move(storage)),
      words_per_vector_(bits::words_for(info.dimension)) {
  // An incrementally grown owning arena (e.g. read_basis) can carry up to 2x
  // slack capacity; drop it so resident_bytes() reflects the data.
  packed_.shrink_to_fit();
  require(info_.size > 0, "Basis", "info.size must be positive");
  require_positive(info_.dimension, "Basis", "info.dimension");
  const auto words = packed_.words();
  // Division form so a crafted info.size cannot overflow the multiply and
  // slip an undersized arena past validation.
  require(words.size() % words_per_vector_ == 0 &&
              words.size() / words_per_vector_ == info_.size,
          "Basis",
          "packed word count must be info.size * words_for(info.dimension)");
  const std::uint64_t tail = bits::tail_mask(info_.dimension);
  for (std::size_t i = 0; i < info_.size; ++i) {
    require((words[(i + 1) * words_per_vector_ - 1] & ~tail) == 0, "Basis",
            "arena row has set bits beyond the dimension");
  }
}

HypervectorView Basis::at(std::size_t i) const {
  require_index(i, info_.size, "Basis::at");
  return (*this)[i];
}

std::size_t Basis::nearest(HypervectorView query) const {
  require(query.dimension() == info_.dimension, "Basis::nearest",
          "query dimension mismatch");
  return nearest_words(query.words());
}

std::size_t Basis::nearest_words(
    std::span<const std::uint64_t> query_words) const {
  require(query_words.size() == words_per_vector_, "Basis::nearest_words",
          "query word count must equal words_per_vector()");
  return bits::nearest_hamming(query_words, packed_.words(), words_per_vector_,
                               info_.size)
      .index;
}

std::vector<std::vector<double>> Basis::pairwise_distances() const {
  const std::size_t m = info_.size;
  const auto d = static_cast<double>(info_.dimension);
  std::vector<std::vector<double>> out(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double dist =
          static_cast<double>(
              bits::hamming((*this)[i].words(), (*this)[j].words())) /
          d;
      out[i][j] = dist;
      out[j][i] = dist;
    }
  }
  return out;
}

std::vector<std::vector<double>> Basis::pairwise_similarities() const {
  std::vector<std::vector<double>> out = pairwise_distances();
  for (auto& row : out) {
    for (double& value : row) {
      value = 1.0 - value;
    }
  }
  return out;
}

}  // namespace hdc
