#include "hdc/core/basis_circular.hpp"

#include <cmath>
#include <numbers>

#include "hdc/base/require.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

double circular_target_distance(std::size_t i, std::size_t j, std::size_t m) {
  require(m >= 2, "circular_target_distance", "m must be >= 2");
  require(i < m, "circular_target_distance", "i out of range");
  require(j < m, "circular_target_distance", "j out of range");
  const std::size_t direct = i > j ? i - j : j - i;
  const std::size_t arc = direct < m - direct ? direct : m - direct;
  return static_cast<double>(arc) / static_cast<double>(m);
}

double circular_cosine_target_distance(std::size_t i, std::size_t j,
                                       std::size_t m) {
  require(m >= 2, "circular_cosine_target_distance", "m must be >= 2");
  require(i < m, "circular_cosine_target_distance", "i out of range");
  require(j < m, "circular_cosine_target_distance", "j out of range");
  // Odd sets are every-other-element subsets of a 2m set; evaluate in the
  // parent even circle, whose halves decide which law applies.
  const std::size_t me = (m % 2 == 0) ? m : 2 * m;
  const std::size_t ie = (m % 2 == 0) ? i : 2 * i;
  const std::size_t je = (m % 2 == 0) ? j : 2 * j;
  constexpr double tau = 2.0 * std::numbers::pi;
  const double ci =
      std::cos(tau * static_cast<double>(ie) / static_cast<double>(me));
  const double cj =
      std::cos(tau * static_cast<double>(je) / static_cast<double>(me));
  const bool i_first = ie <= me / 2;
  const bool j_first = je <= me / 2;
  if (i_first == j_first) {
    // Same half-circle: both are interpolations of the same anchor pair, so
    // they differ only between their thresholds.
    return std::abs(ci - cj) / 4.0;
  }
  // Opposite halves: phase 2 swaps the anchors, reflecting the law.  At the
  // anchors themselves (cos = ±1) both branches coincide.
  return 0.5 - std::abs(ci + cj) / 4.0;
}

namespace {

/// Even-cardinality construction straight from Section 5.1.
std::vector<Hypervector> make_even_circular(std::size_t dimension,
                                            std::size_t size, double r,
                                            CircularProfile profile,
                                            std::uint64_t seed) {
  const std::size_t half = size / 2;
  const std::size_t phase1_count = half + 1;

  std::vector<Hypervector> levels;
  if (profile == CircularProfile::Cosine) {
    // Cosine-spaced phase-1 thresholds: tau_l = (1 + cos(2*pi*l/m)) / 2, so
    // the distance to the reference C_0 follows rho(theta)/2 exactly; the
    // phase-2 replay mirrors the same profile onto the second half-circle.
    std::vector<double> taus(phase1_count);
    for (std::size_t l = 0; l < phase1_count; ++l) {
      taus[l] = 0.5 * (1.0 + std::cos(2.0 * std::numbers::pi *
                                      static_cast<double>(l) /
                                      static_cast<double>(size)));
    }
    taus.front() = 1.0;
    taus.back() = 0.0;
    levels = detail::make_threshold_levels(dimension, taus, seed);
  } else {
    // Section 5.2: the r-relaxation applies to phase 1 only; its transition
    // count n uses the phase-1 set size in the n = r + (1-r)(m-1) formula.
    const double n = r + (1.0 - r) * static_cast<double>(phase1_count - 1);
    levels = detail::make_interpolated_levels(dimension, phase1_count, n, seed);
  }

  // Phase-1 transitions T_i = C_i XOR C_{i+1} (the flipped bits between
  // consecutive levels).
  std::vector<Hypervector> transitions;
  transitions.reserve(half);
  for (std::size_t t = 0; t + 1 < phase1_count; ++t) {
    transitions.push_back(levels[t] ^ levels[t + 1]);
  }

  // Phase 1: the first half-circle is the level set itself.
  std::vector<Hypervector> circle = std::move(levels);
  circle.reserve(size);

  // Phase 2: replay the transitions from the far point back toward C_1.
  // Binding is self-inverse, so each step strips one transition's flips,
  // moving the walker closer to C_1 while staying quasi-orthogonal to the
  // antipodal element.  The final transition T_{m/2} is not applied — it
  // would just regenerate C_1 (the dashed arrow of Figure 5).
  for (std::size_t i = half + 1; i < size; ++i) {
    circle.push_back(circle[i - 1] ^ transitions[i - half - 1]);
  }
  return circle;
}

}  // namespace

Basis make_circular_basis(const CircularBasisConfig& config) {
  require_positive(config.dimension, "make_circular_basis", "dimension");
  require(config.size >= 2, "make_circular_basis", "size must be >= 2");
  require_in_range(config.r, 0.0, 1.0, "make_circular_basis", "r");
  require(config.profile == CircularProfile::Triangular || config.r == 0.0,
          "make_circular_basis",
          "the r-relaxation is only supported by the Triangular profile");

  std::vector<Hypervector> vectors;
  if (config.size % 2 == 0) {
    vectors = make_even_circular(config.dimension, config.size, config.r,
                                 config.profile, config.seed);
  } else {
    // Paper footnote 1: an odd set of size m is the every-other-element
    // subset {C_1, C_3, ..., C_{2m-1}} of an even set of size 2m.
    std::vector<Hypervector> doubled =
        make_even_circular(config.dimension, 2 * config.size, config.r,
                           config.profile, config.seed);
    vectors.reserve(config.size);
    for (std::size_t i = 0; i < config.size; ++i) {
      vectors.push_back(std::move(doubled[2 * i]));
    }
  }

  BasisInfo info;
  info.kind = BasisKind::Circular;
  info.method = LevelMethod::Interpolation;
  info.dimension = config.dimension;
  info.size = config.size;
  info.r = config.r;
  info.seed = config.seed;
  return Basis(info, std::move(vectors));
}

}  // namespace hdc
