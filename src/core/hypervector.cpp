#include "hdc/core/hypervector.hpp"

#include <algorithm>

#include "hdc/base/require.hpp"

namespace hdc {

HypervectorView::HypervectorView(std::size_t dimension,
                                 std::span<const std::uint64_t> words)
    : dimension_(dimension), words_(words) {
  require(words.size() == bits::words_for(dimension), "HypervectorView",
          "word count must be words_for(dimension)");
  require(dimension == 0 || (words.back() & ~bits::tail_mask(dimension)) == 0,
          "HypervectorView", "tail bits beyond dimension must be zero");
}

bool HypervectorView::bit(std::size_t index) const {
  require_index(index, dimension_, "HypervectorView::bit");
  return bits::get_bit(words_, index);
}

Hypervector::Hypervector(std::size_t dimension)
    : dimension_(dimension), words_(bits::words_for(dimension), 0ULL) {
  require_positive(dimension, "Hypervector", "dimension");
}

Hypervector::Hypervector(HypervectorView view)
    : dimension_(view.dimension()),
      words_(view.words().begin(), view.words().end()) {
  require_positive(dimension_, "Hypervector", "dimension");
}

Hypervector Hypervector::random(std::size_t dimension, Rng& rng) {
  Hypervector hv(dimension);
  for (auto& word : hv.words_) {
    word = rng();
  }
  hv.mask_tail();
  return hv;
}

Hypervector Hypervector::from_bits(std::span<const bool> bits) {
  require(!bits.empty(), "Hypervector::from_bits", "bits must be non-empty");
  Hypervector hv(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) {
      bits::set_bit(hv.words(), i, true);
    }
  }
  return hv;
}

bool Hypervector::bit(std::size_t index) const {
  require_index(index, dimension_, "Hypervector::bit");
  return bits::get_bit(words_, index);
}

void Hypervector::set_bit(std::size_t index, bool value) {
  require_index(index, dimension_, "Hypervector::set_bit");
  bits::set_bit(words_, index, value);
}

void Hypervector::flip_bit(std::size_t index) {
  require_index(index, dimension_, "Hypervector::flip_bit");
  bits::flip_bit(words_, index);
}

void Hypervector::mask_tail() noexcept {
  if (!words_.empty()) {
    words_.back() &= bits::tail_mask(dimension_);
  }
}

Hypervector& Hypervector::operator^=(HypervectorView other) {
  require(dimension_ == other.dimension(), "Hypervector::operator^=",
          "dimension mismatch");
  bits::xor_into(words_, other.words());
  return *this;
}

Hypervector operator^(HypervectorView a, HypervectorView b) {
  require(!a.empty(), "operator^", "operands must be non-empty");
  Hypervector out(a);
  out ^= b;
  return out;
}

void pack_row(HypervectorView hv, std::span<std::uint64_t> arena,
              std::size_t stride, std::size_t row) {
  const auto words = hv.words();
  std::copy(words.begin(), words.end(), arena.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                row * stride));
}

std::vector<std::uint64_t> pack_words(std::span<const Hypervector> vectors) {
  const std::size_t stride = bits::words_for(vectors.front().dimension());
  std::vector<std::uint64_t> arena(stride * vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    pack_row(vectors[i], arena, stride, i);
  }
  return arena;
}

}  // namespace hdc
