#include "hdc/core/basis_level.hpp"

#include <cmath>
#include <numeric>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

double level_target_distance(std::size_t i, std::size_t j, std::size_t m) {
  require(m >= 2, "level_target_distance", "m must be >= 2");
  require(i >= 1 && i <= m, "level_target_distance", "i must be in [1, m]");
  require(j >= 1 && j <= m, "level_target_distance", "j must be in [1, m]");
  const double span = static_cast<double>(j > i ? j - i : i - j);
  return span / (2.0 * static_cast<double>(m - 1));
}

namespace detail {

std::vector<Hypervector> make_interpolated_levels(
    std::size_t dimension, std::size_t count, double transitions_per_segment,
    std::uint64_t seed) {
  require_positive(dimension, "make_interpolated_levels", "dimension");
  require(count >= 2, "make_interpolated_levels", "count must be >= 2");
  require(transitions_per_segment > 0.0, "make_interpolated_levels",
          "transitions_per_segment must be positive");

  const double n = transitions_per_segment;

  // Anchor hypervectors sit at level positions 0, n, 2n, ... ; each segment
  // between consecutive anchors is an independent Algorithm-1 level set with
  // its own interpolation filter Phi.  With n = count - 1 this degenerates to
  // exactly Algorithm 1 (two anchors, one filter); with n = 1 every level is
  // an anchor, i.e. a random-hypervector set (r = 1 endpoint of Section 5.2).
  const auto max_position = static_cast<double>(count - 1);
  const auto segments =
      static_cast<std::size_t>(std::ceil(max_position / n - 1e-9));
  const std::size_t num_anchors = segments + 1;

  std::vector<Hypervector> anchors;
  anchors.reserve(num_anchors);
  for (std::size_t a = 0; a < num_anchors; ++a) {
    Rng rng(derive_seed(seed, a));
    anchors.push_back(Hypervector::random(dimension, rng));
  }

  // Interpolation filters, one per segment, drawn lazily below from derived
  // streams so results do not depend on evaluation order.
  std::vector<std::vector<double>> filters(segments);
  const auto filter_for = [&](std::size_t s) -> const std::vector<double>& {
    std::vector<double>& phi = filters[s];
    if (phi.empty()) {
      Rng rng(derive_seed(seed, 0x8000'0000ULL + s));
      phi.resize(dimension);
      for (double& value : phi) {
        value = rng.uniform();
      }
    }
    return phi;
  };

  std::vector<Hypervector> levels;
  levels.reserve(count);
  for (std::size_t l = 0; l < count; ++l) {
    const double position = static_cast<double>(l) / n;
    auto segment = static_cast<std::size_t>(std::floor(position + 1e-9));
    double fraction = position - static_cast<double>(segment);
    if (fraction < 1e-9) {
      fraction = 0.0;
    }
    if (segment >= segments) {
      // Numerically at (or beyond) the last anchor.
      segment = segments > 0 ? segments - 1 : 0;
      fraction = 1.0;
    }
    if (fraction == 0.0) {
      levels.push_back(anchors[segment]);
      continue;
    }
    if (fraction == 1.0) {
      levels.push_back(anchors[segment + 1]);
      continue;
    }
    // Algorithm 1, lines 5-10: tau = 1 - fraction; bit from the left anchor
    // where Phi < tau, from the right anchor otherwise.
    const double tau = 1.0 - fraction;
    const std::vector<double>& phi = filter_for(segment);
    const Hypervector& left = anchors[segment];
    const Hypervector& right = anchors[segment + 1];
    Hypervector level(dimension);
    for (std::size_t b = 0; b < dimension; ++b) {
      const bool bit = phi[b] < tau ? bits::get_bit(left.words(), b)
                                    : bits::get_bit(right.words(), b);
      if (bit) {
        bits::set_bit(level.words(), b, true);
      }
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

std::vector<Hypervector> make_threshold_levels(std::size_t dimension,
                                               std::span<const double> taus,
                                               std::uint64_t seed) {
  require_positive(dimension, "make_threshold_levels", "dimension");
  require(taus.size() >= 2, "make_threshold_levels",
          "need at least 2 thresholds");
  for (std::size_t l = 0; l < taus.size(); ++l) {
    require(taus[l] >= 0.0 && taus[l] <= 1.0, "make_threshold_levels",
            "thresholds must lie in [0, 1]");
    if (l > 0) {
      require(taus[l] <= taus[l - 1], "make_threshold_levels",
              "thresholds must be non-increasing");
    }
  }

  Rng anchor_rng_a(derive_seed(seed, 0));
  Rng anchor_rng_b(derive_seed(seed, 1));
  const Hypervector left = Hypervector::random(dimension, anchor_rng_a);
  const Hypervector right = Hypervector::random(dimension, anchor_rng_b);

  Rng filter_rng(derive_seed(seed, 0x8000'0000ULL));
  std::vector<double> phi(dimension);
  for (double& value : phi) {
    value = filter_rng.uniform();
  }

  std::vector<Hypervector> levels;
  levels.reserve(taus.size());
  for (const double tau : taus) {
    Hypervector level(dimension);
    for (std::size_t b = 0; b < dimension; ++b) {
      const bool bit = phi[b] < tau ? bits::get_bit(left.words(), b)
                                    : bits::get_bit(right.words(), b);
      if (bit) {
        bits::set_bit(level.words(), b, true);
      }
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

}  // namespace detail

namespace {

/// Prior-art construction: flip d/2/(m-1) fresh positions per step so the
/// endpoints end up exactly orthogonal (they differ in exactly floor(d/2)
/// positions).  The flip schedule distributes floor(d/2) flips as evenly as
/// possible over the m-1 transitions (Bresenham-style rounding).
std::vector<Hypervector> make_exact_flip_levels(std::size_t dimension,
                                                std::size_t count,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypervector> levels;
  levels.reserve(count);
  levels.push_back(Hypervector::random(dimension, rng));

  // Random permutation of all positions; transition t flips the slice
  // [cum(t-1), cum(t)) so no position is ever flipped twice.
  std::vector<std::size_t> order(dimension);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = dimension; i-- > 1;) {
    const auto j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(order[i], order[j]);
  }

  const std::size_t total_flips = dimension / 2;
  const std::size_t transitions = count - 1;
  std::size_t flipped_so_far = 0;
  for (std::size_t t = 1; t <= transitions; ++t) {
    const auto target = static_cast<std::size_t>(
        std::llround(static_cast<double>(t) * static_cast<double>(total_flips) /
                     static_cast<double>(transitions)));
    Hypervector next = levels.back();
    for (; flipped_so_far < target; ++flipped_so_far) {
      next.flip_bit(order[flipped_so_far]);
    }
    levels.push_back(std::move(next));
  }
  return levels;
}

}  // namespace

Basis make_level_basis(const LevelBasisConfig& config) {
  require_positive(config.dimension, "make_level_basis", "dimension");
  require(config.size >= 2, "make_level_basis", "size must be >= 2");
  require_in_range(config.r, 0.0, 1.0, "make_level_basis", "r");

  std::vector<Hypervector> vectors;
  if (config.method == LevelMethod::ExactFlip) {
    require(config.r == 0.0, "make_level_basis",
            "r is only supported by LevelMethod::Interpolation");
    vectors = make_exact_flip_levels(config.dimension, config.size, config.seed);
  } else {
    // Section 5.2: n = r + (1 - r)(m - 1) transitions per level segment.
    const auto m = static_cast<double>(config.size);
    const double n = config.r + (1.0 - config.r) * (m - 1.0);
    vectors = detail::make_interpolated_levels(config.dimension, config.size, n,
                                               config.seed);
  }

  BasisInfo info;
  info.kind = BasisKind::Level;
  info.method = config.method;
  info.dimension = config.dimension;
  info.size = config.size;
  info.r = config.r;
  info.seed = config.seed;
  return Basis(info, std::move(vectors));
}

}  // namespace hdc
