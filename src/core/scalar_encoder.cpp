#include "hdc/core/scalar_encoder.hpp"

#include <algorithm>
#include <cmath>

#include "hdc/base/require.hpp"

namespace hdc {

LinearScalarEncoder::LinearScalarEncoder(Basis basis, double lo, double hi)
    : basis_(std::move(basis)), lo_(lo), hi_(hi) {
  require(basis_.size() >= 2, "LinearScalarEncoder",
          "basis must contain at least 2 vectors");
  require(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
          "LinearScalarEncoder", "interval must satisfy lo < hi");
  step_ = (hi_ - lo_) / static_cast<double>(basis_.size() - 1);
}

std::size_t LinearScalarEncoder::index_of(double value) const {
  const double clamped = std::clamp(value, lo_, hi_);
  const auto index =
      static_cast<std::size_t>(std::llround((clamped - lo_) / step_));
  return std::min(index, basis_.size() - 1);
}

HypervectorView LinearScalarEncoder::encode(double value) const {
  return basis_[index_of(value)];
}

double LinearScalarEncoder::value_of(std::size_t index) const {
  require(index < basis_.size(), "LinearScalarEncoder::value_of",
          "index out of range");
  return lo_ + static_cast<double>(index) * step_;
}

double LinearScalarEncoder::decode(HypervectorView query) const {
  return value_of(basis_.nearest(query));
}

CircularScalarEncoder::CircularScalarEncoder(Basis basis, double period)
    : basis_(std::move(basis)), period_(period) {
  require(basis_.size() >= 2, "CircularScalarEncoder",
          "basis must contain at least 2 vectors");
  require(std::isfinite(period) && period > 0.0, "CircularScalarEncoder",
          "period must be positive");
}

std::size_t CircularScalarEncoder::index_of(double value) const {
  const auto m = static_cast<double>(basis_.size());
  double wrapped = std::fmod(value, period_);
  if (wrapped < 0.0) {
    wrapped += period_;
  }
  const auto index =
      static_cast<std::size_t>(std::llround(wrapped / period_ * m));
  return index % basis_.size();  // grid point m wraps to 0
}

HypervectorView CircularScalarEncoder::encode(double value) const {
  return basis_[index_of(value)];
}

double CircularScalarEncoder::value_of(std::size_t index) const {
  require(index < basis_.size(), "CircularScalarEncoder::value_of",
          "index out of range");
  return static_cast<double>(index) * period_ /
         static_cast<double>(basis_.size());
}

double CircularScalarEncoder::decode(HypervectorView query) const {
  return value_of(basis_.nearest(query));
}

}  // namespace hdc
