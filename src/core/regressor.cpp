#include "hdc/core/regressor.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

namespace {

std::size_t checked_dimension(const ScalarEncoderPtr& labels) {
  require(labels != nullptr, "HDRegressor", "labels encoder must not be null");
  return labels->dimension();
}

}  // namespace

HDRegressor::HDRegressor(ScalarEncoderPtr labels, std::uint64_t seed)
    : labels_(labels), accumulator_(checked_dimension(labels)) {
  Rng rng(derive_seed(seed, 0x4E64ULL));
  tie_breaker_ = Hypervector::random(dimension(), rng);
}

HDRegressor::HDRegressor(ScalarEncoderPtr labels, restore_t)
    : labels_(std::move(labels)), accumulator_(1) {}

HDRegressor HDRegressor::from_model(ScalarEncoderPtr labels,
                                    Hypervector model) {
  require(labels != nullptr, "HDRegressor::from_model",
          "labels encoder must not be null");
  HDRegressor restored(std::move(labels), restore_t{});
  require(model.dimension() == restored.dimension(), "HDRegressor::from_model",
          "model dimension must match the label encoder");
  restored.model_ = std::move(model);
  restored.finalized_ = true;
  restored.inference_only_ = true;
  return restored;
}

void HDRegressor::require_trainable(const char* where) const {
  if (inference_only_) {
    throw std::logic_error(
        std::string(where) +
        ": model restored from its quantized hypervector is inference-only "
        "(trainable() == false)");
  }
}

void HDRegressor::add_sample(HypervectorView encoded_input, double label) {
  require_trainable("HDRegressor::add_sample");
  require(encoded_input.dimension() == dimension(), "HDRegressor::add_sample",
          "input dimension mismatch");
  accumulator_.add(encoded_input ^ labels_->encode(label));
  finalized_ = false;
}

void HDRegressor::absorb(const BundleAccumulator& partial) {
  require_trainable("HDRegressor::absorb");
  accumulator_.merge(partial);
  finalized_ = false;
}

void HDRegressor::finalize() {
  require_trainable("HDRegressor::finalize");
  model_ = accumulator_.finalize(tie_breaker_);
  finalized_ = true;
}

double HDRegressor::adapt(HypervectorView encoded_input, double target) {
  require_trainable("HDRegressor::adapt");
  if (!finalized_) {
    throw std::logic_error("HDRegressor::adapt: call finalize() first");
  }
  require(encoded_input.dimension() == dimension(), "HDRegressor::adapt",
          "input dimension mismatch");
  const double predicted = predict(encoded_input);
  // Mistakes are judged on the label grid: predicted is already a grid value
  // and any target is quantized by phi_l before it can influence the model.
  if (labels_->index_of(target) != labels_->index_of(predicted)) {
    accumulator_.add(encoded_input ^ labels_->encode(target));
    accumulator_.subtract(encoded_input ^ labels_->encode(predicted));
    model_ = accumulator_.finalize(tie_breaker_);
  }
  return predicted;
}

double HDRegressor::predict(HypervectorView encoded_input) const {
  if (!finalized_) {
    throw std::logic_error("HDRegressor::predict: call finalize() first");
  }
  require(encoded_input.dimension() == dimension(), "HDRegressor::predict",
          "input dimension mismatch");
  // M ⊗ phi(x̂) ≈ phi_l(y); the label encoder's decode() is the cleanup +
  // inverse mapping.
  return labels_->decode(model_ ^ encoded_input);
}

void HDRegressor::label_distances(HypervectorView encoded_input,
                                  std::span<std::size_t> out) const {
  if (!finalized_) {
    throw std::logic_error("HDRegressor::label_distances: call finalize() first");
  }
  require(encoded_input.dimension() == dimension(),
          "HDRegressor::label_distances", "input dimension mismatch");
  const Basis& basis = labels_->basis();
  require(out.size() >= basis.size(), "HDRegressor::label_distances",
          "out must hold one distance per label grid point");
  std::vector<std::uint64_t> bound(bits::words_for(dimension()));
  bits::xor_rows(bound, model_.words(), encoded_input.words());
  bits::hamming_many(bound, basis.packed_words(), basis.words_per_vector(),
                     basis.size(), out);
}

Band HDRegressor::predict_band(HypervectorView encoded_input) const {
  std::vector<std::size_t> distances(labels_->size());
  label_distances(encoded_input, distances);
  return band_from_distances(distances, *labels_, dimension());
}

double HDRegressor::predict_integer(HypervectorView encoded_input) const {
  require_trainable("HDRegressor::predict_integer");
  require(encoded_input.dimension() == dimension(),
          "HDRegressor::predict_integer", "input dimension mismatch");
  const Basis& basis = labels_->basis();
  std::size_t best_index = 0;
  std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
  // phi(x̂) ⊗ L_l is XORed into one scratch row per label, so the scoring
  // loop never allocates.
  std::vector<std::uint64_t> scratch(bits::words_for(dimension()));
  const auto input = encoded_input.words();
  for (std::size_t l = 0; l < basis.size(); ++l) {
    bits::xor_rows(scratch, input, basis[l].words());
    const std::int64_t score = accumulator_.signed_projection(
        HypervectorView(dimension(), scratch));
    if (score > best_score) {
      best_score = score;
      best_index = l;
    }
  }
  return labels_->value_of(best_index);
}

const Hypervector& HDRegressor::model() const {
  if (!finalized_) {
    throw std::logic_error("HDRegressor::model: call finalize() first");
  }
  return model_;
}

}  // namespace hdc
