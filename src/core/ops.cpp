#include "hdc/core/ops.hpp"

#include <vector>

#include "hdc/base/require.hpp"
#include "hdc/core/accumulator.hpp"

namespace hdc {

Hypervector bind(HypervectorView a, HypervectorView b) { return a ^ b; }

Hypervector permute(HypervectorView input, std::size_t shift) {
  require(!input.empty(), "permute", "input must be non-empty");
  Hypervector out(input.dimension());
  bits::rotate_left(input.words(), out.words(), input.dimension(), shift);
  return out;
}

Hypervector permute_inverse(HypervectorView input, std::size_t shift) {
  require(!input.empty(), "permute_inverse", "input must be non-empty");
  const std::size_t d = input.dimension();
  return permute(input, d - (shift % d));
}

std::size_t hamming_distance(HypervectorView a, HypervectorView b) {
  require(!a.empty(), "hamming_distance", "inputs must be non-empty");
  require(a.dimension() == b.dimension(), "hamming_distance",
          "dimension mismatch");
  return bits::hamming(a.words(), b.words());
}

double normalized_distance(HypervectorView a, HypervectorView b) {
  return static_cast<double>(hamming_distance(a, b)) /
         static_cast<double>(a.dimension());
}

double similarity(HypervectorView a, HypervectorView b) {
  return 1.0 - normalized_distance(a, b);
}

Hypervector majority(std::span<const Hypervector> inputs, Rng& tie_rng) {
  require(!inputs.empty(), "majority", "inputs must be non-empty");
  BundleAccumulator acc(inputs.front().dimension());
  for (const Hypervector& hv : inputs) {
    acc.add(hv);
  }
  return acc.finalize(tie_rng);
}

Hypervector flip_random_bits(HypervectorView input, std::size_t count,
                             Rng& rng) {
  require(!input.empty(), "flip_random_bits", "input must be non-empty");
  const std::size_t d = input.dimension();
  require(count <= d, "flip_random_bits", "count must be <= dimension");
  Hypervector out(input);
  if (count == 0) {
    return out;
  }
  // Floyd's algorithm samples `count` distinct positions in O(count) expected
  // time without materializing a d-element permutation.
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  // For simplicity and exactness use partial Fisher-Yates over an index pool
  // when count is large relative to d, otherwise rejection sampling.
  if (count * 4 >= d) {
    std::vector<std::size_t> pool(d);
    for (std::size_t i = 0; i < d; ++i) {
      pool[i] = i;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.below(d - i));
      std::swap(pool[i], pool[j]);
      out.flip_bit(pool[i]);
    }
  } else {
    std::vector<bool> used(d, false);
    std::size_t flipped = 0;
    while (flipped < count) {
      const auto pos = static_cast<std::size_t>(rng.below(d));
      if (!used[pos]) {
        used[pos] = true;
        out.flip_bit(pos);
        ++flipped;
      }
    }
  }
  return out;
}

Hypervector random_walk_flips(HypervectorView input, std::size_t steps,
                              Rng& rng) {
  require(!input.empty(), "random_walk_flips", "input must be non-empty");
  Hypervector out(input);
  const std::size_t d = input.dimension();
  for (std::size_t s = 0; s < steps; ++s) {
    out.flip_bit(static_cast<std::size_t>(rng.below(d)));
  }
  return out;
}

}  // namespace hdc
