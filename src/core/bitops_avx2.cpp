// AVX2 kernel variant: 256-bit XOR + nibble-LUT popcount (Mula's
// algorithm).  AVX2 has no vector popcount instruction, so each 32-byte
// lane is counted with two PSHUFB lookups over a 16-entry nibble table and
// folded into four 64-bit lane sums by PSADBW; the lane sums accumulate in
// a vector register across the whole row and are reduced once at the end.
//
// Compiled with -mavx2 (plus -mpopcnt for the scalar tail) only when the
// compiler supports it; otherwise this TU is the nullptr stub and the
// dispatcher never offers the variant.  Correctness contract: bit-exact
// with the scalar variant on every input (property-tested).

#include "kernel_detail.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace hdc::bits::detail {

namespace {

/// Per-byte popcount of v via two nibble-table shuffles.
inline __m256i popcount_bytes(__m256i v) noexcept {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                         _mm256_shuffle_epi8(lookup, hi));
}

/// Horizontal sum of the four 64-bit lanes.
inline std::uint64_t reduce_epi64(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

std::size_t avx2_hamming(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  // Two 256-bit lanes per iteration (8 words): independent popcount chains,
  // PSADBW folds bytes to 64-bit lanes so acc never saturates.
  for (; i + 8 <= n; i += 8) {
    const __m256i x0 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i x1 = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    const __m256i counts =
        _mm256_add_epi8(popcount_bytes(x0), popcount_bytes(x1));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(counts, _mm256_setzero_si256()));
  }
  std::size_t total = static_cast<std::size_t>(reduce_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

NearestMatch avx2_nearest(const std::uint64_t* query, std::size_t words,
                          const std::uint64_t* arena, std::size_t stride,
                          std::size_t count) noexcept {
  return nearest_rows(avx2_hamming, query, words, arena, stride, count);
}

void avx2_hamming_many(const std::uint64_t* query, std::size_t words,
                       const std::uint64_t* arena, std::size_t stride,
                       std::size_t count, std::size_t* out) noexcept {
  hamming_rows(avx2_hamming, query, words, arena, stride, count, out);
}

std::size_t avx2_count_ones(const std::uint64_t* words, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i + 4));
    const __m256i counts =
        _mm256_add_epi8(popcount_bytes(v0), popcount_bytes(v1));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(counts, _mm256_setzero_si256()));
  }
  std::size_t total = static_cast<std::size_t>(reduce_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

void avx2_xor_into(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), x);
  }
  for (; i < n; ++i) {
    dst[i] ^= src[i];
  }
}

void avx2_xor_rows(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), x);
  }
  for (; i < n; ++i) {
    dst[i] = a[i] ^ b[i];
  }
}

constexpr Kernels kAvx2Kernels = {
    .name = "avx2",
    .supported = cpu_has_avx2,
    .hamming = avx2_hamming,
    .nearest_hamming = avx2_nearest,
    .hamming_many = avx2_hamming_many,
    .count_ones = avx2_count_ones,
    .xor_into = avx2_xor_into,
    .xor_rows = avx2_xor_rows,
};

}  // namespace

const Kernels* avx2_variant() noexcept { return &kAvx2Kernels; }

}  // namespace hdc::bits::detail

#else  // !defined(__AVX2__)

namespace hdc::bits::detail {

const Kernels* avx2_variant() noexcept { return nullptr; }

}  // namespace hdc::bits::detail

#endif
