#include "hdc/core/sequence_encoder.hpp"

#include "hdc/base/require.hpp"
#include "hdc/core/accumulator.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

namespace {

Hypervector make_tie_breaker(std::size_t dimension, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x71EB4EA4ULL));
  return Hypervector::random(dimension, rng);
}

}  // namespace

SequenceEncoder::SequenceEncoder(std::size_t dimension, std::uint64_t seed)
    : items_(dimension, seed),
      tie_breaker_(make_tie_breaker(dimension, seed)) {}

Hypervector SequenceEncoder::encode(std::span<const std::string_view> tokens) {
  require(!tokens.empty(), "SequenceEncoder::encode",
          "token sequence must be non-empty");
  BundleAccumulator acc(dimension());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    acc.add(permute(items_.get(tokens[i]), i + 1));
  }
  return acc.finalize(tie_breaker_);
}

Hypervector SequenceEncoder::encode_word(std::string_view word) {
  require(!word.empty(), "SequenceEncoder::encode_word",
          "word must be non-empty");
  BundleAccumulator acc(dimension());
  for (std::size_t i = 0; i < word.size(); ++i) {
    acc.add(permute(items_.get(std::string_view(&word[i], 1)), i + 1));
  }
  return acc.finalize(tie_breaker_);
}

NGramEncoder::NGramEncoder(std::size_t dimension, std::size_t n,
                           std::uint64_t seed)
    : items_(dimension, seed), n_(n),
      tie_breaker_(make_tie_breaker(dimension, seed)) {
  require_positive(n, "NGramEncoder", "n");
}

Hypervector NGramEncoder::encode(std::string_view text) {
  require(!text.empty(), "NGramEncoder::encode", "text must be non-empty");
  BundleAccumulator acc(dimension());
  const std::size_t window = std::min(n_, text.size());
  const std::size_t last_start = text.size() - window;
  for (std::size_t start = 0; start <= last_start; ++start) {
    Hypervector gram = permute(items_.get(std::string_view(&text[start], 1)), 0);
    for (std::size_t k = 1; k < window; ++k) {
      gram ^= permute(items_.get(std::string_view(&text[start + k], 1)), k);
    }
    acc.add(gram);
  }
  return acc.finalize(tie_breaker_);
}

}  // namespace hdc
