#include "hdc/core/sequence_encoder.hpp"

#include <stdexcept>
#include <string>

#include "hdc/base/require.hpp"
#include "hdc/core/accumulator.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

namespace {

Hypervector make_tie_breaker(std::size_t dimension, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0x71EB4EA4ULL));
  return Hypervector::random(dimension, rng);
}

void warm_all_bytes(ItemMemory& items) {
  for (unsigned b = 0; b < 256; ++b) {
    const char byte = static_cast<char>(b);
    (void)items.get(std::string_view(&byte, 1));
  }
}

const Hypervector& find_byte(const ItemMemory& items, std::string_view symbol,
                             const char* where) {
  const Hypervector* found = items.find(symbol);
  if (found == nullptr) {
    throw std::logic_error(std::string(where) +
                           ": symbol not materialized; call warm_bytes() "
                           "before const encoding");
  }
  return *found;
}

}  // namespace

SequenceEncoder::SequenceEncoder(std::size_t dimension, std::uint64_t seed)
    : items_(dimension, seed),
      tie_breaker_(make_tie_breaker(dimension, seed)) {}

Hypervector SequenceEncoder::encode(std::span<const std::string_view> tokens) {
  require(!tokens.empty(), "SequenceEncoder::encode",
          "token sequence must be non-empty");
  BundleAccumulator acc(dimension());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    acc.add(permute(items_.get(tokens[i]), i + 1));
  }
  return acc.finalize(tie_breaker_);
}

Hypervector SequenceEncoder::encode_word(std::string_view word) {
  require(!word.empty(), "SequenceEncoder::encode_word",
          "word must be non-empty");
  BundleAccumulator acc(dimension());
  for (std::size_t i = 0; i < word.size(); ++i) {
    acc.add(permute(items_.get(std::string_view(&word[i], 1)), i + 1));
  }
  return acc.finalize(tie_breaker_);
}

void SequenceEncoder::warm_bytes() { warm_all_bytes(items_); }

Hypervector SequenceEncoder::encode_word(std::string_view word) const {
  require(!word.empty(), "SequenceEncoder::encode_word",
          "word must be non-empty");
  BundleAccumulator acc(dimension());
  for (std::size_t i = 0; i < word.size(); ++i) {
    acc.add(permute(find_byte(items_, std::string_view(&word[i], 1),
                              "SequenceEncoder::encode_word"),
                    i + 1));
  }
  return acc.finalize(tie_breaker_);
}

NGramEncoder::NGramEncoder(std::size_t dimension, std::size_t n,
                           std::uint64_t seed)
    : items_(dimension, seed), n_(n),
      tie_breaker_(make_tie_breaker(dimension, seed)) {
  require_positive(n, "NGramEncoder", "n");
}

Hypervector NGramEncoder::encode(std::string_view text) {
  require(!text.empty(), "NGramEncoder::encode", "text must be non-empty");
  BundleAccumulator acc(dimension());
  const std::size_t window = std::min(n_, text.size());
  const std::size_t last_start = text.size() - window;
  for (std::size_t start = 0; start <= last_start; ++start) {
    Hypervector gram = permute(items_.get(std::string_view(&text[start], 1)), 0);
    for (std::size_t k = 1; k < window; ++k) {
      gram ^= permute(items_.get(std::string_view(&text[start + k], 1)), k);
    }
    acc.add(gram);
  }
  return acc.finalize(tie_breaker_);
}

void NGramEncoder::warm_bytes() { warm_all_bytes(items_); }

Hypervector NGramEncoder::encode(std::string_view text) const {
  require(!text.empty(), "NGramEncoder::encode", "text must be non-empty");
  BundleAccumulator acc(dimension());
  const std::size_t window = std::min(n_, text.size());
  const std::size_t last_start = text.size() - window;
  for (std::size_t start = 0; start <= last_start; ++start) {
    Hypervector gram =
        permute(find_byte(items_, std::string_view(&text[start], 1),
                          "NGramEncoder::encode"),
                0);
    for (std::size_t k = 1; k < window; ++k) {
      gram ^= permute(find_byte(items_, std::string_view(&text[start + k], 1),
                                "NGramEncoder::encode"),
                      k);
    }
    acc.add(gram);
  }
  return acc.finalize(tie_breaker_);
}

}  // namespace hdc
