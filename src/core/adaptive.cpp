#include "hdc/core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

namespace {

// Tie-breaker salts, disjoint from the trainable models' 0xC1A55 / 0x4E64 so
// an overlay never correlates with its base's training-time tie vector.
constexpr std::uint64_t kAdaptiveClassifierSalt = 0xADC1A55ULL;
constexpr std::uint64_t kAdaptiveRegressorSalt = 0xAD4E64ULL;

}  // namespace

std::size_t checked_class_label(double target, std::size_t num_classes) {
  // `target == floor(target)` also rejects nan; the >= 0 comparison is
  // written to reject -0.5 without tripping on -0.0.
  if (!(target >= 0.0) || target != std::floor(target) ||
      target >= static_cast<double>(num_classes)) {
    throw std::invalid_argument(
        "adapt: classifier target must be an integral class label in [0, " +
        std::to_string(num_classes) + ")");
  }
  return static_cast<std::size_t>(target);
}

AdaptiveClassifier::AdaptiveClassifier(
    std::shared_ptr<const CentroidClassifier> base, std::uint64_t seed)
    : base_(std::move(base)) {
  require(base_ != nullptr, "AdaptiveClassifier", "base model must not be null");
  if (!base_->finalized()) {
    throw std::logic_error(
        "AdaptiveClassifier: base model must be finalized before overlaying");
  }
  Rng rng(derive_seed(seed, kAdaptiveClassifierSalt));
  tie_breaker_ = Hypervector::random(base_->dimension(), rng);
}

std::size_t AdaptiveClassifier::predict(HypervectorView query) const {
  return nearest_in_slice(query, 0, num_classes()).second;
}

std::pair<std::uint64_t, std::size_t> AdaptiveClassifier::nearest_in_slice(
    HypervectorView query, std::size_t begin, std::size_t end) const {
  require(query.dimension() == dimension(),
          "AdaptiveClassifier::nearest_in_slice", "query dimension mismatch");
  require(begin < end && end <= num_classes(),
          "AdaptiveClassifier::nearest_in_slice", "slice out of range");
  const std::size_t stride = base_->words_per_class();
  std::vector<std::size_t> distances(end - begin);
  bits::hamming_many(query.words(),
                     base_->packed_class_words().subspan(begin * stride),
                     stride, end - begin, distances);
  // Substitute overlay rows after the fused base scan: cheaper than a
  // per-class branch, and the map walk touches only the overlaid slice.
  for (auto it = overlay_.lower_bound(begin);
       it != overlay_.end() && it->first < end; ++it) {
    distances[it->first - begin] = bits::hamming(
        query.words(), std::span<const std::uint64_t>(it->second.row));
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < distances.size(); ++i) {
    if (distances[i] < distances[best]) {
      best = i;
    }
  }
  return {static_cast<std::uint64_t>(distances[best]), begin + best};
}

Top2 AdaptiveClassifier::top2_in_slice(HypervectorView query,
                                       std::size_t begin,
                                       std::size_t end) const {
  require(query.dimension() == dimension(), "AdaptiveClassifier::top2_in_slice",
          "query dimension mismatch");
  require(begin < end && end <= num_classes(),
          "AdaptiveClassifier::top2_in_slice", "slice out of range");
  const std::size_t stride = base_->words_per_class();
  std::vector<std::size_t> distances(end - begin);
  bits::hamming_many(query.words(),
                     base_->packed_class_words().subspan(begin * stride),
                     stride, end - begin, distances);
  for (auto it = overlay_.lower_bound(begin);
       it != overlay_.end() && it->first < end; ++it) {
    distances[it->first - begin] = bits::hamming(
        query.words(), std::span<const std::uint64_t>(it->second.row));
  }
  Top2 top{};
  for (std::size_t i = 0; i < distances.size(); ++i) {
    top2_offer(top, Candidate{static_cast<std::uint64_t>(distances[i]),
                              static_cast<std::uint64_t>(begin + i)});
  }
  return top;
}

Top2 AdaptiveClassifier::predict_top2(HypervectorView query) const {
  return top2_in_slice(query, 0, num_classes());
}

AdaptiveClassifier::Overlay& AdaptiveClassifier::touch(std::size_t label) {
  const auto it = overlay_.find(label);
  if (it != overlay_.end()) {
    return it->second;
  }
  const HypervectorView base_row = row_view(
      base_->packed_class_words(), dimension(), base_->words_per_class(), label);
  Overlay overlay{BundleAccumulator(dimension()),
                  std::vector<std::uint64_t>(base_row.words().begin(),
                                             base_row.words().end())};
  // One majority vote for the snapshot state: counter = bit ? +1 : -1.  The
  // original training counters are not serialized, so the overlay treats the
  // finalized row itself as the prior each feedback sample then shifts.
  overlay.acc.add(base_row);
  return overlay_.emplace(label, std::move(overlay)).first->second;
}

std::size_t AdaptiveClassifier::adapt(std::size_t label,
                                      HypervectorView encoded) {
  require(label < num_classes(), "AdaptiveClassifier::adapt",
          "label out of range");
  require(encoded.dimension() == dimension(), "AdaptiveClassifier::adapt",
          "sample dimension mismatch");
  const std::size_t predicted = predict(encoded);
  ++seen_;
  if (predicted != label) {
    Overlay& truth = touch(label);
    Overlay& missed = touch(predicted);  // std::map: no reference invalidation.
    truth.acc.add(encoded);
    missed.acc.subtract(encoded);
    pack_row(truth.acc.finalize(tie_breaker_), truth.row,
             base_->words_per_class(), 0);
    pack_row(missed.acc.finalize(tie_breaker_), missed.row,
             base_->words_per_class(), 0);
    ++updates_;
  }
  return predicted;
}

std::span<const std::uint64_t> AdaptiveClassifier::class_row(
    std::size_t label) const {
  require(label < num_classes(), "AdaptiveClassifier::class_row",
          "label out of range");
  const auto it = overlay_.find(label);
  if (it != overlay_.end()) {
    return it->second.row;
  }
  const std::size_t stride = base_->words_per_class();
  return base_->packed_class_words().subspan(label * stride, stride);
}

std::map<std::size_t, std::vector<std::uint64_t>>
AdaptiveClassifier::changed_rows() const {
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  for (const auto& [label, overlay] : overlay_) {
    rows.emplace(label, overlay.row);
  }
  return rows;
}

CentroidClassifier AdaptiveClassifier::materialize() const {
  const auto base_words = base_->packed_class_words();
  std::vector<std::uint64_t> arena(base_words.begin(), base_words.end());
  const std::size_t stride = base_->words_per_class();
  for (const auto& [label, overlay] : overlay_) {
    std::copy(overlay.row.begin(), overlay.row.end(),
              arena.begin() + static_cast<std::ptrdiff_t>(label * stride));
  }
  // Overlay rows come from pack_row(finalize(...)) so the tail invariant
  // holds by construction; skip the re-scan.
  return CentroidClassifier::from_packed_class_words(
      num_classes(), dimension(), WordStorage(std::move(arena)), unchecked);
}

void AdaptiveClassifier::reset() noexcept {
  overlay_.clear();
  seen_ = 0;
  updates_ = 0;
}

AdaptiveRegressor::AdaptiveRegressor(std::shared_ptr<const HDRegressor> base,
                                     std::uint64_t seed)
    : base_(std::move(base)) {
  require(base_ != nullptr, "AdaptiveRegressor", "base model must not be null");
  if (!base_->finalized()) {
    throw std::logic_error(
        "AdaptiveRegressor: base model must be finalized before overlaying");
  }
  Rng rng(derive_seed(seed, kAdaptiveRegressorSalt));
  tie_breaker_ = Hypervector::random(base_->dimension(), rng);
}

double AdaptiveRegressor::predict(HypervectorView encoded_input) const {
  require(encoded_input.dimension() == dimension(),
          "AdaptiveRegressor::predict", "input dimension mismatch");
  if (overlay_ == nullptr) {
    return base_->predict(encoded_input);
  }
  return base_->labels().decode(overlay_->model ^ encoded_input);
}

void AdaptiveRegressor::label_distances(HypervectorView encoded_input,
                                        std::span<std::size_t> out) const {
  require(encoded_input.dimension() == dimension(),
          "AdaptiveRegressor::label_distances", "input dimension mismatch");
  const Basis& basis = base_->labels().basis();
  require(out.size() >= basis.size(), "AdaptiveRegressor::label_distances",
          "out must hold one distance per label grid point");
  std::vector<std::uint64_t> bound(bits::words_for(dimension()));
  bits::xor_rows(bound, model_words(), encoded_input.words());
  bits::hamming_many(bound, basis.packed_words(), basis.words_per_vector(),
                     basis.size(), out);
}

Band AdaptiveRegressor::predict_band(HypervectorView encoded_input) const {
  std::vector<std::size_t> distances(base_->labels().size());
  label_distances(encoded_input, distances);
  return band_from_distances(distances, base_->labels(), dimension());
}

double AdaptiveRegressor::adapt(HypervectorView encoded_input, double target) {
  require(encoded_input.dimension() == dimension(), "AdaptiveRegressor::adapt",
          "input dimension mismatch");
  const double predicted = predict(encoded_input);
  ++seen_;
  const ScalarEncoder& labels = base_->labels();
  // Compare on the label grid: predicted is already a grid value, and any
  // target is first quantized by phi_l anyway.
  if (labels.index_of(target) != labels.index_of(predicted)) {
    if (overlay_ == nullptr) {
      overlay_ = std::make_unique<Overlay>(
          Overlay{BundleAccumulator(dimension()), base_->model()});
      overlay_->acc.add(overlay_->model);  // Majority-vote prior, as above.
    }
    overlay_->acc.add(encoded_input ^ labels.encode(target));
    overlay_->acc.subtract(encoded_input ^ labels.encode(predicted));
    overlay_->model = overlay_->acc.finalize(tie_breaker_);
    ++updates_;
  }
  return predicted;
}

std::span<const std::uint64_t> AdaptiveRegressor::model_words() const {
  return overlay_ != nullptr ? overlay_->model.words() : base_->model().words();
}

std::map<std::size_t, std::vector<std::uint64_t>>
AdaptiveRegressor::changed_rows() const {
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  if (overlay_ != nullptr) {
    const auto words = overlay_->model.words();
    rows.emplace(0, std::vector<std::uint64_t>(words.begin(), words.end()));
  }
  return rows;
}

HDRegressor AdaptiveRegressor::materialize() const {
  return HDRegressor::from_model(
      base_->labels_ptr(),
      overlay_ != nullptr ? overlay_->model : base_->model());
}

void AdaptiveRegressor::reset() noexcept {
  overlay_.reset();
  seen_ = 0;
  updates_ = 0;
}

}  // namespace hdc
