#ifndef HDC_CORE_BASIS_HPP
#define HDC_CORE_BASIS_HPP

/// \file basis.hpp
/// \brief Basis-hypervector sets: the common container and provenance info.
///
/// Basis-hypervectors (Section 3) are stochastically created sets used to
/// encode the smallest units of meaningful information.  The library provides
/// four families, each with its own factory:
///   * random   — i.i.d. uniform, quasi-orthogonal (basis_random.hpp)
///   * level    — linearly correlated, for real intervals (basis_level.hpp)
///   * circular — circularly correlated, for angles (basis_circular.hpp)
///   * scatter  — nonlinear random-walk codes (scatter_code.hpp)
///
/// A `Basis` is an immutable, value-semantic set of equal-dimension
/// hypervectors plus a `BasisInfo` provenance record (kind, generation
/// method, r-hyperparameter, seed) that serialization and the experiment
/// logs rely on.

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/hypervector.hpp"

namespace hdc {

/// The family a basis set belongs to.
enum class BasisKind : std::uint8_t {
  Random = 0,
  Level = 1,
  Circular = 2,
  Scatter = 3,
};

/// How level sets (and the phase-1 levels of circular sets) are generated.
enum class LevelMethod : std::uint8_t {
  /// Paper Section 4 prior art: monotone flipping of d/2/(m-1) distinct bits
  /// per step; pairwise distances are (nearly) deterministic and the
  /// endpoints are exactly orthogonal.
  ExactFlip = 0,
  /// Paper Section 4.3 contribution (Algorithm 1): random interpolation
  /// filters; E[delta(L_i, L_j)] = (j - i) / (2 (m - 1)) with the relaxed
  /// "quasi" distances that carry more information content.
  Interpolation = 1,
};

/// Human-readable names, for table output and error messages.
[[nodiscard]] const char* to_string(BasisKind kind) noexcept;
[[nodiscard]] const char* to_string(LevelMethod method) noexcept;

/// Provenance of a basis set.
struct BasisInfo {
  BasisKind kind = BasisKind::Random;
  LevelMethod method = LevelMethod::Interpolation;  ///< Level/Circular only.
  std::size_t dimension = default_dimension;
  std::size_t size = 0;   ///< Number of hypervectors m.
  double r = 0.0;         ///< Correlation-relaxation hyperparameter (Sec. 5.2).
  std::uint64_t seed = 0; ///< Seed the set was generated from.
};

/// An immutable set of m equal-dimension hypervectors with provenance.
class Basis {
 public:
  /// Takes ownership of \p vectors; validates they are non-empty, of equal
  /// dimension, and consistent with \p info.
  /// \throws std::invalid_argument on any inconsistency.
  Basis(BasisInfo info, std::vector<Hypervector> vectors);

  [[nodiscard]] const BasisInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::size_t size() const noexcept { return vectors_.size(); }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return info_.dimension;
  }

  /// Unchecked element access (0-based).
  [[nodiscard]] const Hypervector& operator[](std::size_t i) const noexcept {
    return vectors_[i];
  }

  /// Checked element access. \throws std::invalid_argument if out of range.
  [[nodiscard]] const Hypervector& at(std::size_t i) const;

  [[nodiscard]] auto begin() const noexcept { return vectors_.begin(); }
  [[nodiscard]] auto end() const noexcept { return vectors_.end(); }

  /// Index of the basis vector nearest (in normalized Hamming distance) to
  /// \p query; the "cleanup" step of decoding.  Ties keep the lowest index.
  /// Runs on the fused XOR+popcount kernel over the packed arena.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t nearest(const Hypervector& query) const;

  /// nearest() on a raw word span (words_for(dimension()) words, tail bits
  /// zero); the allocation-free entry point used by the batch runtime.
  /// \pre query_words.size() == bits::words_for(dimension()).
  [[nodiscard]] std::size_t nearest_words(
      std::span<const std::uint64_t> query_words) const noexcept;

  /// All m vectors bit-packed into one contiguous arena, vector i at words
  /// [i * words_per_vector(), (i + 1) * words_per_vector()); built once at
  /// construction so cleanup scans are a single linear sweep.
  [[nodiscard]] std::span<const std::uint64_t> packed_words() const noexcept {
    return packed_;
  }

  /// Arena stride in 64-bit words.
  [[nodiscard]] std::size_t words_per_vector() const noexcept {
    return words_per_vector_;
  }

  /// Full m x m matrix of pairwise normalized distances delta(B_i, B_j);
  /// used by the Figure 3 reproduction and the property tests.
  [[nodiscard]] std::vector<std::vector<double>> pairwise_distances() const;

  /// Full m x m matrix of pairwise similarities 1 - delta.
  [[nodiscard]] std::vector<std::vector<double>> pairwise_similarities() const;

 private:
  BasisInfo info_;
  std::vector<Hypervector> vectors_;
  std::vector<std::uint64_t> packed_;
  std::size_t words_per_vector_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_BASIS_HPP
