#ifndef HDC_CORE_BASIS_HPP
#define HDC_CORE_BASIS_HPP

/// \file basis.hpp
/// \brief Basis-hypervector sets: the common container and provenance info.
///
/// Basis-hypervectors (Section 3) are stochastically created sets used to
/// encode the smallest units of meaningful information.  The library provides
/// four families, each with its own factory:
///   * random   — i.i.d. uniform, quasi-orthogonal (basis_random.hpp)
///   * level    — linearly correlated, for real intervals (basis_level.hpp)
///   * circular — circularly correlated, for angles (basis_circular.hpp)
///   * scatter  — nonlinear random-walk codes (scatter_code.hpp)
///
/// A `Basis` is an immutable, value-semantic set of equal-dimension
/// hypervectors plus a `BasisInfo` provenance record (kind, generation
/// method, r-hyperparameter, seed) that serialization and the experiment
/// logs rely on.
///
/// Storage: the packed word arena is the *single* source of truth — vector i
/// lives at arena words [i * words_per_vector(), (i + 1) *
/// words_per_vector()) and element access hands out zero-copy
/// `HypervectorView`s into it.  Nothing per-vector is duplicated, which
/// halves basis-resident memory versus keeping a parallel
/// std::vector<Hypervector> and is what makes mmap-able snapshots feasible.

#include <compare>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "hdc/core/hypervector.hpp"
#include "hdc/core/word_storage.hpp"

namespace hdc {

/// The family a basis set belongs to.
enum class BasisKind : std::uint8_t {
  Random = 0,
  Level = 1,
  Circular = 2,
  Scatter = 3,
};

/// How level sets (and the phase-1 levels of circular sets) are generated.
enum class LevelMethod : std::uint8_t {
  /// Paper Section 4 prior art: monotone flipping of d/2/(m-1) distinct bits
  /// per step; pairwise distances are (nearly) deterministic and the
  /// endpoints are exactly orthogonal.
  ExactFlip = 0,
  /// Paper Section 4.3 contribution (Algorithm 1): random interpolation
  /// filters; E[delta(L_i, L_j)] = (j - i) / (2 (m - 1)) with the relaxed
  /// "quasi" distances that carry more information content.
  Interpolation = 1,
};

/// Human-readable names, for table output and error messages.
[[nodiscard]] const char* to_string(BasisKind kind) noexcept;
[[nodiscard]] const char* to_string(LevelMethod method) noexcept;

/// Provenance of a basis set.
struct BasisInfo {
  BasisKind kind = BasisKind::Random;
  LevelMethod method = LevelMethod::Interpolation;  ///< Level/Circular only.
  std::size_t dimension = default_dimension;
  std::size_t size = 0;   ///< Number of hypervectors m.
  double r = 0.0;         ///< Correlation-relaxation hyperparameter (Sec. 5.2).
  std::uint64_t seed = 0; ///< Seed the set was generated from.
};

/// An immutable set of m equal-dimension hypervectors with provenance,
/// stored solely as one packed word arena.
class Basis {
 public:
  /// Packs \p vectors into the arena and releases them; validates they are
  /// non-empty, of equal dimension, and consistent with \p info.
  /// \throws std::invalid_argument on any inconsistency.
  Basis(BasisInfo info, std::vector<Hypervector> vectors);

  /// Adopts an already-packed arena (info.size rows of
  /// bits::words_for(info.dimension) words each) without copying — the
  /// zero-copy deserialization path.  Validates the word count and the
  /// per-row tail-bits-zero invariant.
  /// \throws std::invalid_argument on any inconsistency.
  Basis(BasisInfo info, std::vector<std::uint64_t> packed_words);

  /// Borrows an externally owned packed arena (e.g. a read-only snapshot
  /// mapping) without copying a single payload word.  The basis is valid
  /// only while the borrowed words outlive it — the mmap-serving path of
  /// hdc::io::MappedSnapshot.  Validates the same invariants as the owning
  /// arena constructor.
  /// \throws std::invalid_argument on any inconsistency.
  Basis(BasisInfo info, std::span<const std::uint64_t> packed_words, borrow_t);

  /// Borrowing constructor that skips the per-row invariant scan.  Only for
  /// callers that can prove the invariants already hold (a checksummed
  /// snapshot section written by the validating writer): touching every
  /// arena row here would page in the whole payload and defeat
  /// size-independent cold-start.  \pre same invariants as the validating
  /// overload — violating them is undefined behaviour.
  Basis(BasisInfo info, std::span<const std::uint64_t> packed_words, borrow_t,
        unchecked_t) noexcept
      : info_(info),
        packed_(packed_words, borrowed),
        words_per_vector_(bits::words_for(info.dimension)) {}

  /// True when the arena words live on this object's heap; false for
  /// borrowed (snapshot-backed) storage.
  [[nodiscard]] bool owns_storage() const noexcept { return packed_.owning(); }

  /// An owning deep copy (the crossover from snapshot-backed storage back to
  /// heap storage, for models that must outlive their snapshot).
  [[nodiscard]] Basis detach() const {
    return Basis(info_, packed_.to_owned(), unchecked);
  }

  [[nodiscard]] const BasisInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::size_t size() const noexcept { return info_.size; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return info_.dimension;
  }

  /// Unchecked element access (0-based): a zero-copy view into the arena,
  /// valid for the lifetime of this Basis (and, for borrowed storage, of the
  /// mapping behind it).
  [[nodiscard]] HypervectorView operator[](std::size_t i) const noexcept {
    return row_view(packed_.words(), info_.dimension, words_per_vector_, i);
  }

  /// Checked element access. \throws std::out_of_range if out of range.
  [[nodiscard]] HypervectorView at(std::size_t i) const;

  /// Random-access iterator over the arena rows, yielding
  /// `HypervectorView`s by value.
  class const_iterator {
   public:
    // Proxy iterator: operator* returns a view by value, so the legacy
    // category stays input_iterator (whose requirements we do satisfy) while
    // iterator_concept advertises random access to C++20 ranges — the
    // std::views::iota pattern.
    using iterator_concept = std::random_access_iterator_tag;
    using iterator_category = std::input_iterator_tag;
    using value_type = HypervectorView;
    using difference_type = std::ptrdiff_t;
    using pointer = const HypervectorView*;
    using reference = HypervectorView;

    const_iterator() = default;
    const_iterator(const Basis* basis, std::size_t index)
        : basis_(basis), index_(index) {}

    reference operator*() const { return (*basis_)[index_]; }
    reference operator[](difference_type n) const {
      return (*basis_)[index_ + static_cast<std::size_t>(n)];
    }

    const_iterator& operator++() { ++index_; return *this; }
    const_iterator operator++(int) { auto tmp = *this; ++index_; return tmp; }
    const_iterator& operator--() { --index_; return *this; }
    const_iterator operator--(int) { auto tmp = *this; --index_; return tmp; }
    const_iterator& operator+=(difference_type n) {
      index_ = static_cast<std::size_t>(static_cast<difference_type>(index_) + n);
      return *this;
    }
    const_iterator& operator-=(difference_type n) { return *this += -n; }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator+(difference_type n, const_iterator it) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const_iterator a, const_iterator b) {
      return a.basis_ == b.basis_ && a.index_ == b.index_;
    }
    friend std::strong_ordering operator<=>(const_iterator a,
                                            const_iterator b) {
      if (const auto c = std::compare_three_way{}(a.basis_, b.basis_);
          c != std::strong_ordering::equal) {
        return c;
      }
      return a.index_ <=> b.index_;
    }

   private:
    const Basis* basis_ = nullptr;
    std::size_t index_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, info_.size);
  }

  /// Index of the basis vector nearest (in normalized Hamming distance) to
  /// \p query; the "cleanup" step of decoding.  Ties keep the lowest index.
  /// Runs on the fused XOR+popcount kernel over the packed arena.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t nearest(HypervectorView query) const;

  /// nearest() on a raw word span; the allocation-free entry point used by
  /// the batch runtime.  The span must carry exactly
  /// words_for(dimension()) words with tail bits zero.
  /// \throws std::invalid_argument if query_words.size() !=
  /// words_per_vector().
  [[nodiscard]] std::size_t nearest_words(
      std::span<const std::uint64_t> query_words) const;

  /// All m vectors bit-packed into one contiguous arena, vector i at words
  /// [i * words_per_vector(), (i + 1) * words_per_vector()); the single
  /// source of truth every accessor serves views from.
  [[nodiscard]] std::span<const std::uint64_t> packed_words() const noexcept {
    return packed_.words();
  }

  /// Arena stride in 64-bit words.
  [[nodiscard]] std::size_t words_per_vector() const noexcept {
    return words_per_vector_;
  }

  /// Heap bytes resident for the vector storage (the arena data; the owning
  /// constructors shrink growth slack away, and reporting size keeps the
  /// number portable across allocators).  Zero for borrowed storage — the
  /// words belong to the snapshot mapping, not this object.  The
  /// memory-footprint bench gates on this staying ~half of the legacy
  /// arena + std::vector<Hypervector> layout.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return packed_.resident_bytes();
  }

  /// Full m x m matrix of pairwise normalized distances delta(B_i, B_j);
  /// used by the Figure 3 reproduction and the property tests.
  [[nodiscard]] std::vector<std::vector<double>> pairwise_distances() const;

  /// Full m x m matrix of pairwise similarities 1 - delta.
  [[nodiscard]] std::vector<std::vector<double>> pairwise_similarities() const;

 private:
  /// Shared adopting path behind the owning and borrowed public
  /// constructors; validates count and per-row tail invariants.
  Basis(BasisInfo info, WordStorage storage);

  /// Trusted adopting path (no per-row scan); used by detach(), whose source
  /// rows were validated when this basis was built.
  Basis(BasisInfo info, WordStorage storage, unchecked_t) noexcept
      : info_(info),
        packed_(std::move(storage)),
        words_per_vector_(bits::words_for(info.dimension)) {}

  BasisInfo info_;
  WordStorage packed_;
  std::size_t words_per_vector_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_BASIS_HPP
