#ifndef HDC_CORE_FEATURE_ENCODER_HPP
#define HDC_CORE_FEATURE_ENCODER_HPP

/// \file feature_encoder.hpp
/// \brief Key-value encoder for fixed-length numeric feature vectors.
///
/// The paper's JIGSAWS experiment (Section 6.1) encodes a sample as
/// ⊕_{i=1..18} K_i ⊗ V_i where K_i is a random key hypervector for feature
/// index i and V_i the value hypervector of the i-th measurement under the
/// basis family being evaluated.  `KeyValueEncoder` implements exactly that:
/// it owns the random key basis and a shared scalar encoder for the values.

#include <cstdint>
#include <span>

#include "hdc/core/basis.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// ⊕_i K_i ⊗ V(x_i) encoder.
class KeyValueEncoder {
 public:
  /// \param num_features  Length of the feature vectors (number of keys).
  /// \param values        Scalar encoder shared by all features.
  /// \param seed          Seed for the key basis and the bundling tie-break.
  /// \throws std::invalid_argument if num_features == 0 or values is null.
  KeyValueEncoder(std::size_t num_features, ScalarEncoderPtr values,
                  std::uint64_t seed);

  /// Restores an encoder from its serialized state (the hdc::io snapshot
  /// path): the key basis, the shared value encoder and the bundling
  /// tie-breaker are adopted as-is, so a restored encoder is bit-identical
  /// to the one that was written — including over borrowed (mmap-backed)
  /// basis storage.  \p seed is provenance only (the adopted state already
  /// encodes it).  \throws std::invalid_argument if values is null, keys is
  /// empty, or the key/value/tie-breaker dimensions disagree.
  KeyValueEncoder(Basis keys, ScalarEncoderPtr values, Hypervector tie_breaker,
                  std::uint64_t seed);

  /// Encodes one feature vector. \throws std::invalid_argument if
  /// features.size() != num_features().
  [[nodiscard]] Hypervector encode(std::span<const double> features) const;

  [[nodiscard]] std::size_t num_features() const noexcept {
    return keys_.size();
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return keys_.dimension();
  }
  [[nodiscard]] const Basis& keys() const noexcept { return keys_; }
  [[nodiscard]] const ScalarEncoder& values() const noexcept {
    return *values_;
  }
  /// The shared handle behind values(), for serializers that persist it.
  [[nodiscard]] const ScalarEncoderPtr& values_ptr() const noexcept {
    return values_;
  }
  /// The bundling tie-breaker; part of the encoder's serialized state
  /// because encode() is only bit-reproducible with it.
  [[nodiscard]] const Hypervector& tie_breaker() const noexcept {
    return tie_breaker_;
  }
  /// The seed this encoder was created from (provenance).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  Basis keys_;
  ScalarEncoderPtr values_;
  Hypervector tie_breaker_;
  std::uint64_t seed_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_FEATURE_ENCODER_HPP
