#ifndef HDC_CORE_FEATURE_ENCODER_HPP
#define HDC_CORE_FEATURE_ENCODER_HPP

/// \file feature_encoder.hpp
/// \brief Key-value encoder for fixed-length numeric feature vectors.
///
/// The paper's JIGSAWS experiment (Section 6.1) encodes a sample as
/// ⊕_{i=1..18} K_i ⊗ V_i where K_i is a random key hypervector for feature
/// index i and V_i the value hypervector of the i-th measurement under the
/// basis family being evaluated.  `KeyValueEncoder` implements exactly that:
/// it owns the random key basis and a shared scalar encoder for the values.

#include <cstdint>
#include <span>

#include "hdc/core/basis.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// ⊕_i K_i ⊗ V(x_i) encoder.
class KeyValueEncoder {
 public:
  /// \param num_features  Length of the feature vectors (number of keys).
  /// \param values        Scalar encoder shared by all features.
  /// \param seed          Seed for the key basis and the bundling tie-break.
  /// \throws std::invalid_argument if num_features == 0 or values is null.
  KeyValueEncoder(std::size_t num_features, ScalarEncoderPtr values,
                  std::uint64_t seed);

  /// Encodes one feature vector. \throws std::invalid_argument if
  /// features.size() != num_features().
  [[nodiscard]] Hypervector encode(std::span<const double> features) const;

  [[nodiscard]] std::size_t num_features() const noexcept {
    return keys_.size();
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return keys_.dimension();
  }
  [[nodiscard]] const Basis& keys() const noexcept { return keys_; }
  [[nodiscard]] const ScalarEncoder& values() const noexcept {
    return *values_;
  }

 private:
  Basis keys_;
  ScalarEncoderPtr values_;
  Hypervector tie_breaker_;
};

}  // namespace hdc

#endif  // HDC_CORE_FEATURE_ENCODER_HPP
