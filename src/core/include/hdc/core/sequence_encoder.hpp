#ifndef HDC_CORE_SEQUENCE_ENCODER_HPP
#define HDC_CORE_SEQUENCE_ENCODER_HPP

/// \file sequence_encoder.hpp
/// \brief Sequence and n-gram encoders over symbolic data (Section 3.1).
///
/// A word w = (a_1, ..., a_n) is encoded as  phi(w) = ⊕_{i=1..n} Pi^i(R(a_i))
/// — bundle the per-symbol random hypervectors, each permuted by its
/// position, so the location of every symbol is preserved.  The n-gram
/// encoder instead *binds* the permuted symbols of each length-n window and
/// bundles the windows; this is the classic HDC text-classification
/// encoding (Rahimi et al., 2016).

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hdc/core/item_memory.hpp"

namespace hdc {

/// Position-aware sequence encoder backed by an `ItemMemory`.
///
/// The `ItemMemory` materializes symbol vectors lazily, so the mutable
/// encode overloads are for training.  Serving shares one encoder across
/// connections behind a `shared_ptr<const>`; call `warm_bytes()` once after
/// construction and the const overloads then encode any byte string without
/// ever mutating the memory (symbol vectors depend only on (seed, symbol),
/// so warming never changes what a symbol encodes to).
class SequenceEncoder {
 public:
  /// \throws std::invalid_argument if dimension == 0.
  SequenceEncoder(std::size_t dimension, std::uint64_t seed);

  /// Encodes a token sequence as ⊕_i Pi^i(R(token_i)) (1-based shifts, as in
  /// the paper).  \throws std::invalid_argument if tokens is empty.
  [[nodiscard]] Hypervector encode(std::span<const std::string_view> tokens);

  /// Convenience: encodes a word character by character.
  /// \throws std::invalid_argument if word is empty.
  [[nodiscard]] Hypervector encode_word(std::string_view word);

  /// Materializes all 256 single-byte symbols, making every byte string
  /// encodable through the const overloads.  Idempotent.
  void warm_bytes();

  /// Const encode_word over already-materialized symbols (serving path;
  /// bit-identical to the mutable overload).  \throws std::invalid_argument
  /// if word is empty; std::logic_error if a byte was never materialized
  /// (call warm_bytes() first).
  [[nodiscard]] Hypervector encode_word(std::string_view word) const;

  [[nodiscard]] std::size_t dimension() const noexcept {
    return items_.dimension();
  }
  /// The seed this encoder was created from; (dimension, seed) reconstructs
  /// it bit-exactly, which is all a snapshot section needs to store.
  [[nodiscard]] std::uint64_t seed() const noexcept { return items_.seed(); }
  [[nodiscard]] ItemMemory& items() noexcept { return items_; }
  [[nodiscard]] const ItemMemory& items() const noexcept { return items_; }

 private:
  ItemMemory items_;
  Hypervector tie_breaker_;
};

/// Bound-n-gram text encoder: phi(text) = ⊕_windows ⊗_{k=0..n-1}
/// Pi^k(R(text[i+k])).
class NGramEncoder {
 public:
  /// \throws std::invalid_argument if dimension == 0 or n == 0.
  NGramEncoder(std::size_t dimension, std::size_t n, std::uint64_t seed);

  /// Encodes text; texts shorter than n are encoded as a single partial
  /// window.  \throws std::invalid_argument if text is empty.
  [[nodiscard]] Hypervector encode(std::string_view text);

  /// Materializes all 256 single-byte symbols for the const overload.
  /// Idempotent.
  void warm_bytes();

  /// Const encode over already-materialized symbols (serving path;
  /// bit-identical to the mutable overload).  \throws std::invalid_argument
  /// if text is empty; std::logic_error if a byte was never materialized
  /// (call warm_bytes() first).
  [[nodiscard]] Hypervector encode(std::string_view text) const;

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return items_.dimension();
  }
  /// The seed this encoder was created from; (dimension, n, seed)
  /// reconstructs it bit-exactly.
  [[nodiscard]] std::uint64_t seed() const noexcept { return items_.seed(); }

 private:
  ItemMemory items_;
  std::size_t n_;
  Hypervector tie_breaker_;
};

}  // namespace hdc

#endif  // HDC_CORE_SEQUENCE_ENCODER_HPP
