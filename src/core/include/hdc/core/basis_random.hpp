#ifndef HDC_CORE_BASIS_RANDOM_HPP
#define HDC_CORE_BASIS_RANDOM_HPP

/// \file basis_random.hpp
/// \brief Random basis-hypervectors (Section 3.1).
///
/// Each vector is sampled uniformly and independently from H = {0, 1}^d, so
/// any two of them are quasi-orthogonal with overwhelming probability
/// (E[delta] = 1/2, sd ≈ 1/(2 sqrt(d))).  This is the basis for symbolic /
/// categorical data and the maximum-information-content reference point of
/// the paper's trade-off analysis (Section 4.1).

#include <cstdint>

#include "hdc/core/basis.hpp"

namespace hdc {

/// Configuration for `make_random_basis`.
struct RandomBasisConfig {
  std::size_t dimension = default_dimension;  ///< d, must be > 0.
  std::size_t size = 0;                       ///< m, must be > 0.
  std::uint64_t seed = 1;                     ///< Generation seed.
};

/// Creates m i.i.d. uniform hypervectors.
/// \throws std::invalid_argument on invalid configuration.
[[nodiscard]] Basis make_random_basis(const RandomBasisConfig& config);

}  // namespace hdc

#endif  // HDC_CORE_BASIS_RANDOM_HPP
