#ifndef HDC_CORE_COMPOSED_ENCODER_HPP
#define HDC_CORE_COMPOSED_ENCODER_HPP

/// \file composed_encoder.hpp
/// \brief XOR-product composition of scalar encoders over one feature row.
///
/// The paper's circular-regression experiments (Section 6.2) encode one
/// Beijing temperature sample as Y ⊗ D ⊗ H — a level-encoded year bound to
/// circular encodings of day-of-year (period 366) and hour-of-day (period
/// 24).  `ComposedEncoder` generalizes that shape: N scalar encoders with
/// heterogeneous domains (linear or circular, any mix of periods), one
/// feature per encoder, bound into one hypervector by the self-inverse XOR
/// product.  Because binding multiplies correlation kernels
/// (corr(a ⊗ b, a' ⊗ b') = corr(a, a') * corr(b, b')), the composition is
/// similarity-preserving along every input axis at once.
///
/// Encoders are immutable and shared; encode() only reads basis state, so a
/// ComposedEncoder is safe to call concurrently from the hdc::runtime batch
/// engines and serves restored (snapshot-borrowed) parts unchanged.

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/core/hypervector.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// ⊗_i E_i(x_i) encoder: one scalar encoder per feature slot, XOR-bound.
class ComposedEncoder {
 public:
  /// \param parts  One scalar encoder per feature, in feature order; at
  /// least two, all non-null and of the same dimension.
  /// \throws std::invalid_argument otherwise.
  explicit ComposedEncoder(std::vector<ScalarEncoderPtr> parts);

  /// Encodes one feature row: features[i] through parts()[i], XOR-bound.
  /// \throws std::invalid_argument if features.size() != num_features().
  [[nodiscard]] Hypervector encode(std::span<const double> features) const;

  [[nodiscard]] std::size_t num_features() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return parts_.front()->dimension();
  }

  /// Sub-encoder \p i.  \throws std::out_of_range if out of range.
  [[nodiscard]] const ScalarEncoder& part(std::size_t i) const;

  /// All sub-encoders, in feature order (for serializers that persist them).
  [[nodiscard]] const std::vector<ScalarEncoderPtr>& parts() const noexcept {
    return parts_;
  }

 private:
  std::vector<ScalarEncoderPtr> parts_;
};

}  // namespace hdc

#endif  // HDC_CORE_COMPOSED_ENCODER_HPP
