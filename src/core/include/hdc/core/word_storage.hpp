#ifndef HDC_CORE_WORD_STORAGE_HPP
#define HDC_CORE_WORD_STORAGE_HPP

/// \file word_storage.hpp
/// \brief Owning-or-borrowed packed-word storage for arena-backed containers.
///
/// `Basis`, `CentroidClassifier` and `hdc::runtime::VectorArena` all keep
/// their hypervectors in one contiguous arena of 64-bit words.  `WordStorage`
/// is the storage slot behind those arenas: either an owning
/// `std::vector<std::uint64_t>` (the default, heap-backed) or a borrowed
/// `std::span` over words owned elsewhere — typically a read-only mmap of a
/// snapshot file (`hdc::io::MappedSnapshot`), where adopting the mapping
/// instead of copying it is what makes model cold-start latency independent
/// of model size.
///
/// Semantics:
///  * A borrowed WordStorage is read-only; `mutable_words()` and `owned()`
///    throw `std::logic_error` on it.
///  * Copying is shallow for borrowed storage (the copy aliases the same
///    underlying words) and deep for owning storage — exactly the semantics
///    of the `std::span` / `std::vector` members it wraps.
///  * Like a view, borrowed storage must not outlive the memory it points
///    into; containers built over a snapshot mapping are valid only while
///    the snapshot is open.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hdc {

/// Tag selecting non-owning (borrowed) construction, mirroring
/// std::in_place-style disambiguation tags.
struct borrow_t {
  explicit borrow_t() = default;
};
inline constexpr borrow_t borrowed{};

/// Tag selecting trusted construction that skips invariant re-validation.
/// Only for callers that can prove the invariants hold by construction —
/// e.g. a snapshot section whose checksum matched bytes produced by the
/// validating writer.  Violating the precondition is undefined behaviour of
/// the container, so the safe validating overloads remain the default.
struct unchecked_t {
  explicit unchecked_t() = default;
};
inline constexpr unchecked_t unchecked{};

/// Contiguous packed-word storage: owning vector or borrowed span.
class WordStorage {
 public:
  /// Empty owning storage.
  WordStorage() = default;

  /// Owning storage adopting \p words (implicit, so existing
  /// vector-adopting call sites keep working unchanged).
  WordStorage(std::vector<std::uint64_t> words)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(words)) {}

  /// Borrowed storage over externally owned words (e.g. an mmap region).
  WordStorage(std::span<const std::uint64_t> words, borrow_t) noexcept
      : view_(words), owning_(false) {}

  /// True when this storage owns its words on the heap.
  [[nodiscard]] bool owning() const noexcept { return owning_; }

  /// The stored words, wherever they live.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return owning_ ? std::span<const std::uint64_t>(owned_) : view_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return words().size(); }

  /// Heap bytes resident for the words: the vector payload when owning,
  /// zero when borrowed (the bytes belong to the mapping, not this object).
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return owning_ ? owned_.size() * sizeof(std::uint64_t) : 0;
  }

  /// Mutable access to owning storage.
  /// \throws std::logic_error when the storage is borrowed (read-only).
  [[nodiscard]] std::span<std::uint64_t> mutable_words();

  /// The owning vector itself, for containers that grow/shrink in place.
  /// \throws std::logic_error when the storage is borrowed (read-only).
  [[nodiscard]] std::vector<std::uint64_t>& owned();

  /// Drops growth slack on owning storage; no-op when borrowed.
  void shrink_to_fit() noexcept {
    if (owning_) {
      owned_.shrink_to_fit();
    }
  }

  /// An owning deep copy of the stored words (the crossover from borrowed
  /// snapshot-backed storage back to heap storage).
  [[nodiscard]] WordStorage to_owned() const {
    const auto w = words();
    return WordStorage(std::vector<std::uint64_t>(w.begin(), w.end()));
  }

 private:
  std::vector<std::uint64_t> owned_;
  std::span<const std::uint64_t> view_;
  bool owning_ = true;
};

}  // namespace hdc

#endif  // HDC_CORE_WORD_STORAGE_HPP
