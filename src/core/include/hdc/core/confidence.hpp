#ifndef HDC_CORE_CONFIDENCE_HPP
#define HDC_CORE_CONFIDENCE_HPP

/// \file confidence.hpp
/// \brief Prediction heads beyond argmin: similarity-margin confidence and
/// distributional (quantile-band) regression readouts.
///
/// The point predictors (`CentroidClassifier::predict`,
/// `HDRegressor::predict`) reduce a full Hamming-distance profile to one
/// argmin and throw the rest away.  The heads here keep just enough of the
/// profile to quantify uncertainty, following the distributional reading of
/// the hyperdimensional transform (PAPERS.md):
///
///  * **Margin confidence** (classifiers): from the two nearest class
///    vectors at integer distances d1 <= d2, confidence is the normalized
///    margin (d2 - d1) / (d1 + d2) in [0, 1] — 0 for a dead tie, 1 when the
///    query sits exactly on a class vector with the runner-up at a
///    distance, and monotone in the gap for a fixed d1 + d2.
///  * **Quantile band** (regressors): each label-basis grid point i at
///    normalized distance delta_i gets weight max(0, 1 - 2 * delta_i) —
///    the expected-similarity profile of a bundled label, linear in the
///    match fraction, which discounts the >= d/2 noise floor of unrelated
///    vectors.  p10/p50/p90 are the empirical weighted quantiles of the
///    grid values in grid order, so the band brackets the point prediction
///    and p10 <= p50 <= p90 by construction.
///
/// Everything is computed from *integer* Hamming distances in a fixed
/// order, so heads are bit-identical across kernel variants, batch shapes
/// and shard schemes — the same contract the point predictors honour.  The
/// `Candidate`/`Top2` lexicographic-minimum algebra is associative over
/// disjoint ascending index slices, which is exactly what lets the cluster
/// coordinator merge per-rank top-2 pairs into the global top-2.

#include <cstddef>
#include <cstdint>
#include <span>

#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// Sentinel distance/index for "no candidate"; loses every lexicographic
/// comparison against a real candidate (same value the cluster wire
/// protocol uses for empty Classes-scheme slices).
inline constexpr std::uint64_t kAbsentCandidate = ~std::uint64_t{0};

/// One `(distance, global index)` candidate; absent when distance ==
/// kAbsentCandidate.  Ordered lexicographically, so ties keep the lowest
/// index — the argmin tie-break every predictor uses.
struct Candidate {
  std::uint64_t distance = kAbsentCandidate;
  std::uint64_t index = kAbsentCandidate;

  [[nodiscard]] bool absent() const noexcept {
    return distance == kAbsentCandidate;
  }
};

/// Lexicographic (distance, index) order.
[[nodiscard]] constexpr bool candidate_less(Candidate a, Candidate b) noexcept {
  return a.distance != b.distance ? a.distance < b.distance
                                  : a.index < b.index;
}

/// The two lexicographically smallest candidates seen so far.  `best` is
/// absent only when no candidate was offered; `second` is absent when fewer
/// than two were.
struct Top2 {
  Candidate best{};
  Candidate second{};
};

/// Offers one candidate, keeping the two smallest.
void top2_offer(Top2& top, Candidate candidate) noexcept;

/// Merges two Top2 sets into the Top2 of the union.  Associative and
/// commutative for candidate sets with distinct indices — the coordinator's
/// cross-rank reduce.
[[nodiscard]] Top2 merge_top2(const Top2& a, const Top2& b) noexcept;

/// Top-2 scan over a contiguous candidate arena (layout as in
/// bits::nearest_hamming: candidate i at words [i * stride, ...)).
/// Reported indices are offset by \p index_offset, so a shard slice can
/// report global indices.  \p scratch must hold at least \p count entries.
/// \pre stride >= query.size(), arena.size() >= count * stride.
[[nodiscard]] Top2 top2_hamming(std::span<const std::uint64_t> query,
                                std::span<const std::uint64_t> arena,
                                std::size_t stride, std::size_t count,
                                std::uint64_t index_offset,
                                std::span<std::size_t> scratch);

/// Allocating convenience overload of the scratch-based top2_hamming.
[[nodiscard]] Top2 top2_hamming(std::span<const std::uint64_t> query,
                                std::span<const std::uint64_t> arena,
                                std::size_t stride, std::size_t count,
                                std::uint64_t index_offset = 0);

/// Normalized similarity margin of a top-2 result, in [0, 1]:
/// (d2 - d1) / (d1 + d2).  A single-candidate model (no runner-up) is
/// fully confident (1.0); a dead tie — including both distances zero — is
/// fully uncertain (0.0); no candidates at all is 0.0.  For a fixed
/// d1 + d2 the value is strictly increasing in the gap d2 - d1.
[[nodiscard]] double margin_confidence(const Top2& top) noexcept;

/// A p10/p50/p90 prediction band; p10 <= p50 <= p90 always.
struct Band {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

/// Weighted empirical quantiles over a label grid from its full
/// Hamming-distance profile.  distances[i] is the integer distance of the
/// (unbound) query to grid point i of \p labels; weight_i =
/// max(0, 1 - 2 * distances[i] / dimension).  Quantile q is the first grid
/// index (ascending) whose cumulative weight reaches q * total.  When every
/// weight is zero (query uncorrelated with the whole grid) the band
/// collapses to the argmin grid value — the point prediction.
/// \pre distances.size() == labels.size() and dimension > 0.
/// \throws std::invalid_argument on a size mismatch.
[[nodiscard]] Band band_from_distances(std::span<const std::size_t> distances,
                                       const ScalarEncoder& labels,
                                       std::size_t dimension);

}  // namespace hdc

#endif  // HDC_CORE_CONFIDENCE_HPP
