#ifndef HDC_CORE_HYPERVECTOR_HPP
#define HDC_CORE_HYPERVECTOR_HPP

/// \file hypervector.hpp
/// \brief The binary hypervector value type, H = {0, 1}^d, and its
///        non-owning view.
///
/// The paper (Section 2) represents information as ~10,000-bit words whose
/// bits are i.i.d.  `Hypervector` is a bit-packed, value-semantic
/// implementation supporting any runtime dimension d >= 1; all arithmetic on
/// it lives in ops.hpp.  `HypervectorView` is the zero-copy read-only
/// counterpart: it points at packed words owned elsewhere (a `Hypervector`,
/// a `Basis` arena row, a `hdc::runtime::VectorArena` slot) and is the
/// currency of every read-only API in the library, so arena-backed storage
/// never has to materialize per-vector copies.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/base/rng.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc {

/// Default hyperspace dimensionality used throughout the paper.
inline constexpr std::size_t default_dimension = 10'000;

class Hypervector;

/// A non-owning, read-only view of a d-dimensional binary hypervector:
/// a dimension plus a span of bits::words_for(d) packed little-endian words.
///
/// Invariant (inherited from the viewed storage): bits at positions >=
/// dimension() are zero, so whole-word popcounts and equality are exact.
/// A view is trivially copyable and must not outlive the storage it points
/// into — treat it like std::span or std::string_view.
class HypervectorView {
 public:
  /// Empty view of dimension 0.
  constexpr HypervectorView() = default;

  /// View over externally owned packed words.
  /// \pre words.size() == bits::words_for(dimension) and the tail bits of
  /// the last word are zero; checked (throws std::invalid_argument) because
  /// views are how raw arenas enter the typed API.
  HypervectorView(std::size_t dimension, std::span<const std::uint64_t> words);

  /// Every owning hypervector is implicitly viewable; this is what lets one
  /// view-accepting overload serve owning and arena-backed callers alike.
  HypervectorView(const Hypervector& hv) noexcept;  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr std::size_t dimension() const noexcept {
    return dimension_;
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return dimension_ == 0;
  }

  /// Reads bit \p index. \throws std::out_of_range if index >= dimension().
  [[nodiscard]] bool bit(std::size_t index) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count_ones() const noexcept {
    return bits::count_ones(words_);
  }

  /// The packed words (little-endian bit order, words_for(dimension()) of
  /// them, tail bits zero).
  [[nodiscard]] constexpr std::span<const std::uint64_t> words()
      const noexcept {
    return words_;
  }

  /// Bit-exact equality (same dimension, same words).
  [[nodiscard]] friend bool operator==(HypervectorView a,
                                       HypervectorView b) noexcept {
    if (a.dimension_ != b.dimension_) {
      return false;
    }
    for (std::size_t i = 0; i < a.words_.size(); ++i) {
      if (a.words_[i] != b.words_[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Trusted {};
  /// Unchecked construction for pre-validated arena rows; reachable only via
  /// row_view() so the validating public constructor stays the sole entry
  /// point for untrusted word spans.
  constexpr HypervectorView(Trusted, std::size_t dimension,
                            std::span<const std::uint64_t> words) noexcept
      : dimension_(dimension), words_(words) {}

  friend HypervectorView row_view(std::span<const std::uint64_t> arena,
                                  std::size_t dimension, std::size_t stride,
                                  std::size_t row) noexcept;

  std::size_t dimension_ = 0;
  std::span<const std::uint64_t> words_;
};

/// View of row \p row of a packed word arena — the zero-copy counterpart of
/// pack_row(), and like it a trusted primitive: the caller guarantees the
/// arena layout (stride == words_for(dimension), row in range, tail bits
/// zero), which Basis / CentroidClassifier / the encoders establish once at
/// arena construction.  No validation, so it is safe in noexcept accessors.
[[nodiscard]] inline HypervectorView row_view(
    std::span<const std::uint64_t> arena, std::size_t dimension,
    std::size_t stride, std::size_t row) noexcept {
  return HypervectorView(HypervectorView::Trusted{}, dimension,
                         arena.subspan(row * stride, stride));
}

/// A d-dimensional binary hypervector (owning).
///
/// Invariant: storage bits at positions >= dimension() are always zero, so
/// whole-word popcounts and equality are exact.
class Hypervector {
 public:
  /// Empty hypervector of dimension 0 (useful as a "moved-from"-like state).
  Hypervector() = default;

  /// All-zeros hypervector of the given dimension.
  /// \throws std::invalid_argument if dimension == 0.
  explicit Hypervector(std::size_t dimension);

  /// Materializes an owning copy of a view (the only copying crossover from
  /// the zero-copy world back to owning storage — deliberately explicit).
  /// \throws std::invalid_argument if the view is empty.
  explicit Hypervector(HypervectorView view);

  /// Uniformly random hypervector: each bit i.i.d. Bernoulli(1/2).
  /// This is the sampling primitive behind random basis-hypervectors.
  /// \throws std::invalid_argument if dimension == 0.
  [[nodiscard]] static Hypervector random(std::size_t dimension, Rng& rng);

  /// Builds a hypervector from explicit bits (bits.size() is the dimension).
  /// \throws std::invalid_argument if bits is empty.
  [[nodiscard]] static Hypervector from_bits(std::span<const bool> bits);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] bool empty() const noexcept { return dimension_ == 0; }

  /// Reads bit \p index. \throws std::out_of_range if out of range.
  [[nodiscard]] bool bit(std::size_t index) const;

  /// Writes bit \p index. \throws std::out_of_range if out of range.
  void set_bit(std::size_t index, bool value);

  /// Toggles bit \p index. \throws std::out_of_range if out of range.
  void flip_bit(std::size_t index);

  /// Number of set bits.
  [[nodiscard]] std::size_t count_ones() const noexcept {
    return bits::count_ones(words_);
  }

  /// Read-only view of the packed words (little-endian bit order).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Mutable view of the packed words.  Callers that write through this view
  /// must keep tail bits zero (see mask_tail()).
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Re-establishes the tail-bits-are-zero invariant after raw word writes.
  void mask_tail() noexcept;

  /// In-place XOR (binding) with any view. \throws std::invalid_argument on
  /// dimension mismatch.
  Hypervector& operator^=(HypervectorView other);

  [[nodiscard]] bool operator==(const Hypervector& other) const noexcept = default;

 private:
  std::size_t dimension_ = 0;
  std::vector<std::uint64_t> words_;
};

inline HypervectorView::HypervectorView(const Hypervector& hv) noexcept
    : dimension_(hv.dimension()), words_(hv.words()) {}

/// Binding of two hypervectors (element-wise XOR); the result is dissimilar
/// to both operands and binding is its own inverse: A ^ (A ^ B) == B.
/// Accepts any mix of owning hypervectors and views.
/// \throws std::invalid_argument on dimension mismatch.
[[nodiscard]] Hypervector operator^(HypervectorView a, HypervectorView b);

/// Copies \p hv into row \p row of a contiguous word arena with the given
/// stride; the shared packing primitive behind every fused nearest-neighbour
/// sweep (Basis, CentroidClassifier, the batch runtime).
/// \pre arena.size() >= (row + 1) * stride and stride >= hv word count.
void pack_row(HypervectorView hv, std::span<std::uint64_t> arena,
              std::size_t stride, std::size_t row);

/// Packs equal-dimension vectors into one contiguous buffer with stride
/// bits::words_for(dimension), vector i at row i.
/// \pre vectors is non-empty and all dimensions match.
[[nodiscard]] std::vector<std::uint64_t> pack_words(
    std::span<const Hypervector> vectors);

}  // namespace hdc

#endif  // HDC_CORE_HYPERVECTOR_HPP
