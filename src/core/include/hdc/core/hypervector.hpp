#ifndef HDC_CORE_HYPERVECTOR_HPP
#define HDC_CORE_HYPERVECTOR_HPP

/// \file hypervector.hpp
/// \brief The binary hypervector value type, H = {0, 1}^d.
///
/// The paper (Section 2) represents information as ~10,000-bit words whose
/// bits are i.i.d.  `Hypervector` is a bit-packed, value-semantic
/// implementation supporting any runtime dimension d >= 1; all arithmetic on
/// it lives in ops.hpp.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/base/rng.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc {

/// Default hyperspace dimensionality used throughout the paper.
inline constexpr std::size_t default_dimension = 10'000;

/// A d-dimensional binary hypervector.
///
/// Invariant: storage bits at positions >= dimension() are always zero, so
/// whole-word popcounts and equality are exact.
class Hypervector {
 public:
  /// Empty hypervector of dimension 0 (useful as a "moved-from"-like state).
  Hypervector() = default;

  /// All-zeros hypervector of the given dimension.
  /// \throws std::invalid_argument if dimension == 0.
  explicit Hypervector(std::size_t dimension);

  /// Uniformly random hypervector: each bit i.i.d. Bernoulli(1/2).
  /// This is the sampling primitive behind random basis-hypervectors.
  /// \throws std::invalid_argument if dimension == 0.
  [[nodiscard]] static Hypervector random(std::size_t dimension, Rng& rng);

  /// Builds a hypervector from explicit bits (bits.size() is the dimension).
  /// \throws std::invalid_argument if bits is empty.
  [[nodiscard]] static Hypervector from_bits(std::span<const bool> bits);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] bool empty() const noexcept { return dimension_ == 0; }

  /// Reads bit \p index. \throws std::invalid_argument if out of range.
  [[nodiscard]] bool bit(std::size_t index) const;

  /// Writes bit \p index. \throws std::invalid_argument if out of range.
  void set_bit(std::size_t index, bool value);

  /// Toggles bit \p index. \throws std::invalid_argument if out of range.
  void flip_bit(std::size_t index);

  /// Number of set bits.
  [[nodiscard]] std::size_t count_ones() const noexcept {
    return bits::count_ones(words_);
  }

  /// Read-only view of the packed words (little-endian bit order).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Mutable view of the packed words.  Callers that write through this view
  /// must keep tail bits zero (see mask_tail()).
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }

  /// Re-establishes the tail-bits-are-zero invariant after raw word writes.
  void mask_tail() noexcept;

  /// In-place XOR (binding). \throws std::invalid_argument on dimension
  /// mismatch.
  Hypervector& operator^=(const Hypervector& other);

  [[nodiscard]] bool operator==(const Hypervector& other) const noexcept = default;

 private:
  std::size_t dimension_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Binding of two hypervectors (element-wise XOR); the result is dissimilar
/// to both operands and binding is its own inverse: A ^ (A ^ B) == B.
/// \throws std::invalid_argument on dimension mismatch.
[[nodiscard]] Hypervector operator^(const Hypervector& a, const Hypervector& b);

/// Copies \p hv into row \p row of a contiguous word arena with the given
/// stride; the shared packing primitive behind every fused nearest-neighbour
/// sweep (Basis, CentroidClassifier, the batch runtime).
/// \pre arena.size() >= (row + 1) * stride and stride >= hv word count.
void pack_row(const Hypervector& hv, std::span<std::uint64_t> arena,
              std::size_t stride, std::size_t row);

/// Packs equal-dimension vectors into one contiguous buffer with stride
/// bits::words_for(dimension), vector i at row i.
/// \pre vectors is non-empty and all dimensions match.
[[nodiscard]] std::vector<std::uint64_t> pack_words(
    std::span<const Hypervector> vectors);

}  // namespace hdc

#endif  // HDC_CORE_HYPERVECTOR_HPP
