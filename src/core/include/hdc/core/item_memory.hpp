#ifndef HDC_CORE_ITEM_MEMORY_HPP
#define HDC_CORE_ITEM_MEMORY_HPP

/// \file item_memory.hpp
/// \brief Associative item memory: symbols <-> random hypervectors.
///
/// Early HDC applications encode symbol sequences (Section 3.1) by assigning
/// each symbol a random hypervector.  `ItemMemory` provides that one-to-one
/// assignment deterministically — each symbol's vector is derived from the
/// memory seed and a hash of the symbol, so the mapping is independent of
/// insertion order — plus the standard "cleanup" operation that recovers the
/// nearest stored symbol from a noisy query.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hdc/core/hypervector.hpp"

namespace hdc {

/// FNV-1a 64-bit string hash; exposed because the hash ring and item memory
/// both derive per-key randomness from it.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// Result of a cleanup query.
struct CleanupResult {
  std::string symbol;        ///< Nearest stored symbol.
  double distance = 0.0;     ///< Normalized Hamming distance to it.
};

/// Deterministic symbol -> random-hypervector memory.
class ItemMemory {
 public:
  /// \throws std::invalid_argument if dimension == 0.
  ItemMemory(std::size_t dimension, std::uint64_t seed);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  /// The seed every symbol vector is derived from; together with the
  /// dimension it is the memory's whole serializable configuration.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Returns the hypervector for \p symbol, creating (and remembering) it on
  /// first use.  The vector depends only on (seed, symbol), never on
  /// insertion order.
  [[nodiscard]] const Hypervector& get(std::string_view symbol);

  /// Returns the hypervector if the symbol was already materialized.
  [[nodiscard]] const Hypervector* find(std::string_view symbol) const noexcept;

  /// Nearest stored symbol to \p query, or nullopt when the memory is empty.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::optional<CleanupResult> cleanup(
      HypervectorView query) const;

  /// Symbols in first-use order (stable iteration for tests and logs).
  [[nodiscard]] const std::vector<std::string>& symbols() const noexcept {
    return order_;
  }

 private:
  std::size_t dimension_;
  std::uint64_t seed_;
  std::unordered_map<std::string, Hypervector> table_;
  std::vector<std::string> order_;
};

}  // namespace hdc

#endif  // HDC_CORE_ITEM_MEMORY_HPP
