#ifndef HDC_CORE_REGRESSOR_HPP
#define HDC_CORE_REGRESSOR_HPP

/// \file regressor.hpp
/// \brief The HDC regression framework (Section 2.3).
///
/// Training memorizes samples in a single hypervector
///   M = ⊕_i phi(x_i) ⊗ phi_l(y_i),
/// where phi_l is an *invertible* label encoder over a level basis.
/// Inference exploits the self-inverse binding:  M ⊗ phi(x̂) ≈ phi_l(y), so
/// the predicted label is the decoded nearest label-basis vector.
///
/// Two inference paths are provided:
///  * `predict()` — the paper-faithful path: M is the majority-quantized
///    binary model;
///  * `predict_integer()` — extension: skips quantization and scores each
///    label vector by the signed projection of the integer accumulator,
///    which preserves per-sample magnitudes.

#include <cstdint>
#include <span>

#include "hdc/core/accumulator.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// Single-hypervector HDC regressor.
class HDRegressor {
 public:
  /// \param labels  Invertible label encoder phi_l (shared, non-null).
  /// \throws std::invalid_argument if labels is null.
  HDRegressor(ScalarEncoderPtr labels, std::uint64_t seed);

  /// Restores an inference-only regressor from its quantized model
  /// hypervector (the serialization/snapshot path).  The result predicts
  /// immediately; training updates (add_sample/absorb) and the
  /// integer-accumulator path (predict_integer) throw std::logic_error
  /// because the accumulator is not part of the serialized state — query
  /// `trainable()` first instead of relying on the throw.
  /// \throws std::invalid_argument if labels is null or the model dimension
  /// does not match the label encoder.
  [[nodiscard]] static HDRegressor from_model(ScalarEncoderPtr labels,
                                              Hypervector model);

  /// False for models restored by from_model(): every mutator and the
  /// accumulator-backed predict_integer() would throw std::logic_error.
  [[nodiscard]] bool trainable() const noexcept { return !inference_only_; }

  /// True for models restored by from_model().
  [[nodiscard]] bool inference_only() const noexcept { return inference_only_; }

  [[nodiscard]] std::size_t dimension() const noexcept {
    return labels_->dimension();
  }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return accumulator_.count();
  }
  [[nodiscard]] const ScalarEncoder& labels() const noexcept { return *labels_; }

  /// The shared label encoder itself, for overlays/serializers that must
  /// keep phi_l alive beyond this object (e.g. AdaptiveRegressor,
  /// from_model() round trips).
  [[nodiscard]] const ScalarEncoderPtr& labels_ptr() const noexcept {
    return labels_;
  }

  /// Accumulates one training pair (phi(x) given encoded, label y).
  /// \throws std::invalid_argument on dimension mismatch; std::logic_error
  /// on inference-only models.
  void add_sample(HypervectorView encoded_input, double label);

  /// Merges a partial accumulation of already label-bound samples
  /// (phi(x_i) ⊗ phi_l(y_i)), e.g. one worker's share of a batch; absorbing
  /// per-worker accumulators in any order equals the sequential add_sample
  /// stream.  \throws std::invalid_argument on dimension mismatch.
  void absorb(const BundleAccumulator& partial);

  /// Quantizes the accumulated model.  Must be called before predict().
  /// \throws std::logic_error on inference-only models.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Extension: one mistake-driven update, the regression counterpart of
  /// CentroidClassifier::adapt().  Predicts \p encoded_input; when the
  /// decoded grid point differs from \p target's, adds
  /// phi(x̂) ⊗ phi_l(target), subtracts phi(x̂) ⊗ phi_l(predicted), and
  /// re-quantizes the model, so it stays finalized and queryable-consistent
  /// after every call.  Returns the (pre-update) prediction.
  /// \throws std::logic_error if not finalized or inference-only;
  /// std::invalid_argument on dimension mismatch.
  double adapt(HypervectorView encoded_input, double target);

  /// Paper-faithful prediction: decode(M ⊗ phi(x̂)) via the label basis.
  /// \throws std::logic_error if not finalized; std::invalid_argument on
  /// dimension mismatch.
  [[nodiscard]] double predict(HypervectorView encoded_input) const;

  /// The full label-grid distance profile behind predict(): distance of
  /// M ⊗ phi(x̂) to each label-basis vector, written to out[0..m).  The
  /// argmin of this profile (lowest index on ties) is exactly predict()'s
  /// decoded grid point; the whole profile feeds band_from_distances() —
  /// the regressor's distributional head.  \p out must hold labels().size()
  /// entries.  \throws std::logic_error if not finalized;
  /// std::invalid_argument on dimension or size mismatch.
  void label_distances(HypervectorView encoded_input,
                       std::span<std::size_t> out) const;

  /// Distributional prediction: the p10/p50/p90 weighted-quantile band of
  /// the label grid under the similarity profile of M ⊗ phi(x̂)
  /// (band_from_distances()).  Same preconditions as predict().
  [[nodiscard]] Band predict_band(HypervectorView encoded_input) const;

  /// Extension: integer-accumulator prediction.  For each label vector L_l,
  /// scores the signed projection of the accumulator onto phi(x̂) ⊗ L_l and
  /// returns the value of the best-scoring label.  Does not require
  /// finalize().  \throws std::invalid_argument on dimension mismatch;
  /// std::logic_error on inference-only models (no accumulator state).
  [[nodiscard]] double predict_integer(HypervectorView encoded_input) const;

  /// The quantized model hypervector M.
  /// \throws std::logic_error if not finalized.
  [[nodiscard]] const Hypervector& model() const;

 private:
  /// Restore-path shell: skips the O(dimension) accumulator and tie-breaker
  /// state an inference-only model can never reach (cold-starting a mapped
  /// snapshot must not pay for training machinery).
  struct restore_t {};
  HDRegressor(ScalarEncoderPtr labels, restore_t);

  void require_trainable(const char* where) const;

  ScalarEncoderPtr labels_;
  /// 1-slot placeholder on inference-only models (see restore_t).
  BundleAccumulator accumulator_;
  Hypervector model_;
  Hypervector tie_breaker_;  ///< Empty on inference-only models.
  bool finalized_ = false;
  bool inference_only_ = false;
};

}  // namespace hdc

#endif  // HDC_CORE_REGRESSOR_HPP
