#ifndef HDC_CORE_HDC_HPP
#define HDC_CORE_HDC_HPP

/// \file hdc.hpp
/// \brief Umbrella header: the full public API of the hdcpp core library.

#include "hdc/base/require.hpp"   // IWYU pragma: export
#include "hdc/base/rng.hpp"       // IWYU pragma: export
#include "hdc/base/version.hpp"   // IWYU pragma: export
#include "hdc/core/accumulator.hpp"      // IWYU pragma: export
#include "hdc/core/adaptive.hpp"         // IWYU pragma: export
#include "hdc/core/basis.hpp"            // IWYU pragma: export
#include "hdc/core/basis_circular.hpp"   // IWYU pragma: export
#include "hdc/core/basis_level.hpp"      // IWYU pragma: export
#include "hdc/core/basis_random.hpp"     // IWYU pragma: export
#include "hdc/core/bitops.hpp"           // IWYU pragma: export
#include "hdc/core/classifier.hpp"       // IWYU pragma: export
#include "hdc/core/composed_encoder.hpp" // IWYU pragma: export
#include "hdc/core/confidence.hpp"       // IWYU pragma: export
#include "hdc/core/feature_encoder.hpp"  // IWYU pragma: export
#include "hdc/core/hypervector.hpp"      // IWYU pragma: export
#include "hdc/core/item_memory.hpp"      // IWYU pragma: export
#include "hdc/core/multiscale_encoder.hpp"  // IWYU pragma: export
#include "hdc/core/ops.hpp"              // IWYU pragma: export
#include "hdc/core/regressor.hpp"        // IWYU pragma: export
#include "hdc/core/scalar_encoder.hpp"   // IWYU pragma: export
#include "hdc/core/scatter_code.hpp"     // IWYU pragma: export
#include "hdc/core/sequence_encoder.hpp" // IWYU pragma: export
#include "hdc/core/serialization.hpp"    // IWYU pragma: export
#include "hdc/core/word_storage.hpp"     // IWYU pragma: export

#endif  // HDC_CORE_HDC_HPP
