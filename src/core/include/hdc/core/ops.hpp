#ifndef HDC_CORE_OPS_HPP
#define HDC_CORE_OPS_HPP

/// \file ops.hpp
/// \brief The three HDC operations (Section 2.1) and similarity measures.
///
/// * binding   — element-wise XOR; associates information, self-inverse.
/// * bundling  — element-wise majority; represents sets, output similar to
///               its operands (see also accumulator.hpp for streaming use).
/// * permuting — cyclic shift; encodes order, invertible.
///
/// Distances use the normalized Hamming distance delta in [0, 1]; similarity
/// is 1 - delta, exactly as defined in the paper.

#include <cstddef>
#include <span>

#include "hdc/base/rng.hpp"
#include "hdc/core/hypervector.hpp"

namespace hdc {

/// Binding: associates two hypervectors. Commutative, self-inverse,
/// distributes over bundling.  Equivalent to operator^.  Accepts any mix of
/// owning hypervectors and zero-copy views (e.g. Basis arena rows).
/// \throws std::invalid_argument on dimension mismatch.
[[nodiscard]] Hypervector bind(HypervectorView a, HypervectorView b);

/// Permutation Pi^shift: cyclic left shift of the elements by \p shift
/// coordinates.  permute(permute(x, s), dimension - s) == x.
/// \throws std::invalid_argument if the input is empty.
[[nodiscard]] Hypervector permute(HypervectorView input, std::size_t shift);

/// Inverse permutation: permute_inverse(permute(x, s), s) == x.
[[nodiscard]] Hypervector permute_inverse(HypervectorView input,
                                          std::size_t shift);

/// Hamming distance in bits.
/// \throws std::invalid_argument on dimension mismatch or empty inputs.
[[nodiscard]] std::size_t hamming_distance(HypervectorView a,
                                           HypervectorView b);

/// Normalized Hamming distance delta in [0, 1].
/// \throws std::invalid_argument on dimension mismatch or empty inputs.
[[nodiscard]] double normalized_distance(HypervectorView a, HypervectorView b);

/// Similarity 1 - delta in [0, 1].
[[nodiscard]] double similarity(HypervectorView a, HypervectorView b);

/// Exact n-ary majority bundling of a set of hypervectors.  A result bit is 1
/// iff more than half of the inputs have a 1 there; exact ties (possible only
/// for an even number of inputs) are broken by the corresponding bit of a
/// random tie-break hypervector drawn from \p tie_rng.  This matches the
/// majority-gate semantics of Figure 1.
/// \throws std::invalid_argument if the span is empty or dimensions mismatch.
[[nodiscard]] Hypervector majority(std::span<const Hypervector> inputs,
                                   Rng& tie_rng);

/// Flips \p count distinct, uniformly chosen bit positions of \p input.
/// Used by the classic ("exact flip") level-hypervector construction.
/// \throws std::invalid_argument if count > dimension.
[[nodiscard]] Hypervector flip_random_bits(HypervectorView input,
                                           std::size_t count, Rng& rng);

/// Performs \p steps random-walk steps: each step flips one uniformly chosen
/// position, *with* replacement across steps.  This is the Section 4.2
/// bit-flipping walk used by scatter codes.
[[nodiscard]] Hypervector random_walk_flips(HypervectorView input,
                                            std::size_t steps, Rng& rng);

}  // namespace hdc

#endif  // HDC_CORE_OPS_HPP
