#ifndef HDC_CORE_BASIS_LEVEL_HPP
#define HDC_CORE_BASIS_LEVEL_HPP

/// \file basis_level.hpp
/// \brief Level basis-hypervectors for linearly correlated data (Section 4).
///
/// Two generation methods are provided:
///
/// * `LevelMethod::ExactFlip` — the prior-art construction (Rahimi et al.
///   2016; Widdows & Cohen 2015): start from a random L_1 and flip
///   d/2/(m-1) fresh bits per step, never unflipping.  Pairwise distances
///   are then essentially deterministic and L_1 ⟂ L_m exactly.
///
/// * `LevelMethod::Interpolation` — the paper's contribution (Algorithm 1):
///   draw random endpoints L_1, L_m and a uniform filter Phi in [0,1]^d;
///   level l takes bit ∂ from L_1 when Phi(∂) < tau_l = (m-l)/(m-1) and from
///   L_m otherwise.  Proposition 4.1: E[delta(L_i, L_j)] = (j-i)/(2(m-1)),
///   relaxing the distances to "quasi" and increasing information content.
///
/// The interpolation method additionally supports the Section 5.2
/// r-hyperparameter: the set becomes a concatenation of independent level
/// segments with n = r + (1-r)(m-1) transitions each, interpolating between
/// fully correlated (r = 0) and fully random (r = 1) sets.

#include <cstdint>
#include <span>

#include "hdc/core/basis.hpp"

namespace hdc {

/// Configuration for `make_level_basis`.
struct LevelBasisConfig {
  std::size_t dimension = default_dimension;  ///< d, must be > 0.
  std::size_t size = 0;                       ///< m, must be >= 2.
  LevelMethod method = LevelMethod::Interpolation;
  /// Section 5.2 correlation-relaxation hyperparameter in [0, 1]; only valid
  /// with `LevelMethod::Interpolation` (ExactFlip requires r == 0).
  double r = 0.0;
  std::uint64_t seed = 1;
};

/// Creates a level-hypervector set per the chosen method.
/// \throws std::invalid_argument on invalid configuration.
[[nodiscard]] Basis make_level_basis(const LevelBasisConfig& config);

/// The paper's target expected distance between levels i and j (1-based),
/// Delta_{i,j} = |j - i| / (2 (m - 1)).  Exposed for tests and docs.
/// \throws std::invalid_argument if m < 2 or an index is out of [1, m].
[[nodiscard]] double level_target_distance(std::size_t i, std::size_t j,
                                           std::size_t m);

namespace detail {

/// Builds `count` hypervectors interpolating between anchors that are
/// `transitions_per_segment` levels apart (the Section 5.2 concatenation);
/// shared by the level and circular factories.  `transitions_per_segment` is
/// n = r + (1-r)(m_ref - 1), where m_ref is the size used in the r formula
/// (the full set for levels; see basis_circular.cpp for the phase-1 use).
[[nodiscard]] std::vector<Hypervector> make_interpolated_levels(
    std::size_t dimension, std::size_t count, double transitions_per_segment,
    std::uint64_t seed);

/// Single-segment Algorithm-1 interpolation with *explicit* thresholds:
/// level l takes bit ∂ from the first anchor when Phi(∂) < taus[l] and from
/// the second anchor otherwise, so E[delta(L_0, L_l)] = (1 - taus[l]) / 2.
/// Thresholds must be non-increasing and within [0, 1]; taus.front() == 1
/// yields the first anchor exactly and taus.back() == 0 the second.  Used by
/// the cosine-profile circular construction.
/// \throws std::invalid_argument on invalid thresholds.
[[nodiscard]] std::vector<Hypervector> make_threshold_levels(
    std::size_t dimension, std::span<const double> taus, std::uint64_t seed);

}  // namespace detail

}  // namespace hdc

#endif  // HDC_CORE_BASIS_LEVEL_HPP
