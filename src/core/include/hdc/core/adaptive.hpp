#ifndef HDC_CORE_ADAPTIVE_HPP
#define HDC_CORE_ADAPTIVE_HPP

/// \file adaptive.hpp
/// \brief Copy-on-write online adaptation over restored (borrowed) models.
///
/// Restored models are inference-only by design: their integer accumulators
/// are not part of the serialized state, and a snapshot-backed arena is a
/// read-only mapping that must never be written.  Production models drift
/// anyway, so serving needs the OnlineHD-style mistake-driven refinement
/// *without* giving up the zero-copy base.  The overlay classes here provide
/// exactly that:
///
///  * the base model (typically borrowed straight off an
///    `hdc::io::MappedSnapshot`) stays untouched and keeps serving;
///  * the first `adapt()` that touches a class clones only that class's row
///    into an owning overlay and seeds a fresh accumulator from the row's
///    bits (counter = bit ? +1 : -1 — one majority vote for the snapshot
///    state), so memory grows with the number of *touched* classes, not the
///    model size;
///  * `predict()` reads overlay rows where they exist and base rows
///    everywhere else, with the same argmin-lowest-index tie-break as
///    `CentroidClassifier::predict` — so an overlay with no touched rows is
///    bit-identical to the base, and `materialize()` (a full owning model
///    with overlay rows patched in) always predicts bit-identically to the
///    overlay it came from.
///
/// The touched rows are exactly the payload of an HDCS v4 delta section
/// (`hdc::io::SnapshotWriter::add_delta`): an adapted model ships as base +
/// small patch instead of a full snapshot.
///
/// Determinism: two overlays built with the same seed over the same base and
/// fed the same feedback stream are bit-identical — the property the cluster
/// layer relies on when broadcasting `!adapt` feedback to every rank.
///
/// Thread safety: const members are safe to call concurrently; `adapt()` is
/// not (callers serialize, e.g. `hdc::serve::AdaptiveState`).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "hdc/core/accumulator.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/regressor.hpp"

namespace hdc {

/// Default overlay seed shared by every serving layer.  Replicas fed the
/// same feedback stream must build bit-identical overlays (the cluster
/// broadcast correctness condition), so they must also agree on the
/// tie-breaker derivation — one well-known seed, overridable only when a
/// caller owns determinism end to end.
inline constexpr std::uint64_t kDefaultAdaptSeed = 0xADA57A7EULL;

/// Validates a feedback target for an N-class classifier: must be an
/// integral value in [0, num_classes).  Returns it as a class label.
/// \throws std::invalid_argument otherwise (the wire carries targets as
/// doubles, so "2.5" or "-1" must fail here, not truncate silently).
[[nodiscard]] std::size_t checked_class_label(double target,
                                              std::size_t num_classes);

/// Mistake-driven classifier overlay: copy-on-write class rows over a
/// shared, finalized (usually snapshot-backed) `CentroidClassifier`.
class AdaptiveClassifier {
 public:
  /// \param base  Finalized base model; shared so the overlay keeps the
  /// snapshot mapping alive through whatever owns it.
  /// \param seed  Derives the deterministic majority tie-breaker.
  /// \throws std::invalid_argument if base is null;
  /// std::logic_error if base is not finalized.
  AdaptiveClassifier(std::shared_ptr<const CentroidClassifier> base,
                     std::uint64_t seed);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return base_->num_classes();
  }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return base_->dimension();
  }
  [[nodiscard]] const CentroidClassifier& base() const noexcept {
    return *base_;
  }

  /// argmin_i delta(query, row_i) where row_i is the overlay row when class
  /// i was touched and the base row otherwise; ties keep the lowest index
  /// (bit-identical to CentroidClassifier::predict on materialize()).
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t predict(HypervectorView query) const;

  /// Best `(Hamming distance, global class index)` over classes
  /// [begin, end), reading overlay rows where they exist — the sharded
  /// Classes-scheme slice scan.  Lexicographic minima over disjoint
  /// ascending slices reduce to exactly predict()'s argmin with
  /// lowest-index ties.  \throws std::invalid_argument on dimension
  /// mismatch or an empty/out-of-range slice.
  [[nodiscard]] std::pair<std::uint64_t, std::size_t> nearest_in_slice(
      HypervectorView query, std::size_t begin, std::size_t end) const;

  /// Top-2 (distance, global index) candidates over classes [begin, end),
  /// overlay rows substituted — the head-carrying variant of
  /// nearest_in_slice().  merge_top2() over disjoint ascending slices
  /// equals top2_in_slice() over the union, which is what keeps cluster
  /// confidence bit-identical to one process.  \throws as
  /// nearest_in_slice().
  [[nodiscard]] Top2 top2_in_slice(HypervectorView query, std::size_t begin,
                                   std::size_t end) const;

  /// Top-2 over every class; `best` matches predict(), and
  /// margin_confidence() of the result is the adapted model's confidence
  /// head.  \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Top2 predict_top2(HypervectorView query) const;

  /// One mistake-driven update: predicts \p encoded; on a miss clones the
  /// true and predicted class rows into the overlay (first touch only),
  /// adds the sample to the true class, subtracts it from the predicted
  /// one, and re-thresholds both rows.  The model stays queryable-consistent
  /// after every call — there is no finalize() step to forget.  Returns the
  /// pre-update prediction.
  /// \throws std::invalid_argument on bad label or dimension mismatch.
  std::size_t adapt(std::size_t label, HypervectorView encoded);

  /// Class \p label's current row: the overlay row if touched, else the
  /// base row.  \throws std::invalid_argument on a bad label.
  [[nodiscard]] std::span<const std::uint64_t> class_row(
      std::size_t label) const;

  /// The touched rows, keyed by class index in ascending order — exactly
  /// the per-class changed-row patches of an HDCS delta section.
  [[nodiscard]] std::map<std::size_t, std::vector<std::uint64_t>>
  changed_rows() const;

  /// Number of classes with an overlay row.
  [[nodiscard]] std::size_t touched_classes() const noexcept {
    return overlay_.size();
  }
  /// Feedback rows seen / rows that actually updated the model.
  [[nodiscard]] std::uint64_t feedback_rows() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }

  /// A full owning, inference-only `CentroidClassifier` with the overlay
  /// rows patched into a copy of the base arena; predicts bit-identically
  /// to this overlay.
  [[nodiscard]] CentroidClassifier materialize() const;

  /// Drops every overlay row: the model is the base again.
  void reset() noexcept;

 private:
  struct Overlay {
    BundleAccumulator acc;
    std::vector<std::uint64_t> row;
  };

  Overlay& touch(std::size_t label);

  std::shared_ptr<const CentroidClassifier> base_;
  std::map<std::size_t, Overlay> overlay_;
  Hypervector tie_breaker_;
  std::uint64_t seen_ = 0;
  std::uint64_t updates_ = 0;
};

/// Mistake-driven regressor overlay: a copy-on-write model hypervector over
/// a shared, finalized (usually snapshot-backed) `HDRegressor`.
class AdaptiveRegressor {
 public:
  /// \throws std::invalid_argument if base is null; std::logic_error if
  /// base is not finalized.
  AdaptiveRegressor(std::shared_ptr<const HDRegressor> base,
                    std::uint64_t seed);

  [[nodiscard]] std::size_t dimension() const noexcept {
    return base_->dimension();
  }
  [[nodiscard]] const HDRegressor& base() const noexcept { return *base_; }

  /// decode(M ⊗ phi(x̂)) over the current (overlay or base) model.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] double predict(HypervectorView encoded_input) const;

  /// The label-grid distance profile of the *current* (overlay or base)
  /// model — `HDRegressor::label_distances` over the adapted model row.
  /// \p out must hold base().labels().size() entries.
  /// \throws std::invalid_argument on dimension or size mismatch.
  void label_distances(HypervectorView encoded_input,
                       std::span<std::size_t> out) const;

  /// p10/p50/p90 band over the current model (see
  /// HDRegressor::predict_band).
  [[nodiscard]] Band predict_band(HypervectorView encoded_input) const;

  /// One mistake-driven update, mirroring `HDRegressor::adapt`: on a decoded
  /// value that differs from \p target, adds phi(x̂) ⊗ phi_l(target),
  /// subtracts phi(x̂) ⊗ phi_l(predicted), and re-thresholds the model row
  /// (cloned from the base on first touch).  Returns the pre-update
  /// prediction.  \throws std::invalid_argument on dimension mismatch.
  double adapt(HypervectorView encoded_input, double target);

  /// The current model row's packed words (overlay if touched, else base).
  [[nodiscard]] std::span<const std::uint64_t> model_words() const;

  /// True once adapt() has cloned the model row.
  [[nodiscard]] bool touched() const noexcept { return overlay_ != nullptr; }
  [[nodiscard]] std::uint64_t feedback_rows() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }

  /// The changed rows in delta-patch form: empty when untouched, else the
  /// single model row at index 0.
  [[nodiscard]] std::map<std::size_t, std::vector<std::uint64_t>>
  changed_rows() const;

  /// An owning, inference-only `HDRegressor` over the current model;
  /// predicts bit-identically to this overlay.
  [[nodiscard]] HDRegressor materialize() const;

  /// Drops the overlay: the model is the base again.
  void reset() noexcept;

 private:
  struct Overlay {
    BundleAccumulator acc;
    Hypervector model;
  };

  std::shared_ptr<const HDRegressor> base_;
  std::unique_ptr<Overlay> overlay_;
  Hypervector tie_breaker_;
  std::uint64_t seen_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_ADAPTIVE_HPP
