#ifndef HDC_CORE_MULTISCALE_ENCODER_HPP
#define HDC_CORE_MULTISCALE_ENCODER_HPP

/// \file multiscale_encoder.hpp
/// \brief Extension: multi-resolution circular encoding.
///
/// A single circular basis has a triangular similarity kernel whose support
/// spans the entire ring — similarity only reaches zero at the antipode, so
/// a bundled regression model smooths over half the circle (see the Table 2
/// analysis in EXPERIMENTS.md).  Binding encodings of the *same* value at
/// several resolutions multiplies their correlation kernels
/// (corr(a ⊗ b, a' ⊗ b') = corr(a, a') * corr(b, b') for independent pairs),
/// which sharpens the kernel while preserving the wrap topology.  This is a
/// natural extension of the paper's circular-hypervectors; the
/// `ablation_multiscale` bench quantifies the effect on both regression
/// tasks.

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/core/word_storage.hpp"

namespace hdc {

/// Encodes a periodic value as the binding of circular encodings at several
/// grid resolutions.  The public grid (index_of/value_of/decode) is the
/// finest of the configured scales.
///
/// All bound vectors are packed into one arena at construction; the encoder
/// is immutable afterwards and safe to share across threads (the contract
/// the hdc::runtime batch engines rely on), and encode() serves zero-copy
/// views out of that arena.
class MultiScaleCircularEncoder final : public ScalarEncoder {
 public:
  /// Configuration.
  struct Config {
    std::size_t dimension = default_dimension;
    /// Ring sizes of the bound scales, e.g. {16, 64}; at least one, each
    /// >= 2.  The largest becomes the public grid.
    std::vector<std::size_t> scales;
    double period = 1.0;  ///< Domain period, must be > 0.
    std::uint64_t seed = 1;
  };

  /// \throws std::invalid_argument on an invalid configuration.
  explicit MultiScaleCircularEncoder(const Config& config);

  /// Restores an encoder from its serialized state (the hdc::io snapshot
  /// path): the finest-scale basis, the sorted scale list, and the bound
  /// arena are adopted without regeneration, so a restored encoder is
  /// bit-identical to the one that was written.  \p bound_arena is borrowed
  /// — typically a span straight over a read-only snapshot mapping — and
  /// must outlive the encoder.  Validates the scale list, the arena word
  /// count and the per-row tail-bits-zero invariant.
  /// \throws std::invalid_argument on any inconsistency.
  MultiScaleCircularEncoder(Basis finest, std::vector<std::size_t> scales,
                            double period, std::uint64_t seed,
                            std::span<const std::uint64_t> bound_arena,
                            borrow_t);

  /// Borrowing restore that skips the per-row tail scan (touching every row
  /// would page in the whole arena and defeat size-independent cold-start).
  /// Only for arenas the caller already trusts to be writer-produced — e.g.
  /// a snapshot from an authenticated artifact store
  /// (`SnapshotIntegrity::Trust`).  A matching checksum alone does NOT
  /// prove the invariants (it authenticates whatever bytes were hashed,
  /// valid or not) — use the validating overload there.  \pre same
  /// invariants as the validating overload; violating them is undefined
  /// behaviour.
  MultiScaleCircularEncoder(Basis finest, std::vector<std::size_t> scales,
                            double period, std::uint64_t seed,
                            std::span<const std::uint64_t> bound_arena,
                            borrow_t, unchecked_t);

  [[nodiscard]] HypervectorView encode(double value) const override;
  [[nodiscard]] std::size_t index_of(double value) const override;
  [[nodiscard]] double value_of(std::size_t index) const override;
  [[nodiscard]] double decode(HypervectorView query) const override;

  /// The finest-scale basis (defines the public grid).  On a restored
  /// encoder this is the only materialized basis; the coarser scales live
  /// pre-bound inside the arena.
  [[nodiscard]] const Basis& basis() const noexcept override {
    return bases_.back();
  }

  [[nodiscard]] double period() const noexcept { return period_; }
  [[nodiscard]] std::size_t num_scales() const noexcept {
    return scales_.size();
  }
  /// Ring sizes of the bound scales, sorted coarse -> fine; the last entry
  /// is the public grid size.
  [[nodiscard]] const std::vector<std::size_t>& scales() const noexcept {
    return scales_;
  }
  /// The seed this encoder was created from (provenance).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// The bound-vector arena (one row per finest-grid index) — the encoder's
  /// whole functional state, and what hdc::io snapshots persist.
  [[nodiscard]] std::span<const std::uint64_t> packed_words() const noexcept {
    return packed_.words();
  }
  /// Arena stride in 64-bit words.
  [[nodiscard]] std::size_t words_per_vector() const noexcept {
    return words_per_vector_;
  }
  /// True when the bound arena lives on this object's heap; false for
  /// borrowed (snapshot-backed) storage.
  [[nodiscard]] bool owns_storage() const noexcept { return packed_.owning(); }

 private:
  /// Shared state-adopting path behind the two borrowing restore ctors.
  MultiScaleCircularEncoder(Basis finest, std::vector<std::size_t> scales,
                            double period, std::uint64_t seed,
                            WordStorage bound_arena);

  std::vector<Basis> bases_;  ///< Sorted coarse -> fine; finest only when restored.
  std::vector<std::size_t> scales_;  ///< Ring sizes, sorted coarse -> fine.
  double period_;
  std::uint64_t seed_ = 0;
  /// Bound vectors, one per finest-grid index, bit-packed into the single
  /// arena both encode() views and the fused decode sweep read from.
  WordStorage packed_;
  std::size_t words_per_vector_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_MULTISCALE_ENCODER_HPP
