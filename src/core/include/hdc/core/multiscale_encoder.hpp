#ifndef HDC_CORE_MULTISCALE_ENCODER_HPP
#define HDC_CORE_MULTISCALE_ENCODER_HPP

/// \file multiscale_encoder.hpp
/// \brief Extension: multi-resolution circular encoding.
///
/// A single circular basis has a triangular similarity kernel whose support
/// spans the entire ring — similarity only reaches zero at the antipode, so
/// a bundled regression model smooths over half the circle (see the Table 2
/// analysis in EXPERIMENTS.md).  Binding encodings of the *same* value at
/// several resolutions multiplies their correlation kernels
/// (corr(a ⊗ b, a' ⊗ b') = corr(a, a') * corr(b, b') for independent pairs),
/// which sharpens the kernel while preserving the wrap topology.  This is a
/// natural extension of the paper's circular-hypervectors; the
/// `ablation_multiscale` bench quantifies the effect on both regression
/// tasks.

#include <cstdint>
#include <vector>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc {

/// Encodes a periodic value as the binding of circular encodings at several
/// grid resolutions.  The public grid (index_of/value_of/decode) is the
/// finest of the configured scales.
///
/// All bound vectors are packed into one arena at construction; the encoder
/// is immutable afterwards and safe to share across threads (the contract
/// the hdc::runtime batch engines rely on), and encode() serves zero-copy
/// views out of that arena.
class MultiScaleCircularEncoder final : public ScalarEncoder {
 public:
  /// Configuration.
  struct Config {
    std::size_t dimension = default_dimension;
    /// Ring sizes of the bound scales, e.g. {16, 64}; at least one, each
    /// >= 2.  The largest becomes the public grid.
    std::vector<std::size_t> scales;
    double period = 1.0;  ///< Domain period, must be > 0.
    std::uint64_t seed = 1;
  };

  /// \throws std::invalid_argument on an invalid configuration.
  explicit MultiScaleCircularEncoder(const Config& config);

  [[nodiscard]] HypervectorView encode(double value) const override;
  [[nodiscard]] std::size_t index_of(double value) const override;
  [[nodiscard]] double value_of(std::size_t index) const override;
  [[nodiscard]] double decode(HypervectorView query) const override;

  /// The finest-scale basis (defines the public grid).
  [[nodiscard]] const Basis& basis() const noexcept override {
    return bases_.back();
  }

  [[nodiscard]] double period() const noexcept { return period_; }
  [[nodiscard]] std::size_t num_scales() const noexcept {
    return bases_.size();
  }

 private:
  std::vector<Basis> bases_;  ///< Sorted coarse -> fine.
  double period_;
  /// Bound vectors, one per finest-grid index, bit-packed into the single
  /// arena both encode() views and the fused decode sweep read from.
  std::vector<std::uint64_t> packed_;
  std::size_t words_per_vector_ = 0;
};

}  // namespace hdc

#endif  // HDC_CORE_MULTISCALE_ENCODER_HPP
