#ifndef HDC_CORE_CLASSIFIER_HPP
#define HDC_CORE_CLASSIFIER_HPP

/// \file classifier.hpp
/// \brief The standard HDC classification framework (Section 2.2, Figure 2).
///
/// Training bundles the encoded samples of each class i into a class-vector
/// M_i (the class "prototype"); inference returns the class whose vector is
/// nearest (argmin of the normalized Hamming distance) to the encoded query.
///
/// Beyond the paper's single-pass trainer, `adapt()` implements the common
/// mistake-driven refinement (add the sample to the true class accumulator,
/// subtract it from the wrongly predicted one) as a documented extension.

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/accumulator.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/word_storage.hpp"

namespace hdc {

/// Centroid (class-vector) classifier.
class CentroidClassifier {
 public:
  /// \throws std::invalid_argument if num_classes == 0 or dimension == 0.
  CentroidClassifier(std::size_t num_classes, std::size_t dimension,
                     std::uint64_t seed);

  /// Restores an inference-only model from finalized class-vectors (the
  /// serialization path).  The returned model predicts immediately; training
  /// updates (add_sample/absorb/adapt/finalize) throw std::logic_error
  /// because the integer accumulators are not part of the serialized state —
  /// query `trainable()` first instead of relying on the throw.
  /// \throws std::invalid_argument if vectors is empty or dimensions differ.
  [[nodiscard]] static CentroidClassifier from_class_vectors(
      std::vector<Hypervector> vectors);

  /// Restores an inference-only model straight from a packed class-vector
  /// arena (num_classes rows of bits::words_for(dimension) words each).
  /// Owning storage is adopted without copying; borrowed storage
  /// (WordStorage(span, borrowed)) serves predictions directly over an
  /// external mapping — the hdc::io::MappedSnapshot path.  Validates the
  /// word count and per-row tail invariants.
  /// \throws std::invalid_argument on any inconsistency.
  [[nodiscard]] static CentroidClassifier from_packed_class_words(
      std::size_t num_classes, std::size_t dimension, WordStorage arena);

  /// Trusted variant of from_packed_class_words() that skips the per-row
  /// invariant scan; only for arenas whose invariants are already proven
  /// (e.g. a checksum-verified snapshot section).  \pre same invariants as
  /// the validating overload.
  [[nodiscard]] static CentroidClassifier from_packed_class_words(
      std::size_t num_classes, std::size_t dimension, WordStorage arena,
      unchecked_t);

  /// True for models restored by from_class_vectors() /
  /// from_packed_class_words().
  [[nodiscard]] bool inference_only() const noexcept { return inference_only_; }

  /// False for restored inference-only models: every training-state mutator
  /// (add_sample, absorb, adapt, finalize) would throw std::logic_error.
  /// Callers holding deserialized models should branch on this instead of
  /// catching the throw.
  [[nodiscard]] bool trainable() const noexcept { return !inference_only_; }

  /// True when the class arena lives on this object's heap; false for
  /// borrowed (snapshot-backed) models.
  [[nodiscard]] bool owns_storage() const noexcept {
    return class_arena_.owning();
  }

  /// An owning deep copy of this finalized model (the crossover from
  /// snapshot-backed storage back to heap storage).  The copy is
  /// inference-only, like every restored model.
  /// \throws std::logic_error if the model is not finalized.
  [[nodiscard]] CentroidClassifier detach() const;

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return num_classes_;
  }
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Accumulates one encoded training sample into class \p label.
  /// \throws std::invalid_argument on bad label or dimension mismatch.
  void add_sample(std::size_t label, HypervectorView encoded);

  /// Merges a partial accumulation (e.g. one worker's share of a batch) into
  /// class \p label.  Counter addition commutes, so absorbing per-worker
  /// accumulators in any order equals the sequential add_sample stream.
  /// \throws std::invalid_argument on bad label or dimension mismatch;
  /// std::logic_error on inference-only models.
  void absorb(std::size_t label, const BundleAccumulator& partial);

  /// Thresholds all accumulators into class-vectors.  Must be called after
  /// training (add_sample/absorb) before predict(); adapt() refreshes the
  /// touched class-vectors itself and never invalidates the model.
  /// \throws std::logic_error on inference-only models (no accumulators).
  void finalize();

  /// True once finalize() has been called and no update invalidated it.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// argmin_i delta(query, M_i); ties keep the lowest class index.  Runs on
  /// the fused XOR+popcount kernel over the packed class-vector arena.
  /// \throws std::logic_error if the model is not finalized.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t predict(HypervectorView query) const;

  /// predict() on a raw word span; the allocation-free entry point shared
  /// with the batch runtime.  The span must carry exactly
  /// words_per_class() words with tail bits zero.
  /// \throws std::logic_error if the model is not finalized (same gate as
  /// predict(); this path used to skip it and silently serve the stale
  /// arena after add_sample()/absorb()).
  /// \throws std::invalid_argument if query_words.size() !=
  /// words_per_class().
  [[nodiscard]] std::size_t predict_words(
      std::span<const std::uint64_t> query_words) const;

  /// The finalized class-vectors bit-packed into one contiguous arena
  /// (class i at words [i * words_per_class(), ...)); the *only* class-vector
  /// storage, rewritten by finalize() and adapt().  All-zero rows until the
  /// first finalize().
  [[nodiscard]] std::span<const std::uint64_t> packed_class_words()
      const noexcept {
    return class_arena_.words();
  }

  /// Arena stride in 64-bit words.
  [[nodiscard]] std::size_t words_per_class() const noexcept {
    return words_per_class_;
  }

  /// The two nearest class-vectors as lexicographic (distance, index)
  /// candidates: `best` is exactly predict()'s argmin with lowest-index
  /// ties, `second` is absent for single-class models.  Feeds
  /// margin_confidence() — the classifier's confidence head.
  /// \throws std::logic_error / std::invalid_argument as for predict().
  [[nodiscard]] Top2 predict_top2(HypervectorView query) const;

  /// predict_top2() on a raw word span (the batch-runtime entry point);
  /// same contract as predict_words().
  [[nodiscard]] Top2 predict_top2_words(
      std::span<const std::uint64_t> query_words) const;

  /// Similarity (1 - delta) between the query and one class-vector.
  /// \throws std::logic_error / std::invalid_argument as for predict().
  [[nodiscard]] double class_similarity(std::size_t label,
                                        HypervectorView query) const;

  /// Similarities to every class-vector, index == label.
  [[nodiscard]] std::vector<double> similarities(HypervectorView query) const;

  /// Extension: one mistake-driven update.  Predicts \p encoded with the
  /// current class-vectors; on a miss, adds the sample to the true class and
  /// subtracts it from the predicted class, then refreshes the two affected
  /// class-vectors.  The model stays finalized and queryable-consistent
  /// after every call — no finalize() pass is needed between adapt() and
  /// predict().  Returns the (pre-update) prediction.
  /// \throws std::logic_error if the model is not finalized.
  std::size_t adapt(std::size_t label, HypervectorView encoded);

  /// The finalized class-vector M_label: a zero-copy view into the packed
  /// class arena, valid until the next finalize()/adapt().
  /// \throws std::logic_error / std::invalid_argument as for predict().
  [[nodiscard]] HypervectorView class_vector(std::size_t label) const;

  /// Number of training samples accumulated into a class so far; always 0
  /// for inference-only models (the accumulators are not serialized).
  [[nodiscard]] std::size_t class_count(std::size_t label) const;

 private:
  /// Uninitialized shell for the inference-only restore paths, which skip
  /// the accumulator and tie-breaker allocation entirely (restoring a model
  /// must not cost O(num_classes * dimension) heap it can never use).
  CentroidClassifier() = default;

  void require_finalized(const char* where) const;
  void require_trainable(const char* where) const;
  void store_class(std::size_t label, HypervectorView vector);

  std::size_t dimension_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<BundleAccumulator> accumulators_;  ///< Empty when inference-only.
  WordStorage class_arena_;
  std::size_t words_per_class_ = 0;
  Hypervector tie_breaker_;
  bool finalized_ = false;
  bool inference_only_ = false;
};

}  // namespace hdc

#endif  // HDC_CORE_CLASSIFIER_HPP
