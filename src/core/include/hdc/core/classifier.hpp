#ifndef HDC_CORE_CLASSIFIER_HPP
#define HDC_CORE_CLASSIFIER_HPP

/// \file classifier.hpp
/// \brief The standard HDC classification framework (Section 2.2, Figure 2).
///
/// Training bundles the encoded samples of each class i into a class-vector
/// M_i (the class "prototype"); inference returns the class whose vector is
/// nearest (argmin of the normalized Hamming distance) to the encoded query.
///
/// Beyond the paper's single-pass trainer, `adapt()` implements the common
/// mistake-driven refinement (add the sample to the true class accumulator,
/// subtract it from the wrongly predicted one) as a documented extension.

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/core/accumulator.hpp"
#include "hdc/core/hypervector.hpp"

namespace hdc {

/// Centroid (class-vector) classifier.
class CentroidClassifier {
 public:
  /// \throws std::invalid_argument if num_classes == 0 or dimension == 0.
  CentroidClassifier(std::size_t num_classes, std::size_t dimension,
                     std::uint64_t seed);

  /// Restores an inference-only model from finalized class-vectors (the
  /// serialization path).  The returned model predicts immediately; training
  /// updates (add_sample/adapt) throw std::logic_error because the integer
  /// accumulators are not part of the serialized state.
  /// \throws std::invalid_argument if vectors is empty or dimensions differ.
  [[nodiscard]] static CentroidClassifier from_class_vectors(
      std::vector<Hypervector> vectors);

  /// True for models restored by from_class_vectors().
  [[nodiscard]] bool inference_only() const noexcept { return inference_only_; }

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return accumulators_.size();
  }
  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Accumulates one encoded training sample into class \p label.
  /// \throws std::invalid_argument on bad label or dimension mismatch.
  void add_sample(std::size_t label, HypervectorView encoded);

  /// Merges a partial accumulation (e.g. one worker's share of a batch) into
  /// class \p label.  Counter addition commutes, so absorbing per-worker
  /// accumulators in any order equals the sequential add_sample stream.
  /// \throws std::invalid_argument on bad label or dimension mismatch;
  /// std::logic_error on inference-only models.
  void absorb(std::size_t label, const BundleAccumulator& partial);

  /// Thresholds all accumulators into class-vectors.  Must be called after
  /// training (and after any adapt() pass) before predict().
  void finalize();

  /// True once finalize() has been called and no update invalidated it.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// argmin_i delta(query, M_i); ties keep the lowest class index.  Runs on
  /// the fused XOR+popcount kernel over the packed class-vector arena.
  /// \throws std::logic_error if the model is not finalized.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t predict(HypervectorView query) const;

  /// predict() on a raw word span; the allocation-free entry point shared
  /// with the batch runtime.  The span must carry exactly
  /// words_per_class() words with tail bits zero.  \pre the model is
  /// finalized.
  /// \throws std::invalid_argument if query_words.size() !=
  /// words_per_class().
  [[nodiscard]] std::size_t predict_words(
      std::span<const std::uint64_t> query_words) const;

  /// The finalized class-vectors bit-packed into one contiguous arena
  /// (class i at words [i * words_per_class(), ...)); the *only* class-vector
  /// storage, rewritten by finalize() and adapt().  All-zero rows until the
  /// first finalize().
  [[nodiscard]] std::span<const std::uint64_t> packed_class_words()
      const noexcept {
    return class_arena_;
  }

  /// Arena stride in 64-bit words.
  [[nodiscard]] std::size_t words_per_class() const noexcept {
    return words_per_class_;
  }

  /// Similarity (1 - delta) between the query and one class-vector.
  /// \throws std::logic_error / std::invalid_argument as for predict().
  [[nodiscard]] double class_similarity(std::size_t label,
                                        HypervectorView query) const;

  /// Similarities to every class-vector, index == label.
  [[nodiscard]] std::vector<double> similarities(HypervectorView query) const;

  /// Extension: one mistake-driven update.  Predicts \p encoded with the
  /// current class-vectors; on a miss, adds the sample to the true class and
  /// subtracts it from the predicted class, then refreshes the two affected
  /// class-vectors.  Returns the (pre-update) prediction.
  /// \throws std::logic_error if the model is not finalized.
  std::size_t adapt(std::size_t label, HypervectorView encoded);

  /// The finalized class-vector M_label: a zero-copy view into the packed
  /// class arena, valid until the next finalize()/adapt().
  /// \throws std::logic_error / std::invalid_argument as for predict().
  [[nodiscard]] HypervectorView class_vector(std::size_t label) const;

  /// Number of training samples accumulated into a class so far.
  [[nodiscard]] std::size_t class_count(std::size_t label) const;

 private:
  void require_finalized(const char* where) const;
  void store_class(std::size_t label, HypervectorView vector);

  std::size_t dimension_;
  std::vector<BundleAccumulator> accumulators_;
  std::vector<std::uint64_t> class_arena_;
  std::size_t words_per_class_ = 0;
  Hypervector tie_breaker_;
  bool finalized_ = false;
  bool inference_only_ = false;
};

}  // namespace hdc

#endif  // HDC_CORE_CLASSIFIER_HPP
