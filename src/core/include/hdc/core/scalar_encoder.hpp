#ifndef HDC_CORE_SCALAR_ENCODER_HPP
#define HDC_CORE_SCALAR_ENCODER_HPP

/// \file scalar_encoder.hpp
/// \brief Invertible scalar-to-hypervector encoders (Sections 2.3, 3.2).
///
/// phi_L maps a real number to the basis vector of the nearest grid point
/// xi_i placed evenly over [lo, hi] (Section 3.2); the inverse map — needed
/// for regression labels — finds the nearest basis vector of a query and
/// returns its grid point.  `CircularScalarEncoder` (Section 5) does the
/// same on a periodic domain, where grid point m wraps back to 0.

#include <memory>

#include "hdc/core/basis.hpp"

namespace hdc {

/// Interface shared by all scalar encoders, so feature encoders and models
/// can mix linear and circular value encodings.
class ScalarEncoder {
 public:
  virtual ~ScalarEncoder() = default;

  ScalarEncoder() = default;
  ScalarEncoder(const ScalarEncoder&) = default;
  ScalarEncoder& operator=(const ScalarEncoder&) = default;
  ScalarEncoder(ScalarEncoder&&) = default;
  ScalarEncoder& operator=(ScalarEncoder&&) = default;

  /// phi: value -> basis hypervector of the nearest grid point, as a
  /// zero-copy view into the encoder's basis arena (valid for the lifetime
  /// of the encoder).
  [[nodiscard]] virtual HypervectorView encode(double value) const = 0;

  /// Grid index of the nearest grid point for \p value.
  [[nodiscard]] virtual std::size_t index_of(double value) const = 0;

  /// The represented value of grid index \p index.
  /// \throws std::invalid_argument if out of range.
  [[nodiscard]] virtual double value_of(std::size_t index) const = 0;

  /// phi^{-1}: nearest-basis-vector cleanup followed by value_of.
  [[nodiscard]] virtual double decode(HypervectorView query) const = 0;

  /// The underlying basis set.
  [[nodiscard]] virtual const Basis& basis() const noexcept = 0;

  /// Number of grid points m.
  [[nodiscard]] std::size_t size() const noexcept { return basis().size(); }

  /// Hypervector dimensionality d.
  [[nodiscard]] std::size_t dimension() const noexcept {
    return basis().dimension();
  }
};

/// Evenly spaced grid over a closed interval [lo, hi]; values are clamped to
/// the interval before quantization.  Works with any basis family — pairing
/// it with a level basis gives the paper's real-number encoding, pairing it
/// with a random basis gives the uncorrelated baseline of the experiments.
class LinearScalarEncoder final : public ScalarEncoder {
 public:
  /// \throws std::invalid_argument if lo >= hi or the basis has fewer than 2
  /// vectors.
  LinearScalarEncoder(Basis basis, double lo, double hi);

  [[nodiscard]] HypervectorView encode(double value) const override;
  [[nodiscard]] std::size_t index_of(double value) const override;
  [[nodiscard]] double value_of(std::size_t index) const override;
  [[nodiscard]] double decode(HypervectorView query) const override;
  [[nodiscard]] const Basis& basis() const noexcept override { return basis_; }

  [[nodiscard]] double low() const noexcept { return lo_; }
  [[nodiscard]] double high() const noexcept { return hi_; }

 private:
  Basis basis_;
  double lo_;
  double hi_;
  double step_;
};

/// Evenly spaced grid over a periodic domain [0, period); grid point i
/// represents angle i * period / m and indices wrap modulo m.  Pairing it
/// with a circular basis gives the paper's circular-data encoding.
class CircularScalarEncoder final : public ScalarEncoder {
 public:
  /// \throws std::invalid_argument if period <= 0 or the basis has fewer
  /// than 2 vectors.
  explicit CircularScalarEncoder(Basis basis, double period);

  [[nodiscard]] HypervectorView encode(double value) const override;
  [[nodiscard]] std::size_t index_of(double value) const override;
  [[nodiscard]] double value_of(std::size_t index) const override;
  [[nodiscard]] double decode(HypervectorView query) const override;
  [[nodiscard]] const Basis& basis() const noexcept override { return basis_; }

  [[nodiscard]] double period() const noexcept { return period_; }

 private:
  Basis basis_;
  double period_;
};

/// Convenience deep-copyable handle used where encoders are shared.
using ScalarEncoderPtr = std::shared_ptr<const ScalarEncoder>;

}  // namespace hdc

#endif  // HDC_CORE_SCALAR_ENCODER_HPP
