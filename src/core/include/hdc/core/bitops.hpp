#ifndef HDC_CORE_BITOPS_HPP
#define HDC_CORE_BITOPS_HPP

/// \file bitops.hpp
/// \brief Word-level primitives for bit-packed binary hypervectors.
///
/// Hypervectors are stored little-endian in 64-bit words: bit i of the vector
/// is bit (i % 64) of word (i / 64).  A dimension d that is not a multiple of
/// 64 leaves unused high bits in the last word; every routine here preserves
/// the invariant that those tail bits are zero, so popcount-based distances
/// and equality work on whole words.
///
/// The fused XOR+popcount kernels (hamming / nearest_hamming / hamming_many
/// / count_ones / xor_into / xor_rows) are *dispatched*: each span function
/// below is a thin shim over the process-wide `Kernels` table selected at
/// startup from the compiled-in scalar / AVX2 / AVX-512 / NEON variants
/// (hdc/core/kernels.hpp, docs/kernels.md).  Every variant is bit-exact
/// with the scalar reference; selection only changes speed.

#include <cstddef>
#include <cstdint>
#include <span>

#include "hdc/core/kernels.hpp"

namespace hdc::bits {

/// Number of bits per storage word.
inline constexpr std::size_t word_bits = 64;

/// Number of words needed to store \p bit_count bits.
[[nodiscard]] constexpr std::size_t words_for(std::size_t bit_count) noexcept {
  return (bit_count + word_bits - 1) / word_bits;
}

/// Mask selecting the valid bits of the last word of a \p bit_count-bit
/// vector.  All-ones when bit_count is a multiple of 64 (and for 0).
[[nodiscard]] constexpr std::uint64_t tail_mask(std::size_t bit_count) noexcept {
  const std::size_t rem = bit_count % word_bits;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

/// Population count over a word span.
[[nodiscard]] inline std::size_t count_ones(
    std::span<const std::uint64_t> words) noexcept {
  return active_kernels().count_ones(words.data(), words.size());
}

/// Hamming distance (bit count of XOR) between two equal-length word spans.
/// Dispatches to the active kernel variant's fused XOR+popcount sweep.
/// \pre a.size() == b.size().
[[nodiscard]] inline std::size_t hamming(
    std::span<const std::uint64_t> a,
    std::span<const std::uint64_t> b) noexcept {
  return active_kernels().hamming(a.data(), b.data(), a.size());
}

/// Fused nearest-neighbour scan over a contiguous candidate arena: candidate
/// i occupies words [i * stride, i * stride + query.size()).  Replaces
/// per-pair hamming() calls with one XOR+popcount sweep; this is the shared
/// inference kernel behind Basis::nearest, CentroidClassifier::predict and
/// the hdc::runtime batch engines.  Ties keep the lowest index for every
/// kernel variant.
/// \pre stride >= query.size() and arena.size() >= count * stride.
/// \pre count >= 1.
[[nodiscard]] inline NearestMatch nearest_hamming(
    std::span<const std::uint64_t> query, std::span<const std::uint64_t> arena,
    std::size_t stride, std::size_t count) noexcept {
  return active_kernels().nearest_hamming(query.data(), query.size(),
                                          arena.data(), stride, count);
}

/// Hamming distance from \p query to each of \p count candidates laid out as
/// in nearest_hamming; distances are written to out[0..count).
/// \pre out.size() >= count, plus the nearest_hamming layout preconditions.
inline void hamming_many(std::span<const std::uint64_t> query,
                         std::span<const std::uint64_t> arena,
                         std::size_t stride, std::size_t count,
                         std::span<std::size_t> out) noexcept {
  active_kernels().hamming_many(query.data(), query.size(), arena.data(),
                                stride, count, out.data());
}

/// dst ^= src, element-wise. \pre dst.size() == src.size().
inline void xor_into(std::span<std::uint64_t> dst,
                     std::span<const std::uint64_t> src) noexcept {
  active_kernels().xor_into(dst.data(), src.data(), dst.size());
}

/// dst = a ^ b, element-wise; the allocation-free binding of two arena rows
/// into a caller-provided scratch row.  \pre all three spans are the same
/// length; dst may alias a or b.
inline void xor_rows(std::span<std::uint64_t> dst,
                     std::span<const std::uint64_t> a,
                     std::span<const std::uint64_t> b) noexcept {
  active_kernels().xor_rows(dst.data(), a.data(), b.data(), dst.size());
}

/// Reads bit \p index. \pre index < 64 * words.size().
[[nodiscard]] inline bool get_bit(std::span<const std::uint64_t> words,
                                  std::size_t index) noexcept {
  return ((words[index / word_bits] >> (index % word_bits)) & 1U) != 0;
}

/// Writes bit \p index. \pre index < 64 * words.size().
inline void set_bit(std::span<std::uint64_t> words, std::size_t index,
                    bool value) noexcept {
  const std::uint64_t mask = std::uint64_t{1} << (index % word_bits);
  if (value) {
    words[index / word_bits] |= mask;
  } else {
    words[index / word_bits] &= ~mask;
  }
}

/// Toggles bit \p index. \pre index < 64 * words.size().
inline void flip_bit(std::span<std::uint64_t> words, std::size_t index) noexcept {
  words[index / word_bits] ^= std::uint64_t{1} << (index % word_bits);
}

/// Logical left shift of a \p bit_count-bit vector by \p shift bits
/// (bit i of out = bit i - shift of in; vacated low bits are zero).
/// Handles shift >= bit_count by producing all zeros.  Tail bits of the
/// output are masked.  \pre in.size() == out.size() == words_for(bit_count),
/// and in/out must not alias.
void shift_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                std::size_t bit_count, std::size_t shift) noexcept;

/// Logical right shift (bit i of out = bit i + shift of in).  Same contract
/// as shift_left.
void shift_right(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept;

/// Cyclic left rotation of a \p bit_count-bit vector by \p shift bits
/// (bit i of out = bit (i - shift) mod bit_count of in).  \p shift is reduced
/// modulo bit_count.  \pre same as shift_left.
void rotate_left(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 std::size_t bit_count, std::size_t shift) noexcept;

}  // namespace hdc::bits

#endif  // HDC_CORE_BITOPS_HPP
