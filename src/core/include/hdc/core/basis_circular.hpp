#ifndef HDC_CORE_BASIS_CIRCULAR_HPP
#define HDC_CORE_BASIS_CIRCULAR_HPP

/// \file basis_circular.hpp
/// \brief Circular basis-hypervectors for angular data (Section 5) —
///        the paper's main contribution.
///
/// A circular set C = {C_1, ..., C_m} maps m equidistant points on the circle
/// to hypervectors whose pairwise distance grows with the angular separation
/// and is maximal (quasi-orthogonal, delta ≈ 1/2) between antipodal points —
/// unlike level sets, which tear the circle apart at the interval endpoints.
///
/// Construction (Section 5.1, Figure 5), two phases:
///   phase 1: the first half-circle C_1..C_{m/2+1} is a level set (built with
///            Algorithm 1, optionally relaxed by the r-hyperparameter);
///   phase 2: the second half applies the phase-1 transitions
///            T_i = C_i XOR C_{i+1} in order: C_i = C_{i-1} XOR T_{i-m/2-1}.
/// Because binding is self-inverse, walking the second half undoes the
/// first-half flips one transition at a time, closing the circle.
///
/// Realized distance profile: E[delta(C_i, C_j)] = arc(i, j) / m where
/// arc(i, j) = min(|i-j|, m-|i-j|) — triangular in the angular separation
/// (see DESIGN.md section 3 for the relation to the paper's rho statement).
///
/// Odd cardinalities follow the paper's footnote: a set of size m (odd) is
/// the subset {C_1, C_3, ..., C_{2m-1}} of a generated set of size 2m.

#include <cstdint>

#include "hdc/core/basis.hpp"

namespace hdc {

/// Distance profile of a circular set, as a function of the angular
/// separation theta between two elements.
enum class CircularProfile : std::uint8_t {
  /// E[delta] = theta_arc / (2*pi) * 2 capped at 1/2 — linear in the
  /// separation (what the Section 5.1 construction with evenly spaced
  /// phase-1 thresholds realizes; also torchhd's behaviour).
  Triangular = 0,
  /// E[delta(C_ref, C_i)] = rho(theta)/2 = (1 - cos theta)/4 — the profile
  /// the paper's Section 5.1 equation states, realized here by cosine-spaced
  /// phase-1 thresholds (extension; see DESIGN.md).  Only distances to the
  /// phase anchors follow rho exactly; general pairs follow
  /// |cos(theta_i) - cos(theta_j)|/4 within a half-circle and
  /// 1/2 - |cos(theta_i) + cos(theta_j)|/4 across halves (see
  /// circular_cosine_target_distance).
  Cosine = 1,
};

/// Configuration for `make_circular_basis`.
struct CircularBasisConfig {
  std::size_t dimension = default_dimension;  ///< d, must be > 0.
  std::size_t size = 0;                       ///< m, must be >= 2 (odd OK).
  /// Section 5.2 correlation-relaxation hyperparameter in [0, 1]; applies to
  /// the phase-1 level construction only, exactly as the paper specifies.
  /// Only supported by the Triangular profile.
  double r = 0.0;
  /// Distance profile (see CircularProfile).
  CircularProfile profile = CircularProfile::Triangular;
  std::uint64_t seed = 1;
};

/// Creates a circular-hypervector set.
/// \throws std::invalid_argument on invalid configuration.
[[nodiscard]] Basis make_circular_basis(const CircularBasisConfig& config);

/// The triangular target expected distance between circular elements i and j
/// (0-based) in a set of size m: arc(i, j) / m, capped at 1/2 at the
/// antipode.  Exposed for tests and the Figure 6 bench.
/// \throws std::invalid_argument if indices are out of range or m < 2.
[[nodiscard]] double circular_target_distance(std::size_t i, std::size_t j,
                                              std::size_t m);

/// The cosine-profile target expected distance between elements i and j
/// (0-based) of a CircularProfile::Cosine set of size m: with c_x denoting
/// cos(2*pi*x/m), the law is |c_i - c_j|/4 when both elements lie in the
/// same half-circle and 1/2 - |c_i + c_j|/4 across halves; both branches
/// reduce to rho/2 when either index is a phase anchor (0 or m/2).
/// \throws std::invalid_argument if indices are out of range or m < 2.
[[nodiscard]] double circular_cosine_target_distance(std::size_t i,
                                                     std::size_t j,
                                                     std::size_t m);

}  // namespace hdc

#endif  // HDC_CORE_BASIS_CIRCULAR_HPP
