#ifndef HDC_CORE_ACCUMULATOR_HPP
#define HDC_CORE_ACCUMULATOR_HPP

/// \file accumulator.hpp
/// \brief Streaming integer accumulator for majority bundling.
///
/// Training an HDC model bundles thousands of hypervectors; materializing
/// them to take an n-ary majority would be wasteful.  `BundleAccumulator`
/// keeps one signed counter per dimension (+1 for a set bit, -1 for a clear
/// bit) and thresholds at zero on `finalize()`, which is exactly the
/// element-wise majority of everything added.  It also supports weighted and
/// negative updates (used by the adaptive-classifier extension) and signed
/// projections (used by the non-quantized regression variant).

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/base/rng.hpp"
#include "hdc/core/hypervector.hpp"

namespace hdc {

/// Signed per-dimension bundle counters.
class BundleAccumulator {
 public:
  /// Zero-initialized accumulator for \p dimension-bit hypervectors.
  /// \throws std::invalid_argument if dimension == 0.
  explicit BundleAccumulator(std::size_t dimension);

  [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

  /// Number of (unweighted) add() calls so far.  Weighted updates count by
  /// their |weight|.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Adds one hypervector: counter += bit ? +1 : -1 per dimension.
  /// Accepts owning hypervectors and zero-copy views alike.
  /// \throws std::invalid_argument on dimension mismatch.
  void add(HypervectorView hv);

  /// add() on a raw word view (bits::words_for(dimension()) words, tail bits
  /// zero): the allocation-free entry point the batch runtime uses to
  /// accumulate straight from arena rows.
  /// \throws std::invalid_argument on word-count mismatch.
  void add_words(std::span<const std::uint64_t> words);

  /// Subtracts one hypervector (inverse of add); counters may go negative.
  /// \throws std::invalid_argument on dimension mismatch.
  void subtract(HypervectorView hv);

  /// Adds with an integer weight (negative weights subtract).
  /// \throws std::invalid_argument on dimension mismatch or weight == 0.
  void add_weighted(HypervectorView hv, std::int32_t weight);

  /// Merges another accumulator: counters and counts add element-wise.
  /// Because integer addition commutes, splitting a sample stream across
  /// several accumulators and merging them yields exactly the sequential
  /// result — the primitive behind the batch runtime's per-thread
  /// accumulators.  \throws std::invalid_argument on dimension mismatch.
  void merge(const BundleAccumulator& other);

  /// Read-only view of the signed counters.
  [[nodiscard]] std::span<const std::int32_t> counters() const noexcept {
    return counters_;
  }

  /// Majority threshold: bit = counter > 0; exact zero ties take the
  /// corresponding bit of a hypervector freshly drawn from \p tie_rng.
  [[nodiscard]] Hypervector finalize(Rng& tie_rng) const;

  /// Majority threshold with a caller-supplied tie-break hypervector, for
  /// deterministic pipelines that reuse one tie vector.
  /// \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] Hypervector finalize(HypervectorView tie_breaker) const;

  /// Signed projection <counters, ±1(hv)>: sum over dimensions of
  /// counter * (bit ? +1 : -1).  This is (up to scale) the dot-product
  /// similarity between the un-quantized bundle and \p hv; larger means more
  /// similar.  \throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::int64_t signed_projection(HypervectorView hv) const;

  /// Resets all counters to zero.
  void clear() noexcept;

 private:
  std::size_t dimension_;
  std::size_t count_ = 0;
  std::vector<std::int32_t> counters_;
};

}  // namespace hdc

#endif  // HDC_CORE_ACCUMULATOR_HPP
