#ifndef HDC_CORE_SCATTER_CODE_HPP
#define HDC_CORE_SCATTER_CODE_HPP

/// \file scatter_code.hpp
/// \brief Scatter codes: random-walk level sets (Section 4.2, Smith &
///        Stanford 1990).
///
/// The paper's Section 4.2 analyses an "intuitive idea" before presenting
/// Algorithm 1: obtain L_{i+1} from L_i by flipping bits *with replacement*
/// (a random walk in Hamming space), choosing the number of steps so the
/// expected distance matches a target.  The expected steps-to-target is the
/// absorption time of the Figure 4 Markov chain (see
/// hdc/stats/markov_absorption.hpp).  The resulting sets — scatter codes —
/// map the input space *nonlinearly* to hyperspace similarity: the distance
/// to L_1 saturates exponentially instead of growing linearly.
///
/// This module ships a working generator for completeness and for the
/// Figure 4 bench; the learning experiments use the linear Algorithm 1 sets.

#include <cstdint>

#include "hdc/core/basis.hpp"

namespace hdc {

/// Configuration for `make_scatter_basis`.
struct ScatterBasisConfig {
  std::size_t dimension = default_dimension;  ///< d, must be > 0.
  std::size_t size = 0;                       ///< m, must be >= 2.
  std::uint64_t seed = 1;
  /// Walk steps between consecutive levels.  0 (default) means "calibrate":
  /// use the closed-form flip count whose expected distance equals the
  /// neighbouring-level target Delta_{i,i+1} = 1/(2(m-1)).
  std::size_t steps_per_level = 0;
};

/// Creates a scatter-code set by walking `steps_per_level` random single-bit
/// flips (with replacement) from each level to the next.
/// \throws std::invalid_argument on invalid configuration.
[[nodiscard]] Basis make_scatter_basis(const ScatterBasisConfig& config);

/// Expected normalized distance between scatter levels i and j (0-based)
/// given the per-level step count actually used; saturates at 1/2.
/// E[delta] = (1 - (1 - 2/d)^{steps * |i-j|}) / 2.
[[nodiscard]] double scatter_expected_distance(std::size_t dimension,
                                               std::size_t steps_per_level,
                                               std::size_t i, std::size_t j);

/// The calibrated per-level step count used when
/// `ScatterBasisConfig::steps_per_level == 0`.
[[nodiscard]] std::size_t scatter_calibrated_steps(std::size_t dimension,
                                                   std::size_t size);

}  // namespace hdc

#endif  // HDC_CORE_SCATTER_CODE_HPP
