#ifndef HDC_CORE_SERIALIZATION_HPP
#define HDC_CORE_SERIALIZATION_HPP

/// \file serialization.hpp
/// \brief Versioned binary (de)serialization of hypervectors and bases.
///
/// Format: little-endian, a 4-byte magic ("HDC\x01"), a record tag, then the
/// record payload.  Streams that fail the magic, tag, or structural checks
/// raise `SerializationError`; all reads are bounds-checked so corrupted or
/// truncated inputs cannot produce invalid objects.

#include <iosfwd>
#include <stdexcept>

#include "hdc/core/basis.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/hypervector.hpp"

namespace hdc {

/// Raised on malformed input streams and I/O failures.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes one hypervector record (owning vectors and zero-copy views are
/// both accepted). \throws SerializationError on I/O failure or if the
/// hypervector is empty.
void write_hypervector(std::ostream& out, HypervectorView hv);

/// Reads one hypervector record. \throws SerializationError on malformed
/// input.
[[nodiscard]] Hypervector read_hypervector(std::istream& in);

/// Writes one basis record (provenance info + all vectors).
/// \throws SerializationError on I/O failure.
void write_basis(std::ostream& out, const Basis& basis);

/// Reads one basis record, deserializing the vector payload directly into
/// the basis's packed arena (no per-vector intermediates).
/// \throws SerializationError on malformed input.
[[nodiscard]] Basis read_basis(std::istream& in);

/// Writes a finalized classifier as its class-vectors (the inference model
/// of Section 2.2: M = {M_1, ..., M_k}).
/// \throws SerializationError if the model is not finalized or on I/O
/// failure.
void write_classifier(std::ostream& out, const CentroidClassifier& model);

/// Reads a classifier record; the result is inference-only (training state
/// is not serialized, and updates on it throw std::logic_error).
/// \throws SerializationError on malformed input.
[[nodiscard]] CentroidClassifier read_classifier(std::istream& in);

}  // namespace hdc

#endif  // HDC_CORE_SERIALIZATION_HPP
