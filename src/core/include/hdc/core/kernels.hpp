#ifndef HDC_CORE_KERNELS_HPP
#define HDC_CORE_KERNELS_HPP

/// \file kernels.hpp
/// \brief Runtime-dispatched SIMD kernel variants for the bit primitives.
///
/// Every hot path in the library — `Basis::nearest`,
/// `CentroidClassifier::predict`, the `hdc::runtime` batch engines and the
/// whole `hdc::serve` stack — bottoms out in a handful of fused XOR+popcount
/// word kernels.  This header turns that kernel surface into a *selectable*
/// API: a `Kernels` table of function pointers with one entry per primitive,
/// per-ISA implementations (scalar / AVX2 / AVX-512 VPOPCNTDQ / NEON)
/// compiled into their own translation units with per-file ISA flags, and a
/// process-wide active table chosen once at first use by a CPU-feature
/// detector.
///
/// Selection order (first hit wins):
///
///  1. The `HDC_KERNELS` environment variable, read once at first use.  An
///     unknown or unsupported name is diagnosed on stderr and ignored — a
///     typo must never change results, only speed.
///  2. The best compiled-in variant the running CPU supports, probing in
///     the fixed preference order avx512 > avx2 > neon > scalar.
///
/// `select_kernels()` re-points the table at any time (tests force every
/// variant through it; `hdcgen --kernel` pins one for reproducible latency).
/// The scalar variant is always compiled in, always supported, and is the
/// bit-exactness reference every other variant is property-tested against.
///
/// The public `hdc::bits::hamming(...)`-style span functions in bitops.hpp
/// are thin shims over the active table, so call sites never name a
/// variant.  This dispatch seam is also where a future GPU/accelerator
/// backend plugs in (see docs/kernels.md).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hdc::bits {

/// Result of a fused nearest-candidate scan: the first index attaining the
/// minimum Hamming distance (ties keep the lowest index, matching a strict
/// less-than linear scan).
struct NearestMatch {
  std::size_t index = 0;
  std::size_t distance = 0;
};

/// One kernel variant: a name, a runtime CPU-support predicate, and the
/// primitive table.  All pointers are non-null in a registered variant; the
/// word-count convention matches the span shims in bitops.hpp (spans are
/// unpacked to pointer + length so the table stays a plain POD ABI — the
/// shape a non-C++ accelerator runtime could also provide).
struct Kernels {
  /// Stable lowercase identifier: "scalar", "avx2", "avx512", "neon".
  const char* name;

  /// True when the running CPU can execute this variant.  Defined in the
  /// baseline-ISA dispatcher TU, never in the variant's own TU, so probing
  /// support can never itself fault on an old CPU.
  bool (*supported)() noexcept;

  /// Bit count of a XOR b over words[0..words).
  std::size_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) noexcept;

  /// Fused nearest-neighbour scan: candidate i occupies
  /// arena[i * stride .. i * stride + words).  \pre count >= 1.
  NearestMatch (*nearest_hamming)(const std::uint64_t* query,
                                  std::size_t words,
                                  const std::uint64_t* arena,
                                  std::size_t stride,
                                  std::size_t count) noexcept;

  /// Hamming distance from query to each of count candidates, written to
  /// out[0..count).
  void (*hamming_many)(const std::uint64_t* query, std::size_t words,
                       const std::uint64_t* arena, std::size_t stride,
                       std::size_t count, std::size_t* out) noexcept;

  /// Population count over words[0..n).
  std::size_t (*count_ones)(const std::uint64_t* words, std::size_t n) noexcept;

  /// dst[i] ^= src[i] for i in [0, n).
  void (*xor_into)(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t n) noexcept;

  /// dst[i] = a[i] ^ b[i] for i in [0, n); dst may alias a or b.
  void (*xor_rows)(std::uint64_t* dst, const std::uint64_t* a,
                   const std::uint64_t* b, std::size_t n) noexcept;
};

/// The process-wide active variant.  First call resolves the selection
/// (HDC_KERNELS override, then best supported); later calls are one atomic
/// load.  Thread-safe.
[[nodiscard]] const Kernels& active_kernels() noexcept;

/// The always-present scalar reference variant (4-way unrolled portable
/// XOR+popcount) — the bit-exactness oracle for tests and the microbench
/// self-check, available without going through selection.
[[nodiscard]] const Kernels& scalar_kernels() noexcept;

/// Every variant compiled into this binary, in preference order, including
/// ones the running CPU cannot execute (query `supported()` per entry —
/// `hdcgen kernels` prints exactly this split).
[[nodiscard]] std::vector<const Kernels*> compiled_kernels();

/// The compiled-in variants the running CPU supports, in preference order.
/// Never empty: scalar is always last.
[[nodiscard]] std::vector<const Kernels*> available_kernels();

/// Makes the named variant active for the whole process and returns it.
/// \throws std::invalid_argument if \p name is not a compiled-in variant or
/// the running CPU does not support it (the error message lists the
/// available names).
const Kernels& select_kernels(std::string_view name);

/// CPU feature bits the dispatcher probes, for diagnostics (`hdcgen
/// kernels`).  All false on architectures without a probe (then only
/// compile-time-implied variants run, e.g. NEON on aarch64).
struct CpuFeatures {
  bool popcnt = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vpopcntdq = false;
  bool neon = false;
};

[[nodiscard]] CpuFeatures cpu_features() noexcept;

}  // namespace hdc::bits

#endif  // HDC_CORE_KERNELS_HPP
