#include "hdc/core/scatter_code.hpp"

#include <cmath>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/markov_absorption.hpp"

namespace hdc {

std::size_t scatter_calibrated_steps(std::size_t dimension, std::size_t size) {
  require_positive(dimension, "scatter_calibrated_steps", "dimension");
  require(size >= 2, "scatter_calibrated_steps", "size must be >= 2");
  if (dimension <= 2) {
    // The closed form's decay factor q = 1 - 2/d is <= 0 here, so the
    // logarithm is undefined; one flip per level is the only sane walk.
    return 1;
  }
  const double target = 1.0 / (2.0 * static_cast<double>(size - 1));
  const double flips =
      stats::flips_for_expected_distance(dimension, target);
  if (!(flips >= 1.0)) {  // also catches NaN defensively
    return 1;
  }
  return static_cast<std::size_t>(std::llround(flips));
}

double scatter_expected_distance(std::size_t dimension,
                                 std::size_t steps_per_level, std::size_t i,
                                 std::size_t j) {
  const std::size_t span = i > j ? i - j : j - i;
  return stats::expected_distance_after_flips(
      dimension,
      static_cast<double>(steps_per_level) * static_cast<double>(span));
}

Basis make_scatter_basis(const ScatterBasisConfig& config) {
  require_positive(config.dimension, "make_scatter_basis", "dimension");
  require(config.size >= 2, "make_scatter_basis", "size must be >= 2");

  const std::size_t steps =
      config.steps_per_level != 0
          ? config.steps_per_level
          : scatter_calibrated_steps(config.dimension, config.size);

  Rng rng(config.seed);
  std::vector<Hypervector> vectors;
  vectors.reserve(config.size);
  vectors.push_back(Hypervector::random(config.dimension, rng));
  for (std::size_t l = 1; l < config.size; ++l) {
    vectors.push_back(random_walk_flips(vectors.back(), steps, rng));
  }

  BasisInfo info;
  info.kind = BasisKind::Scatter;
  info.dimension = config.dimension;
  info.size = config.size;
  info.seed = config.seed;
  return Basis(info, std::move(vectors));
}

}  // namespace hdc
