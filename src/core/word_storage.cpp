#include "hdc/core/word_storage.hpp"

#include <stdexcept>

namespace hdc {

std::span<std::uint64_t> WordStorage::mutable_words() {
  if (!owning_) {
    throw std::logic_error(
        "WordStorage::mutable_words: borrowed storage is read-only");
  }
  return owned_;
}

std::vector<std::uint64_t>& WordStorage::owned() {
  if (!owning_) {
    throw std::logic_error(
        "WordStorage::owned: borrowed storage is read-only");
  }
  return owned_;
}

}  // namespace hdc
