#include "hdc/core/classifier.hpp"

#include <stdexcept>

#include "hdc/base/require.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

CentroidClassifier::CentroidClassifier(std::size_t num_classes,
                                       std::size_t dimension,
                                       std::uint64_t seed)
    : dimension_(dimension) {
  require_positive(num_classes, "CentroidClassifier", "num_classes");
  require_positive(dimension, "CentroidClassifier", "dimension");
  accumulators_.reserve(num_classes);
  for (std::size_t i = 0; i < num_classes; ++i) {
    accumulators_.emplace_back(dimension);
  }
  class_vectors_.assign(num_classes, Hypervector(dimension));
  Rng rng(derive_seed(seed, 0xC1A55ULL));
  tie_breaker_ = Hypervector::random(dimension, rng);
}

CentroidClassifier CentroidClassifier::from_class_vectors(
    std::vector<Hypervector> vectors) {
  require(!vectors.empty(), "CentroidClassifier::from_class_vectors",
          "need at least one class-vector");
  const std::size_t dimension = vectors.front().dimension();
  require(dimension > 0, "CentroidClassifier::from_class_vectors",
          "class-vectors must be non-empty");
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == dimension,
            "CentroidClassifier::from_class_vectors",
            "class-vectors must share one dimension");
  }
  CentroidClassifier model(vectors.size(), dimension, 0);
  model.class_vectors_ = std::move(vectors);
  model.finalized_ = true;
  model.inference_only_ = true;
  return model;
}

void CentroidClassifier::add_sample(std::size_t label,
                                    const Hypervector& encoded) {
  if (inference_only_) {
    throw std::logic_error(
        "CentroidClassifier::add_sample: model restored from class-vectors is "
        "inference-only");
  }
  require(label < accumulators_.size(), "CentroidClassifier::add_sample",
          "label out of range");
  accumulators_[label].add(encoded);
  finalized_ = false;
}

void CentroidClassifier::finalize() {
  for (std::size_t i = 0; i < accumulators_.size(); ++i) {
    class_vectors_[i] = accumulators_[i].finalize(tie_breaker_);
  }
  finalized_ = true;
}

void CentroidClassifier::require_finalized(const char* where) const {
  if (!finalized_) {
    throw std::logic_error(std::string(where) +
                           ": call finalize() before inference");
  }
}

std::size_t CentroidClassifier::predict(const Hypervector& query) const {
  require_finalized("CentroidClassifier::predict");
  require(query.dimension() == dimension_, "CentroidClassifier::predict",
          "query dimension mismatch");
  std::size_t best = 0;
  std::size_t best_distance = hamming_distance(query, class_vectors_[0]);
  for (std::size_t i = 1; i < class_vectors_.size(); ++i) {
    const std::size_t dist = hamming_distance(query, class_vectors_[i]);
    if (dist < best_distance) {
      best_distance = dist;
      best = i;
    }
  }
  return best;
}

double CentroidClassifier::class_similarity(std::size_t label,
                                            const Hypervector& query) const {
  require_finalized("CentroidClassifier::class_similarity");
  require(label < class_vectors_.size(), "CentroidClassifier::class_similarity",
          "label out of range");
  return similarity(query, class_vectors_[label]);
}

std::vector<double> CentroidClassifier::similarities(
    const Hypervector& query) const {
  require_finalized("CentroidClassifier::similarities");
  require(query.dimension() == dimension_, "CentroidClassifier::similarities",
          "query dimension mismatch");
  std::vector<double> out;
  out.reserve(class_vectors_.size());
  for (const Hypervector& cv : class_vectors_) {
    out.push_back(similarity(query, cv));
  }
  return out;
}

std::size_t CentroidClassifier::adapt(std::size_t label,
                                      const Hypervector& encoded) {
  if (inference_only_) {
    throw std::logic_error(
        "CentroidClassifier::adapt: model restored from class-vectors is "
        "inference-only");
  }
  require(label < accumulators_.size(), "CentroidClassifier::adapt",
          "label out of range");
  require_finalized("CentroidClassifier::adapt");
  const std::size_t predicted = predict(encoded);
  if (predicted != label) {
    accumulators_[label].add(encoded);
    accumulators_[predicted].subtract(encoded);
    class_vectors_[label] = accumulators_[label].finalize(tie_breaker_);
    class_vectors_[predicted] = accumulators_[predicted].finalize(tie_breaker_);
  }
  return predicted;
}

const Hypervector& CentroidClassifier::class_vector(std::size_t label) const {
  require_finalized("CentroidClassifier::class_vector");
  require(label < class_vectors_.size(), "CentroidClassifier::class_vector",
          "label out of range");
  return class_vectors_[label];
}

std::size_t CentroidClassifier::class_count(std::size_t label) const {
  require(label < accumulators_.size(), "CentroidClassifier::class_count",
          "label out of range");
  return accumulators_[label].count();
}

}  // namespace hdc
