#include "hdc/core/classifier.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

CentroidClassifier::CentroidClassifier(std::size_t num_classes,
                                       std::size_t dimension,
                                       std::uint64_t seed)
    : dimension_(dimension), num_classes_(num_classes) {
  require_positive(num_classes, "CentroidClassifier", "num_classes");
  require_positive(dimension, "CentroidClassifier", "dimension");
  accumulators_.reserve(num_classes);
  for (std::size_t i = 0; i < num_classes; ++i) {
    accumulators_.emplace_back(dimension);
  }
  words_per_class_ = bits::words_for(dimension);
  class_arena_ =
      std::vector<std::uint64_t>(num_classes * words_per_class_, 0ULL);
  Rng rng(derive_seed(seed, 0xC1A55ULL));
  tie_breaker_ = Hypervector::random(dimension, rng);
}

CentroidClassifier CentroidClassifier::from_class_vectors(
    std::vector<Hypervector> vectors) {
  require(!vectors.empty(), "CentroidClassifier::from_class_vectors",
          "need at least one class-vector");
  const std::size_t dimension = vectors.front().dimension();
  require(dimension > 0, "CentroidClassifier::from_class_vectors",
          "class-vectors must be non-empty");
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == dimension,
            "CentroidClassifier::from_class_vectors",
            "class-vectors must share one dimension");
  }
  return from_packed_class_words(vectors.size(), dimension,
                                 WordStorage(pack_words(vectors)), unchecked);
}

CentroidClassifier CentroidClassifier::from_packed_class_words(
    std::size_t num_classes, std::size_t dimension, WordStorage arena) {
  require(num_classes > 0, "CentroidClassifier::from_packed_class_words",
          "num_classes must be positive");
  require_positive(dimension, "CentroidClassifier::from_packed_class_words",
                   "dimension");
  const std::size_t words_per_class = bits::words_for(dimension);
  const auto words = arena.words();
  // Division form so a crafted num_classes cannot overflow the multiply and
  // slip an undersized arena past validation.
  require(words.size() % words_per_class == 0 &&
              words.size() / words_per_class == num_classes,
          "CentroidClassifier::from_packed_class_words",
          "arena word count must be num_classes * words_for(dimension)");
  const std::uint64_t tail = bits::tail_mask(dimension);
  for (std::size_t c = 0; c < num_classes; ++c) {
    require((words[(c + 1) * words_per_class - 1] & ~tail) == 0,
            "CentroidClassifier::from_packed_class_words",
            "arena row has set bits beyond the dimension");
  }
  return from_packed_class_words(num_classes, dimension, std::move(arena),
                                 unchecked);
}

CentroidClassifier CentroidClassifier::from_packed_class_words(
    std::size_t num_classes, std::size_t dimension, WordStorage arena,
    unchecked_t) {
  CentroidClassifier model;
  model.dimension_ = dimension;
  model.num_classes_ = num_classes;
  model.words_per_class_ = bits::words_for(dimension);
  model.class_arena_ = std::move(arena);
  model.class_arena_.shrink_to_fit();
  model.finalized_ = true;
  model.inference_only_ = true;
  return model;
}

CentroidClassifier CentroidClassifier::detach() const {
  require_finalized("CentroidClassifier::detach");
  return from_packed_class_words(num_classes_, dimension_,
                                 class_arena_.to_owned(), unchecked);
}

void CentroidClassifier::require_trainable(const char* where) const {
  if (inference_only_) {
    throw std::logic_error(
        std::string(where) +
        ": model restored from class-vectors is inference-only "
        "(trainable() == false)");
  }
}

void CentroidClassifier::add_sample(std::size_t label, HypervectorView encoded) {
  require_trainable("CentroidClassifier::add_sample");
  require(label < num_classes_, "CentroidClassifier::add_sample",
          "label out of range");
  accumulators_[label].add(encoded);
  finalized_ = false;
}

void CentroidClassifier::absorb(std::size_t label,
                                const BundleAccumulator& partial) {
  require_trainable("CentroidClassifier::absorb");
  require(label < num_classes_, "CentroidClassifier::absorb",
          "label out of range");
  accumulators_[label].merge(partial);
  finalized_ = false;
}

void CentroidClassifier::store_class(std::size_t label, HypervectorView vector) {
  pack_row(vector, class_arena_.mutable_words(), words_per_class_, label);
}

void CentroidClassifier::finalize() {
  require_trainable("CentroidClassifier::finalize");
  for (std::size_t i = 0; i < accumulators_.size(); ++i) {
    store_class(i, accumulators_[i].finalize(tie_breaker_));
  }
  finalized_ = true;
}

void CentroidClassifier::require_finalized(const char* where) const {
  if (!finalized_) {
    throw std::logic_error(std::string(where) +
                           ": call finalize() before inference");
  }
}

std::size_t CentroidClassifier::predict(HypervectorView query) const {
  require_finalized("CentroidClassifier::predict");
  require(query.dimension() == dimension_, "CentroidClassifier::predict",
          "query dimension mismatch");
  return predict_words(query.words());
}

std::size_t CentroidClassifier::predict_words(
    std::span<const std::uint64_t> query_words) const {
  // The finalized gate must hold here too, not just in predict(): this is the
  // batch runtime's entry point, and skipping the check let a model
  // invalidated by add_sample()/absorb() silently serve the stale arena.
  require_finalized("CentroidClassifier::predict_words");
  require(query_words.size() == words_per_class_,
          "CentroidClassifier::predict_words",
          "query word count must equal words_per_class()");
  return bits::nearest_hamming(query_words, class_arena_.words(),
                               words_per_class_, num_classes_)
      .index;
}

Top2 CentroidClassifier::predict_top2(HypervectorView query) const {
  require_finalized("CentroidClassifier::predict_top2");
  require(query.dimension() == dimension_, "CentroidClassifier::predict_top2",
          "query dimension mismatch");
  return predict_top2_words(query.words());
}

Top2 CentroidClassifier::predict_top2_words(
    std::span<const std::uint64_t> query_words) const {
  require_finalized("CentroidClassifier::predict_top2_words");
  require(query_words.size() == words_per_class_,
          "CentroidClassifier::predict_top2_words",
          "query word count must equal words_per_class()");
  return top2_hamming(query_words, class_arena_.words(), words_per_class_,
                      num_classes_);
}

double CentroidClassifier::class_similarity(std::size_t label,
                                            HypervectorView query) const {
  require_finalized("CentroidClassifier::class_similarity");
  require(label < num_classes_,
          "CentroidClassifier::class_similarity", "label out of range");
  return similarity(query, class_vector(label));
}

std::vector<double> CentroidClassifier::similarities(
    HypervectorView query) const {
  require_finalized("CentroidClassifier::similarities");
  require(query.dimension() == dimension_, "CentroidClassifier::similarities",
          "query dimension mismatch");
  std::vector<std::size_t> distances(num_classes_);
  bits::hamming_many(query.words(), class_arena_.words(), words_per_class_,
                     num_classes_, distances);
  std::vector<double> out;
  out.reserve(distances.size());
  for (const std::size_t dist : distances) {
    out.push_back(1.0 -
                  static_cast<double>(dist) / static_cast<double>(dimension_));
  }
  return out;
}

std::size_t CentroidClassifier::adapt(std::size_t label,
                                      HypervectorView encoded) {
  require_trainable("CentroidClassifier::adapt");
  require(label < num_classes_, "CentroidClassifier::adapt",
          "label out of range");
  require_finalized("CentroidClassifier::adapt");
  const std::size_t predicted = predict(encoded);
  if (predicted != label) {
    accumulators_[label].add(encoded);
    accumulators_[predicted].subtract(encoded);
    store_class(label, accumulators_[label].finalize(tie_breaker_));
    store_class(predicted, accumulators_[predicted].finalize(tie_breaker_));
  }
  return predicted;
}

HypervectorView CentroidClassifier::class_vector(std::size_t label) const {
  require_finalized("CentroidClassifier::class_vector");
  require(label < num_classes_, "CentroidClassifier::class_vector",
          "label out of range");
  return row_view(class_arena_.words(), dimension_, words_per_class_, label);
}

std::size_t CentroidClassifier::class_count(std::size_t label) const {
  require(label < num_classes_, "CentroidClassifier::class_count",
          "label out of range");
  return inference_only_ ? 0 : accumulators_[label].count();
}

}  // namespace hdc
