#include "hdc/core/classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"
#include "hdc/core/ops.hpp"

namespace hdc {

CentroidClassifier::CentroidClassifier(std::size_t num_classes,
                                       std::size_t dimension,
                                       std::uint64_t seed)
    : dimension_(dimension) {
  require_positive(num_classes, "CentroidClassifier", "num_classes");
  require_positive(dimension, "CentroidClassifier", "dimension");
  accumulators_.reserve(num_classes);
  for (std::size_t i = 0; i < num_classes; ++i) {
    accumulators_.emplace_back(dimension);
  }
  words_per_class_ = bits::words_for(dimension);
  class_arena_.assign(num_classes * words_per_class_, 0ULL);
  Rng rng(derive_seed(seed, 0xC1A55ULL));
  tie_breaker_ = Hypervector::random(dimension, rng);
}

CentroidClassifier CentroidClassifier::from_class_vectors(
    std::vector<Hypervector> vectors) {
  require(!vectors.empty(), "CentroidClassifier::from_class_vectors",
          "need at least one class-vector");
  const std::size_t dimension = vectors.front().dimension();
  require(dimension > 0, "CentroidClassifier::from_class_vectors",
          "class-vectors must be non-empty");
  for (const Hypervector& hv : vectors) {
    require(hv.dimension() == dimension,
            "CentroidClassifier::from_class_vectors",
            "class-vectors must share one dimension");
  }
  CentroidClassifier model(vectors.size(), dimension, 0);
  model.class_arena_ = pack_words(vectors);
  model.finalized_ = true;
  model.inference_only_ = true;
  return model;
}

void CentroidClassifier::add_sample(std::size_t label, HypervectorView encoded) {
  if (inference_only_) {
    throw std::logic_error(
        "CentroidClassifier::add_sample: model restored from class-vectors is "
        "inference-only");
  }
  require(label < accumulators_.size(), "CentroidClassifier::add_sample",
          "label out of range");
  accumulators_[label].add(encoded);
  finalized_ = false;
}

void CentroidClassifier::absorb(std::size_t label,
                                const BundleAccumulator& partial) {
  if (inference_only_) {
    throw std::logic_error(
        "CentroidClassifier::absorb: model restored from class-vectors is "
        "inference-only");
  }
  require(label < accumulators_.size(), "CentroidClassifier::absorb",
          "label out of range");
  accumulators_[label].merge(partial);
  finalized_ = false;
}

void CentroidClassifier::store_class(std::size_t label, HypervectorView vector) {
  pack_row(vector, class_arena_, words_per_class_, label);
}

void CentroidClassifier::finalize() {
  for (std::size_t i = 0; i < accumulators_.size(); ++i) {
    store_class(i, accumulators_[i].finalize(tie_breaker_));
  }
  finalized_ = true;
}

void CentroidClassifier::require_finalized(const char* where) const {
  if (!finalized_) {
    throw std::logic_error(std::string(where) +
                           ": call finalize() before inference");
  }
}

std::size_t CentroidClassifier::predict(HypervectorView query) const {
  require_finalized("CentroidClassifier::predict");
  require(query.dimension() == dimension_, "CentroidClassifier::predict",
          "query dimension mismatch");
  return predict_words(query.words());
}

std::size_t CentroidClassifier::predict_words(
    std::span<const std::uint64_t> query_words) const {
  require(query_words.size() == words_per_class_,
          "CentroidClassifier::predict_words",
          "query word count must equal words_per_class()");
  return bits::nearest_hamming(query_words, class_arena_, words_per_class_,
                               accumulators_.size())
      .index;
}

double CentroidClassifier::class_similarity(std::size_t label,
                                            HypervectorView query) const {
  require_finalized("CentroidClassifier::class_similarity");
  require(label < accumulators_.size(),
          "CentroidClassifier::class_similarity", "label out of range");
  return similarity(query, class_vector(label));
}

std::vector<double> CentroidClassifier::similarities(
    HypervectorView query) const {
  require_finalized("CentroidClassifier::similarities");
  require(query.dimension() == dimension_, "CentroidClassifier::similarities",
          "query dimension mismatch");
  std::vector<std::size_t> distances(accumulators_.size());
  bits::hamming_many(query.words(), class_arena_, words_per_class_,
                     accumulators_.size(), distances);
  std::vector<double> out;
  out.reserve(distances.size());
  for (const std::size_t dist : distances) {
    out.push_back(1.0 -
                  static_cast<double>(dist) / static_cast<double>(dimension_));
  }
  return out;
}

std::size_t CentroidClassifier::adapt(std::size_t label,
                                      HypervectorView encoded) {
  if (inference_only_) {
    throw std::logic_error(
        "CentroidClassifier::adapt: model restored from class-vectors is "
        "inference-only");
  }
  require(label < accumulators_.size(), "CentroidClassifier::adapt",
          "label out of range");
  require_finalized("CentroidClassifier::adapt");
  const std::size_t predicted = predict(encoded);
  if (predicted != label) {
    accumulators_[label].add(encoded);
    accumulators_[predicted].subtract(encoded);
    store_class(label, accumulators_[label].finalize(tie_breaker_));
    store_class(predicted, accumulators_[predicted].finalize(tie_breaker_));
  }
  return predicted;
}

HypervectorView CentroidClassifier::class_vector(std::size_t label) const {
  require_finalized("CentroidClassifier::class_vector");
  require(label < accumulators_.size(), "CentroidClassifier::class_vector",
          "label out of range");
  return row_view(class_arena_, dimension_, words_per_class_, label);
}

std::size_t CentroidClassifier::class_count(std::size_t label) const {
  require(label < accumulators_.size(), "CentroidClassifier::class_count",
          "label out of range");
  return accumulators_[label].count();
}

}  // namespace hdc
