#include "hdc/core/composed_encoder.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace hdc {

ComposedEncoder::ComposedEncoder(std::vector<ScalarEncoderPtr> parts)
    : parts_(std::move(parts)) {
  if (parts_.size() < 2) {
    throw std::invalid_argument(
        "ComposedEncoder: needs at least two sub-encoders (use the scalar "
        "encoder directly for one)");
  }
  for (const ScalarEncoderPtr& part : parts_) {
    if (!part) {
      throw std::invalid_argument("ComposedEncoder: null sub-encoder");
    }
  }
  const std::size_t dimension = parts_.front()->dimension();
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    if (parts_[i]->dimension() != dimension) {
      throw std::invalid_argument(
          "ComposedEncoder: sub-encoder " + std::to_string(i) +
          " dimension " + std::to_string(parts_[i]->dimension()) +
          " disagrees with " + std::to_string(dimension));
    }
  }
}

Hypervector ComposedEncoder::encode(std::span<const double> features) const {
  if (features.size() != parts_.size()) {
    throw std::invalid_argument(
        "ComposedEncoder::encode: expected " + std::to_string(parts_.size()) +
        " features, got " + std::to_string(features.size()));
  }
  Hypervector bound =
      parts_[0]->encode(features[0]) ^ parts_[1]->encode(features[1]);
  for (std::size_t i = 2; i < parts_.size(); ++i) {
    bound ^= parts_[i]->encode(features[i]);
  }
  return bound;
}

const ScalarEncoder& ComposedEncoder::part(std::size_t i) const {
  if (i >= parts_.size()) {
    throw std::out_of_range("ComposedEncoder::part: index out of range");
  }
  return *parts_[i];
}

}  // namespace hdc
