#include "hdc/core/confidence.hpp"

#include <vector>

#include "hdc/base/require.hpp"
#include "hdc/core/bitops.hpp"

namespace hdc {

void top2_offer(Top2& top, Candidate candidate) noexcept {
  if (candidate.absent()) {
    return;
  }
  if (top.best.absent() || candidate_less(candidate, top.best)) {
    top.second = top.best;
    top.best = candidate;
  } else if (top.second.absent() || candidate_less(candidate, top.second)) {
    top.second = candidate;
  }
}

Top2 merge_top2(const Top2& a, const Top2& b) noexcept {
  Top2 merged = a;
  top2_offer(merged, b.best);
  top2_offer(merged, b.second);
  return merged;
}

Top2 top2_hamming(std::span<const std::uint64_t> query,
                  std::span<const std::uint64_t> arena, std::size_t stride,
                  std::size_t count, std::uint64_t index_offset,
                  std::span<std::size_t> scratch) {
  require(scratch.size() >= count, "top2_hamming",
          "scratch must hold one distance per candidate");
  bits::hamming_many(query, arena, stride, count, scratch);
  Top2 top{};
  for (std::size_t i = 0; i < count; ++i) {
    top2_offer(top, Candidate{static_cast<std::uint64_t>(scratch[i]),
                              index_offset + i});
  }
  return top;
}

Top2 top2_hamming(std::span<const std::uint64_t> query,
                  std::span<const std::uint64_t> arena, std::size_t stride,
                  std::size_t count, std::uint64_t index_offset) {
  std::vector<std::size_t> scratch(count);
  return top2_hamming(query, arena, stride, count, index_offset, scratch);
}

double margin_confidence(const Top2& top) noexcept {
  if (top.best.absent()) {
    return 0.0;
  }
  if (top.second.absent()) {
    return 1.0;
  }
  const double d1 = static_cast<double>(top.best.distance);
  const double d2 = static_cast<double>(top.second.distance);
  const double sum = d1 + d2;
  return sum == 0.0 ? 0.0 : (d2 - d1) / sum;
}

Band band_from_distances(std::span<const std::size_t> distances,
                         const ScalarEncoder& labels, std::size_t dimension) {
  require(distances.size() == labels.size(), "band_from_distances",
          "need one distance per label grid point");
  require_positive(dimension, "band_from_distances", "dimension");
  const double d = static_cast<double>(dimension);
  double total = 0.0;
  std::size_t argmin = 0;
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const double weight = 1.0 - 2.0 * static_cast<double>(distances[i]) / d;
    if (weight > 0.0) {
      total += weight;
    }
    if (distances[i] < distances[argmin]) {
      argmin = i;
    }
  }
  if (total == 0.0) {
    // Query uncorrelated with the entire grid: no distribution to read,
    // fall back to the point prediction (lowest-index argmin, like decode).
    const double value = labels.value_of(argmin);
    return Band{value, value, value};
  }
  // One cumulative sweep in grid order answers all three quantiles; the
  // summation order is fixed, so the doubles are reproducible everywhere.
  const double thresholds[3] = {0.1 * total, 0.5 * total, 0.9 * total};
  double quantiles[3] = {0.0, 0.0, 0.0};
  std::size_t next = 0;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < distances.size() && next < 3; ++i) {
    const double weight = 1.0 - 2.0 * static_cast<double>(distances[i]) / d;
    if (weight <= 0.0) {
      continue;
    }
    cumulative += weight;
    while (next < 3 && cumulative >= thresholds[next]) {
      quantiles[next] = labels.value_of(i);
      ++next;
    }
  }
  // Rounding could leave the p90 threshold a hair above the final
  // cumulative sum; close any unanswered quantiles with the last positive-
  // weight grid point.
  for (; next < 3; ++next) {
    std::size_t last = distances.size() - 1;
    while (last > 0 && 1.0 - 2.0 * static_cast<double>(distances[last]) / d <=
                           0.0) {
      --last;
    }
    quantiles[next] = labels.value_of(last);
  }
  return Band{quantiles[0], quantiles[1], quantiles[2]};
}

}  // namespace hdc
