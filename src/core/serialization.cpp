#include "hdc/core/serialization.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace hdc {

namespace {

constexpr std::array<char, 4> magic = {'H', 'D', 'C', '\x01'};
constexpr std::uint8_t tag_hypervector = 0x01;
constexpr std::uint8_t tag_basis = 0x02;
constexpr std::uint8_t tag_classifier = 0x03;

/// Hard cap on accepted dimensions/sizes so corrupted headers cannot trigger
/// multi-gigabyte allocations.
constexpr std::uint64_t sanity_limit = 1ULL << 28;

void write_u8(std::ostream& out, std::uint8_t value) {
  out.put(static_cast<char>(value));
}

void write_u64(std::ostream& out, std::uint64_t value) {
  std::array<char, 8> buf{};
  for (std::size_t i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xFFU);
  }
  out.write(buf.data(), buf.size());
}

void write_f64(std::ostream& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  write_u64(out, bits);
}

std::uint8_t read_u8(std::istream& in) {
  const int c = in.get();
  if (c == std::char_traits<char>::eof()) {
    throw SerializationError("unexpected end of stream");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint64_t read_u64(std::istream& in) {
  std::array<char, 8> buf{};
  in.read(buf.data(), buf.size());
  if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
    throw SerializationError("unexpected end of stream");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 8; i-- > 0;) {
    value = (value << 8) | static_cast<std::uint8_t>(buf[i]);
  }
  return value;
}

double read_f64(std::istream& in) {
  const std::uint64_t bits = read_u64(in);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void write_header(std::ostream& out, std::uint8_t tag) {
  out.write(magic.data(), magic.size());
  write_u8(out, tag);
}

void read_header(std::istream& in, std::uint8_t expected_tag) {
  std::array<char, 4> buf{};
  in.read(buf.data(), buf.size());
  if (in.gcount() != static_cast<std::streamsize>(buf.size()) || buf != magic) {
    throw SerializationError("bad magic: not an hdcpp stream");
  }
  const std::uint8_t tag = read_u8(in);
  if (tag != expected_tag) {
    throw SerializationError("unexpected record tag");
  }
}

void write_hypervector_body(std::ostream& out, HypervectorView hv) {
  write_u64(out, hv.dimension());
  for (const std::uint64_t word : hv.words()) {
    write_u64(out, word);
  }
}

Hypervector read_hypervector_body(std::istream& in) {
  const std::uint64_t dimension = read_u64(in);
  if (dimension == 0 || dimension > sanity_limit) {
    throw SerializationError("implausible hypervector dimension");
  }
  Hypervector hv(static_cast<std::size_t>(dimension));
  for (auto& word : hv.words()) {
    word = read_u64(in);
  }
  // Reject streams carrying set bits beyond the dimension: they violate the
  // tail invariant and indicate corruption.
  Hypervector masked = hv;
  masked.mask_tail();
  if (!(masked == hv)) {
    throw SerializationError("tail bits set beyond dimension");
  }
  return hv;
}

}  // namespace

void write_hypervector(std::ostream& out, HypervectorView hv) {
  if (hv.empty()) {
    throw SerializationError("cannot serialize an empty hypervector");
  }
  write_header(out, tag_hypervector);
  write_hypervector_body(out, hv);
  if (!out) {
    throw SerializationError("stream write failure");
  }
}

Hypervector read_hypervector(std::istream& in) {
  read_header(in, tag_hypervector);
  return read_hypervector_body(in);
}

void write_basis(std::ostream& out, const Basis& basis) {
  write_header(out, tag_basis);
  const BasisInfo& info = basis.info();
  write_u8(out, static_cast<std::uint8_t>(info.kind));
  write_u8(out, static_cast<std::uint8_t>(info.method));
  write_u64(out, info.dimension);
  write_u64(out, info.size);
  write_f64(out, info.r);
  write_u64(out, info.seed);
  for (const HypervectorView hv : basis) {
    write_hypervector_body(out, hv);
  }
  if (!out) {
    throw SerializationError("stream write failure");
  }
}

Basis read_basis(std::istream& in) {
  read_header(in, tag_basis);
  BasisInfo info;
  const std::uint8_t kind = read_u8(in);
  if (kind > static_cast<std::uint8_t>(BasisKind::Scatter)) {
    throw SerializationError("unknown basis kind");
  }
  info.kind = static_cast<BasisKind>(kind);
  const std::uint8_t method = read_u8(in);
  if (method > static_cast<std::uint8_t>(LevelMethod::Interpolation)) {
    throw SerializationError("unknown level method");
  }
  info.method = static_cast<LevelMethod>(method);
  const std::uint64_t dimension = read_u64(in);
  const std::uint64_t size = read_u64(in);
  if (dimension == 0 || dimension > sanity_limit || size == 0 ||
      size > sanity_limit) {
    throw SerializationError("implausible basis header");
  }
  info.dimension = static_cast<std::size_t>(dimension);
  info.size = static_cast<std::size_t>(size);
  info.r = read_f64(in);
  if (!(info.r >= 0.0 && info.r <= 1.0)) {
    throw SerializationError("r out of [0, 1]");
  }
  info.seed = read_u64(in);

  // Stream the vector payload straight into the packed arena; each record
  // still carries its own dimension field (format unchanged) which must agree
  // with the header, and tail bits beyond the dimension mean corruption.
  const std::size_t stride = bits::words_for(info.dimension);
  const std::uint64_t tail = bits::tail_mask(info.dimension);
  // Grow the arena with the data that actually arrives instead of trusting
  // the (possibly corrupted) header for one big upfront allocation: a
  // truncated stream then fails after at most one row's worth of growth.
  std::vector<std::uint64_t> packed;
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint64_t vector_dimension = read_u64(in);
    if (vector_dimension != info.dimension) {
      throw SerializationError("vector dimension disagrees with basis header");
    }
    const std::size_t base = packed.size();
    packed.resize(base + stride);
    for (std::size_t w = 0; w < stride; ++w) {
      packed[base + w] = read_u64(in);
    }
    if ((packed[base + stride - 1] & ~tail) != 0) {
      throw SerializationError("tail bits set beyond dimension");
    }
  }
  return Basis(info, std::move(packed));
}

void write_classifier(std::ostream& out, const CentroidClassifier& model) {
  if (!model.finalized()) {
    throw SerializationError(
        "cannot serialize an unfinalized classifier; call finalize() first");
  }
  write_header(out, tag_classifier);
  write_u64(out, model.num_classes());
  write_u64(out, model.dimension());
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    write_hypervector_body(out, model.class_vector(c));
  }
  if (!out) {
    throw SerializationError("stream write failure");
  }
}

CentroidClassifier read_classifier(std::istream& in) {
  read_header(in, tag_classifier);
  const std::uint64_t num_classes = read_u64(in);
  const std::uint64_t dimension = read_u64(in);
  if (num_classes == 0 || num_classes > sanity_limit || dimension == 0 ||
      dimension > sanity_limit) {
    throw SerializationError("implausible classifier header");
  }
  std::vector<Hypervector> vectors;
  // Bounded reserve: the header is untrusted until the payload backs it up.
  vectors.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      num_classes, 4096)));
  for (std::uint64_t c = 0; c < num_classes; ++c) {
    Hypervector hv = read_hypervector_body(in);
    if (hv.dimension() != dimension) {
      throw SerializationError(
          "class-vector dimension disagrees with classifier header");
    }
    vectors.push_back(std::move(hv));
  }
  return CentroidClassifier::from_class_vectors(std::move(vectors));
}

}  // namespace hdc
