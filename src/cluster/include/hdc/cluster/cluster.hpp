#ifndef HDC_CLUSTER_CLUSTER_HPP
#define HDC_CLUSTER_CLUSTER_HPP

/// \file cluster.hpp
/// \brief Umbrella header for the sharded multi-replica serving layer.

#include "hdc/cluster/comm.hpp"            // IWYU pragma: export
#include "hdc/cluster/shard.hpp"           // IWYU pragma: export
#include "hdc/cluster/sharded_server.hpp"  // IWYU pragma: export
#include "hdc/cluster/worker.hpp"          // IWYU pragma: export

#endif  // HDC_CLUSTER_CLUSTER_HPP
