#ifndef HDC_CLUSTER_SHARDED_SERVER_HPP
#define HDC_CLUSTER_SHARDED_SERVER_HPP

/// \file sharded_server.hpp
/// \brief The coordinator: sharded prediction bit-identical to one process.
///
/// `ShardedServer` owns a `Comm` and turns batches of feature rows into
/// predictions by scattering work across ranks and reducing the gathered
/// responses.  Its contract — enforced by the tests/cluster equivalence
/// matrix — is that for any {replicas, scheme, backend, batch size, kernel
/// variant} the prediction stream is **bit-identical** to calling the
/// single-process pipeline row by row:
///
///  * `Rows`    — rank r predicts rows [shard_begin, shard_end) of the
///    batch; slices concatenate in rank order.  Exact because each row is
///    predicted by the same code over the same snapshot bytes.
///  * `Classes` — every rank scans its slice of the class-vector (or
///    label-basis) arena and reports per-row `(distance, global index)`
///    minima; the coordinator takes the lexicographic minimum across ranks.
///    Exact because rank slices are disjoint ascending index ranges, so the
///    lexicographic reduce reproduces argmin-with-lowest-index-tie-break.
///
/// Batches are generation-atomic: `predict()` and `reload()` serialize on
/// one mutex, every predict response carries the worker's generation, and a
/// mismatch inside one batch is a hard `ClusterError` — a batch is computed
/// entirely on one model generation or not answered at all.  The same
/// serialization makes `reload()` a cluster-wide barrier: rank 0 validates
/// the replacement first (load + `ensure_swappable`), so a bad snapshot is
/// rejected before any rank has flipped.
///
/// Worker failure surfaces as `ClusterError` from the faulting call;
/// `serve_stream()` additionally drains what the batch admitted before the
/// fault (flushes every already-written prediction) and rethrows with the
/// input line number, so a stream consumer can tell exactly which rows were
/// answered.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hdc/cluster/comm.hpp"
#include "hdc/cluster/shard.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/io/pipeline.hpp"
#include "hdc/io/snapshot.hpp"
#include "hdc/serve/adaptive_state.hpp"
#include "hdc/serve/prediction_writer.hpp"
#include "hdc/serve/row_reader.hpp"

namespace hdc::cluster {

struct ClusterOptions {
  std::size_t replicas = 1;
  ShardScheme scheme = ShardScheme::Rows;
  CommBackend backend = CommBackend::Loopback;
  io::SnapshotIntegrity integrity = io::SnapshotIntegrity::Checksum;
  io::MappingOptions mapping{};
};

/// One rank's counters, as reported by `!stats` and the stats() exchange.
struct RankStats {
  std::size_t rank = 0;
  std::uint64_t generation = 0;
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;
};

/// Coordinator over N worker ranks; thread-safe (exchanges serialize).
class ShardedServer {
 public:
  /// Builds the comm (forking before any thread pool exists — construct
  /// this before `NetServer` or other pool owners) and barriers once so a
  /// worker that failed to initialize fails construction, not traffic.
  /// \throws ClusterError / io::SnapshotError / std::invalid_argument.
  ShardedServer(std::string snapshot_path, ClusterOptions options);

  [[nodiscard]] io::PipelineKind kind() const noexcept;
  [[nodiscard]] std::size_t num_features() const noexcept;
  [[nodiscard]] std::size_t dimension() const noexcept;
  [[nodiscard]] std::size_t replicas() const noexcept { return comm_->size(); }
  [[nodiscard]] ShardScheme scheme() const noexcept { return options_.scheme; }
  [[nodiscard]] const char* backend() const noexcept {
    return comm_->backend();
  }
  [[nodiscard]] std::vector<pid_t> worker_pids() const {
    return comm_->worker_pids();
  }

  /// One generation-atomic batch: predictions[i] answers rows[i] (labels as
  /// doubles for classifier pipelines, exactly like serve::Server).
  /// \throws ClusterError on worker failure or torn generation;
  /// std::invalid_argument if a row's arity is wrong.
  struct BatchResult {
    std::vector<double> predictions;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] BatchResult predict(
      std::span<const std::vector<double>> rows);

  /// The text twin of predict(): one generation-atomic batch of raw-text
  /// rows for a sequence/n-gram pipeline, with the same bit-identity
  /// contract against per-row classify_text()/regress_text().
  /// \throws ClusterError as predict(); std::invalid_argument when the
  /// pipeline takes numeric rows.
  [[nodiscard]] BatchResult predict_text(std::span<const std::string> rows);

  /// One head-carrying batch: values[i] answers rows[i] and either
  /// confidences[i] (classifier pipelines) or bands[i] (regressor
  /// pipelines) carries its head.  Heads reduce exactly as predictions do —
  /// classifier ranks report slice top-2 candidates merged with
  /// merge_top2(), regressor ranks report slice distance profiles that
  /// concatenate into the full label grid — so every head is bit-identical
  /// to the single-process batch engines.
  struct HeadBatchResult {
    std::vector<double> values;
    std::vector<double> confidences;  ///< One per row for classifiers.
    std::vector<Band> bands;          ///< One per row for regressors.
    std::uint64_t generation = 0;
  };
  [[nodiscard]] HeadBatchResult predict_head(
      std::span<const std::vector<double>> rows);
  [[nodiscard]] HeadBatchResult predict_text_head(
      std::span<const std::string> rows);

  /// Hot-swaps every rank to \p path ("" reloads the active source; an
  /// HDCS delta file patches the tracked base).  Validates on rank 0
  /// first; on rejection no rank has changed.  Returns the new cluster
  /// generation.
  /// \throws io::SnapshotError on rejection; ClusterError if a rank failed
  /// after validation (the cluster is then inconsistent and unusable).
  std::uint64_t reload(const std::string& path);

  /// One `!adapt` feedback sample, broadcast to every rank: each applies
  /// it to its deterministic rank-local overlay and serves the adapted
  /// model from the next batch on.  The full response payload must be
  /// byte-identical on every rank — divergence is a hard ClusterError.
  /// \throws ClusterError on worker failure or divergence;
  /// std::invalid_argument on arity mismatch (validated rank-side too).
  serve::AdaptOutcome adapt(double target, std::span<const double> features);

  /// The text twin of adapt(): one raw-text feedback sample broadcast to
  /// every rank.  \throws as adapt(); std::invalid_argument when the
  /// pipeline takes numeric rows.
  serve::AdaptOutcome adapt_text(double target, std::string_view text);

  /// Writes the cluster's adapted-vs-base difference (gathered as
  /// per-rank changed-row sets, verified byte-identical) as an HDCS delta
  /// file at \p out_path; returns the changed-row count.
  /// \throws ClusterError on divergence; std::runtime_error when nothing
  /// differs from the base; io::SnapshotError on write failure.
  std::uint64_t export_delta(const std::string& out_path);

  /// The last *full* snapshot the cluster loaded (delta reloads keep it).
  [[nodiscard]] std::string base_path() const;

  /// Last generation every rank agreed on.
  [[nodiscard]] std::uint64_t generation() const;

  /// Path serving the current generation.
  [[nodiscard]] std::string source_path() const;

  /// Per-rank counters, gathered live.  \throws ClusterError as predict().
  [[nodiscard]] std::vector<RankStats> stats();

  /// Streaming front end: reads rows (numeric or raw text, following the
  /// reader's format), predicts in micro-batches of \p batch_size, writes
  /// predictions — with confidence/band heads when the writer carries a
  /// HeadMode — in input order.  On ClusterError the admitted rows of
  /// earlier batches are already flushed downstream and the error is
  /// rethrown with the current input line appended.
  /// \throws std::invalid_argument when the reader's format disagrees with
  /// the pipeline's input mode or the writer's head with its kind.
  struct StreamStats {
    std::uint64_t rows = 0;
    std::uint64_t batches = 0;
  };
  StreamStats serve_stream(serve::RowReader& reader,
                           serve::PredictionWriter& writer,
                           std::size_t batch_size);

 private:
  [[nodiscard]] BatchResult predict_locked(
      std::span<const std::vector<double>> rows);
  /// Scatter builders for the two input modes; Rows-scheme requests carry
  /// each rank's row slice, Classes-scheme requests broadcast the batch.
  [[nodiscard]] std::vector<std::string> build_predict_requests(
      std::span<const std::vector<double>> rows, bool head);
  [[nodiscard]] std::vector<std::string> build_text_requests(
      std::span<const std::string> rows, bool head);
  /// Generation check + the scheme reduce over gathered predict responses.
  [[nodiscard]] BatchResult gather_predictions(
      const std::vector<std::string>& responses, std::size_t nrows);
  [[nodiscard]] HeadBatchResult gather_heads(
      const std::vector<std::string>& responses, std::size_t nrows);
  [[nodiscard]] std::uint64_t checked_generation(
      const std::vector<std::string>& responses) const;
  /// Broadcast + divergence check + outcome parse shared by both adapt
  /// entry points.
  [[nodiscard]] serve::AdaptOutcome adapt_exchange(std::string request);
  [[nodiscard]] std::vector<std::string> checked_exchange(
      std::vector<std::string> requests, const char* what);

  ClusterOptions options_;
  std::unique_ptr<Comm> comm_;
  mutable std::mutex mutex_;
  std::uint64_t generation_ = 1;
  std::string source_path_;
  std::string base_path_;
};

}  // namespace hdc::cluster

#endif  // HDC_CLUSTER_SHARDED_SERVER_HPP
