#ifndef HDC_CLUSTER_SHARD_HPP
#define HDC_CLUSTER_SHARD_HPP

/// \file shard.hpp
/// \brief Rank ownership math and the shared cluster vocabulary.
///
/// Every sharding decision in hdc::cluster reduces to the same question:
/// which contiguous slice of N items does rank r of P own?  The answer is
/// the classic `varstart`/`varend` balanced partition — the first (N % P)
/// ranks own one extra item, boundaries depend only on (N, P), and the
/// slices concatenated in rank order reproduce the original sequence.  Both
/// sharding schemes are built on it:
///
///  * `Rows`    — each rank predicts its row slice; the coordinator
///                concatenates the slices in rank order.
///  * `Classes` — every rank sees every row but scans only its slice of the
///                class-vector (or label-basis) arena; the coordinator
///                reduces per-rank `(distance, global index)` minima
///                lexicographically, which is bit-identical to the
///                single-process argmin with lowest-index tie-breaking
///                because rank slices are disjoint ascending index ranges.
///
/// `ClusterError` is the one failure type the coordinator raises for
/// transport and worker faults (a worker died, a frame was torn, ranks
/// disagree on the model generation); its message always names the rank.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hdc::cluster {

/// Raised by the coordinator on worker/transport failure; the message names
/// the failing rank (and pid + exit cause for fork workers).
class ClusterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// First item of rank \p rank's slice of \p count items over \p size ranks
/// (the `varstart` of the ownership scheme).  \pre rank < size, size >= 1.
[[nodiscard]] constexpr std::size_t shard_begin(std::size_t rank,
                                                std::size_t size,
                                                std::size_t count) noexcept {
  const std::size_t base = count / size;
  const std::size_t extra = count % size;
  return rank * base + (rank < extra ? rank : extra);
}

/// One past the last item of rank \p rank's slice (the `varend`).
[[nodiscard]] constexpr std::size_t shard_end(std::size_t rank,
                                              std::size_t size,
                                              std::size_t count) noexcept {
  const std::size_t base = count / size;
  const std::size_t extra = count % size;
  return shard_begin(rank, size, count) + base + (rank < extra ? 1 : 0);
}

/// How work is partitioned across ranks.
enum class ShardScheme : std::uint8_t {
  /// Each rank owns a slice of the batch's rows (throughput scaling).
  Rows = 0,
  /// Each rank owns a slice of the class-vector / label-basis arena
  /// (memory-bandwidth scaling for very large models).
  Classes = 1,
};

/// Parses "rows" / "classes".  \throws std::invalid_argument otherwise.
[[nodiscard]] ShardScheme parse_shard_scheme(const std::string& name);

/// "rows" / "classes".
[[nodiscard]] const char* to_string(ShardScheme scheme) noexcept;

/// Which transport hosts the workers.
enum class CommBackend : std::uint8_t {
  /// All ranks in-process, exchanged serially: the correctness oracle and
  /// the portable fallback.
  Loopback = 0,
  /// Rank 0 in-process; ranks 1..P-1 are forked children re-mapping the
  /// same snapshot (page-cache shared), framed over socketpairs.
  Fork = 1,
};

/// Parses "loopback" / "fork".  \throws std::invalid_argument otherwise.
[[nodiscard]] CommBackend parse_comm_backend(const std::string& name);

/// "loopback" / "fork".
[[nodiscard]] const char* to_string(CommBackend backend) noexcept;

}  // namespace hdc::cluster

#endif  // HDC_CLUSTER_SHARD_HPP
