#ifndef HDC_CLUSTER_COMM_HPP
#define HDC_CLUSTER_COMM_HPP

/// \file comm.hpp
/// \brief The rank/size transport abstraction behind `ShardedServer`.
///
/// `Comm` is deliberately thin — rank/size, scatter one request frame per
/// rank, gather one response frame per rank, barrier — so a backend is
/// little more than a way to move byte frames.  Two are always built:
///
///  * `LoopbackComm` hosts every rank's `Worker` in this process and
///    exchanges serially.  It has no transport to fail, which makes it the
///    correctness oracle the fork backend (and the equivalence suite) are
///    measured against, and the portable fallback on platforms without
///    fork().
///
///  * `ForkComm` keeps rank 0 in-process and forks ranks 1..P-1 *before
///    any thread pool exists* (forking a multithreaded process without
///    exec is a malloc-deadlock minefield, so construction order is part
///    of the contract).  Each child maps the same snapshot — the kernel
///    shares the page-cache copy — and speaks length-prefixed frames over
///    a socketpair.  A dead child (EOF/EPIPE on its pair) surfaces as
///    `ClusterError` naming the rank, pid and exit cause; the coordinator
///    never blocks on a corpse.
///
/// An MPI backend would be a third subclass translating scatter/gather to
/// MPI_Send/MPI_Recv over the same frames (docs/cluster.md sketches it);
/// nothing above `Comm` would change.
///
/// The exchange contract is lock-step: one scatter() followed by one
/// gather(), coordinator-side only.  `ShardedServer` serializes exchanges
/// behind its own mutex, so a `Comm` needs no internal locking.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#if defined(_WIN32)
using pid_t = int;
#else
#include <sys/types.h>
#endif

#include "hdc/cluster/shard.hpp"
#include "hdc/cluster/worker.hpp"

namespace hdc::cluster {

/// Transport interface; one instance per `ShardedServer`.
class Comm {
 public:
  virtual ~Comm() = default;

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// Number of ranks (>= 1).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// "loopback" / "fork".
  [[nodiscard]] virtual const char* backend() const noexcept = 0;

  /// Rank 0's worker, which both backends host in-process; the coordinator
  /// uses it for metadata (pipeline kind, arity, label decode) without a
  /// round-trip.
  [[nodiscard]] virtual Worker& local_worker() noexcept = 0;

  /// Sends one request payload to each rank (requests.size() == size()).
  /// \throws ClusterError if a rank's transport is gone.
  virtual void scatter(const std::vector<std::string>& requests) = 0;

  /// Collects one response payload per rank, in rank order; rank 0's work
  /// happens here, after the remote ranks have been fed.
  /// \throws ClusterError on a dead rank or torn frame.
  [[nodiscard]] virtual std::vector<std::string> gather() = 0;

  /// scatter() + gather().
  [[nodiscard]] std::vector<std::string> exchange(
      const std::vector<std::string>& requests) {
    scatter(requests);
    return gather();
  }

  /// Full ping round-trip to every rank.  \throws ClusterError as gather().
  void barrier();

  /// Pids of the forked workers for ranks 1..P-1 (empty for loopback);
  /// index i holds rank i+1.  Exposed for diagnostics and the
  /// fault-injection suite.
  [[nodiscard]] virtual std::vector<pid_t> worker_pids() const { return {}; }

 protected:
  explicit Comm(std::size_t size) : size_(size) {}

 private:
  std::size_t size_;
};

/// Everything a backend needs to build rank r's worker.
[[nodiscard]] Worker::Config worker_config(const Worker::Config& base,
                                           std::size_t rank,
                                           std::size_t replicas);

/// All ranks in-process, exchanged serially.
class LoopbackComm final : public Comm {
 public:
  /// Builds \p replicas workers from \p base (rank/replicas overridden).
  /// \throws as Worker's constructor.
  LoopbackComm(const Worker::Config& base, std::size_t replicas);

  [[nodiscard]] const char* backend() const noexcept override {
    return "loopback";
  }
  [[nodiscard]] Worker& local_worker() noexcept override {
    return *workers_.front();
  }
  void scatter(const std::vector<std::string>& requests) override;
  [[nodiscard]] std::vector<std::string> gather() override;

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::string> pending_;
};

/// Rank 0 in-process; ranks 1..P-1 forked children over socketpairs.
///
/// Construction forks first and builds the rank-0 worker after, so children
/// never inherit the coordinator's mapping (each maps the snapshot itself).
/// Must be constructed while the process is still single-threaded.
/// The destructor sends Shutdown, waits briefly, then SIGKILLs stragglers —
/// it never throws and never leaks a zombie.
class ForkComm final : public Comm {
 public:
  /// \throws ClusterError if fork/socketpair fails or a child fails to
  /// initialize (the child's error message is forwarded); as Worker's
  /// constructor for rank 0.
  ForkComm(const Worker::Config& base, std::size_t replicas);
  ~ForkComm() override;

  [[nodiscard]] const char* backend() const noexcept override {
    return "fork";
  }
  [[nodiscard]] Worker& local_worker() noexcept override { return *local_; }
  void scatter(const std::vector<std::string>& requests) override;
  [[nodiscard]] std::vector<std::string> gather() override;
  [[nodiscard]] std::vector<pid_t> worker_pids() const override;

 private:
  struct Remote {
    int fd = -1;
    pid_t pid = -1;
  };

  /// Describes why talking to rank \p rank failed, reaping the child if it
  /// already exited ("killed by signal 9 (Killed)" for the SIGKILL case).
  [[nodiscard]] ClusterError rank_failure(std::size_t rank,
                                          const char* during);

  std::unique_ptr<Worker> local_;
  std::vector<Remote> remotes_;  ///< Index i is rank i+1.
  std::string pending_local_;
  bool inflight_ = false;
};

}  // namespace hdc::cluster

#endif  // HDC_CLUSTER_COMM_HPP
