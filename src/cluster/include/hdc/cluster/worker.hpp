#ifndef HDC_CLUSTER_WORKER_HPP
#define HDC_CLUSTER_WORKER_HPP

/// \file worker.hpp
/// \brief One rank's compute engine and the framed request protocol.
///
/// A `Worker` is the rank-local half of the cluster: it maps the snapshot
/// itself (so N fork workers share one page-cache copy of the model bytes),
/// restores the pipeline, and answers framed requests.  The same class runs
/// in-process (loopback backend, and rank 0 of the fork backend) and inside
/// forked children — `handle()` is the single entry point either way, so
/// the loopback backend is a true oracle for the fork transport.
///
/// The wire protocol is deliberately minimal: every request and response is
/// one length-prefixed frame (`comm.hpp` owns the framing); the payload
/// starts with a one-byte opcode (requests) or status (responses) followed
/// by fixed-width little-endian fields.  Same-machine processes only, so no
/// cross-endian concerns — but the layout is pinned here so the coordinator,
/// the workers and the tests agree on one encoding:
///
///   predict request   [op][u64 nrows][u64 nfeat][nrows*nfeat f64]
///   predict response  [ok][u64 generation][u64 n] then either
///                       n f64 predictions           (Rows scheme)
///                       n (u64 dist, u64 index)     (Classes scheme)
///   reload request    [op][u64 len][path bytes]
///   reload response   [ok][u64 generation]
///   adapt request     [op][f64 target][u64 nfeat][nfeat f64]
///   adapt response    [ok][u64 generation][f64 predicted][u64 updated]
///                       [u64 feedback][u64 updates][u64 overlay_rows]
///   delta-rows req.   [op]
///   delta-rows resp.  [ok][u64 generation][u64 nrows][u64 wpr] then
///                       nrows ([u64 index][wpr u64 row words])
///   stats response    [ok][u64 rank][u64 generation][u64 rows][u64 batches]
///   ping response     [ok][u64 rank]
///   error response    [err][message bytes]
///
/// The flags-carrying `Predict2` frame extends prediction to raw-text rows
/// and head-carrying responses without touching the layouts above:
///
///   predict2 request  [op][u8 flags][u64 nrows] then
///                       numeric: [u64 nfeat][nrows*nfeat f64]
///                       text (bit 0): nrows ([u64 len][len text bytes])
///   predict2 response [ok][u64 generation][u64 n] then
///                       flags bit 1 (head) clear: exactly as predict
///                       Rows + classifier head:  n (f64 label, f64 conf)
///                       Rows + regressor head:   n (f64 value, f64 p10,
///                                                   f64 p50, f64 p90)
///                       Classes + classifier head: n (u64 d1, u64 i1,
///                                                     u64 d2, u64 i2) —
///                         the slice top-2, absent slots all-ones
///                       Classes + regressor head: [u64 slice_len] then
///                         n * slice_len u64 distances — the rank's slice
///                         of the label-grid profile; concatenated in rank
///                         order it is the full profile, so the coordinator
///                         reproduces predict() (argmin) and the band
///                         (band_from_distances) bit-identically
///   adapt-text req.   [op][f64 target][u64 len][len text bytes]
///   adapt-text resp.  exactly the adapt response
///
/// Under the `Classes` scheme a worker never produces final predictions: it
/// returns its slice's best `(distance, global index)` per row — the
/// classifier scans class-vectors [shard_begin, shard_end), the regressor
/// binds `model ⊗ phi(x̂)` and scans its slice of the label basis — and the
/// coordinator reduces and maps the winning index back to a label or value.
/// An empty slice (more ranks than classes) reports the all-ones sentinel,
/// which never wins a reduce.
///
/// ## Online adaptation
///
/// `Adapt` broadcasts one feedback sample to every rank; each rank applies
/// it to a rank-local copy-on-write overlay (hdc/core/adaptive.hpp) seeded
/// with the shared `kDefaultAdaptSeed`, so overlays are bit-identical
/// across ranks by construction and every later `Predict` serves the
/// adapted model without further coordination.  `DeltaRows` reports the
/// rank's current model rows that differ from the tracked *base* snapshot
/// file (the last full snapshot loaded), which the coordinator verifies are
/// identical on every rank before writing a delta file.  Any reload drops
/// the overlay: its feedback targeted the retired generation.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "hdc/cluster/shard.hpp"
#include "hdc/core/adaptive.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/io/reload.hpp"
#include "hdc/io/snapshot.hpp"

namespace hdc::cluster {

/// Request opcodes (first payload byte of a request frame).
enum class WorkerOp : std::uint8_t {
  Ping = 1,
  Predict = 2,
  Reload = 3,
  Stats = 4,
  Shutdown = 5,
  Adapt = 6,
  DeltaRows = 7,
  Predict2 = 8,
  AdaptText = 9,
};

/// `Predict2` request flags (second payload byte).
inline constexpr std::uint8_t kPredictFlagText = 1;  ///< Rows are raw text.
inline constexpr std::uint8_t kPredictFlagHead = 2;  ///< Carry head fields.

/// Response status (first payload byte of a response frame).
inline constexpr std::uint8_t kWorkerOk = 0;
inline constexpr std::uint8_t kWorkerErr = 1;

/// Sentinel `(distance, index)` reported for an empty Classes slice; loses
/// every lexicographic reduce against a real candidate.
inline constexpr std::uint64_t kNoCandidate = ~std::uint64_t{0};

/// One rank of the cluster: a mapped snapshot, its restored pipeline, and
/// the request dispatcher.  Not thread-safe; each rank is single-threaded
/// by construction (parallelism comes from the process fan-out).
class Worker {
 public:
  struct Config {
    std::string snapshot_path;
    std::size_t rank = 0;
    std::size_t replicas = 1;
    ShardScheme scheme = ShardScheme::Rows;
    io::SnapshotIntegrity integrity = io::SnapshotIntegrity::Checksum;
    io::MappingOptions mapping{};
  };

  /// Maps \p cfg.snapshot_path and restores the pipeline.
  /// \throws io::SnapshotError on open/validation failure;
  /// std::invalid_argument on rank >= replicas or replicas == 0.
  explicit Worker(Config cfg);

  /// Dispatches one request payload and returns the response payload.
  /// Never throws: every failure becomes an error response.  After a
  /// Shutdown request, `shutdown_requested()` turns true and the caller's
  /// loop should exit.
  [[nodiscard]] std::string handle(std::string_view request);

  [[nodiscard]] bool shutdown_requested() const noexcept { return shutdown_; }
  [[nodiscard]] std::size_t rank() const noexcept { return cfg_.rank; }
  [[nodiscard]] std::size_t replicas() const noexcept { return cfg_.replicas; }
  [[nodiscard]] ShardScheme scheme() const noexcept { return cfg_.scheme; }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const io::Pipeline& pipeline() const noexcept {
    return loaded_.pipeline;
  }
  [[nodiscard]] const std::string& source_path() const noexcept {
    return source_path_;
  }

  /// The last *full* snapshot this rank loaded — what delta reloads patch
  /// against and what `DeltaRows` diffs against.
  [[nodiscard]] const std::string& base_path() const noexcept {
    return base_path_;
  }

 private:
  [[nodiscard]] std::string handle_predict(std::string_view body);
  [[nodiscard]] std::string handle_predict2(std::string_view body);
  [[nodiscard]] std::string handle_reload(std::string_view body);
  [[nodiscard]] std::string handle_adapt(std::string_view body);
  [[nodiscard]] std::string handle_adapt_text(std::string_view body);
  [[nodiscard]] std::string handle_delta_rows();
  /// Post-encoding tail shared by Adapt and AdaptText: validates the
  /// target, lazily creates the overlay, applies the update and builds the
  /// (identical) response frame.
  [[nodiscard]] std::string adapt_response(double target,
                                           const Hypervector& encoded);
  void predict_rows(std::span<const Hypervector> encoded, bool head,
                    std::string& out) const;
  void predict_classes(std::span<const Hypervector> encoded, bool head,
                       std::string& out) const;
  /// Row \p index of the model this rank currently serves: the overlay row
  /// when adapted, else the restored pipeline's row.
  [[nodiscard]] std::span<const std::uint64_t> current_model_row(
      std::size_t index) const;

  Config cfg_;
  io::LoadedPipeline loaded_;
  std::string source_path_;
  std::string base_path_;
  /// Rank-local adaptation overlay (at most one non-null, matching the
  /// pipeline kind); null until the first Adapt after a (re)load.
  std::unique_ptr<AdaptiveClassifier> adaptive_classifier_;
  std::unique_ptr<AdaptiveRegressor> adaptive_regressor_;
  std::uint64_t generation_ = 1;
  std::uint64_t rows_ = 0;
  std::uint64_t batches_ = 0;
  bool shutdown_ = false;
};

/// Payload builders shared by the coordinator and the tests; the layouts
/// are documented in the file comment.
[[nodiscard]] std::string encode_ping_request();
[[nodiscard]] std::string encode_predict_request(
    const double* rows, std::size_t nrows, std::size_t nfeat);
[[nodiscard]] std::string encode_reload_request(const std::string& path);
[[nodiscard]] std::string encode_stats_request();
[[nodiscard]] std::string encode_shutdown_request();
[[nodiscard]] std::string encode_adapt_request(double target,
                                               const double* features,
                                               std::size_t nfeat);
[[nodiscard]] std::string encode_delta_rows_request();
[[nodiscard]] std::string encode_predict2_request(const double* rows,
                                                  std::size_t nrows,
                                                  std::size_t nfeat,
                                                  bool head);
[[nodiscard]] std::string encode_predict2_text_request(
    std::span<const std::string> rows, bool head);
[[nodiscard]] std::string encode_adapt_text_request(double target,
                                                    std::string_view text);

/// Little-endian field helpers for the fixed-width payload layout.
void put_u64(std::string& out, std::uint64_t value);
void put_f64(std::string& out, double value);
[[nodiscard]] std::uint64_t get_u64(std::string_view payload,
                                    std::size_t offset);
[[nodiscard]] double get_f64(std::string_view payload, std::size_t offset);

}  // namespace hdc::cluster

#endif  // HDC_CLUSTER_WORKER_HPP
