#include "hdc/cluster/comm.hpp"

#include <cerrno>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <utility>

#if !defined(_WIN32)
#include <csignal>
#include <ctime>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace hdc::cluster {

namespace {

/// Upper bound on one frame payload; a torn length prefix must not turn
/// into a multi-terabyte allocation.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 32;

}  // namespace

Worker::Config worker_config(const Worker::Config& base, std::size_t rank,
                             std::size_t replicas) {
  Worker::Config cfg = base;
  cfg.rank = rank;
  cfg.replicas = replicas;
  return cfg;
}

void Comm::barrier() {
  std::vector<std::string> requests(size(), encode_ping_request());
  const std::vector<std::string> responses = exchange(requests);
  for (std::size_t rank = 0; rank < responses.size(); ++rank) {
    const std::string& r = responses[rank];
    if (r.empty() || static_cast<std::uint8_t>(r[0]) != kWorkerOk) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " failed barrier: " +
                         (r.size() > 1 ? r.substr(1) : "bad ping response")};
    }
    if (get_u64(r, 1) != rank) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " answered barrier with wrong rank"};
    }
  }
}

LoopbackComm::LoopbackComm(const Worker::Config& base, std::size_t replicas)
    : Comm(replicas) {
  if (replicas == 0) {
    throw std::invalid_argument{"cluster: replicas must be >= 1"};
  }
  workers_.reserve(replicas);
  for (std::size_t rank = 0; rank < replicas; ++rank) {
    workers_.push_back(
        std::make_unique<Worker>(worker_config(base, rank, replicas)));
  }
}

void LoopbackComm::scatter(const std::vector<std::string>& requests) {
  if (requests.size() != size()) {
    throw ClusterError{"cluster scatter: request count != size"};
  }
  pending_ = requests;
}

std::vector<std::string> LoopbackComm::gather() {
  std::vector<std::string> responses(size());
  for (std::size_t rank = 0; rank < size(); ++rank) {
    responses[rank] = workers_[rank]->handle(pending_[rank]);
  }
  pending_.clear();
  return responses;
}

#if !defined(_WIN32)

namespace {

[[nodiscard]] bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t k = send(fd, data, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

[[nodiscard]] bool read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t k = read(fd, data, n);
    if (k < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (k == 0) {
      return false;  // EOF: the peer is gone.
    }
    data += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

[[nodiscard]] bool write_frame(int fd, std::string_view payload) {
  std::uint64_t len = payload.size();
  char prefix[8];
  std::memcpy(prefix, &len, sizeof prefix);
  return write_all(fd, prefix, sizeof prefix) &&
         write_all(fd, payload.data(), payload.size());
}

[[nodiscard]] bool read_frame(int fd, std::string& out) {
  char prefix[8];
  if (!read_all(fd, prefix, sizeof prefix)) {
    return false;
  }
  std::uint64_t len = 0;
  std::memcpy(&len, prefix, sizeof len);
  if (len > kMaxFrameBytes) {
    return false;
  }
  out.resize(len);
  return len == 0 || read_all(fd, out.data(), len);
}

/// Body of a forked worker: answer frames until shutdown or the parent's
/// end closes.  Replies to the very first frame slot with a ready (or
/// init-error) frame so the parent can fail construction synchronously.
/// _exit() throughout — a forked child must never run the parent's atexit
/// handlers or flush its inherited stdio buffers.
[[noreturn]] void worker_child_main(int fd, Worker::Config cfg) {
  try {
    Worker worker{std::move(cfg)};
    std::string ready(1, static_cast<char>(kWorkerOk));
    put_u64(ready, worker.rank());
    if (!write_frame(fd, ready)) {
      _exit(3);
    }
    std::string request;
    while (read_frame(fd, request)) {
      const std::string response = worker.handle(request);
      if (!write_frame(fd, response)) {
        _exit(3);
      }
      if (worker.shutdown_requested()) {
        break;
      }
    }
    _exit(0);
  } catch (const std::exception& e) {
    std::string err(1, static_cast<char>(kWorkerErr));
    err.append(e.what());
    (void)write_frame(fd, err);
    _exit(2);
  } catch (...) {
    _exit(2);
  }
}

/// Reaps \p pid without blocking forever: polls waitpid for up to ~2 s.
/// Returns true with \p status filled if the child was reaped.
[[nodiscard]] bool try_reap(pid_t pid, int& status) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return true;
    }
    if (r < 0) {
      return false;  // Already reaped or not our child.
    }
    timespec delay{0, 10 * 1000 * 1000};
    nanosleep(&delay, nullptr);
  }
  return false;
}

[[nodiscard]] std::string exit_cause(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "killed by signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return "stopped abnormally";
}

}  // namespace

ForkComm::ForkComm(const Worker::Config& base, std::size_t replicas)
    : Comm(replicas) {
  if (replicas == 0) {
    throw std::invalid_argument{"cluster: replicas must be >= 1"};
  }
  remotes_.reserve(replicas - 1);
  try {
    // Fork ranks 1..P-1 first: the children must not inherit the rank-0
    // mapping (each maps the snapshot itself, sharing the page cache), and
    // this constructor must run before the process grows threads.
    for (std::size_t rank = 1; rank < replicas; ++rank) {
      int sv[2] = {-1, -1};
      if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw ClusterError{std::string{"cluster: socketpair failed: "} +
                           std::strerror(errno)};
      }
      const pid_t pid = fork();
      if (pid < 0) {
        const int err = errno;
        close(sv[0]);
        close(sv[1]);
        throw ClusterError{std::string{"cluster: fork failed: "} +
                           std::strerror(err)};
      }
      if (pid == 0) {
        close(sv[0]);
        for (const Remote& earlier : remotes_) {
          close(earlier.fd);
        }
        worker_child_main(sv[1], worker_config(base, rank, replicas));
      }
      close(sv[1]);
      remotes_.push_back(Remote{sv[0], pid});
    }
    local_ = std::make_unique<Worker>(worker_config(base, 0, replicas));
    // Collect every child's ready frame; an init failure arrives here as an
    // error frame (or as EOF if the child died outright).
    for (std::size_t i = 0; i < remotes_.size(); ++i) {
      std::string ready;
      if (!read_frame(remotes_[i].fd, ready) || ready.empty()) {
        throw rank_failure(i + 1, "startup");
      }
      if (static_cast<std::uint8_t>(ready[0]) != kWorkerOk) {
        throw ClusterError{"cluster rank " + std::to_string(i + 1) +
                           " failed to initialize: " + ready.substr(1)};
      }
    }
  } catch (...) {
    for (Remote& remote : remotes_) {
      if (remote.fd >= 0) {
        close(remote.fd);
      }
      if (remote.pid > 0) {
        kill(remote.pid, SIGKILL);
        int status = 0;
        (void)try_reap(remote.pid, status);
      }
    }
    remotes_.clear();
    throw;
  }
}

ForkComm::~ForkComm() {
  const std::string bye = encode_shutdown_request();
  for (Remote& remote : remotes_) {
    if (remote.fd >= 0) {
      (void)write_frame(remote.fd, bye);
      close(remote.fd);  // EOF unblocks the child's read loop either way.
      remote.fd = -1;
    }
  }
  for (Remote& remote : remotes_) {
    if (remote.pid <= 0) {
      continue;
    }
    int status = 0;
    if (!try_reap(remote.pid, status)) {
      kill(remote.pid, SIGKILL);
      (void)waitpid(remote.pid, &status, 0);
    }
    remote.pid = -1;
  }
}

std::vector<pid_t> ForkComm::worker_pids() const {
  std::vector<pid_t> pids;
  pids.reserve(remotes_.size());
  for (const Remote& remote : remotes_) {
    pids.push_back(remote.pid);
  }
  return pids;
}

ClusterError ForkComm::rank_failure(std::size_t rank, const char* during) {
  Remote& remote = remotes_[rank - 1];
  if (remote.fd >= 0) {
    close(remote.fd);
    remote.fd = -1;
  }
  std::string cause = "transport failed";
  if (remote.pid > 0) {
    int status = 0;
    if (try_reap(remote.pid, status)) {
      cause = exit_cause(status);
    }
    const pid_t pid = remote.pid;
    remote.pid = -1;
    return ClusterError{"cluster worker rank " + std::to_string(rank) +
                        " (pid " + std::to_string(pid) + ") died during " +
                        during + ": " + cause};
  }
  return ClusterError{"cluster worker rank " + std::to_string(rank) +
                      " unavailable during " + during + ": " + cause};
}

void ForkComm::scatter(const std::vector<std::string>& requests) {
  if (requests.size() != size()) {
    throw ClusterError{"cluster scatter: request count != size"};
  }
  if (inflight_) {
    throw ClusterError{"cluster scatter: previous gather still pending"};
  }
  for (std::size_t i = 0; i < remotes_.size(); ++i) {
    if (remotes_[i].fd < 0 || !write_frame(remotes_[i].fd, requests[i + 1])) {
      throw rank_failure(i + 1, "scatter");
    }
  }
  pending_local_ = requests[0];
  inflight_ = true;
}

std::vector<std::string> ForkComm::gather() {
  if (!inflight_) {
    throw ClusterError{"cluster gather: no scatter in flight"};
  }
  inflight_ = false;
  std::vector<std::string> responses(size());
  responses[0] = local_->handle(pending_local_);
  for (std::size_t i = 0; i < remotes_.size(); ++i) {
    if (remotes_[i].fd < 0 || !read_frame(remotes_[i].fd, responses[i + 1])) {
      throw rank_failure(i + 1, "gather");
    }
  }
  return responses;
}

#else  // _WIN32

ForkComm::ForkComm(const Worker::Config& /*base*/, std::size_t replicas)
    : Comm(replicas) {
  throw ClusterError{"cluster: fork backend is unavailable on this platform"};
}

ForkComm::~ForkComm() = default;

std::vector<pid_t> ForkComm::worker_pids() const { return {}; }

ClusterError ForkComm::rank_failure(std::size_t, const char*) {
  return ClusterError{"cluster: fork backend is unavailable"};
}

void ForkComm::scatter(const std::vector<std::string>&) {
  throw ClusterError{"cluster: fork backend is unavailable"};
}

std::vector<std::string> ForkComm::gather() {
  throw ClusterError{"cluster: fork backend is unavailable"};
}

#endif  // _WIN32

}  // namespace hdc::cluster
