#include "hdc/cluster/sharded_server.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "hdc/io/delta.hpp"
#include "hdc/io/reload.hpp"

namespace hdc::cluster {

namespace {

/// Offsets inside a predict response payload: [ok][u64 gen][u64 n][data].
constexpr std::size_t kGenOffset = 1;
constexpr std::size_t kCountOffset = 9;
constexpr std::size_t kDataOffset = 17;

}  // namespace

ShardedServer::ShardedServer(std::string snapshot_path,
                             ClusterOptions options)
    : options_(options),
      source_path_(std::move(snapshot_path)),
      base_path_(source_path_) {
  Worker::Config base;
  base.snapshot_path = source_path_;
  base.scheme = options_.scheme;
  base.integrity = options_.integrity;
  base.mapping = options_.mapping;
  if (options_.backend == CommBackend::Loopback) {
    comm_ = std::make_unique<LoopbackComm>(base, options_.replicas);
  } else {
    comm_ = std::make_unique<ForkComm>(base, options_.replicas);
  }
  comm_->barrier();
}

io::PipelineKind ShardedServer::kind() const noexcept {
  return comm_->local_worker().pipeline().kind();
}

std::size_t ShardedServer::num_features() const noexcept {
  return comm_->local_worker().pipeline().num_features();
}

std::size_t ShardedServer::dimension() const noexcept {
  return comm_->local_worker().pipeline().dimension();
}

std::vector<std::string> ShardedServer::checked_exchange(
    std::vector<std::string> requests, const char* what) {
  std::vector<std::string> responses = comm_->exchange(requests);
  for (std::size_t rank = 0; rank < responses.size(); ++rank) {
    const std::string& r = responses[rank];
    if (r.empty()) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " returned an empty frame during " + what};
    }
    if (static_cast<std::uint8_t>(r[0]) != kWorkerOk) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " rejected " + what + ": " + r.substr(1)};
    }
  }
  return responses;
}

ShardedServer::BatchResult ShardedServer::predict(
    std::span<const std::vector<double>> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return predict_locked(rows);
}

ShardedServer::BatchResult ShardedServer::predict_locked(
    std::span<const std::vector<double>> rows) {
  const std::size_t nfeat = num_features();
  for (const std::vector<double>& row : rows) {
    if (row.size() != nfeat) {
      throw std::invalid_argument{"cluster predict: row arity mismatch"};
    }
  }
  const std::size_t replicas = comm_->size();
  const std::size_t nrows = rows.size();

  std::vector<std::string> requests(replicas);
  if (options_.scheme == ShardScheme::Rows) {
    std::vector<double> flat;
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::size_t begin = shard_begin(rank, replicas, nrows);
      const std::size_t end = shard_end(rank, replicas, nrows);
      flat.clear();
      flat.reserve((end - begin) * nfeat);
      for (std::size_t i = begin; i < end; ++i) {
        flat.insert(flat.end(), rows[i].begin(), rows[i].end());
      }
      requests[rank] =
          encode_predict_request(flat.data(), end - begin, nfeat);
    }
  } else {
    std::vector<double> flat;
    flat.reserve(nrows * nfeat);
    for (const std::vector<double>& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    const std::string request =
        encode_predict_request(flat.data(), nrows, nfeat);
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      requests[rank] = request;
    }
  }

  const std::vector<std::string> responses =
      checked_exchange(std::move(requests), "predict");

  // A batch must be answered by exactly one model generation on every rank;
  // anything else would interleave two models inside one reply stream.
  BatchResult result;
  result.generation = get_u64(responses[0], kGenOffset);
  for (std::size_t rank = 1; rank < replicas; ++rank) {
    if (get_u64(responses[rank], kGenOffset) != result.generation) {
      throw ClusterError{"cluster predict: torn generation across ranks"};
    }
  }

  result.predictions.reserve(nrows);
  if (options_.scheme == ShardScheme::Rows) {
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::string& r = responses[rank];
      const std::size_t count = get_u64(r, kCountOffset);
      for (std::size_t i = 0; i < count; ++i) {
        result.predictions.push_back(get_f64(r, kDataOffset + i * 8));
      }
    }
    if (result.predictions.size() != nrows) {
      throw ClusterError{"cluster predict: row count mismatch in gather"};
    }
  } else {
    const bool classifier = kind() == io::PipelineKind::Classifier;
    for (std::size_t i = 0; i < nrows; ++i) {
      std::uint64_t best_distance = kNoCandidate;
      std::uint64_t best_index = kNoCandidate;
      for (std::size_t rank = 0; rank < replicas; ++rank) {
        const std::size_t base = kDataOffset + i * 16;
        const std::uint64_t distance = get_u64(responses[rank], base);
        const std::uint64_t index = get_u64(responses[rank], base + 8);
        if (index == kNoCandidate) {
          continue;  // Empty slice (more ranks than candidates).
        }
        // Lexicographic (distance, index) minimum across disjoint ascending
        // slices == global argmin with lowest-index tie-breaking.
        if (distance < best_distance ||
            (distance == best_distance && index < best_index)) {
          best_distance = distance;
          best_index = index;
        }
      }
      if (best_index == kNoCandidate) {
        throw ClusterError{"cluster predict: no candidate from any rank"};
      }
      if (classifier) {
        result.predictions.push_back(static_cast<double>(best_index));
      } else {
        result.predictions.push_back(
            comm_->local_worker().pipeline().regressor().labels().value_of(
                best_index));
      }
    }
  }
  return result;
}

std::uint64_t ShardedServer::reload(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string resolved = path.empty() ? source_path_ : path;
  const bool is_delta = io::snapshot_is_delta(resolved);
  // Validate on rank 0 before any rank flips: a rejected snapshot must
  // leave the whole cluster serving the incumbent generation.
  {
    const io::LoadedPipeline trial = io::load_pipeline_or_delta(
        resolved, base_path_, options_.integrity, options_.mapping);
    io::ensure_swappable(trial.pipeline, comm_->local_worker().pipeline());
  }
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_reload_request(resolved)),
      "reload");
  const std::uint64_t generation = get_u64(responses[0], 1);
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (get_u64(responses[rank], 1) != generation) {
      throw ClusterError{"cluster reload: generation diverged across ranks"};
    }
  }
  generation_ = generation;
  source_path_ = resolved;
  if (!is_delta) {
    base_path_ = resolved;
  }
  return generation;
}

serve::AdaptOutcome ShardedServer::adapt(double target,
                                         std::span<const double> features) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (features.size() != num_features()) {
    throw std::invalid_argument{"cluster adapt: feature arity mismatch"};
  }
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(
          comm_->size(),
          encode_adapt_request(target, features.data(), features.size())),
      "adapt");
  // Every rank applied the same sample to a deterministically-seeded
  // overlay: the *entire* response payload must agree byte for byte, or
  // the bit-identical serving contract is already broken.
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (responses[rank] != responses[0]) {
      throw ClusterError{"cluster adapt: outcome diverged across ranks"};
    }
  }
  serve::AdaptOutcome out;
  out.predicted = get_f64(responses[0], 9);
  out.updated = get_u64(responses[0], 17) != 0;
  out.feedback_rows = get_u64(responses[0], 25);
  out.updates = get_u64(responses[0], 33);
  out.overlay_rows = get_u64(responses[0], 41);
  return out;
}

std::uint64_t ShardedServer::export_delta(const std::string& out_path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_delta_rows_request()),
      "delta export");
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (responses[rank] != responses[0]) {
      throw ClusterError{
          "cluster delta export: changed rows diverged across ranks"};
    }
  }
  const std::string& r = responses[0];
  const std::uint64_t nrows = get_u64(r, 9);
  const std::uint64_t wpr = get_u64(r, 17);
  if (nrows == 0) {
    throw std::runtime_error{
        "delta export: the adapted model does not differ from " + base_path_};
  }
  if (r.size() != 25 + nrows * (8 + wpr * 8)) {
    throw ClusterError{"cluster delta export: truncated row payload"};
  }
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  std::size_t at = 25;
  for (std::uint64_t i = 0; i < nrows; ++i) {
    const std::uint64_t index = get_u64(r, at);
    at += 8;
    std::vector<std::uint64_t> words(wpr);
    std::memcpy(words.data(), r.data() + at, wpr * 8);
    at += wpr * 8;
    rows.emplace(index, std::move(words));
  }
  const io::MappedSnapshot base = io::MappedSnapshot::open(base_path_);
  const std::size_t section = io::find_model_section(base);
  io::write_delta_file(
      io::make_delta(base, io::snapshot_file_hash(base_path_), section, rows),
      out_path);
  return nrows;
}

std::string ShardedServer::base_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return base_path_;
}

std::uint64_t ShardedServer::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::string ShardedServer::source_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return source_path_;
}

std::vector<RankStats> ShardedServer::stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_stats_request()),
      "stats");
  std::vector<RankStats> out;
  out.reserve(responses.size());
  for (const std::string& r : responses) {
    RankStats s;
    s.rank = get_u64(r, 1);
    s.generation = get_u64(r, 9);
    s.rows = get_u64(r, 17);
    s.batches = get_u64(r, 25);
    out.push_back(s);
  }
  return out;
}

ShardedServer::StreamStats ShardedServer::serve_stream(
    serve::RowReader& reader, serve::PredictionWriter& writer,
    std::size_t batch_size) {
  if (batch_size == 0) {
    batch_size = 1;
  }
  StreamStats stats;
  std::vector<std::vector<double>> rows;
  rows.reserve(batch_size);
  std::vector<double> row;
  const bool classifier = kind() == io::PipelineKind::Classifier;

  const auto flush = [&] {
    if (rows.empty()) {
      return;
    }
    BatchResult batch;
    try {
      batch = predict(rows);
    } catch (const ClusterError& e) {
      // Drain what earlier batches admitted, then rethrow with the stream
      // position: the consumer knows exactly which rows were answered.
      try {
        writer.flush();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw ClusterError{std::string{e.what()} + " (at input line " +
                         std::to_string(reader.line_number()) + "; " +
                         std::to_string(stats.rows) +
                         " rows already answered)"};
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::size_t index = static_cast<std::size_t>(stats.rows) + i;
      if (classifier) {
        writer.write_class(
            index, static_cast<std::size_t>(batch.predictions[i]), 0.0);
      } else {
        writer.write(index, batch.predictions[i], 0.0);
      }
    }
    writer.flush();
    stats.rows += rows.size();
    ++stats.batches;
    rows.clear();
  };

  bool more = true;
  while (more) {
    try {
      more = reader.next(row);
    } catch (const serve::RowError&) {
      flush();  // Answer everything admitted before the malformed line.
      throw;
    }
    if (!more) {
      break;
    }
    rows.push_back(row);
    if (rows.size() >= batch_size) {
      flush();
    }
  }
  flush();
  return stats;
}

}  // namespace hdc::cluster
