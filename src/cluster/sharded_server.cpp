#include "hdc/cluster/sharded_server.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "hdc/io/delta.hpp"
#include "hdc/io/reload.hpp"

namespace hdc::cluster {

namespace {

/// Offsets inside a predict response payload: [ok][u64 gen][u64 n][data].
constexpr std::size_t kGenOffset = 1;
constexpr std::size_t kCountOffset = 9;
constexpr std::size_t kDataOffset = 17;

}  // namespace

ShardedServer::ShardedServer(std::string snapshot_path,
                             ClusterOptions options)
    : options_(options),
      source_path_(std::move(snapshot_path)),
      base_path_(source_path_) {
  Worker::Config base;
  base.snapshot_path = source_path_;
  base.scheme = options_.scheme;
  base.integrity = options_.integrity;
  base.mapping = options_.mapping;
  if (options_.backend == CommBackend::Loopback) {
    comm_ = std::make_unique<LoopbackComm>(base, options_.replicas);
  } else {
    comm_ = std::make_unique<ForkComm>(base, options_.replicas);
  }
  comm_->barrier();
}

io::PipelineKind ShardedServer::kind() const noexcept {
  return comm_->local_worker().pipeline().kind();
}

std::size_t ShardedServer::num_features() const noexcept {
  return comm_->local_worker().pipeline().num_features();
}

std::size_t ShardedServer::dimension() const noexcept {
  return comm_->local_worker().pipeline().dimension();
}

std::vector<std::string> ShardedServer::checked_exchange(
    std::vector<std::string> requests, const char* what) {
  std::vector<std::string> responses = comm_->exchange(requests);
  for (std::size_t rank = 0; rank < responses.size(); ++rank) {
    const std::string& r = responses[rank];
    if (r.empty()) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " returned an empty frame during " + what};
    }
    if (static_cast<std::uint8_t>(r[0]) != kWorkerOk) {
      throw ClusterError{"cluster rank " + std::to_string(rank) +
                         " rejected " + what + ": " + r.substr(1)};
    }
  }
  return responses;
}

ShardedServer::BatchResult ShardedServer::predict(
    std::span<const std::vector<double>> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return predict_locked(rows);
}

ShardedServer::BatchResult ShardedServer::predict_locked(
    std::span<const std::vector<double>> rows) {
  const std::vector<std::string> responses = checked_exchange(
      build_predict_requests(rows, /*head=*/false), "predict");
  return gather_predictions(responses, rows.size());
}

ShardedServer::BatchResult ShardedServer::predict_text(
    std::span<const std::string> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      build_text_requests(rows, /*head=*/false), "predict");
  return gather_predictions(responses, rows.size());
}

ShardedServer::HeadBatchResult ShardedServer::predict_head(
    std::span<const std::vector<double>> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      build_predict_requests(rows, /*head=*/true), "predict");
  return gather_heads(responses, rows.size());
}

ShardedServer::HeadBatchResult ShardedServer::predict_text_head(
    std::span<const std::string> rows) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      build_text_requests(rows, /*head=*/true), "predict");
  return gather_heads(responses, rows.size());
}

std::vector<std::string> ShardedServer::build_predict_requests(
    std::span<const std::vector<double>> rows, bool head) {
  if (comm_->local_worker().pipeline().input() !=
      io::PipelineInput::Numeric) {
    throw std::invalid_argument{
        "cluster predict: text pipeline takes raw rows (predict_text)"};
  }
  const std::size_t nfeat = num_features();
  for (const std::vector<double>& row : rows) {
    if (row.size() != nfeat) {
      throw std::invalid_argument{"cluster predict: row arity mismatch"};
    }
  }
  const std::size_t replicas = comm_->size();
  const std::size_t nrows = rows.size();
  const auto encode = [&](const double* data, std::size_t count) {
    return head ? encode_predict2_request(data, count, nfeat, true)
                : encode_predict_request(data, count, nfeat);
  };

  std::vector<std::string> requests(replicas);
  if (options_.scheme == ShardScheme::Rows) {
    std::vector<double> flat;
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::size_t begin = shard_begin(rank, replicas, nrows);
      const std::size_t end = shard_end(rank, replicas, nrows);
      flat.clear();
      flat.reserve((end - begin) * nfeat);
      for (std::size_t i = begin; i < end; ++i) {
        flat.insert(flat.end(), rows[i].begin(), rows[i].end());
      }
      requests[rank] = encode(flat.data(), end - begin);
    }
  } else {
    std::vector<double> flat;
    flat.reserve(nrows * nfeat);
    for (const std::vector<double>& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    const std::string request = encode(flat.data(), nrows);
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      requests[rank] = request;
    }
  }
  return requests;
}

std::vector<std::string> ShardedServer::build_text_requests(
    std::span<const std::string> rows, bool head) {
  if (comm_->local_worker().pipeline().input() != io::PipelineInput::Text) {
    throw std::invalid_argument{
        "cluster predict: numeric pipeline takes feature rows, not text"};
  }
  const std::size_t replicas = comm_->size();
  const std::size_t nrows = rows.size();
  std::vector<std::string> requests(replicas);
  if (options_.scheme == ShardScheme::Rows) {
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::size_t begin = shard_begin(rank, replicas, nrows);
      const std::size_t end = shard_end(rank, replicas, nrows);
      requests[rank] = encode_predict2_text_request(
          rows.subspan(begin, end - begin), head);
    }
  } else {
    const std::string request = encode_predict2_text_request(rows, head);
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      requests[rank] = request;
    }
  }
  return requests;
}

std::uint64_t ShardedServer::checked_generation(
    const std::vector<std::string>& responses) const {
  // A batch must be answered by exactly one model generation on every rank;
  // anything else would interleave two models inside one reply stream.
  const std::uint64_t generation = get_u64(responses[0], kGenOffset);
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (get_u64(responses[rank], kGenOffset) != generation) {
      throw ClusterError{"cluster predict: torn generation across ranks"};
    }
  }
  return generation;
}

ShardedServer::BatchResult ShardedServer::gather_predictions(
    const std::vector<std::string>& responses, std::size_t nrows) {
  const std::size_t replicas = responses.size();
  BatchResult result;
  result.generation = checked_generation(responses);
  result.predictions.reserve(nrows);
  if (options_.scheme == ShardScheme::Rows) {
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::string& r = responses[rank];
      const std::size_t count = get_u64(r, kCountOffset);
      for (std::size_t i = 0; i < count; ++i) {
        result.predictions.push_back(get_f64(r, kDataOffset + i * 8));
      }
    }
    if (result.predictions.size() != nrows) {
      throw ClusterError{"cluster predict: row count mismatch in gather"};
    }
  } else {
    const bool classifier = kind() == io::PipelineKind::Classifier;
    for (std::size_t i = 0; i < nrows; ++i) {
      std::uint64_t best_distance = kNoCandidate;
      std::uint64_t best_index = kNoCandidate;
      for (std::size_t rank = 0; rank < replicas; ++rank) {
        const std::size_t base = kDataOffset + i * 16;
        const std::uint64_t distance = get_u64(responses[rank], base);
        const std::uint64_t index = get_u64(responses[rank], base + 8);
        if (index == kNoCandidate) {
          continue;  // Empty slice (more ranks than candidates).
        }
        // Lexicographic (distance, index) minimum across disjoint ascending
        // slices == global argmin with lowest-index tie-breaking.
        if (distance < best_distance ||
            (distance == best_distance && index < best_index)) {
          best_distance = distance;
          best_index = index;
        }
      }
      if (best_index == kNoCandidate) {
        throw ClusterError{"cluster predict: no candidate from any rank"};
      }
      if (classifier) {
        result.predictions.push_back(static_cast<double>(best_index));
      } else {
        result.predictions.push_back(
            comm_->local_worker().pipeline().regressor().labels().value_of(
                best_index));
      }
    }
  }
  return result;
}

ShardedServer::HeadBatchResult ShardedServer::gather_heads(
    const std::vector<std::string>& responses, std::size_t nrows) {
  const std::size_t replicas = responses.size();
  const bool classifier = kind() == io::PipelineKind::Classifier;
  HeadBatchResult result;
  result.generation = checked_generation(responses);
  result.values.reserve(nrows);
  if (classifier) {
    result.confidences.reserve(nrows);
  } else {
    result.bands.reserve(nrows);
  }

  if (options_.scheme == ShardScheme::Rows) {
    // Ranks computed heads locally over the full model; slices concatenate
    // in rank order exactly as plain predictions do.
    const std::size_t fields = classifier ? 2 : 4;
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      const std::string& r = responses[rank];
      const std::size_t count = get_u64(r, kCountOffset);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t base = kDataOffset + i * fields * 8;
        result.values.push_back(get_f64(r, base));
        if (classifier) {
          result.confidences.push_back(get_f64(r, base + 8));
        } else {
          result.bands.push_back(Band{get_f64(r, base + 8),
                                      get_f64(r, base + 16),
                                      get_f64(r, base + 24)});
        }
      }
    }
    if (result.values.size() != nrows) {
      throw ClusterError{"cluster predict: row count mismatch in gather"};
    }
  } else if (classifier) {
    // merge_top2 over disjoint ascending slices equals the top-2 of the
    // union, so label and margin reproduce the single-process head.
    for (std::size_t i = 0; i < nrows; ++i) {
      Top2 merged{};
      for (std::size_t rank = 0; rank < replicas; ++rank) {
        const std::string& r = responses[rank];
        const std::size_t base = kDataOffset + i * 32;
        const Top2 slice{{get_u64(r, base), get_u64(r, base + 8)},
                         {get_u64(r, base + 16), get_u64(r, base + 24)}};
        merged = merge_top2(merged, slice);
      }
      if (merged.best.absent()) {
        throw ClusterError{"cluster predict: no candidate from any rank"};
      }
      result.values.push_back(static_cast<double>(merged.best.index));
      result.confidences.push_back(margin_confidence(merged));
    }
  } else {
    // Each rank sent its slice of the label-grid distance profile; rank
    // slices are disjoint ascending grid ranges, so concatenating them in
    // rank order rebuilds the full profile and both the argmin readout and
    // the band are computed from exactly the single-process integers.
    const ScalarEncoder& labels =
        comm_->local_worker().pipeline().regressor().labels();
    const std::size_t dim = dimension();
    std::vector<std::size_t> widths(replicas);
    std::size_t total = 0;
    for (std::size_t rank = 0; rank < replicas; ++rank) {
      widths[rank] = get_u64(responses[rank], kDataOffset);
      total += widths[rank];
    }
    if (total != labels.size()) {
      throw ClusterError{
          "cluster predict: profile slices do not cover the label grid"};
    }
    std::vector<std::size_t> profile(total);
    for (std::size_t i = 0; i < nrows; ++i) {
      std::size_t at = 0;
      for (std::size_t rank = 0; rank < replicas; ++rank) {
        const std::string& r = responses[rank];
        const std::size_t base = kDataOffset + 8 + i * widths[rank] * 8;
        for (std::size_t j = 0; j < widths[rank]; ++j) {
          profile[at++] = get_u64(r, base + j * 8);
        }
      }
      std::size_t best = 0;
      for (std::size_t j = 1; j < total; ++j) {
        if (profile[j] < profile[best]) {
          best = j;
        }
      }
      result.values.push_back(labels.value_of(best));
      result.bands.push_back(band_from_distances(profile, labels, dim));
    }
  }
  return result;
}

std::uint64_t ShardedServer::reload(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string resolved = path.empty() ? source_path_ : path;
  const bool is_delta = io::snapshot_is_delta(resolved);
  // Validate on rank 0 before any rank flips: a rejected snapshot must
  // leave the whole cluster serving the incumbent generation.
  {
    const io::LoadedPipeline trial = io::load_pipeline_or_delta(
        resolved, base_path_, options_.integrity, options_.mapping);
    io::ensure_swappable(trial.pipeline, comm_->local_worker().pipeline());
  }
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_reload_request(resolved)),
      "reload");
  const std::uint64_t generation = get_u64(responses[0], 1);
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (get_u64(responses[rank], 1) != generation) {
      throw ClusterError{"cluster reload: generation diverged across ranks"};
    }
  }
  generation_ = generation;
  source_path_ = resolved;
  if (!is_delta) {
    base_path_ = resolved;
  }
  return generation;
}

serve::AdaptOutcome ShardedServer::adapt(double target,
                                         std::span<const double> features) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (comm_->local_worker().pipeline().input() != io::PipelineInput::Numeric) {
    throw std::invalid_argument{
        "cluster adapt: text pipeline takes raw samples (adapt_text)"};
  }
  if (features.size() != num_features()) {
    throw std::invalid_argument{"cluster adapt: feature arity mismatch"};
  }
  return adapt_exchange(
      encode_adapt_request(target, features.data(), features.size()));
}

serve::AdaptOutcome ShardedServer::adapt_text(double target,
                                              std::string_view text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (comm_->local_worker().pipeline().input() != io::PipelineInput::Text) {
    throw std::invalid_argument{
        "cluster adapt: numeric pipeline takes feature rows, not text"};
  }
  return adapt_exchange(encode_adapt_text_request(target, text));
}

serve::AdaptOutcome ShardedServer::adapt_exchange(std::string request) {
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), std::move(request)), "adapt");
  // Every rank applied the same sample to a deterministically-seeded
  // overlay: the *entire* response payload must agree byte for byte, or
  // the bit-identical serving contract is already broken.
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (responses[rank] != responses[0]) {
      throw ClusterError{"cluster adapt: outcome diverged across ranks"};
    }
  }
  serve::AdaptOutcome out;
  out.predicted = get_f64(responses[0], 9);
  out.updated = get_u64(responses[0], 17) != 0;
  out.feedback_rows = get_u64(responses[0], 25);
  out.updates = get_u64(responses[0], 33);
  out.overlay_rows = get_u64(responses[0], 41);
  return out;
}

std::uint64_t ShardedServer::export_delta(const std::string& out_path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_delta_rows_request()),
      "delta export");
  for (std::size_t rank = 1; rank < responses.size(); ++rank) {
    if (responses[rank] != responses[0]) {
      throw ClusterError{
          "cluster delta export: changed rows diverged across ranks"};
    }
  }
  const std::string& r = responses[0];
  const std::uint64_t nrows = get_u64(r, 9);
  const std::uint64_t wpr = get_u64(r, 17);
  if (nrows == 0) {
    throw std::runtime_error{
        "delta export: the adapted model does not differ from " + base_path_};
  }
  if (r.size() != 25 + nrows * (8 + wpr * 8)) {
    throw ClusterError{"cluster delta export: truncated row payload"};
  }
  std::map<std::size_t, std::vector<std::uint64_t>> rows;
  std::size_t at = 25;
  for (std::uint64_t i = 0; i < nrows; ++i) {
    const std::uint64_t index = get_u64(r, at);
    at += 8;
    std::vector<std::uint64_t> words(wpr);
    std::memcpy(words.data(), r.data() + at, wpr * 8);
    at += wpr * 8;
    rows.emplace(index, std::move(words));
  }
  const io::MappedSnapshot base = io::MappedSnapshot::open(base_path_);
  const std::size_t section = io::find_model_section(base);
  io::write_delta_file(
      io::make_delta(base, io::snapshot_file_hash(base_path_), section, rows),
      out_path);
  return nrows;
}

std::string ShardedServer::base_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return base_path_;
}

std::uint64_t ShardedServer::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

std::string ShardedServer::source_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return source_path_;
}

std::vector<RankStats> ShardedServer::stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<std::string> responses = checked_exchange(
      std::vector<std::string>(comm_->size(), encode_stats_request()),
      "stats");
  std::vector<RankStats> out;
  out.reserve(responses.size());
  for (const std::string& r : responses) {
    RankStats s;
    s.rank = get_u64(r, 1);
    s.generation = get_u64(r, 9);
    s.rows = get_u64(r, 17);
    s.batches = get_u64(r, 25);
    out.push_back(s);
  }
  return out;
}

ShardedServer::StreamStats ShardedServer::serve_stream(
    serve::RowReader& reader, serve::PredictionWriter& writer,
    std::size_t batch_size) {
  if (batch_size == 0) {
    batch_size = 1;
  }
  const bool text = reader.format() == serve::RowFormat::Text;
  const bool pipeline_text =
      comm_->local_worker().pipeline().input() == io::PipelineInput::Text;
  if (text != pipeline_text) {
    throw std::invalid_argument{
        std::string{"cluster serve: the pipeline takes "} +
        io::to_string(comm_->local_worker().pipeline().input()) +
        " rows but the reader's format disagrees"};
  }
  const bool classifier = kind() == io::PipelineKind::Classifier;
  const serve::HeadMode head = writer.head();
  if (head == serve::HeadMode::Confidence && !classifier) {
    throw std::invalid_argument{
        "cluster serve: confidence heads come from classifiers; regressor "
        "pipelines emit bands"};
  }
  if (head == serve::HeadMode::Band && classifier) {
    throw std::invalid_argument{
        "cluster serve: band heads come from regressors; classifier "
        "pipelines emit confidences"};
  }

  StreamStats stats;
  std::vector<std::vector<double>> rows;
  std::vector<std::string> text_rows;
  std::vector<double> row;
  std::string text_row;

  const auto flush = [&] {
    const std::size_t count = text ? text_rows.size() : rows.size();
    if (count == 0) {
      return;
    }
    BatchResult batch;
    HeadBatchResult heads;
    try {
      if (head == serve::HeadMode::None) {
        batch = text ? predict_text(text_rows) : predict(rows);
      } else {
        heads = text ? predict_text_head(text_rows) : predict_head(rows);
      }
    } catch (const ClusterError& e) {
      // Drain what earlier batches admitted, then rethrow with the stream
      // position: the consumer knows exactly which rows were answered.
      try {
        writer.flush();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw ClusterError{std::string{e.what()} + " (at input line " +
                         std::to_string(reader.line_number()) + "; " +
                         std::to_string(stats.rows) +
                         " rows already answered)"};
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t index = static_cast<std::size_t>(stats.rows) + i;
      if (head == serve::HeadMode::Confidence) {
        writer.write_class(index,
                           static_cast<std::size_t>(heads.values[i]),
                           heads.confidences[i], 0.0);
      } else if (head == serve::HeadMode::Band) {
        writer.write_band(index, heads.values[i], heads.bands[i], 0.0);
      } else if (classifier) {
        writer.write_class(
            index, static_cast<std::size_t>(batch.predictions[i]), 0.0);
      } else {
        writer.write(index, batch.predictions[i], 0.0);
      }
    }
    writer.flush();
    stats.rows += count;
    ++stats.batches;
    rows.clear();
    text_rows.clear();
  };

  bool more = true;
  while (more) {
    try {
      more = text ? reader.next_text(text_row) : reader.next(row);
    } catch (const serve::RowError&) {
      flush();  // Answer everything admitted before the malformed line.
      throw;
    }
    if (!more) {
      break;
    }
    if (text) {
      text_rows.push_back(text_row);
    } else {
      rows.push_back(row);
    }
    if ((text ? text_rows.size() : rows.size()) >= batch_size) {
      flush();
    }
  }
  flush();
  return stats;
}

}  // namespace hdc::cluster
