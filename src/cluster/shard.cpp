#include "hdc/cluster/shard.hpp"

#include <stdexcept>

namespace hdc::cluster {

ShardScheme parse_shard_scheme(const std::string& name) {
  if (name == "rows") {
    return ShardScheme::Rows;
  }
  if (name == "classes") {
    return ShardScheme::Classes;
  }
  throw std::invalid_argument{"unknown shard scheme '" + name +
                              "' (expected rows or classes)"};
}

const char* to_string(ShardScheme scheme) noexcept {
  return scheme == ShardScheme::Rows ? "rows" : "classes";
}

CommBackend parse_comm_backend(const std::string& name) {
  if (name == "loopback") {
    return CommBackend::Loopback;
  }
  if (name == "fork") {
    return CommBackend::Fork;
  }
  throw std::invalid_argument{"unknown comm backend '" + name +
                              "' (expected loopback or fork)"};
}

const char* to_string(CommBackend backend) noexcept {
  return backend == CommBackend::Loopback ? "loopback" : "fork";
}

}  // namespace hdc::cluster
