#include "hdc/cluster/worker.hpp"

#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hdc/core/bitops.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/io/delta.hpp"
#include "hdc/io/reload.hpp"

namespace hdc::cluster {

namespace {

/// Minimum payload bytes for a predict request header (op + two u64).
constexpr std::size_t kPredictHeader = 1 + 8 + 8;

[[nodiscard]] std::string error_response(const std::string& message) {
  std::string out;
  out.reserve(1 + message.size());
  out.push_back(static_cast<char>(kWorkerErr));
  out.append(message);
  return out;
}

}  // namespace

void put_u64(std::string& out, std::uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, sizeof buf);
  out.append(buf, sizeof buf);
}

void put_f64(std::string& out, double value) {
  char buf[8];
  std::memcpy(buf, &value, sizeof buf);
  out.append(buf, sizeof buf);
}

std::uint64_t get_u64(std::string_view payload, std::size_t offset) {
  if (offset + 8 > payload.size()) {
    throw std::out_of_range{"cluster frame: truncated u64 field"};
  }
  std::uint64_t value = 0;
  std::memcpy(&value, payload.data() + offset, sizeof value);
  return value;
}

double get_f64(std::string_view payload, std::size_t offset) {
  if (offset + 8 > payload.size()) {
    throw std::out_of_range{"cluster frame: truncated f64 field"};
  }
  double value = 0;
  std::memcpy(&value, payload.data() + offset, sizeof value);
  return value;
}

std::string encode_ping_request() {
  return std::string(1, static_cast<char>(WorkerOp::Ping));
}

std::string encode_predict_request(const double* rows, std::size_t nrows,
                                   std::size_t nfeat) {
  std::string out;
  out.reserve(kPredictHeader + nrows * nfeat * 8);
  out.push_back(static_cast<char>(WorkerOp::Predict));
  put_u64(out, nrows);
  put_u64(out, nfeat);
  if (nrows * nfeat != 0) {
    out.append(reinterpret_cast<const char*>(rows), nrows * nfeat * 8);
  }
  return out;
}

std::string encode_reload_request(const std::string& path) {
  std::string out;
  out.reserve(1 + 8 + path.size());
  out.push_back(static_cast<char>(WorkerOp::Reload));
  put_u64(out, path.size());
  out.append(path);
  return out;
}

std::string encode_stats_request() {
  return std::string(1, static_cast<char>(WorkerOp::Stats));
}

std::string encode_shutdown_request() {
  return std::string(1, static_cast<char>(WorkerOp::Shutdown));
}

std::string encode_adapt_request(double target, const double* features,
                                 std::size_t nfeat) {
  std::string out;
  out.reserve(1 + 8 + 8 + nfeat * 8);
  out.push_back(static_cast<char>(WorkerOp::Adapt));
  put_f64(out, target);
  put_u64(out, nfeat);
  if (nfeat != 0) {
    out.append(reinterpret_cast<const char*>(features), nfeat * 8);
  }
  return out;
}

std::string encode_delta_rows_request() {
  return std::string(1, static_cast<char>(WorkerOp::DeltaRows));
}

Worker::Worker(Config cfg)
    : cfg_(std::move(cfg)),
      loaded_(io::load_pipeline(cfg_.snapshot_path, cfg_.integrity,
                                cfg_.mapping)),
      source_path_(cfg_.snapshot_path),
      base_path_(cfg_.snapshot_path) {
  if (cfg_.replicas == 0) {
    throw std::invalid_argument{"cluster worker: replicas must be >= 1"};
  }
  if (cfg_.rank >= cfg_.replicas) {
    throw std::invalid_argument{"cluster worker: rank out of range"};
  }
}

std::string Worker::handle(std::string_view request) {
  try {
    if (request.empty()) {
      return error_response("empty request frame");
    }
    switch (static_cast<WorkerOp>(request[0])) {
      case WorkerOp::Ping: {
        std::string out(1, static_cast<char>(kWorkerOk));
        put_u64(out, cfg_.rank);
        return out;
      }
      case WorkerOp::Predict:
        return handle_predict(request.substr(1));
      case WorkerOp::Reload:
        return handle_reload(request.substr(1));
      case WorkerOp::Stats: {
        std::string out(1, static_cast<char>(kWorkerOk));
        put_u64(out, cfg_.rank);
        put_u64(out, generation_);
        put_u64(out, rows_);
        put_u64(out, batches_);
        return out;
      }
      case WorkerOp::Shutdown:
        shutdown_ = true;
        return std::string(1, static_cast<char>(kWorkerOk));
      case WorkerOp::Adapt:
        return handle_adapt(request.substr(1));
      case WorkerOp::DeltaRows:
        return handle_delta_rows();
    }
    return error_response("unknown opcode");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string Worker::handle_predict(std::string_view body) {
  const std::size_t nrows = get_u64(body, 0);
  const std::size_t nfeat = get_u64(body, 8);
  if (nfeat != loaded_.pipeline.num_features()) {
    throw std::invalid_argument{"predict: feature arity mismatch"};
  }
  const std::size_t want = 16 + nrows * nfeat * 8;
  if (body.size() != want) {
    throw std::invalid_argument{"predict: truncated row payload"};
  }
  const char* data = body.data() + 16;

  std::string out;
  out.push_back(static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_u64(out, nrows);
  if (cfg_.scheme == ShardScheme::Rows) {
    predict_rows(nrows, nfeat, data, out);
  } else {
    predict_classes(nrows, nfeat, data, out);
  }
  rows_ += nrows;
  ++batches_;
  return out;
}

void Worker::predict_rows(std::size_t nrows, std::size_t nfeat,
                          const char* data, std::string& out) const {
  const io::Pipeline& p = loaded_.pipeline;
  std::vector<double> row(nfeat);
  for (std::size_t i = 0; i < nrows; ++i) {
    std::memcpy(row.data(), data + i * nfeat * 8, nfeat * 8);
    // An adapted rank serves its overlay immediately: every rank applied
    // the same feedback deterministically, so this stays bit-identical
    // across the fleet.
    if (adaptive_classifier_ != nullptr) {
      put_f64(out, static_cast<double>(
                       adaptive_classifier_->predict(p.encode(row))));
    } else if (adaptive_regressor_ != nullptr) {
      put_f64(out, adaptive_regressor_->predict(p.encode(row)));
    } else if (p.kind() == io::PipelineKind::Classifier) {
      put_f64(out, static_cast<double>(p.classify(row)));
    } else {
      put_f64(out, p.regress(row));
    }
  }
}

void Worker::predict_classes(std::size_t nrows, std::size_t nfeat,
                             const char* data, std::string& out) const {
  const io::Pipeline& p = loaded_.pipeline;
  // The scanned arena: class-vectors for a classifier, the label basis for
  // a regressor (whose query is the self-inverse unbinding model ⊗ phi(x̂)).
  std::span<const std::uint64_t> arena;
  std::size_t stride = 0;
  std::size_t candidates = 0;
  if (p.kind() == io::PipelineKind::Classifier) {
    const CentroidClassifier& model = p.classifier();
    arena = model.packed_class_words();
    stride = model.words_per_class();
    candidates = model.num_classes();
  } else {
    const Basis& labels = p.regressor().labels().basis();
    arena = labels.packed_words();
    stride = labels.words_per_vector();
    candidates = labels.size();
  }
  const std::size_t begin = shard_begin(cfg_.rank, cfg_.replicas, candidates);
  const std::size_t end = shard_end(cfg_.rank, cfg_.replicas, candidates);

  std::vector<double> row(nfeat);
  for (std::size_t i = 0; i < nrows; ++i) {
    std::memcpy(row.data(), data + i * nfeat * 8, nfeat * 8);
    if (begin == end) {
      put_u64(out, kNoCandidate);
      put_u64(out, kNoCandidate);
      continue;
    }
    const Hypervector encoded = p.encode(row);
    if (adaptive_classifier_ != nullptr) {
      // The overlay scan substitutes adapted rows inside the slice and
      // returns the global index directly.
      const auto [distance, index] =
          adaptive_classifier_->nearest_in_slice(encoded, begin, end);
      put_u64(out, distance);
      put_u64(out, index);
      continue;
    }
    bits::NearestMatch best{};
    if (p.kind() == io::PipelineKind::Classifier) {
      best = bits::nearest_hamming(encoded.words(),
                                   arena.subspan(begin * stride), stride,
                                   end - begin);
    } else if (adaptive_regressor_ != nullptr) {
      // Unbind against the *adapted* model; the scanned label basis is
      // shared with the base, so only the query changes.
      const std::span<const std::uint64_t> model =
          adaptive_regressor_->model_words();
      std::vector<std::uint64_t> bound(encoded.words().size());
      for (std::size_t w = 0; w < bound.size(); ++w) {
        bound[w] = model[w] ^ encoded.words()[w];
      }
      best = bits::nearest_hamming(std::span<const std::uint64_t>(bound),
                                   arena.subspan(begin * stride), stride,
                                   end - begin);
    } else {
      const Hypervector bound = p.regressor().model() ^ encoded;
      best = bits::nearest_hamming(bound.words(),
                                   arena.subspan(begin * stride), stride,
                                   end - begin);
    }
    put_u64(out, best.distance);
    put_u64(out, begin + best.index);
  }
}

std::string Worker::handle_reload(std::string_view body) {
  const std::size_t len = get_u64(body, 0);
  if (body.size() != 8 + len) {
    throw std::invalid_argument{"reload: truncated path"};
  }
  std::string path(body.substr(8, len));
  if (path.empty()) {
    path = source_path_;
  }
  const bool is_delta = io::snapshot_is_delta(path);
  io::LoadedPipeline fresh =
      io::load_pipeline_or_delta(path, base_path_, cfg_.integrity,
                                 cfg_.mapping);
  io::ensure_swappable(fresh.pipeline, loaded_.pipeline);
  loaded_ = std::move(fresh);
  source_path_ = std::move(path);
  if (!is_delta) {
    base_path_ = source_path_;
  }
  // Any reload retires the overlay: its feedback targeted the old
  // generation.  (A delta reload of the overlay's own export serves the
  // identical model, now without the overlay indirection.)
  adaptive_classifier_.reset();
  adaptive_regressor_.reset();
  ++generation_;
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  return out;
}

std::string Worker::handle_adapt(std::string_view body) {
  const double target = get_f64(body, 0);
  const std::size_t nfeat = get_u64(body, 8);
  if (nfeat != loaded_.pipeline.num_features()) {
    throw std::invalid_argument{"adapt: feature arity mismatch"};
  }
  if (body.size() != 16 + nfeat * 8) {
    throw std::invalid_argument{"adapt: truncated feature payload"};
  }
  std::vector<double> row(nfeat);
  std::memcpy(row.data(), body.data() + 16, nfeat * 8);
  const io::Pipeline& p = loaded_.pipeline;
  // Validate before lazily creating the overlay so a rejected sample
  // leaves the rank exactly as it was (every rank must stay in lockstep).
  std::size_t label = 0;
  if (p.kind() == io::PipelineKind::Classifier) {
    label = checked_class_label(target, p.classifier().num_classes());
  }
  const Hypervector encoded = p.encode(row);
  double predicted = 0.0;
  std::uint64_t feedback = 0;
  std::uint64_t updates = 0;
  std::uint64_t overlay_rows = 0;
  std::uint64_t before = 0;
  if (p.kind() == io::PipelineKind::Classifier) {
    if (adaptive_classifier_ == nullptr) {
      adaptive_classifier_ = std::make_unique<AdaptiveClassifier>(
          p.classifier_ptr(), kDefaultAdaptSeed);
    }
    before = adaptive_classifier_->updates();
    predicted =
        static_cast<double>(adaptive_classifier_->adapt(label, encoded));
    feedback = adaptive_classifier_->feedback_rows();
    updates = adaptive_classifier_->updates();
    overlay_rows = adaptive_classifier_->touched_classes();
  } else {
    if (adaptive_regressor_ == nullptr) {
      adaptive_regressor_ = std::make_unique<AdaptiveRegressor>(
          p.regressor_ptr(), kDefaultAdaptSeed);
    }
    before = adaptive_regressor_->updates();
    predicted = adaptive_regressor_->adapt(encoded, target);
    feedback = adaptive_regressor_->feedback_rows();
    updates = adaptive_regressor_->updates();
    overlay_rows = adaptive_regressor_->touched() ? 1 : 0;
  }
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_f64(out, predicted);
  put_u64(out, updates != before ? 1 : 0);
  put_u64(out, feedback);
  put_u64(out, updates);
  put_u64(out, overlay_rows);
  return out;
}

std::span<const std::uint64_t> Worker::current_model_row(
    std::size_t index) const {
  if (adaptive_classifier_ != nullptr) {
    return adaptive_classifier_->class_row(index);
  }
  if (adaptive_regressor_ != nullptr) {
    return adaptive_regressor_->model_words();
  }
  const io::Pipeline& p = loaded_.pipeline;
  if (p.kind() == io::PipelineKind::Classifier) {
    const CentroidClassifier& model = p.classifier();
    return model.packed_class_words().subspan(
        index * model.words_per_class(), model.words_per_class());
  }
  return p.regressor().model().words();
}

std::string Worker::handle_delta_rows() {
  // Diff against the base *file*, not the in-memory base model: rows a
  // delta reload already changed must stay in the next patch, and overlay
  // rows that drifted back to the base must drop out.
  const io::MappedSnapshot base = io::MappedSnapshot::open(base_path_);
  const std::size_t section = io::find_model_section(base);
  const io::SectionRecord& record = base.section(section);
  const std::size_t dimension = loaded_.pipeline.dimension();
  if (record.dimension != dimension) {
    throw std::invalid_argument{
        "delta rows: base snapshot dimension disagrees with the serving "
        "model"};
  }
  const auto rows = io::diff_rows(
      base, section, [this](std::size_t i) { return current_model_row(i); });
  const std::uint64_t wpr = (dimension + 63) / 64;
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_u64(out, rows.size());
  put_u64(out, wpr);
  for (const auto& [index, words] : rows) {
    put_u64(out, index);
    out.append(reinterpret_cast<const char*>(words.data()),
               words.size() * 8);
  }
  return out;
}

}  // namespace hdc::cluster
