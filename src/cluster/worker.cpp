#include "hdc/cluster/worker.hpp"

#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hdc/core/bitops.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/confidence.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/io/delta.hpp"
#include "hdc/io/reload.hpp"

namespace hdc::cluster {

namespace {

/// Minimum payload bytes for a predict request header (op + two u64).
constexpr std::size_t kPredictHeader = 1 + 8 + 8;

[[nodiscard]] std::string error_response(const std::string& message) {
  std::string out;
  out.reserve(1 + message.size());
  out.push_back(static_cast<char>(kWorkerErr));
  out.append(message);
  return out;
}

}  // namespace

void put_u64(std::string& out, std::uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, sizeof buf);
  out.append(buf, sizeof buf);
}

void put_f64(std::string& out, double value) {
  char buf[8];
  std::memcpy(buf, &value, sizeof buf);
  out.append(buf, sizeof buf);
}

std::uint64_t get_u64(std::string_view payload, std::size_t offset) {
  if (offset + 8 > payload.size()) {
    throw std::out_of_range{"cluster frame: truncated u64 field"};
  }
  std::uint64_t value = 0;
  std::memcpy(&value, payload.data() + offset, sizeof value);
  return value;
}

double get_f64(std::string_view payload, std::size_t offset) {
  if (offset + 8 > payload.size()) {
    throw std::out_of_range{"cluster frame: truncated f64 field"};
  }
  double value = 0;
  std::memcpy(&value, payload.data() + offset, sizeof value);
  return value;
}

std::string encode_ping_request() {
  return std::string(1, static_cast<char>(WorkerOp::Ping));
}

std::string encode_predict_request(const double* rows, std::size_t nrows,
                                   std::size_t nfeat) {
  std::string out;
  out.reserve(kPredictHeader + nrows * nfeat * 8);
  out.push_back(static_cast<char>(WorkerOp::Predict));
  put_u64(out, nrows);
  put_u64(out, nfeat);
  if (nrows * nfeat != 0) {
    out.append(reinterpret_cast<const char*>(rows), nrows * nfeat * 8);
  }
  return out;
}

std::string encode_reload_request(const std::string& path) {
  std::string out;
  out.reserve(1 + 8 + path.size());
  out.push_back(static_cast<char>(WorkerOp::Reload));
  put_u64(out, path.size());
  out.append(path);
  return out;
}

std::string encode_stats_request() {
  return std::string(1, static_cast<char>(WorkerOp::Stats));
}

std::string encode_shutdown_request() {
  return std::string(1, static_cast<char>(WorkerOp::Shutdown));
}

std::string encode_adapt_request(double target, const double* features,
                                 std::size_t nfeat) {
  std::string out;
  out.reserve(1 + 8 + 8 + nfeat * 8);
  out.push_back(static_cast<char>(WorkerOp::Adapt));
  put_f64(out, target);
  put_u64(out, nfeat);
  if (nfeat != 0) {
    out.append(reinterpret_cast<const char*>(features), nfeat * 8);
  }
  return out;
}

std::string encode_delta_rows_request() {
  return std::string(1, static_cast<char>(WorkerOp::DeltaRows));
}

std::string encode_predict2_request(const double* rows, std::size_t nrows,
                                    std::size_t nfeat, bool head) {
  std::string out;
  out.reserve(2 + kPredictHeader - 1 + nrows * nfeat * 8);
  out.push_back(static_cast<char>(WorkerOp::Predict2));
  out.push_back(static_cast<char>(head ? kPredictFlagHead : 0));
  put_u64(out, nrows);
  put_u64(out, nfeat);
  if (nrows * nfeat != 0) {
    out.append(reinterpret_cast<const char*>(rows), nrows * nfeat * 8);
  }
  return out;
}

std::string encode_predict2_text_request(std::span<const std::string> rows,
                                         bool head) {
  std::size_t bytes = 0;
  for (const std::string& row : rows) {
    bytes += 8 + row.size();
  }
  std::string out;
  out.reserve(2 + 8 + bytes);
  out.push_back(static_cast<char>(WorkerOp::Predict2));
  out.push_back(static_cast<char>(kPredictFlagText |
                                  (head ? kPredictFlagHead : 0)));
  put_u64(out, rows.size());
  for (const std::string& row : rows) {
    put_u64(out, row.size());
    out.append(row);
  }
  return out;
}

std::string encode_adapt_text_request(double target, std::string_view text) {
  std::string out;
  out.reserve(1 + 8 + 8 + text.size());
  out.push_back(static_cast<char>(WorkerOp::AdaptText));
  put_f64(out, target);
  put_u64(out, text.size());
  out.append(text);
  return out;
}

Worker::Worker(Config cfg)
    : cfg_(std::move(cfg)),
      loaded_(io::load_pipeline(cfg_.snapshot_path, cfg_.integrity,
                                cfg_.mapping)),
      source_path_(cfg_.snapshot_path),
      base_path_(cfg_.snapshot_path) {
  if (cfg_.replicas == 0) {
    throw std::invalid_argument{"cluster worker: replicas must be >= 1"};
  }
  if (cfg_.rank >= cfg_.replicas) {
    throw std::invalid_argument{"cluster worker: rank out of range"};
  }
}

std::string Worker::handle(std::string_view request) {
  try {
    if (request.empty()) {
      return error_response("empty request frame");
    }
    switch (static_cast<WorkerOp>(request[0])) {
      case WorkerOp::Ping: {
        std::string out(1, static_cast<char>(kWorkerOk));
        put_u64(out, cfg_.rank);
        return out;
      }
      case WorkerOp::Predict:
        return handle_predict(request.substr(1));
      case WorkerOp::Reload:
        return handle_reload(request.substr(1));
      case WorkerOp::Stats: {
        std::string out(1, static_cast<char>(kWorkerOk));
        put_u64(out, cfg_.rank);
        put_u64(out, generation_);
        put_u64(out, rows_);
        put_u64(out, batches_);
        return out;
      }
      case WorkerOp::Shutdown:
        shutdown_ = true;
        return std::string(1, static_cast<char>(kWorkerOk));
      case WorkerOp::Adapt:
        return handle_adapt(request.substr(1));
      case WorkerOp::DeltaRows:
        return handle_delta_rows();
      case WorkerOp::Predict2:
        return handle_predict2(request.substr(1));
      case WorkerOp::AdaptText:
        return handle_adapt_text(request.substr(1));
    }
    return error_response("unknown opcode");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

std::string Worker::handle_predict(std::string_view body) {
  const std::size_t nrows = get_u64(body, 0);
  const std::size_t nfeat = get_u64(body, 8);
  if (nfeat != loaded_.pipeline.num_features()) {
    throw std::invalid_argument{"predict: feature arity mismatch"};
  }
  const std::size_t want = 16 + nrows * nfeat * 8;
  if (body.size() != want) {
    throw std::invalid_argument{"predict: truncated row payload"};
  }
  const char* data = body.data() + 16;
  const io::Pipeline& p = loaded_.pipeline;
  std::vector<Hypervector> encoded;
  encoded.reserve(nrows);
  std::vector<double> row(nfeat);
  for (std::size_t i = 0; i < nrows; ++i) {
    std::memcpy(row.data(), data + i * nfeat * 8, nfeat * 8);
    encoded.push_back(p.encode(row));
  }

  std::string out;
  out.push_back(static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_u64(out, nrows);
  if (cfg_.scheme == ShardScheme::Rows) {
    predict_rows(encoded, /*head=*/false, out);
  } else {
    predict_classes(encoded, /*head=*/false, out);
  }
  rows_ += nrows;
  ++batches_;
  return out;
}

std::string Worker::handle_predict2(std::string_view body) {
  if (body.empty()) {
    throw std::invalid_argument{"predict: missing flags byte"};
  }
  const std::uint8_t flags = static_cast<std::uint8_t>(body[0]);
  if ((flags & ~(kPredictFlagText | kPredictFlagHead)) != 0) {
    throw std::invalid_argument{"predict: unknown request flags"};
  }
  const bool text = (flags & kPredictFlagText) != 0;
  const bool head = (flags & kPredictFlagHead) != 0;
  const io::Pipeline& p = loaded_.pipeline;
  if (text != (p.input() == io::PipelineInput::Text)) {
    throw std::invalid_argument{
        std::string{"predict: request carries "} +
        (text ? "text" : "numeric") + " rows but the pipeline takes " +
        io::to_string(p.input()) + " rows"};
  }
  const std::size_t nrows = get_u64(body, 1);
  std::vector<Hypervector> encoded;
  encoded.reserve(nrows);
  if (text) {
    std::size_t at = 9;
    for (std::size_t i = 0; i < nrows; ++i) {
      const std::size_t len = get_u64(body, at);
      at += 8;
      if (len > body.size() - at) {
        throw std::invalid_argument{"predict: truncated text row"};
      }
      encoded.push_back(p.encode_text(body.substr(at, len)));
      at += len;
    }
    if (at != body.size()) {
      throw std::invalid_argument{"predict: trailing bytes after text rows"};
    }
  } else {
    const std::size_t nfeat = get_u64(body, 9);
    if (nfeat != p.num_features()) {
      throw std::invalid_argument{"predict: feature arity mismatch"};
    }
    if (body.size() != 17 + nrows * nfeat * 8) {
      throw std::invalid_argument{"predict: truncated row payload"};
    }
    std::vector<double> row(nfeat);
    for (std::size_t i = 0; i < nrows; ++i) {
      std::memcpy(row.data(), body.data() + 17 + i * nfeat * 8, nfeat * 8);
      encoded.push_back(p.encode(row));
    }
  }

  std::string out;
  out.push_back(static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_u64(out, nrows);
  if (cfg_.scheme == ShardScheme::Rows) {
    predict_rows(encoded, head, out);
  } else {
    predict_classes(encoded, head, out);
  }
  rows_ += nrows;
  ++batches_;
  return out;
}

void Worker::predict_rows(std::span<const Hypervector> encoded, bool head,
                          std::string& out) const {
  const io::Pipeline& p = loaded_.pipeline;
  const bool classifies = p.kind() == io::PipelineKind::Classifier;
  for (const Hypervector& query : encoded) {
    // An adapted rank serves its overlay immediately: every rank applied
    // the same feedback deterministically, so this stays bit-identical
    // across the fleet.
    if (classifies) {
      if (head) {
        const Top2 top = adaptive_classifier_ != nullptr
                             ? adaptive_classifier_->predict_top2(query)
                             : p.classifier().predict_top2(query);
        put_f64(out, static_cast<double>(top.best.index));
        put_f64(out, margin_confidence(top));
      } else if (adaptive_classifier_ != nullptr) {
        put_f64(out,
                static_cast<double>(adaptive_classifier_->predict(query)));
      } else {
        put_f64(out, static_cast<double>(p.classifier().predict(query)));
      }
    } else {
      put_f64(out, adaptive_regressor_ != nullptr
                       ? adaptive_regressor_->predict(query)
                       : p.regressor().predict(query));
      if (head) {
        const Band band = adaptive_regressor_ != nullptr
                              ? adaptive_regressor_->predict_band(query)
                              : p.regressor().predict_band(query);
        put_f64(out, band.p10);
        put_f64(out, band.p50);
        put_f64(out, band.p90);
      }
    }
  }
}

void Worker::predict_classes(std::span<const Hypervector> encoded, bool head,
                             std::string& out) const {
  const io::Pipeline& p = loaded_.pipeline;
  const bool classifies = p.kind() == io::PipelineKind::Classifier;
  // The scanned arena: class-vectors for a classifier, the label basis for
  // a regressor (whose query is the self-inverse unbinding model ⊗ phi(x̂)).
  std::span<const std::uint64_t> arena;
  std::size_t stride = 0;
  std::size_t candidates = 0;
  if (classifies) {
    const CentroidClassifier& model = p.classifier();
    arena = model.packed_class_words();
    stride = model.words_per_class();
    candidates = model.num_classes();
  } else {
    const Basis& labels = p.regressor().labels().basis();
    arena = labels.packed_words();
    stride = labels.words_per_vector();
    candidates = labels.size();
  }
  const std::size_t begin = shard_begin(cfg_.rank, cfg_.replicas, candidates);
  const std::size_t end = shard_end(cfg_.rank, cfg_.replicas, candidates);

  if (!classifies && head) {
    // The head-carrying regressor frame leads with the slice width; rank
    // profiles concatenated in rank order rebuild the full grid profile.
    put_u64(out, end - begin);
  }
  std::vector<std::uint64_t> bound;
  for (const Hypervector& query : encoded) {
    if (begin == end) {
      // Empty slice (more ranks than candidates): all-ones sentinels for
      // candidate frames, zero-width profiles for regressor heads.
      if (!classifies && head) {
        continue;
      }
      const int sentinels = classifies && head ? 4 : 2;
      for (int k = 0; k < sentinels; ++k) {
        put_u64(out, kNoCandidate);
      }
      continue;
    }
    if (classifies) {
      if (head) {
        const Top2 top =
            adaptive_classifier_ != nullptr
                ? adaptive_classifier_->top2_in_slice(query, begin, end)
                : top2_hamming(query.words(), arena.subspan(begin * stride),
                               stride, end - begin, begin);
        put_u64(out, top.best.distance);
        put_u64(out, top.best.index);
        put_u64(out, top.second.distance);
        put_u64(out, top.second.index);
      } else if (adaptive_classifier_ != nullptr) {
        // The overlay scan substitutes adapted rows inside the slice and
        // returns the global index directly.
        const auto [distance, index] =
            adaptive_classifier_->nearest_in_slice(query, begin, end);
        put_u64(out, distance);
        put_u64(out, index);
      } else {
        const bits::NearestMatch best = bits::nearest_hamming(
            query.words(), arena.subspan(begin * stride), stride,
            end - begin);
        put_u64(out, best.distance);
        put_u64(out, begin + best.index);
      }
      continue;
    }
    // Unbind against the (possibly adapted) model; the scanned label basis
    // is shared with the base, so only the query changes.
    const std::span<const std::uint64_t> model =
        adaptive_regressor_ != nullptr ? adaptive_regressor_->model_words()
                                       : p.regressor().model().words();
    bound.resize(query.words().size());
    for (std::size_t w = 0; w < bound.size(); ++w) {
      bound[w] = model[w] ^ query.words()[w];
    }
    const std::span<const std::uint64_t> unbound{bound};
    if (head) {
      for (std::size_t j = begin; j < end; ++j) {
        put_u64(out, bits::hamming(unbound, arena.subspan(j * stride,
                                                          stride)));
      }
    } else {
      const bits::NearestMatch best = bits::nearest_hamming(
          unbound, arena.subspan(begin * stride), stride, end - begin);
      put_u64(out, best.distance);
      put_u64(out, begin + best.index);
    }
  }
}

std::string Worker::handle_reload(std::string_view body) {
  const std::size_t len = get_u64(body, 0);
  if (body.size() != 8 + len) {
    throw std::invalid_argument{"reload: truncated path"};
  }
  std::string path(body.substr(8, len));
  if (path.empty()) {
    path = source_path_;
  }
  const bool is_delta = io::snapshot_is_delta(path);
  io::LoadedPipeline fresh =
      io::load_pipeline_or_delta(path, base_path_, cfg_.integrity,
                                 cfg_.mapping);
  io::ensure_swappable(fresh.pipeline, loaded_.pipeline);
  loaded_ = std::move(fresh);
  source_path_ = std::move(path);
  if (!is_delta) {
    base_path_ = source_path_;
  }
  // Any reload retires the overlay: its feedback targeted the old
  // generation.  (A delta reload of the overlay's own export serves the
  // identical model, now without the overlay indirection.)
  adaptive_classifier_.reset();
  adaptive_regressor_.reset();
  ++generation_;
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  return out;
}

std::string Worker::handle_adapt(std::string_view body) {
  const double target = get_f64(body, 0);
  const std::size_t nfeat = get_u64(body, 8);
  if (nfeat != loaded_.pipeline.num_features()) {
    throw std::invalid_argument{"adapt: feature arity mismatch"};
  }
  if (body.size() != 16 + nfeat * 8) {
    throw std::invalid_argument{"adapt: truncated feature payload"};
  }
  std::vector<double> row(nfeat);
  std::memcpy(row.data(), body.data() + 16, nfeat * 8);
  return adapt_response(target, loaded_.pipeline.encode(row));
}

std::string Worker::handle_adapt_text(std::string_view body) {
  const double target = get_f64(body, 0);
  const std::size_t len = get_u64(body, 8);
  if (body.size() != 16 + len) {
    throw std::invalid_argument{"adapt: truncated text payload"};
  }
  return adapt_response(target,
                        loaded_.pipeline.encode_text(body.substr(16, len)));
}

std::string Worker::adapt_response(double target,
                                   const Hypervector& encoded) {
  const io::Pipeline& p = loaded_.pipeline;
  // Validate before lazily creating the overlay so a rejected sample
  // leaves the rank exactly as it was (every rank must stay in lockstep).
  std::size_t label = 0;
  if (p.kind() == io::PipelineKind::Classifier) {
    label = checked_class_label(target, p.classifier().num_classes());
  }
  double predicted = 0.0;
  std::uint64_t feedback = 0;
  std::uint64_t updates = 0;
  std::uint64_t overlay_rows = 0;
  std::uint64_t before = 0;
  if (p.kind() == io::PipelineKind::Classifier) {
    if (adaptive_classifier_ == nullptr) {
      adaptive_classifier_ = std::make_unique<AdaptiveClassifier>(
          p.classifier_ptr(), kDefaultAdaptSeed);
    }
    before = adaptive_classifier_->updates();
    predicted =
        static_cast<double>(adaptive_classifier_->adapt(label, encoded));
    feedback = adaptive_classifier_->feedback_rows();
    updates = adaptive_classifier_->updates();
    overlay_rows = adaptive_classifier_->touched_classes();
  } else {
    if (adaptive_regressor_ == nullptr) {
      adaptive_regressor_ = std::make_unique<AdaptiveRegressor>(
          p.regressor_ptr(), kDefaultAdaptSeed);
    }
    before = adaptive_regressor_->updates();
    predicted = adaptive_regressor_->adapt(encoded, target);
    feedback = adaptive_regressor_->feedback_rows();
    updates = adaptive_regressor_->updates();
    overlay_rows = adaptive_regressor_->touched() ? 1 : 0;
  }
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_f64(out, predicted);
  put_u64(out, updates != before ? 1 : 0);
  put_u64(out, feedback);
  put_u64(out, updates);
  put_u64(out, overlay_rows);
  return out;
}

std::span<const std::uint64_t> Worker::current_model_row(
    std::size_t index) const {
  if (adaptive_classifier_ != nullptr) {
    return adaptive_classifier_->class_row(index);
  }
  if (adaptive_regressor_ != nullptr) {
    return adaptive_regressor_->model_words();
  }
  const io::Pipeline& p = loaded_.pipeline;
  if (p.kind() == io::PipelineKind::Classifier) {
    const CentroidClassifier& model = p.classifier();
    return model.packed_class_words().subspan(
        index * model.words_per_class(), model.words_per_class());
  }
  return p.regressor().model().words();
}

std::string Worker::handle_delta_rows() {
  // Diff against the base *file*, not the in-memory base model: rows a
  // delta reload already changed must stay in the next patch, and overlay
  // rows that drifted back to the base must drop out.
  const io::MappedSnapshot base = io::MappedSnapshot::open(base_path_);
  const std::size_t section = io::find_model_section(base);
  const io::SectionRecord& record = base.section(section);
  const std::size_t dimension = loaded_.pipeline.dimension();
  if (record.dimension != dimension) {
    throw std::invalid_argument{
        "delta rows: base snapshot dimension disagrees with the serving "
        "model"};
  }
  const auto rows = io::diff_rows(
      base, section, [this](std::size_t i) { return current_model_row(i); });
  const std::uint64_t wpr = (dimension + 63) / 64;
  std::string out(1, static_cast<char>(kWorkerOk));
  put_u64(out, generation_);
  put_u64(out, rows.size());
  put_u64(out, wpr);
  for (const auto& [index, words] : rows) {
    put_u64(out, index);
    out.append(reinterpret_cast<const char*>(words.data()),
               words.size() * 8);
  }
  return out;
}

}  // namespace hdc::cluster
