#include "hdc/hash/hd_hashing.hpp"

#include <string>

#include "hdc/base/require.hpp"
#include "hdc/core/item_memory.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/circular.hpp"

namespace hdc::hash {

namespace {

Basis make_ring_basis(const HDHashRing::Config& config) {
  require(config.ring_size >= 2, "HDHashRing", "ring_size must be >= 2");
  require_positive(config.dimension, "HDHashRing", "dimension");
  require_positive(config.virtual_nodes, "HDHashRing", "virtual_nodes");
  CircularBasisConfig basis_config;
  basis_config.dimension = config.dimension;
  basis_config.size = config.ring_size;
  basis_config.seed = config.seed;
  return make_circular_basis(basis_config);
}

}  // namespace

HDHashRing::HDHashRing(const Config& config)
    : encoder_(make_ring_basis(config), stats::two_pi),
      virtual_nodes_(config.virtual_nodes),
      seed_(config.seed) {}

double HDHashRing::key_angle(std::string_view key) const noexcept {
  // Map the 64-bit key hash uniformly onto the circle.
  const std::uint64_t h = fnv1a64(key);
  return static_cast<double>(h >> 11) * 0x1.0p-53 * stats::two_pi;
}

void HDHashRing::add_server(std::string_view id) {
  require(!id.empty(), "HDHashRing::add_server", "server id must be non-empty");
  require(!servers_.contains(std::string(id)), "HDHashRing::add_server",
          "server already present");
  servers_.insert(std::string(id));
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    const std::string node = std::string(id) + "#" + std::to_string(v);
    const std::size_t slot =
        static_cast<std::size_t>(derive_seed(seed_, fnv1a64(node))) %
        ring_size();
    occupancy_[slot].insert(std::string(id));
  }
}

bool HDHashRing::remove_server(std::string_view id) {
  const auto it = servers_.find(std::string(id));
  if (it == servers_.end()) {
    return false;
  }
  servers_.erase(it);
  for (auto slot_it = occupancy_.begin(); slot_it != occupancy_.end();) {
    slot_it->second.erase(std::string(id));
    if (slot_it->second.empty()) {
      slot_it = occupancy_.erase(slot_it);
    } else {
      ++slot_it;
    }
  }
  return true;
}

std::size_t HDHashRing::slot_of_key(std::string_view key) const {
  return encoder_.index_of(key_angle(key));
}

std::optional<std::string> HDHashRing::resolve_slot(std::size_t slot) const {
  if (occupancy_.empty()) {
    return std::nullopt;
  }
  // First occupied slot clockwise (i.e. >= slot, wrapping around).
  auto it = occupancy_.lower_bound(slot);
  if (it == occupancy_.end()) {
    it = occupancy_.begin();
  }
  return *it->second.begin();
}

std::optional<std::string> HDHashRing::lookup(std::string_view key) const {
  return resolve_slot(slot_of_key(key));
}

std::optional<std::string> HDHashRing::lookup_noisy(std::string_view key,
                                                    std::size_t corrupted_bits,
                                                    Rng& rng) const {
  const HypervectorView clean = encoder_.basis()[slot_of_key(key)];
  const Hypervector noisy = flip_random_bits(clean, corrupted_bits, rng);
  // Nearest-neighbour cleanup over the ring recovers the slot despite the
  // corruption; this is where hyperdimensional robustness pays off.
  const std::size_t recovered = encoder_.basis().nearest(noisy);
  return resolve_slot(recovered);
}

std::vector<std::size_t> HDHashRing::server_slots(std::string_view id) const {
  std::vector<std::size_t> out;
  for (const auto& [slot, ids] : occupancy_) {
    if (ids.contains(std::string(id))) {
      out.push_back(slot);
    }
  }
  return out;
}

}  // namespace hdc::hash
