#ifndef HDC_HASH_HD_HASHING_HPP
#define HDC_HASH_HD_HASHING_HPP

/// \file hd_hashing.hpp
/// \brief Hyperdimensional consistent hashing (Heddes et al., DAC 2022).
///
/// Circular-hypervectors were introduced for dynamic hash tables before the
/// paper generalized them to learning (Section 5.1 cites the system as [13]).
/// This module implements that substrate: a consistent-hashing ring whose
/// slots are the elements of a circular basis.  A key hashes to an angle,
/// the angle is encoded as the nearest ring hypervector, and the key is
/// served by the first occupied slot clockwise.  Because slot recovery is a
/// nearest-neighbour search in hyperspace, lookups stay correct even when
/// the query hypervector is corrupted by hundreds of bit flips — the
/// robustness property the DAC'22 paper exploits — and adding or removing a
/// server only remaps the keys of the arc it owns.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace hdc::hash {

/// Consistent-hashing ring over circular hypervectors.
class HDHashRing {
 public:
  /// Configuration of the ring geometry.
  struct Config {
    std::size_t dimension = default_dimension;  ///< Hypervector bits.
    std::size_t ring_size = 256;                ///< Slots on the circle.
    std::size_t virtual_nodes = 4;              ///< Slots per server.
    std::uint64_t seed = 1;
  };

  /// \throws std::invalid_argument on degenerate configuration.
  explicit HDHashRing(const Config& config);

  [[nodiscard]] std::size_t ring_size() const noexcept {
    return encoder_.size();
  }
  [[nodiscard]] std::size_t num_servers() const noexcept {
    return servers_.size();
  }

  /// Registers a server under \p virtual_nodes ring slots.
  /// \throws std::invalid_argument if the id is empty or already present.
  void add_server(std::string_view id);

  /// Removes a server; returns false if it was not present.
  bool remove_server(std::string_view id);

  /// The ring slot a key's hypervector lands on (before walking to a
  /// server); pure function of the key and the ring geometry.
  [[nodiscard]] std::size_t slot_of_key(std::string_view key) const;

  /// The server responsible for \p key, or nullopt if the ring is empty.
  [[nodiscard]] std::optional<std::string> lookup(std::string_view key) const;

  /// Robustness probe: encodes the key, flips \p corrupted_bits random bits
  /// of the query hypervector, then resolves it like lookup().  With a
  /// d = 10,000 ring even thousands of flipped bits rarely change the
  /// outcome.  \throws std::invalid_argument if corrupted_bits > dimension.
  [[nodiscard]] std::optional<std::string> lookup_noisy(
      std::string_view key, std::size_t corrupted_bits, Rng& rng) const;

  /// Slots currently owned by \p id (empty if unknown).
  [[nodiscard]] std::vector<std::size_t> server_slots(
      std::string_view id) const;

  /// The circular basis backing the ring (for inspection and tests).
  [[nodiscard]] const Basis& ring() const noexcept { return encoder_.basis(); }

 private:
  [[nodiscard]] std::optional<std::string> resolve_slot(std::size_t slot) const;
  [[nodiscard]] double key_angle(std::string_view key) const noexcept;

  CircularScalarEncoder encoder_;
  std::size_t virtual_nodes_;
  std::uint64_t seed_;
  /// slot -> servers anchored there (ordered for deterministic tie-breaks).
  std::map<std::size_t, std::set<std::string>> occupancy_;
  std::set<std::string> servers_;
};

}  // namespace hdc::hash

#endif  // HDC_HASH_HD_HASHING_HPP
