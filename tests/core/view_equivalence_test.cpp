// Property/fuzz suite for the arena-backed zero-copy refactor: every result
// computed through `HypervectorView`s into the packed `Basis` arena must be
// bit-identical to the "copy path" — the same computation over owning
// `Hypervector` copies materialized from those views (which reproduces the
// pre-refactor storage layout).  The sweep covers the word-boundary edge
// dimensions (1, 63, 64, 65, 127) plus the paper-scale ones (10'000, 10'240)
// for all four basis families, with several generation seeds each.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/multiscale_encoder.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/core/scatter_code.hpp"
#include "hdc/core/serialization.hpp"

namespace {

using hdc::Basis;
using hdc::BasisKind;
using hdc::Hypervector;
using hdc::HypervectorView;
using hdc::Rng;

struct SweepCase {
  BasisKind kind;
  std::size_t dimension;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(hdc::to_string(info.param.kind)) + "_d" +
         std::to_string(info.param.dimension);
}

Basis make_basis(BasisKind kind, std::size_t d, std::size_t m,
                 std::uint64_t seed) {
  switch (kind) {
    case BasisKind::Random: {
      hdc::RandomBasisConfig config;
      config.dimension = d;
      config.size = m;
      config.seed = seed;
      return hdc::make_random_basis(config);
    }
    case BasisKind::Level: {
      hdc::LevelBasisConfig config;
      config.dimension = d;
      config.size = m;
      config.seed = seed;
      return hdc::make_level_basis(config);
    }
    case BasisKind::Circular: {
      hdc::CircularBasisConfig config;
      config.dimension = d;
      config.size = m;
      config.seed = seed;
      return hdc::make_circular_basis(config);
    }
    case BasisKind::Scatter: {
      hdc::ScatterBasisConfig config;
      config.dimension = d;
      config.size = m;
      config.seed = seed;
      return hdc::make_scatter_basis(config);
    }
  }
  throw std::logic_error("unknown basis kind");
}

/// The copy path: owning duplicates of every arena row, i.e. exactly the
/// per-Hypervector storage the pre-refactor Basis kept alongside the arena.
std::vector<Hypervector> materialize(const Basis& basis) {
  std::vector<Hypervector> copies;
  copies.reserve(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    copies.emplace_back(basis[i]);
  }
  return copies;
}

/// Reference cleanup: per-pair distances over owning copies with a strict
/// less-than scan, the documented tie rule (lowest index wins).
std::size_t copy_path_nearest(const std::vector<Hypervector>& copies,
                              const Hypervector& query) {
  std::size_t best = 0;
  std::size_t best_dist = hdc::hamming_distance(query, copies[0]);
  for (std::size_t i = 1; i < copies.size(); ++i) {
    const std::size_t dist = hdc::hamming_distance(query, copies[i]);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

class ViewEquivalenceTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ViewEquivalenceTest, ViewsAreBitIdenticalToCopies) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const Basis basis = make_basis(kind, d, m, seed);
    const std::vector<Hypervector> copies = materialize(basis);
    ASSERT_EQ(basis.size(), m);
    ASSERT_EQ(basis.packed_words().size(), m * basis.words_per_vector());
    std::size_t index = 0;
    for (const HypervectorView view : basis) {
      EXPECT_TRUE(view == copies[index]) << "row " << index;
      EXPECT_EQ(view.count_ones(), copies[index].count_ones());
      EXPECT_EQ(view.bit(0), copies[index].bit(0));
      EXPECT_EQ(view.bit(d - 1), copies[index].bit(d - 1));
      ++index;
    }
    EXPECT_EQ(index, m);
  }
}

TEST_P(ViewEquivalenceTest, NearestMatchesCopyPath) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    const Basis basis = make_basis(kind, d, m, seed);
    const std::vector<Hypervector> copies = materialize(basis);
    Rng rng(seed * 1'000'003ULL);

    std::vector<Hypervector> queries;
    for (std::size_t i = 0; i < m; ++i) {
      queries.push_back(copies[i]);  // exact members (maximally tied inputs)
      queries.push_back(hdc::flip_random_bits(basis[i], d / 5, rng));
    }
    for (int q = 0; q < 4; ++q) {
      queries.push_back(Hypervector::random(d, rng));
    }

    for (const Hypervector& query : queries) {
      const std::size_t expected = copy_path_nearest(copies, query);
      EXPECT_EQ(basis.nearest(query), expected);
      EXPECT_EQ(basis.nearest_words(query.words()), expected);
    }
  }
}

TEST_P(ViewEquivalenceTest, PairwiseDistancesMatchCopyPath) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  for (const std::uint64_t seed : {31ULL, 32ULL}) {
    const Basis basis = make_basis(kind, d, m, seed);
    const std::vector<Hypervector> copies = materialize(basis);
    const auto dist = basis.pairwise_distances();
    ASSERT_EQ(dist.size(), m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        // Same integer Hamming count divided by the same double — the
        // results must be bit-identical, not merely close.
        EXPECT_EQ(dist[i][j], hdc::normalized_distance(copies[i], copies[j]))
            << "pair (" << i << ", " << j << ")";
      }
    }
  }
}

TEST_P(ViewEquivalenceTest, BindingViewsMatchesBindingCopies) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  const Basis basis = make_basis(kind, d, m, 41);
  const std::vector<Hypervector> copies = materialize(basis);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const Hypervector from_views = basis[i] ^ basis[j];
      const Hypervector from_copies = copies[i] ^ copies[j];
      EXPECT_EQ(from_views, from_copies) << "pair (" << i << ", " << j << ")";
      EXPECT_EQ(from_views, hdc::bind(basis[i], copies[j]));
    }
  }
}

TEST_P(ViewEquivalenceTest, EncodeDecodeRoundTripMatchesCopyPath) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  const Basis basis = make_basis(kind, d, m, 51);
  const std::vector<Hypervector> copies = materialize(basis);

  const hdc::LinearScalarEncoder linear(basis, 0.0, 1.0);
  const hdc::CircularScalarEncoder circular(basis, 1.0);
  for (const hdc::ScalarEncoder* encoder :
       {static_cast<const hdc::ScalarEncoder*>(&linear),
        static_cast<const hdc::ScalarEncoder*>(&circular)}) {
    for (std::size_t i = 0; i < m; ++i) {
      const double value = encoder->value_of(i);
      const HypervectorView encoded = encoder->encode(value);
      // The view must hit the exact arena row the copy path owns...
      EXPECT_TRUE(encoded == copies[encoder->index_of(value)]) << "grid " << i;
      // ...and decoding a view query must equal decoding its owned copy,
      // which in turn must match the reference cleanup over copies.
      const Hypervector owned(encoded);
      EXPECT_EQ(encoder->decode(encoded), encoder->decode(owned));
      EXPECT_EQ(encoder->decode(owned),
                encoder->value_of(copy_path_nearest(copies, owned)));
    }
  }
}

TEST_P(ViewEquivalenceTest, SerializationRoundTripPreservesArena) {
  const auto [kind, d] = GetParam();
  const std::size_t m = d > 1'000 ? 8 : 16;
  const Basis basis = make_basis(kind, d, m, 61);
  std::stringstream stream;
  hdc::write_basis(stream, basis);
  const Basis loaded = hdc::read_basis(stream);
  ASSERT_EQ(loaded.size(), basis.size());
  ASSERT_EQ(loaded.words_per_vector(), basis.words_per_vector());
  // The deserialized arena must not retain growth slack: resident bytes on
  // the read path match the freshly generated basis exactly.
  EXPECT_EQ(loaded.resident_bytes(), basis.resident_bytes());
  const auto a = basis.packed_words();
  const auto b = loaded.packed_words();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    ASSERT_EQ(a[w], b[w]) << "word " << w;
  }
}

TEST(ViewEquivalenceMultiScaleTest, ViewAndCopyQueriesDecodeIdentically) {
  // The multi-scale encoder serves views out of its own bound-vector arena;
  // querying decode() with the view and with a materialized copy of it must
  // agree everywhere on the grid.
  for (const std::size_t d : {1UL, 63UL, 64UL, 65UL, 127UL, 10'000UL}) {
    hdc::MultiScaleCircularEncoder::Config config;
    config.dimension = d;
    config.scales = {4, 16};
    config.period = 24.0;
    config.seed = 71;
    const hdc::MultiScaleCircularEncoder enc(config);
    for (std::size_t i = 0; i < enc.size(); ++i) {
      const HypervectorView view = enc.encode(enc.value_of(i));
      const Hypervector copy(view);
      EXPECT_EQ(enc.decode(view), enc.decode(copy)) << "d " << d << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ViewEquivalenceTest,
    ::testing::Values(
        SweepCase{BasisKind::Random, 1}, SweepCase{BasisKind::Random, 63},
        SweepCase{BasisKind::Random, 64}, SweepCase{BasisKind::Random, 65},
        SweepCase{BasisKind::Random, 127}, SweepCase{BasisKind::Random, 10'000},
        SweepCase{BasisKind::Random, 10'240}, SweepCase{BasisKind::Level, 1},
        SweepCase{BasisKind::Level, 63}, SweepCase{BasisKind::Level, 64},
        SweepCase{BasisKind::Level, 65}, SweepCase{BasisKind::Level, 127},
        SweepCase{BasisKind::Level, 10'000},
        SweepCase{BasisKind::Level, 10'240}, SweepCase{BasisKind::Circular, 1},
        SweepCase{BasisKind::Circular, 63}, SweepCase{BasisKind::Circular, 64},
        SweepCase{BasisKind::Circular, 65},
        SweepCase{BasisKind::Circular, 127},
        SweepCase{BasisKind::Circular, 10'000},
        SweepCase{BasisKind::Circular, 10'240},
        SweepCase{BasisKind::Scatter, 1}, SweepCase{BasisKind::Scatter, 63},
        SweepCase{BasisKind::Scatter, 64}, SweepCase{BasisKind::Scatter, 65},
        SweepCase{BasisKind::Scatter, 127},
        SweepCase{BasisKind::Scatter, 10'000},
        SweepCase{BasisKind::Scatter, 10'240}),
    case_name);

}  // namespace
