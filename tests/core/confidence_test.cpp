// Property suite for the prediction heads: the Candidate/Top2 lexicographic
// algebra, margin confidence monotonicity, top2_hamming against a naive
// reference (across every available kernel variant), and the quantile-band
// invariants p10 <= p50 <= p90 with the all-zero-weight argmin fallback.

#include "hdc/core/confidence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "hdc/base/rng.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/bitops.hpp"
#include "hdc/core/hypervector.hpp"
#include "hdc/core/kernels.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace {

using hdc::Band;
using hdc::band_from_distances;
using hdc::Candidate;
using hdc::candidate_less;
using hdc::HDRegressor;
using hdc::Hypervector;
using hdc::kAbsentCandidate;
using hdc::margin_confidence;
using hdc::merge_top2;
using hdc::Rng;
using hdc::Top2;
using hdc::top2_hamming;
using hdc::top2_offer;
namespace bits = hdc::bits;

// Dimensions exercising a lone partial word, exact boundaries and beyond.
constexpr std::size_t kDims[] = {63, 64, 96, 128, 1'000};

std::vector<std::uint64_t> random_words(std::size_t bit_count, Rng& rng) {
  std::vector<std::uint64_t> words(bits::words_for(bit_count));
  for (auto& w : words) {
    w = rng();
  }
  if (!words.empty()) {
    words.back() &= bits::tail_mask(bit_count);
  }
  return words;
}

/// Reference top-2: sort all (distance, index) pairs lexicographically.
Top2 reference_top2(const std::vector<Candidate>& candidates) {
  std::vector<Candidate> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(),
            [](Candidate a, Candidate b) { return candidate_less(a, b); });
  Top2 top;
  if (!sorted.empty()) {
    top.best = sorted[0];
  }
  if (sorted.size() > 1) {
    top.second = sorted[1];
  }
  return top;
}

/// Restores the kernel selection on scope exit so one test cannot leak its
/// forced variant into the rest of the suite.
class KernelGuard {
 public:
  KernelGuard() : previous_(bits::active_kernels().name) {}
  ~KernelGuard() { bits::select_kernels(previous_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  std::string previous_;
};

hdc::ScalarEncoderPtr make_labels(std::size_t dimension, std::size_t size,
                                  double lo, double hi) {
  hdc::LevelBasisConfig config;
  config.dimension = dimension;
  config.size = size;
  config.seed = 414;
  return std::make_shared<hdc::LinearScalarEncoder>(
      hdc::make_level_basis(config), lo, hi);
}

TEST(ConfidenceTest, AbsentCandidateLosesEveryComparison) {
  const Candidate absent;
  EXPECT_TRUE(absent.absent());
  const Candidate real{17, 3};
  EXPECT_FALSE(real.absent());
  EXPECT_TRUE(candidate_less(real, absent));
  EXPECT_FALSE(candidate_less(absent, real));
}

TEST(ConfidenceTest, OfferKeepsTwoSmallestWithIndexTieBreak) {
  Top2 top;
  top2_offer(top, {5, 10});
  EXPECT_EQ(top.best.distance, 5U);
  EXPECT_TRUE(top.second.absent());
  top2_offer(top, {5, 2});  // Same distance, lower index: becomes best.
  EXPECT_EQ(top.best.index, 2U);
  EXPECT_EQ(top.second.index, 10U);
  top2_offer(top, {3, 7});
  EXPECT_EQ(top.best.distance, 3U);
  EXPECT_EQ(top.second.distance, 5U);
  EXPECT_EQ(top.second.index, 2U);
}

TEST(ConfidenceTest, MarginConfidenceEdgeCases) {
  EXPECT_EQ(margin_confidence(Top2{}), 0.0);  // No candidates at all.
  Top2 lone;
  top2_offer(lone, {42, 0});
  EXPECT_EQ(margin_confidence(lone), 1.0);  // No runner-up: fully confident.
  Top2 tie;
  top2_offer(tie, {9, 0});
  top2_offer(tie, {9, 1});
  EXPECT_EQ(margin_confidence(tie), 0.0);  // Dead tie: fully uncertain.
  Top2 zeros;
  top2_offer(zeros, {0, 0});
  top2_offer(zeros, {0, 1});
  EXPECT_EQ(margin_confidence(zeros), 0.0);  // Both zero: no 0/0 NaN.
}

TEST(ConfidenceTest, MarginConfidenceMonotoneInGap) {
  // For a fixed d1 + d2, a larger gap d2 - d1 must yield strictly larger
  // confidence; the whole range stays inside [0, 1].
  for (const std::uint64_t sum : {10ULL, 100ULL, 10'000ULL}) {
    double previous = -1.0;
    for (std::uint64_t d1 = sum / 2; d1 + 1 >= 1; --d1) {
      Top2 top;
      top2_offer(top, {d1, 0});
      top2_offer(top, {sum - d1, 1});
      const double confidence = margin_confidence(top);
      EXPECT_GE(confidence, 0.0);
      EXPECT_LE(confidence, 1.0);
      EXPECT_GT(confidence, previous)
          << "gap " << (sum - 2 * d1) << " of sum " << sum;
      previous = confidence;
      if (d1 == 0) {
        break;
      }
    }
  }
}

TEST(ConfidenceTest, Top2HammingMatchesReferenceOnEveryVariant) {
  const KernelGuard guard;
  for (const bits::Kernels* variant : bits::available_kernels()) {
    bits::select_kernels(variant->name);
    for (const std::size_t dim : kDims) {
      Rng rng(900 + dim);
      const std::size_t stride = bits::words_for(dim);
      constexpr std::size_t kCount = 37;
      std::vector<std::uint64_t> arena;
      for (std::size_t i = 0; i < kCount; ++i) {
        const auto words = random_words(dim, rng);
        arena.insert(arena.end(), words.begin(), words.end());
      }
      const auto query = random_words(dim, rng);
      std::vector<Candidate> all;
      for (std::size_t i = 0; i < kCount; ++i) {
        const std::size_t d = bits::hamming(
            query, std::span<const std::uint64_t>(arena).subspan(
                       i * stride, stride));
        all.push_back({d, i});
      }
      const Top2 expected = reference_top2(all);
      const Top2 got = top2_hamming(query, arena, stride, kCount, 0);
      EXPECT_EQ(got.best.distance, expected.best.distance)
          << variant->name << " dim " << dim;
      EXPECT_EQ(got.best.index, expected.best.index);
      EXPECT_EQ(got.second.distance, expected.second.distance);
      EXPECT_EQ(got.second.index, expected.second.index);
      // The index offset shifts reported indices and nothing else.
      const Top2 shifted = top2_hamming(query, arena, stride, kCount, 1'000);
      EXPECT_EQ(shifted.best.index, expected.best.index + 1'000);
      EXPECT_EQ(shifted.second.index, expected.second.index + 1'000);
    }
  }
}

TEST(ConfidenceTest, MergeOverDisjointSlicesEqualsGlobalTop2) {
  // The cluster reduce: splitting the candidate range at any point and
  // merging per-slice top-2 results must reproduce the global top-2.  This
  // is the invariant that makes Classes-scheme confidence bit-identical.
  Rng rng(77);
  constexpr std::size_t kDim = 96;
  constexpr std::size_t kCount = 24;
  const std::size_t stride = bits::words_for(kDim);
  std::vector<std::uint64_t> arena;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto words = random_words(kDim, rng);
    arena.insert(arena.end(), words.begin(), words.end());
  }
  const auto query = random_words(kDim, rng);
  const std::span<const std::uint64_t> arena_span(arena);
  const Top2 global = top2_hamming(query, arena, stride, kCount, 0);
  for (std::size_t split = 0; split <= kCount; ++split) {
    const Top2 low = top2_hamming(query, arena_span.first(split * stride),
                                  stride, split, 0);
    const Top2 high =
        top2_hamming(query, arena_span.subspan(split * stride), stride,
                     kCount - split, split);
    const Top2 merged = merge_top2(low, high);
    EXPECT_EQ(merged.best.distance, global.best.distance) << split;
    EXPECT_EQ(merged.best.index, global.best.index) << split;
    EXPECT_EQ(merged.second.distance, global.second.distance) << split;
    EXPECT_EQ(merged.second.index, global.second.index) << split;
    // Merge is commutative for disjoint index sets.
    const Top2 swapped = merge_top2(high, low);
    EXPECT_EQ(swapped.best.index, merged.best.index);
    EXPECT_EQ(swapped.second.index, merged.second.index);
  }
}

TEST(ConfidenceTest, BandOrderingHoldsOnRandomProfiles) {
  const auto labels = make_labels(1'000, 32, 0.0, 31.0);
  Rng rng(505);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::size_t> distances(labels->size());
    for (auto& d : distances) {
      d = rng() % 1'001;  // Anywhere from exact match to full inversion.
    }
    const Band band = band_from_distances(distances, *labels, 1'000);
    EXPECT_LE(band.p10, band.p50) << "trial " << trial;
    EXPECT_LE(band.p50, band.p90) << "trial " << trial;
  }
}

TEST(ConfidenceTest, BandCollapsesToArgminWhenUncorrelated) {
  // Every distance at or past d/2 has zero weight; the band must fall back
  // to the argmin grid value (lowest index on ties) like predict() does.
  const auto labels = make_labels(1'000, 16, 0.0, 15.0);
  std::vector<std::size_t> distances(labels->size(), 700);
  distances[5] = 640;  // Still >= d/2: weightless, but the unique argmin.
  const Band band = band_from_distances(distances, *labels, 1'000);
  EXPECT_EQ(band.p10, labels->value_of(5));
  EXPECT_EQ(band.p50, labels->value_of(5));
  EXPECT_EQ(band.p90, labels->value_of(5));
}

TEST(ConfidenceTest, BandConcentratesOnAnExactMatch) {
  // Distance 0 at one grid point with everything else at the noise floor
  // puts the entire weight mass there: the band collapses onto that value.
  const auto labels = make_labels(1'000, 16, 0.0, 15.0);
  std::vector<std::size_t> distances(labels->size(), 520);
  distances[9] = 0;
  const Band band = band_from_distances(distances, *labels, 1'000);
  EXPECT_EQ(band.p10, labels->value_of(9));
  EXPECT_EQ(band.p50, labels->value_of(9));
  EXPECT_EQ(band.p90, labels->value_of(9));
}

TEST(ConfidenceTest, BandValidatesProfileSize) {
  const auto labels = make_labels(256, 8, 0.0, 7.0);
  std::vector<std::size_t> wrong(labels->size() + 1, 0);
  EXPECT_THROW((void)band_from_distances(wrong, *labels, 256),
               std::invalid_argument);
}

TEST(ConfidenceTest, RegressorBandIsBitIdenticalAcrossKernelVariants) {
  // Train one regressor, then read the band under every available kernel
  // variant: integer distances make the head exactly reproducible.
  constexpr std::size_t kDim = 1'000;
  HDRegressor model(make_labels(kDim, 32, 0.0, 10.0), 7);
  Rng rng(31);
  std::vector<Hypervector> queries;
  for (int i = 0; i < 12; ++i) {
    const auto sample = Hypervector::random(kDim, rng);
    model.add_sample(sample, 10.0 * static_cast<double>(i) / 12.0);
    queries.push_back(sample);
  }
  model.finalize();

  const KernelGuard guard;
  std::vector<Band> reference;
  bits::select_kernels("scalar");
  for (const auto& query : queries) {
    reference.push_back(model.predict_band(query));
    EXPECT_LE(reference.back().p10, reference.back().p50);
    EXPECT_LE(reference.back().p50, reference.back().p90);
  }
  for (const bits::Kernels* variant : bits::available_kernels()) {
    bits::select_kernels(variant->name);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const Band band = model.predict_band(queries[i]);
      EXPECT_EQ(band.p10, reference[i].p10) << variant->name;
      EXPECT_EQ(band.p50, reference[i].p50) << variant->name;
      EXPECT_EQ(band.p90, reference[i].p90) << variant->name;
    }
  }
}

}  // namespace
