// Cross-cutting property tests of the encoders: the similarity-structure
// contracts that make the paper's experiments work.  Each property is swept
// over grid sizes and seeds with TEST_P.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/multiscale_encoder.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/stats/circular.hpp"

namespace {

constexpr std::size_t kDim = 10'000;

struct GridCase {
  std::size_t size;
  std::uint64_t seed;
};

class LevelEncoderPropertyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(LevelEncoderPropertyTest, SimilarityDecreasesMonotonicallyWithDistance) {
  const auto [m, seed] = GetParam();
  hdc::LevelBasisConfig config;
  config.dimension = kDim;
  config.size = m;
  config.seed = seed;
  const hdc::LinearScalarEncoder enc(hdc::make_level_basis(config), 0.0, 1.0);
  // Similarity from the left endpoint must be non-increasing in the value,
  // within statistical noise (4 sigma ~ 0.02 at d = 10,000).
  const hdc::HypervectorView origin = enc.encode(0.0);
  double previous = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double sim =
        hdc::similarity(origin, enc.encode(enc.value_of(i)));
    EXPECT_LT(sim, previous + 0.02) << "grid point " << i;
    previous = sim;
  }
  // Endpoints quasi-orthogonal.
  EXPECT_NEAR(previous, 0.5, 0.03);
}

TEST_P(LevelEncoderPropertyTest, NearbyValuesShareTheirEncodings) {
  const auto [m, seed] = GetParam();
  hdc::LevelBasisConfig config;
  config.dimension = kDim;
  config.size = m;
  config.seed = seed;
  const hdc::LinearScalarEncoder enc(hdc::make_level_basis(config), -5.0, 5.0);
  // Values inside the same grid cell encode identically.
  const double step = 10.0 / static_cast<double>(m - 1);
  EXPECT_EQ(enc.encode(0.0).words().data(), enc.encode(0.4 * step).words().data());
  // ... and neighbouring cells stay close: delta = 1/(2(m-1)).
  EXPECT_NEAR(hdc::normalized_distance(enc.encode(0.0), enc.encode(step)),
              0.5 / static_cast<double>(m - 1), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LevelEncoderPropertyTest,
                         ::testing::Values(GridCase{8, 1}, GridCase{16, 2},
                                           GridCase{64, 3}, GridCase{128, 4}));

class CircularEncoderPropertyTest : public ::testing::TestWithParam<GridCase> {
};

TEST_P(CircularEncoderPropertyTest, SimilarityTracksArcDistance) {
  const auto [m, seed] = GetParam();
  hdc::CircularBasisConfig config;
  config.dimension = kDim;
  config.size = m;
  config.seed = seed;
  const hdc::CircularScalarEncoder enc(hdc::make_circular_basis(config),
                                       hdc::stats::two_pi);
  const hdc::HypervectorView origin = enc.encode(0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double theta = enc.value_of(i);
    const double expected =
        1.0 - static_cast<double>(hdc::stats::index_arc_distance(0, i, m)) /
                  static_cast<double>(m);
    EXPECT_NEAR(hdc::similarity(origin, enc.encode(theta)), expected, 0.02)
        << "grid point " << i;
  }
}

TEST_P(CircularEncoderPropertyTest, WrapNeighborsAreCloserThanLinearOnes) {
  // The defining advantage over level encodings: values just across the
  // wrap are *neighbours*, not opposites.
  const auto [m, seed] = GetParam();
  hdc::CircularBasisConfig circ_config;
  circ_config.dimension = kDim;
  circ_config.size = m;
  circ_config.seed = seed;
  const hdc::CircularScalarEncoder circular(
      hdc::make_circular_basis(circ_config), hdc::stats::two_pi);

  hdc::LevelBasisConfig level_config;
  level_config.dimension = kDim;
  level_config.size = m;
  level_config.seed = seed;
  const hdc::LinearScalarEncoder level(hdc::make_level_basis(level_config),
                                       0.0, hdc::stats::two_pi);

  const double before = hdc::stats::two_pi - 0.05;
  const double after = 0.05;
  const double circular_sim =
      hdc::similarity(circular.encode(before), circular.encode(after));
  const double level_sim =
      hdc::similarity(level.encode(before), level.encode(after));
  EXPECT_GT(circular_sim, 0.9);
  EXPECT_NEAR(level_sim, 0.5, 0.05);  // level tears the circle apart
}

TEST_P(CircularEncoderPropertyTest, AllRotationsAreEquivalent) {
  // No grid point is special: the similarity profile around any reference
  // matches the profile around index 0.
  const auto [m, seed] = GetParam();
  hdc::CircularBasisConfig config;
  config.dimension = kDim;
  config.size = m;
  config.seed = seed;
  const hdc::Basis basis = hdc::make_circular_basis(config);
  for (const std::size_t ref : {m / 3, m / 2, m - 1}) {
    for (std::size_t offset = 0; offset < m; ++offset) {
      const double from_ref = hdc::normalized_distance(
          basis[ref], basis[(ref + offset) % m]);
      const double from_zero =
          hdc::normalized_distance(basis[0], basis[offset]);
      EXPECT_NEAR(from_ref, from_zero, 0.03)
          << "ref " << ref << " offset " << offset;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CircularEncoderPropertyTest,
                         ::testing::Values(GridCase{8, 5}, GridCase{16, 6},
                                           GridCase{24, 7}, GridCase{64, 8}));

TEST(EncoderInteropTest, BindingTwoEncodersYieldsProductKernel) {
  // corr(a ⊗ b, a' ⊗ b') ≈ corr(a, a') * corr(b, b') for independent bases —
  // the identity behind both the Beijing encoding and the multi-scale
  // extension.
  hdc::CircularBasisConfig config_a;
  config_a.dimension = kDim;
  config_a.size = 16;
  config_a.seed = 9;
  hdc::CircularBasisConfig config_b = config_a;
  config_b.seed = 10;
  const hdc::Basis a = hdc::make_circular_basis(config_a);
  const hdc::Basis b = hdc::make_circular_basis(config_b);

  const auto corr = [](hdc::HypervectorView x, hdc::HypervectorView y) {
    return 1.0 - 2.0 * hdc::normalized_distance(x, y);
  };
  for (const std::size_t i : {1UL, 3UL, 6UL}) {
    for (const std::size_t j : {2UL, 5UL}) {
      const double product = corr(a[0], a[i]) * corr(b[0], b[j]);
      const double bound = corr(a[0] ^ b[0], a[i] ^ b[j]);
      EXPECT_NEAR(bound, product, 0.03) << "i=" << i << " j=" << j;
    }
  }
}

TEST(EncoderInteropTest, MultiScaleDecodeAgreesWithFinestQuantization) {
  hdc::MultiScaleCircularEncoder::Config config;
  config.dimension = kDim;
  config.scales = {8, 32};
  config.period = 24.0;  // hours
  config.seed = 11;
  const hdc::MultiScaleCircularEncoder enc(config);
  for (double hour = 0.0; hour < 24.0; hour += 1.7) {
    EXPECT_EQ(enc.decode(enc.encode(hour)), enc.value_of(enc.index_of(hour)))
        << "hour " << hour;
  }
}

}  // namespace
