// Tests for the HDC regression framework (Section 2.3): binary and integer
// readouts on synthetic circular-linear functions.

#include "hdc/core/regressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/circular.hpp"

namespace {

using hdc::HDRegressor;
using hdc::Rng;

hdc::ScalarEncoderPtr label_encoder(double lo, double hi,
                                    std::size_t d = 10'000) {
  hdc::LevelBasisConfig config;
  config.dimension = d;
  config.size = 64;
  config.seed = 100;
  return std::make_shared<hdc::LinearScalarEncoder>(
      hdc::make_level_basis(config), lo, hi);
}

std::shared_ptr<hdc::CircularScalarEncoder> angle_encoder(
    std::size_t d = 10'000, std::size_t m = 64) {
  hdc::CircularBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = 101;
  return std::make_shared<hdc::CircularScalarEncoder>(
      hdc::make_circular_basis(config), hdc::stats::two_pi);
}

TEST(RegressorTest, ValidatesConstruction) {
  EXPECT_THROW(HDRegressor(nullptr, 1), std::invalid_argument);
}

TEST(RegressorTest, PredictRequiresFinalize) {
  HDRegressor model(label_encoder(0.0, 1.0, 256), 1);
  Rng rng(2);
  const auto query = hdc::Hypervector::random(256, rng);
  EXPECT_THROW((void)model.predict(query), std::logic_error);
  EXPECT_THROW((void)model.model(), std::logic_error);
  // The integer readout works straight off the accumulator.
  EXPECT_NO_THROW((void)model.predict_integer(query));
}

TEST(RegressorTest, ValidatesInputDimension) {
  HDRegressor model(label_encoder(0.0, 1.0, 256), 1);
  Rng rng(3);
  const auto wrong = hdc::Hypervector::random(128, rng);
  EXPECT_THROW(model.add_sample(wrong, 0.5), std::invalid_argument);
  model.finalize();
  EXPECT_THROW((void)model.predict(wrong), std::invalid_argument);
  EXPECT_THROW((void)model.predict_integer(wrong), std::invalid_argument);
}

TEST(RegressorTest, MemorizesSingleSampleExactly) {
  // One sample: M = phi(x) ^ phi_l(y), so M ^ phi(x) == phi_l(y) exactly
  // and decoding returns y's grid point.
  const auto labels = label_encoder(0.0, 63.0);
  const auto inputs = angle_encoder();
  HDRegressor model(labels, 4);
  model.add_sample(inputs->encode(1.0), 17.0);
  model.finalize();
  EXPECT_DOUBLE_EQ(model.predict(inputs->encode(1.0)), 17.0);
  EXPECT_DOUBLE_EQ(model.predict_integer(inputs->encode(1.0)), 17.0);
}

TEST(RegressorTest, LearnsSmoothCircularFunction) {
  // y = sin(theta): a few hundred samples, integer readout tracks the curve.
  const auto labels = label_encoder(-1.2, 1.2);
  const auto inputs = angle_encoder();
  HDRegressor model(labels, 5);
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    const double theta = rng.uniform(0.0, hdc::stats::two_pi);
    model.add_sample(inputs->encode(theta),
                     std::sin(theta) + rng.normal(0.0, 0.05));
  }
  model.finalize();
  double se = 0.0;
  const int probes = 100;
  for (int i = 0; i < probes; ++i) {
    const double theta = rng.uniform(0.0, hdc::stats::two_pi);
    const double predicted = model.predict_integer(inputs->encode(theta));
    se += (predicted - std::sin(theta)) * (predicted - std::sin(theta));
  }
  EXPECT_LT(se / probes, 0.2);  // the curve's variance is 0.5
}

TEST(RegressorTest, BinaryReadoutRecallsMemorizedPairs) {
  // Section 2.3's core property: the single bundled hypervector memorizes
  // (sample, label) pairs and the binary readout recalls them.  Recall needs
  // quasi-orthogonal sample keys, so the inputs use a random basis (with
  // correlated bases the bundle saturates; see EXPERIMENTS.md).
  const auto labels = label_encoder(-1.2, 1.2);
  hdc::RandomBasisConfig keys_config;
  keys_config.dimension = 10'000;
  keys_config.size = 15;
  keys_config.seed = 102;
  const hdc::Basis keys = hdc::make_random_basis(keys_config);
  HDRegressor model(labels, 7);
  Rng rng(8);
  std::vector<double> values;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    values.push_back(rng.uniform(-1.0, 1.0));
    model.add_sample(keys[i], values.back());
  }
  model.finalize();
  double se = 0.0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double predicted = model.predict(keys[i]);
    se += (predicted - values[i]) * (predicted - values[i]);
  }
  EXPECT_LT(se / static_cast<double>(keys.size()), 0.05);
}

// Regression companion to the classifier's queryable trainability: a
// regressor restored from its quantized model reports the inference-only
// state and rejects accumulator-dependent paths up front.
TEST(RegressorTest, FromModelRestoresInferenceOnlyPredictor) {
  const auto labels = label_encoder(0.0, 1.0, 512);
  HDRegressor trained(labels, 3);
  for (int k = 0; k < 16; ++k) {
    const double x = static_cast<double>(k) / 15.0;
    trained.add_sample(labels->encode(x), x);
  }
  trained.finalize();
  EXPECT_TRUE(trained.trainable());

  HDRegressor restored = HDRegressor::from_model(labels, trained.model());
  EXPECT_TRUE(restored.finalized());
  EXPECT_FALSE(restored.trainable());
  EXPECT_TRUE(restored.inference_only());
  for (int k = 0; k < 16; ++k) {
    const double x = static_cast<double>(k) / 15.0;
    EXPECT_DOUBLE_EQ(restored.predict(labels->encode(x)),
                     trained.predict(labels->encode(x)));
  }
  EXPECT_THROW(restored.add_sample(labels->encode(0.5), 0.5),
               std::logic_error);
  hdc::BundleAccumulator partial(restored.dimension());
  EXPECT_THROW(restored.absorb(partial), std::logic_error);
  EXPECT_THROW(restored.finalize(), std::logic_error);
  EXPECT_THROW((void)restored.predict_integer(labels->encode(0.5)),
               std::logic_error);
}

TEST(RegressorTest, FromModelValidatesDimension) {
  const auto labels = label_encoder(0.0, 1.0, 512);
  Rng rng(9);
  EXPECT_THROW((void)HDRegressor::from_model(
                   labels, hdc::Hypervector::random(64, rng)),
               std::invalid_argument);
  EXPECT_THROW((void)HDRegressor::from_model(nullptr, hdc::Hypervector(512)),
               std::invalid_argument);
}

TEST(RegressorTest, SampleCountTracksAdds) {
  HDRegressor model(label_encoder(0.0, 1.0, 128), 9);
  Rng rng(10);
  EXPECT_EQ(model.sample_count(), 0U);
  model.add_sample(hdc::Hypervector::random(128, rng), 0.3);
  model.add_sample(hdc::Hypervector::random(128, rng), 0.7);
  EXPECT_EQ(model.sample_count(), 2U);
}

TEST(RegressorTest, LabelsAccessorExposesEncoder) {
  const auto labels = label_encoder(0.0, 10.0, 128);
  HDRegressor model(labels, 11);
  EXPECT_EQ(&model.labels(), labels.get());
  EXPECT_EQ(model.dimension(), 128U);
}

}  // namespace
