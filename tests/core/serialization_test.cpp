// Round-trip and failure-injection tests for the binary serialization.

#include "hdc/core/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/basis_random.hpp"
#include "hdc/core/scatter_code.hpp"

namespace {

using hdc::Basis;
using hdc::Hypervector;
using hdc::Rng;
using hdc::SerializationError;

TEST(SerializationTest, HypervectorRoundTrip) {
  Rng rng(1);
  for (const std::size_t d : {1UL, 63UL, 64UL, 65UL, 10'000UL}) {
    const Hypervector original = Hypervector::random(d, rng);
    std::stringstream stream;
    hdc::write_hypervector(stream, original);
    const Hypervector loaded = hdc::read_hypervector(stream);
    EXPECT_EQ(loaded, original) << "d = " << d;
  }
}

TEST(SerializationTest, MultipleRecordsInOneStream) {
  Rng rng(2);
  const auto a = Hypervector::random(300, rng);
  const auto b = Hypervector::random(300, rng);
  std::stringstream stream;
  hdc::write_hypervector(stream, a);
  hdc::write_hypervector(stream, b);
  EXPECT_EQ(hdc::read_hypervector(stream), a);
  EXPECT_EQ(hdc::read_hypervector(stream), b);
}

TEST(SerializationTest, EmptyHypervectorRejected) {
  std::stringstream stream;
  EXPECT_THROW(hdc::write_hypervector(stream, Hypervector()),
               SerializationError);
}

TEST(SerializationTest, BasisRoundTripPreservesEverything) {
  hdc::CircularBasisConfig config;
  config.dimension = 1'000;
  config.size = 10;
  config.r = 0.25;
  config.seed = 99;
  const Basis original = hdc::make_circular_basis(config);

  std::stringstream stream;
  hdc::write_basis(stream, original);
  const Basis loaded = hdc::read_basis(stream);

  EXPECT_EQ(loaded.info().kind, original.info().kind);
  EXPECT_EQ(loaded.info().method, original.info().method);
  EXPECT_EQ(loaded.info().dimension, original.info().dimension);
  EXPECT_EQ(loaded.info().size, original.info().size);
  EXPECT_DOUBLE_EQ(loaded.info().r, original.info().r);
  EXPECT_EQ(loaded.info().seed, original.info().seed);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]);
  }
}

TEST(SerializationTest, AllBasisKindsRoundTrip) {
  std::vector<Basis> bases;
  {
    hdc::RandomBasisConfig c;
    c.dimension = 200;
    c.size = 3;
    c.seed = 1;
    bases.push_back(hdc::make_random_basis(c));
  }
  {
    hdc::LevelBasisConfig c;
    c.dimension = 200;
    c.size = 4;
    c.method = hdc::LevelMethod::ExactFlip;
    c.seed = 2;
    bases.push_back(hdc::make_level_basis(c));
  }
  {
    hdc::ScatterBasisConfig c;
    c.dimension = 200;
    c.size = 5;
    c.seed = 3;
    bases.push_back(hdc::make_scatter_basis(c));
  }
  for (const Basis& basis : bases) {
    std::stringstream stream;
    hdc::write_basis(stream, basis);
    const Basis loaded = hdc::read_basis(stream);
    EXPECT_EQ(loaded.info().kind, basis.info().kind);
    for (std::size_t i = 0; i < basis.size(); ++i) {
      EXPECT_EQ(loaded[i], basis[i]);
    }
  }
}

TEST(SerializationTest, RejectsBadMagic) {
  std::stringstream stream("NOPE....garbage");
  EXPECT_THROW((void)hdc::read_hypervector(stream), SerializationError);
}

TEST(SerializationTest, RejectsWrongTag) {
  Rng rng(3);
  std::stringstream stream;
  hdc::write_hypervector(stream, Hypervector::random(64, rng));
  // Reading a basis from a hypervector record must fail on the tag.
  EXPECT_THROW((void)hdc::read_basis(stream), SerializationError);
}

TEST(SerializationTest, RejectsTruncatedStream) {
  Rng rng(4);
  std::stringstream stream;
  hdc::write_hypervector(stream, Hypervector::random(10'000, rng));
  const std::string full = stream.str();
  for (const std::size_t keep : {4UL, 5UL, 12UL, full.size() - 8}) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_THROW((void)hdc::read_hypervector(cut), SerializationError)
        << "kept " << keep << " bytes";
  }
}

TEST(SerializationTest, RejectsImplausibleDimension) {
  // Header with a huge dimension must be rejected before allocation.
  std::stringstream stream;
  stream.write("HDC\x01", 4);
  stream.put('\x01');  // hypervector tag
  const std::uint64_t absurd = ~0ULL;
  stream.write(reinterpret_cast<const char*>(&absurd), 8);
  EXPECT_THROW((void)hdc::read_hypervector(stream), SerializationError);
}

TEST(SerializationTest, RejectsTailBitViolation) {
  // d = 60 with all-ones payload word: bits beyond the dimension are set.
  std::stringstream stream;
  stream.write("HDC\x01", 4);
  stream.put('\x01');
  const std::uint64_t dim = 60;
  stream.write(reinterpret_cast<const char*>(&dim), 8);
  const std::uint64_t word = ~0ULL;
  stream.write(reinterpret_cast<const char*>(&word), 8);
  EXPECT_THROW((void)hdc::read_hypervector(stream), SerializationError);
}

TEST(SerializationTest, RejectsCorruptedBasisHeader) {
  hdc::RandomBasisConfig config;
  config.dimension = 100;
  config.size = 2;
  config.seed = 7;
  std::stringstream stream;
  hdc::write_basis(stream, hdc::make_random_basis(config));
  std::string bytes = stream.str();
  bytes[5] = '\x7F';  // corrupt the basis-kind byte
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)hdc::read_basis(corrupted), SerializationError);
}

}  // namespace
