// Tests for scatter codes (Section 4.2): calibration, the saturating
// (nonlinear) distance profile, and validation.

#include "hdc/core/scatter_code.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hdc/core/basis_level.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/markov_absorption.hpp"

namespace {

using hdc::Basis;
using hdc::ScatterBasisConfig;

Basis make(std::size_t d, std::size_t m, std::uint64_t seed,
           std::size_t steps = 0) {
  ScatterBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = seed;
  config.steps_per_level = steps;
  return hdc::make_scatter_basis(config);
}

TEST(ScatterCodeTest, ValidatesConfig) {
  EXPECT_THROW((void)make(0, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)make(128, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)hdc::scatter_calibrated_steps(0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)hdc::scatter_calibrated_steps(100, 1),
               std::invalid_argument);
}

TEST(ScatterCodeTest, CalibratedStepsHitNeighbourTarget) {
  const std::size_t d = 10'000;
  for (const std::size_t m : {4UL, 12UL, 64UL}) {
    const std::size_t steps = hdc::scatter_calibrated_steps(d, m);
    ASSERT_GT(steps, 0U);
    const double realized =
        hdc::stats::expected_distance_after_flips(d, static_cast<double>(steps));
    const double target = 1.0 / (2.0 * static_cast<double>(m - 1));
    // Rounding to an integer step count moves the expectation by less than
    // one flip's worth, i.e. < 1/d.
    EXPECT_NEAR(realized, target, 1.0 / static_cast<double>(d)) << "m=" << m;
  }
}

TEST(ScatterCodeTest, ProfileMatchesClosedForm) {
  const std::size_t d = 10'000;
  const std::size_t m = 12;
  const Basis basis = make(d, m, 3);
  const std::size_t steps = hdc::scatter_calibrated_steps(d, m);
  const double tolerance = 5.0 / (2.0 * std::sqrt(static_cast<double>(d)));
  for (std::size_t j = 1; j < m; ++j) {
    const double expected = hdc::scatter_expected_distance(d, steps, 0, j);
    EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[j]), expected,
                tolerance)
        << "level " << j;
  }
}

TEST(ScatterCodeTest, ProfileIsNonlinearlySaturating) {
  // Unlike Algorithm 1's linear profile, the scatter profile falls short of
  // the linear target at the far end (Section 4.2's nonlinear mapping).
  const std::size_t d = 10'000;
  const std::size_t m = 12;
  const Basis basis = make(d, m, 4);
  const double far = hdc::normalized_distance(basis[0], basis[m - 1]);
  const double linear_target = hdc::level_target_distance(1, m, m);  // 0.5
  EXPECT_LT(far, linear_target - 0.1);
  // ... while the neighbour distance still matches the linear target.
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[1]),
              hdc::level_target_distance(1, 2, m), 0.02);
}

TEST(ScatterCodeTest, ExplicitStepCountIsHonoured) {
  const std::size_t d = 4'096;
  const Basis basis = make(d, 3, 5, /*steps=*/100);
  // 100 flips with replacement: expected distance (1 - (1-2/d)^100)/2.
  const double expected = hdc::stats::expected_distance_after_flips(d, 100.0);
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[1]), expected, 0.03);
  EXPECT_NEAR(hdc::normalized_distance(basis[1], basis[2]), expected, 0.03);
}

TEST(ScatterCodeTest, DeterministicGivenSeed) {
  const Basis a = make(1'024, 6, 9);
  const Basis b = make(1'024, 6, 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(ScatterCodeTest, InfoRecordsProvenance) {
  const Basis basis = make(256, 4, 11);
  EXPECT_EQ(basis.info().kind, hdc::BasisKind::Scatter);
  EXPECT_EQ(basis.info().dimension, 256U);
  EXPECT_EQ(basis.info().size, 4U);
  EXPECT_EQ(basis.info().seed, 11U);
}

}  // namespace
