// Property tests for circular-hypervectors (Section 5.1): the triangular
// distance profile, the two-phase transition identities of Figure 5, the
// odd-cardinality subset rule, and the r-relaxation.

#include "hdc/core/basis_circular.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hdc/core/ops.hpp"

namespace {

using hdc::Basis;
using hdc::CircularBasisConfig;

Basis make(std::size_t d, std::size_t m, double r, std::uint64_t seed) {
  CircularBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.r = r;
  config.seed = seed;
  return hdc::make_circular_basis(config);
}

TEST(CircularTargetDistanceTest, TriangularProfile) {
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(0, 0, 12), 0.0);
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(0, 3, 12), 0.25);
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(0, 6, 12), 0.5);   // antipode
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(0, 9, 12), 0.25);  // wraps
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(0, 11, 12), 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(hdc::circular_target_distance(11, 0, 12), 1.0 / 12.0);
}

TEST(CircularTargetDistanceTest, ValidatesArguments) {
  EXPECT_THROW((void)hdc::circular_target_distance(0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)hdc::circular_target_distance(4, 0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)hdc::circular_target_distance(0, 4, 4),
               std::invalid_argument);
}

TEST(CircularBasisTest, ValidatesConfig) {
  EXPECT_THROW((void)make(0, 8, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)make(128, 1, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)make(128, 8, -0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)make(128, 8, 1.5, 1), std::invalid_argument);
}

TEST(CircularBasisTest, InfoRecordsProvenance) {
  const Basis basis = make(512, 10, 0.1, 21);
  EXPECT_EQ(basis.info().kind, hdc::BasisKind::Circular);
  EXPECT_EQ(basis.info().dimension, 512U);
  EXPECT_EQ(basis.info().size, 10U);
  EXPECT_DOUBLE_EQ(basis.info().r, 0.1);
  EXPECT_EQ(basis.info().seed, 21U);
}

TEST(CircularBasisTest, DeterministicGivenSeed) {
  const Basis a = make(1'024, 12, 0.0, 3);
  const Basis b = make(1'024, 12, 0.0, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

struct ProfileCase {
  std::size_t dimension;
  std::size_t size;
  std::uint64_t seed;
};

class CircularProfileTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(CircularProfileTest, PairwiseDistancesAreTriangular) {
  const auto [d, m, seed] = GetParam();
  const Basis basis = make(d, m, 0.0, seed);
  const double tolerance = 5.0 / (2.0 * std::sqrt(static_cast<double>(d)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double measured = hdc::normalized_distance(basis[i], basis[j]);
      const double target = hdc::circular_target_distance(i, j, m);
      EXPECT_NEAR(measured, target, tolerance)
          << "pair (" << i << ", " << j << ") of m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CircularProfileTest,
    ::testing::Values(ProfileCase{10'000, 2, 1}, ProfileCase{10'000, 4, 2},
                      ProfileCase{10'000, 12, 3}, ProfileCase{10'000, 16, 4},
                      // Odd cardinalities exercise the 2m-subset rule.
                      ProfileCase{10'000, 3, 5}, ProfileCase{10'000, 9, 6},
                      ProfileCase{10'000, 15, 7}, ProfileCase{16'384, 12, 8}));

TEST(CircularBasisTest, AntipodesAreQuasiOrthogonal) {
  const std::size_t m = 16;
  const Basis basis = make(10'000, m, 0.0, 9);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(
        hdc::normalized_distance(basis[i], basis[(i + m / 2) % m]), 0.5, 0.03)
        << "antipode of " << i;
  }
}

TEST(CircularBasisTest, Phase2ReplaysPhase1Transitions) {
  // Figure 5 identities: for even m, with T_t = C_t ^ C_{t+1} (0-based
  // transitions of the first half), the second half satisfies
  // C_i = C_{i-1} ^ T_{i - m/2 - 1}, and the final transition closes the
  // circle back to C_0.
  const std::size_t m = 12;
  const Basis basis = make(2'048, m, 0.0, 10);
  std::vector<hdc::Hypervector> transitions;
  for (std::size_t t = 0; t < m / 2; ++t) {
    transitions.push_back(basis[t] ^ basis[t + 1]);
  }
  for (std::size_t i = m / 2 + 1; i < m; ++i) {
    EXPECT_EQ(basis[i], basis[i - 1] ^ transitions[i - m / 2 - 1])
        << "element " << i;
  }
  EXPECT_EQ(basis[m - 1] ^ transitions[m / 2 - 1], basis[0])
      << "circle closure";
}

TEST(CircularBasisTest, CombinedTransitionsEqualEndpointBinding) {
  // Section 5.1: T_1 ^ ... ^ T_{m/2} == C_1 ^ C_{m/2+1}.
  const std::size_t m = 10;
  const Basis basis = make(1'024, m, 0.0, 11);
  hdc::Hypervector combined(basis.dimension());
  for (std::size_t t = 0; t < m / 2; ++t) {
    combined ^= basis[t] ^ basis[t + 1];
  }
  EXPECT_EQ(combined, basis[0] ^ basis[m / 2]);
}

TEST(CircularBasisTest, FullRelaxationIsRandomSet) {
  const Basis basis = make(10'000, 10, 1.0, 12);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      EXPECT_NEAR(hdc::normalized_distance(basis[i], basis[j]), 0.5, 0.03)
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(CircularBasisTest, PartialRelaxationKeepsNeighbourCorrelation) {
  // Figure 6, middle panel: r = 0.5 keeps immediate neighbours correlated
  // while distant nodes decorrelate.
  const Basis basis = make(10'000, 10, 0.5, 13);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_LT(hdc::normalized_distance(basis[i], basis[(i + 1) % 10]), 0.35)
        << "neighbour of " << i;
  }
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[5]), 0.5, 0.04);
}

TEST(CircularBasisTest, OddSizeIsSubsetOfDoubledSet) {
  // Footnote 1: the odd set must match every other element of the 2m set
  // generated from the same seed.
  const std::size_t m = 7;
  const Basis odd = make(1'024, m, 0.0, 14);
  const Basis doubled = make(1'024, 2 * m, 0.0, 14);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(odd[i], doubled[2 * i]) << "element " << i;
  }
}

TEST(CircularBasisTest, WrapNeighboursAreClose) {
  // The decisive difference with level sets: the last element is close to
  // the first.
  const std::size_t m = 16;
  const Basis basis = make(10'000, m, 0.0, 15);
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[m - 1]), 1.0 / 16.0,
              0.03);
}

}  // namespace
