// Unit tests for the streaming bundle accumulator.

#include "hdc/core/accumulator.hpp"

#include <gtest/gtest.h>

#include "hdc/core/ops.hpp"

namespace {

using hdc::BundleAccumulator;
using hdc::Hypervector;
using hdc::Rng;

TEST(AccumulatorTest, ValidatesDimension) {
  EXPECT_THROW(BundleAccumulator(0), std::invalid_argument);
}

TEST(AccumulatorTest, CountersTrackSignedBits) {
  const bool bits_a[] = {true, false, true};
  const bool bits_b[] = {true, true, false};
  BundleAccumulator acc(3);
  acc.add(Hypervector::from_bits(bits_a));
  acc.add(Hypervector::from_bits(bits_b));
  // counter = +1 per set bit, -1 per clear bit.
  ASSERT_EQ(acc.counters().size(), 3U);
  EXPECT_EQ(acc.counters()[0], 2);
  EXPECT_EQ(acc.counters()[1], 0);
  EXPECT_EQ(acc.counters()[2], 0);
  EXPECT_EQ(acc.count(), 2U);
}

TEST(AccumulatorTest, WeightedAddScalesCounters) {
  const bool bits[] = {true, false};
  BundleAccumulator acc(2);
  acc.add_weighted(Hypervector::from_bits(bits), 5);
  EXPECT_EQ(acc.counters()[0], 5);
  EXPECT_EQ(acc.counters()[1], -5);
  acc.add_weighted(Hypervector::from_bits(bits), -2);
  EXPECT_EQ(acc.counters()[0], 3);
  EXPECT_EQ(acc.counters()[1], -3);
  EXPECT_EQ(acc.count(), 7U);
  EXPECT_THROW(acc.add_weighted(Hypervector::from_bits(bits), 0),
               std::invalid_argument);
}

TEST(AccumulatorTest, TieBreaksFollowTieVector) {
  // Two opposite vectors leave every counter at zero: the finalize result
  // must equal the tie-break vector exactly.
  Rng rng(1);
  const auto a = Hypervector::random(257, rng);
  Hypervector complement = a;
  for (std::size_t i = 0; i < complement.dimension(); ++i) {
    complement.flip_bit(i);
  }
  BundleAccumulator acc(257);
  acc.add(a);
  acc.add(complement);
  const auto tie = Hypervector::random(257, rng);
  EXPECT_EQ(acc.finalize(tie), tie);
}

TEST(AccumulatorTest, MajorityIgnoresTieVectorWhenOdd) {
  Rng rng(2);
  BundleAccumulator acc(513);
  Hypervector last;
  for (int i = 0; i < 3; ++i) {
    last = Hypervector::random(513, rng);
    acc.add(last);
  }
  const auto tie_a = Hypervector::random(513, rng);
  const auto tie_b = Hypervector::random(513, rng);
  EXPECT_EQ(acc.finalize(tie_a), acc.finalize(tie_b));
}

TEST(AccumulatorTest, FinalizeValidatesTieDimension) {
  Rng rng(3);
  BundleAccumulator acc(100);
  acc.add(Hypervector::random(100, rng));
  const auto wrong = Hypervector::random(99, rng);
  EXPECT_THROW((void)acc.finalize(wrong), std::invalid_argument);
}

TEST(AccumulatorTest, AddValidatesDimension) {
  Rng rng(4);
  BundleAccumulator acc(100);
  const auto wrong = Hypervector::random(101, rng);
  EXPECT_THROW(acc.add(wrong), std::invalid_argument);
  EXPECT_THROW(acc.subtract(wrong), std::invalid_argument);
  EXPECT_THROW((void)acc.signed_projection(wrong), std::invalid_argument);
}

TEST(AccumulatorTest, ClearResetsState) {
  Rng rng(5);
  BundleAccumulator acc(64);
  acc.add(Hypervector::random(64, rng));
  acc.clear();
  EXPECT_EQ(acc.count(), 0U);
  for (const auto c : acc.counters()) {
    EXPECT_EQ(c, 0);
  }
}

TEST(AccumulatorTest, SignedProjectionMatchesNaiveDefinition) {
  Rng rng(6);
  BundleAccumulator acc(130);
  for (int i = 0; i < 5; ++i) {
    acc.add(Hypervector::random(130, rng));
  }
  const auto query = Hypervector::random(130, rng);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < 130; ++i) {
    expected += (query.bit(i) ? 1 : -1) * acc.counters()[i];
  }
  EXPECT_EQ(acc.signed_projection(query), expected);
}

TEST(AccumulatorTest, SignedProjectionOfMemberIsPositiveLarge) {
  Rng rng(7);
  BundleAccumulator acc(10'000);
  const auto member = Hypervector::random(10'000, rng);
  acc.add(member);
  // projection of the only member = dimension (every dim agrees in sign).
  EXPECT_EQ(acc.signed_projection(member), 10'000);
}

}  // namespace
