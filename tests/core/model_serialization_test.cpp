// Round-trip and failure-injection tests for classifier serialization and
// the inference-only restore semantics.

#include <gtest/gtest.h>

#include <sstream>

#include "hdc/core/ops.hpp"
#include "hdc/core/serialization.hpp"

namespace {

using hdc::CentroidClassifier;
using hdc::Hypervector;
using hdc::Rng;
using hdc::SerializationError;

CentroidClassifier trained_model(Rng& rng,
                                 std::vector<Hypervector>* prototypes) {
  constexpr std::size_t dim = 4'096;
  CentroidClassifier model(3, dim, 5);
  for (int c = 0; c < 3; ++c) {
    prototypes->push_back(Hypervector::random(dim, rng));
  }
  for (int i = 0; i < 20; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      model.add_sample(c, hdc::flip_random_bits((*prototypes)[c], 400, rng));
    }
  }
  model.finalize();
  return model;
}

TEST(ModelSerializationTest, ClassifierRoundTripPredictsIdentically) {
  Rng rng(1);
  std::vector<Hypervector> prototypes;
  const CentroidClassifier original = trained_model(rng, &prototypes);

  std::stringstream stream;
  hdc::write_classifier(stream, original);
  const CentroidClassifier loaded = hdc::read_classifier(stream);

  EXPECT_EQ(loaded.num_classes(), original.num_classes());
  EXPECT_EQ(loaded.dimension(), original.dimension());
  EXPECT_TRUE(loaded.inference_only());
  EXPECT_TRUE(loaded.finalized());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(loaded.class_vector(c), original.class_vector(c));
  }
  // Identical predictions on noisy probes.
  for (int i = 0; i < 30; ++i) {
    const std::size_t c = static_cast<std::size_t>(i) % 3;
    const Hypervector probe = hdc::flip_random_bits(prototypes[c], 800, rng);
    EXPECT_EQ(loaded.predict(probe), original.predict(probe));
  }
}

TEST(ModelSerializationTest, UnfinalizedClassifierRejected) {
  CentroidClassifier model(2, 128, 1);
  std::stringstream stream;
  EXPECT_THROW(hdc::write_classifier(stream, model), SerializationError);
}

TEST(ModelSerializationTest, LoadedModelIsInferenceOnly) {
  Rng rng(2);
  std::vector<Hypervector> prototypes;
  const CentroidClassifier original = trained_model(rng, &prototypes);
  std::stringstream stream;
  hdc::write_classifier(stream, original);
  CentroidClassifier loaded = hdc::read_classifier(stream);

  const Hypervector sample = Hypervector::random(loaded.dimension(), rng);
  EXPECT_THROW(loaded.add_sample(0, sample), std::logic_error);
  EXPECT_THROW((void)loaded.adapt(0, sample), std::logic_error);
  EXPECT_NO_THROW((void)loaded.predict(sample));
}

TEST(ModelSerializationTest, FromClassVectorsValidates) {
  EXPECT_THROW((void)CentroidClassifier::from_class_vectors({}),
               std::invalid_argument);
  Rng rng(3);
  std::vector<Hypervector> mixed;
  mixed.push_back(Hypervector::random(64, rng));
  mixed.push_back(Hypervector::random(65, rng));
  EXPECT_THROW((void)CentroidClassifier::from_class_vectors(std::move(mixed)),
               std::invalid_argument);
}

TEST(ModelSerializationTest, RejectsTruncatedClassifierStream) {
  Rng rng(4);
  std::vector<Hypervector> prototypes;
  const CentroidClassifier original = trained_model(rng, &prototypes);
  std::stringstream stream;
  hdc::write_classifier(stream, original);
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)hdc::read_classifier(cut), SerializationError);
}

// Regression: a model loaded inference-only must *report* that state
// (finalized() / trainable()) so serving code can branch on it up front
// instead of discovering it via std::logic_error on the first update.
TEST(ModelSerializationTest, LoadedModelReportsQueryableTrainability) {
  Rng rng(6);
  std::vector<Hypervector> prototypes;
  const CentroidClassifier original = trained_model(rng, &prototypes);
  EXPECT_TRUE(original.trainable());
  EXPECT_FALSE(original.inference_only());

  std::stringstream stream;
  hdc::write_classifier(stream, original);
  CentroidClassifier loaded = hdc::read_classifier(stream);

  EXPECT_TRUE(loaded.finalized());
  EXPECT_FALSE(loaded.trainable());
  EXPECT_TRUE(loaded.inference_only());
  // Every training-state mutator still throws, including the ones the
  // queryable state is meant to predict.
  const Hypervector sample = Hypervector::random(loaded.dimension(), rng);
  hdc::BundleAccumulator partial(loaded.dimension());
  partial.add(sample);
  EXPECT_THROW(loaded.absorb(0, partial), std::logic_error);
  EXPECT_THROW(loaded.finalize(), std::logic_error);
  // Restored models report zero accumulated samples, not stale counts.
  EXPECT_EQ(loaded.class_count(0), 0U);
  EXPECT_NO_THROW((void)loaded.predict(sample));
}

TEST(ModelSerializationTest, DetachYieldsOwningBitExactCopy) {
  Rng rng(7);
  std::vector<Hypervector> prototypes;
  const CentroidClassifier original = trained_model(rng, &prototypes);
  std::stringstream stream;
  hdc::write_classifier(stream, original);
  const CentroidClassifier loaded = hdc::read_classifier(stream);

  const CentroidClassifier copy = loaded.detach();
  EXPECT_TRUE(copy.owns_storage());
  EXPECT_EQ(copy.num_classes(), loaded.num_classes());
  for (std::size_t c = 0; c < copy.num_classes(); ++c) {
    EXPECT_EQ(copy.class_vector(c), loaded.class_vector(c));
  }
}

TEST(ModelSerializationTest, RejectsWrongTag) {
  Rng rng(5);
  std::stringstream stream;
  hdc::write_hypervector(stream, Hypervector::random(64, rng));
  EXPECT_THROW((void)hdc::read_classifier(stream), SerializationError);
}

}  // namespace
