// End-to-end integration test through the umbrella header: build encoders,
// train both model types, serialize, restore, and predict — the full
// lifecycle a downstream user runs.

#include "hdc/core/hdc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "hdc/stats/circular.hpp"

namespace {

TEST(IntegrationTest, FullClassificationLifecycle) {
  constexpr std::size_t kDim = 8'192;

  // 1. Basis + encoders for a 3-gesture angular problem.
  hdc::CircularBasisConfig basis_config;
  basis_config.dimension = kDim;
  basis_config.size = 32;
  basis_config.r = 0.1;
  basis_config.seed = 11;
  const auto values = std::make_shared<hdc::CircularScalarEncoder>(
      hdc::make_circular_basis(basis_config), hdc::stats::two_pi);
  const hdc::KeyValueEncoder encoder(4, values, 12);

  // 2. Train on von-Mises-like angular clusters (one straddling the wrap).
  const double means[3][4] = {{0.1, 2.0, 4.0, 6.2},
                              {1.5, 3.5, 5.5, 1.0},
                              {2.8, 0.6, 1.9, 4.8}};
  hdc::CentroidClassifier model(3, kDim, 13);
  hdc::Rng rng(14);
  for (int i = 0; i < 120; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      std::vector<double> sample(4);
      for (std::size_t v = 0; v < 4; ++v) {
        sample[v] = hdc::stats::wrap_angle(means[c][v] +
                                           rng.normal(0.0, 0.3));
      }
      model.add_sample(c, encoder.encode(sample));
    }
  }
  model.finalize();

  // 3. Serialize the trained model and the value basis.
  std::stringstream stream;
  hdc::write_classifier(stream, model);
  hdc::write_basis(stream, values->basis());

  // 4. Restore both and verify the loaded pipeline classifies fresh samples.
  const hdc::CentroidClassifier loaded = hdc::read_classifier(stream);
  const hdc::Basis loaded_basis = hdc::read_basis(stream);
  const auto loaded_values = std::make_shared<hdc::CircularScalarEncoder>(
      loaded_basis, hdc::stats::two_pi);
  const hdc::KeyValueEncoder loaded_encoder(4, loaded_values, 12);

  std::size_t correct = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      std::vector<double> sample(4);
      for (std::size_t v = 0; v < 4; ++v) {
        sample[v] = hdc::stats::wrap_angle(means[c][v] +
                                           rng.normal(0.0, 0.3));
      }
      correct += loaded.predict(loaded_encoder.encode(sample)) == c ? 1U : 0U;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / (3.0 * trials), 0.95);
}

TEST(IntegrationTest, FullRegressionLifecycle) {
  constexpr std::size_t kDim = 8'192;

  // Circular input over one day; level labels.
  hdc::CircularBasisConfig input_config;
  input_config.dimension = kDim;
  input_config.size = 48;
  input_config.seed = 21;
  const auto hours = std::make_shared<hdc::CircularScalarEncoder>(
      hdc::make_circular_basis(input_config), 24.0);

  hdc::LevelBasisConfig label_config;
  label_config.dimension = kDim;
  label_config.size = 96;
  label_config.seed = 22;
  const auto labels = std::make_shared<hdc::LinearScalarEncoder>(
      hdc::make_level_basis(label_config), -10.0, 30.0);

  // Diurnal temperature curve with noise.
  const auto truth = [](double hour) {
    return 10.0 + 8.0 * std::cos((hour - 15.0) / 24.0 * hdc::stats::two_pi);
  };
  hdc::HDRegressor model(labels, 23);
  hdc::Rng rng(24);
  for (int i = 0; i < 600; ++i) {
    const double hour = rng.uniform(0.0, 24.0);
    model.add_sample(hours->encode(hour), truth(hour) + rng.normal(0.0, 0.5));
  }
  model.finalize();

  double se = 0.0;
  const int probes = 48;
  for (int i = 0; i < probes; ++i) {
    const double hour = 24.0 * i / probes;
    const double predicted = model.predict_integer(hours->encode(hour));
    se += (predicted - truth(hour)) * (predicted - truth(hour));
  }
  // The curve's variance is 32; the model must do far better, including at
  // the midnight wrap.
  EXPECT_LT(se / probes, 8.0);
  const double at_wrap_before = model.predict_integer(hours->encode(23.9));
  const double at_wrap_after = model.predict_integer(hours->encode(0.1));
  EXPECT_NEAR(at_wrap_before, at_wrap_after, 2.0);
}

TEST(IntegrationTest, VersionConstantsAreConsistent) {
  EXPECT_EQ(hdc::version_major, 1);
  EXPECT_STREQ(hdc::version_string, "1.0.0");
}

}  // namespace
