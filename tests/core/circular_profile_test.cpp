// Tests for the cosine-profile circular basis (extension): the profile the
// paper's Section 5.1 equation states, E[delta(C_ref, C_i)] = rho(theta)/2.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/ops.hpp"

namespace {

using hdc::Basis;
using hdc::CircularBasisConfig;
using hdc::CircularProfile;

Basis make_cosine(std::size_t d, std::size_t m, std::uint64_t seed) {
  CircularBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.profile = CircularProfile::Cosine;
  config.seed = seed;
  return hdc::make_circular_basis(config);
}

TEST(CosineTargetTest, MatchesRhoAtTheReference) {
  // Against index 0, |cos 0 - cos theta| / 4 == (1 - cos theta) / 4 = rho/2.
  const std::size_t m = 16;
  for (std::size_t j = 0; j < m; ++j) {
    const double theta = 2.0 * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(m);
    EXPECT_NEAR(hdc::circular_cosine_target_distance(0, j, m),
                (1.0 - std::cos(theta)) / 4.0, 1e-12)
        << "j = " << j;
  }
}

TEST(CosineTargetTest, Validates) {
  EXPECT_THROW((void)hdc::circular_cosine_target_distance(0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)hdc::circular_cosine_target_distance(4, 0, 4),
               std::invalid_argument);
}

TEST(CosineProfileTest, RejectsRelaxation) {
  CircularBasisConfig config;
  config.dimension = 256;
  config.size = 8;
  config.profile = CircularProfile::Cosine;
  config.r = 0.5;
  EXPECT_THROW((void)hdc::make_circular_basis(config), std::invalid_argument);
}

struct CosineCase {
  std::size_t dimension;
  std::size_t size;
  std::uint64_t seed;
};

class CosineProfileParamTest : public ::testing::TestWithParam<CosineCase> {};

TEST_P(CosineProfileParamTest, PairwiseDistancesMatchCosineTarget) {
  const auto [d, m, seed] = GetParam();
  const Basis basis = make_cosine(d, m, seed);
  const double tolerance = 5.0 / (2.0 * std::sqrt(static_cast<double>(d)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_NEAR(hdc::normalized_distance(basis[i], basis[j]),
                  hdc::circular_cosine_target_distance(i, j, m), tolerance)
          << "pair (" << i << ", " << j << ") m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CosineProfileParamTest,
    ::testing::Values(CosineCase{10'000, 8, 1}, CosineCase{10'000, 12, 2},
                      CosineCase{10'000, 16, 3},
                      // odd size via the 2m-subset rule
                      CosineCase{10'000, 9, 4}, CosineCase{16'384, 12, 5}));

TEST(CosineProfileTest, ReferenceProfileIsFlatterNearThePoles) {
  // The distinguishing feature vs the triangular profile: neighbours of the
  // reference are *closer* (cos is flat near 0) and mid-circle steps are
  // steeper.
  const std::size_t m = 16;
  const Basis cosine = make_cosine(10'000, m, 6);
  CircularBasisConfig tri_config;
  tri_config.dimension = 10'000;
  tri_config.size = m;
  tri_config.seed = 6;
  const Basis triangular = hdc::make_circular_basis(tri_config);

  const double cos_step1 = hdc::normalized_distance(cosine[0], cosine[1]);
  const double tri_step1 =
      hdc::normalized_distance(triangular[0], triangular[1]);
  EXPECT_LT(cos_step1, tri_step1);  // (1-cos(22.5deg))/4 = 0.019 << 1/16

  const double cos_mid = hdc::normalized_distance(cosine[3], cosine[5]);
  const double tri_mid =
      hdc::normalized_distance(triangular[3], triangular[5]);
  EXPECT_GT(cos_mid, tri_mid);  // steeper through the equator
}

TEST(CosineProfileTest, AntipodeIsQuasiOrthogonal) {
  const Basis basis = make_cosine(10'000, 12, 7);
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[6]), 0.5, 0.03);
}

TEST(CosineProfileTest, WrapsLikeTheTriangularProfile) {
  const Basis basis = make_cosine(10'000, 12, 8);
  // Last element is a close neighbour of the first.
  EXPECT_LT(hdc::normalized_distance(basis[0], basis[11]), 0.05);
}

TEST(CosineProfileTest, InfoRecordsProvenance) {
  const Basis basis = make_cosine(512, 8, 9);
  EXPECT_EQ(basis.info().kind, hdc::BasisKind::Circular);
  EXPECT_EQ(basis.info().size, 8U);
}

}  // namespace
