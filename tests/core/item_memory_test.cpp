// Tests for the deterministic symbol item memory and cleanup.

#include "hdc/core/item_memory.hpp"

#include <gtest/gtest.h>

#include "hdc/core/ops.hpp"

namespace {

using hdc::ItemMemory;

TEST(ItemMemoryTest, ValidatesDimension) {
  EXPECT_THROW(ItemMemory(0, 1), std::invalid_argument);
}

TEST(ItemMemoryTest, SymbolVectorIsStableAcrossCalls) {
  ItemMemory memory(1'024, 42);
  const auto first = memory.get("alpha");
  const auto second = memory.get("alpha");
  EXPECT_EQ(first, second);
  EXPECT_EQ(memory.size(), 1U);
}

TEST(ItemMemoryTest, IndependentOfInsertionOrder) {
  ItemMemory forward(1'024, 42);
  const auto a1 = forward.get("alpha");
  const auto b1 = forward.get("beta");
  ItemMemory backward(1'024, 42);
  const auto b2 = backward.get("beta");
  const auto a2 = backward.get("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
}

TEST(ItemMemoryTest, DistinctSymbolsQuasiOrthogonal) {
  ItemMemory memory(10'000, 7);
  const auto a = memory.get("left-manipulator");
  const auto b = memory.get("right-manipulator");
  EXPECT_NEAR(hdc::normalized_distance(a, b), 0.5, 0.03);
}

TEST(ItemMemoryTest, DifferentSeedsGiveDifferentVectors) {
  ItemMemory one(512, 1);
  ItemMemory two(512, 2);
  EXPECT_NE(one.get("x"), two.get("x"));
}

TEST(ItemMemoryTest, FindOnlyReturnsMaterializedSymbols) {
  ItemMemory memory(256, 3);
  EXPECT_EQ(memory.find("ghost"), nullptr);
  (void)memory.get("real");
  EXPECT_NE(memory.find("real"), nullptr);
}

TEST(ItemMemoryTest, CleanupRecoversNearestSymbol) {
  ItemMemory memory(10'000, 4);
  for (const char* symbol : {"a", "b", "c", "d", "e"}) {
    (void)memory.get(symbol);
  }
  hdc::Rng rng(5);
  const hdc::Hypervector noisy =
      hdc::flip_random_bits(*memory.find("c"), 1'500, rng);
  const auto result = memory.cleanup(noisy);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->symbol, "c");
  EXPECT_NEAR(result->distance, 0.15, 0.01);
}

TEST(ItemMemoryTest, CleanupOnEmptyMemoryIsNullopt) {
  ItemMemory memory(128, 6);
  hdc::Rng rng(7);
  EXPECT_FALSE(memory.cleanup(hdc::Hypervector::random(128, rng)).has_value());
}

TEST(ItemMemoryTest, CleanupValidatesDimension) {
  ItemMemory memory(128, 8);
  (void)memory.get("x");
  hdc::Rng rng(9);
  EXPECT_THROW((void)memory.cleanup(hdc::Hypervector::random(64, rng)),
               std::invalid_argument);
}

TEST(ItemMemoryTest, SymbolsListedInFirstUseOrder) {
  ItemMemory memory(128, 10);
  (void)memory.get("z");
  (void)memory.get("a");
  (void)memory.get("z");  // repeat must not duplicate
  (void)memory.get("m");
  const std::vector<std::string> expected{"z", "a", "m"};
  EXPECT_EQ(memory.symbols(), expected);
}

TEST(ItemMemoryTest, Fnv1a64KnownValues) {
  // Reference values of the FNV-1a 64-bit test vectors.
  EXPECT_EQ(hdc::fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(hdc::fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(hdc::fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

}  // namespace
