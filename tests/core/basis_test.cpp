// Tests for the Basis container: invariants, nearest-neighbour cleanup and
// pairwise matrices.

#include "hdc/core/basis.hpp"

#include <gtest/gtest.h>

#include "hdc/core/basis_random.hpp"
#include "hdc/core/ops.hpp"

namespace {

using hdc::Basis;
using hdc::BasisInfo;
using hdc::Hypervector;
using hdc::Rng;

Basis small_basis(std::size_t m, std::size_t d, std::uint64_t seed) {
  hdc::RandomBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = seed;
  return hdc::make_random_basis(config);
}

TEST(BasisTest, RejectsEmptySet) {
  BasisInfo info;
  info.size = 0;
  EXPECT_THROW(Basis(info, {}), std::invalid_argument);
}

TEST(BasisTest, RejectsSizeMismatch) {
  Rng rng(1);
  std::vector<Hypervector> vectors;
  vectors.push_back(Hypervector::random(100, rng));
  BasisInfo info;
  info.dimension = 100;
  info.size = 2;  // wrong: only one vector supplied
  EXPECT_THROW(Basis(info, std::move(vectors)), std::invalid_argument);
}

TEST(BasisTest, RejectsDimensionMismatch) {
  Rng rng(1);
  std::vector<Hypervector> vectors;
  vectors.push_back(Hypervector::random(100, rng));
  vectors.push_back(Hypervector::random(101, rng));
  BasisInfo info;
  info.dimension = 100;
  info.size = 2;
  EXPECT_THROW(Basis(info, std::move(vectors)), std::invalid_argument);
}

TEST(BasisTest, CheckedAccessThrowsOutOfRange) {
  const Basis basis = small_basis(4, 256, 3);
  EXPECT_NO_THROW((void)basis.at(3));
  EXPECT_THROW((void)basis.at(4), std::invalid_argument);
}

TEST(BasisTest, NearestFindsExactMember) {
  const Basis basis = small_basis(16, 10'000, 4);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_EQ(basis.nearest(basis[i]), i);
  }
}

TEST(BasisTest, NearestSurvivesNoise) {
  const Basis basis = small_basis(16, 10'000, 5);
  Rng rng(6);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    // 20% corruption still leaves the true member by far the closest.
    const Hypervector noisy = hdc::flip_random_bits(basis[i], 2'000, rng);
    EXPECT_EQ(basis.nearest(noisy), i);
  }
}

TEST(BasisTest, NearestValidatesDimension) {
  const Basis basis = small_basis(4, 128, 7);
  Rng rng(8);
  const auto query = Hypervector::random(64, rng);
  EXPECT_THROW((void)basis.nearest(query), std::invalid_argument);
}

TEST(BasisTest, PairwiseDistancesAreSymmetricWithZeroDiagonal) {
  const Basis basis = small_basis(8, 2'048, 9);
  const auto dist = basis.pairwise_distances();
  ASSERT_EQ(dist.size(), 8U);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(dist[i].size(), 8U);
    EXPECT_DOUBLE_EQ(dist[i][i], 0.0);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(dist[i][j], dist[j][i]);
      EXPECT_DOUBLE_EQ(dist[i][j],
                       hdc::normalized_distance(basis[i], basis[j]));
    }
  }
}

TEST(BasisTest, SimilaritiesAreOneMinusDistances) {
  const Basis basis = small_basis(5, 1'024, 10);
  const auto dist = basis.pairwise_distances();
  const auto sims = basis.pairwise_similarities();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(sims[i][j], 1.0 - dist[i][j]);
    }
  }
}

TEST(BasisTest, ToStringNamesAllEnumerators) {
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Random), "random");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Level), "level");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Circular), "circular");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Scatter), "scatter");
  EXPECT_STREQ(hdc::to_string(hdc::LevelMethod::ExactFlip), "exact-flip");
  EXPECT_STREQ(hdc::to_string(hdc::LevelMethod::Interpolation),
               "interpolation");
}

}  // namespace
