// Tests for the Basis container: invariants, nearest-neighbour cleanup and
// pairwise matrices.

#include "hdc/core/basis.hpp"

#include <gtest/gtest.h>

#include "hdc/core/basis_random.hpp"
#include "hdc/core/ops.hpp"

namespace {

using hdc::Basis;
using hdc::BasisInfo;
using hdc::Hypervector;
using hdc::Rng;

Basis small_basis(std::size_t m, std::size_t d, std::uint64_t seed) {
  hdc::RandomBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = seed;
  return hdc::make_random_basis(config);
}

TEST(BasisTest, RejectsEmptySet) {
  BasisInfo info;
  info.size = 0;
  EXPECT_THROW(Basis(info, std::vector<Hypervector>{}), std::invalid_argument);
}

TEST(BasisTest, RejectsSizeMismatch) {
  Rng rng(1);
  std::vector<Hypervector> vectors;
  vectors.push_back(Hypervector::random(100, rng));
  BasisInfo info;
  info.dimension = 100;
  info.size = 2;  // wrong: only one vector supplied
  EXPECT_THROW(Basis(info, std::move(vectors)), std::invalid_argument);
}

TEST(BasisTest, RejectsDimensionMismatch) {
  Rng rng(1);
  std::vector<Hypervector> vectors;
  vectors.push_back(Hypervector::random(100, rng));
  vectors.push_back(Hypervector::random(101, rng));
  BasisInfo info;
  info.dimension = 100;
  info.size = 2;
  EXPECT_THROW(Basis(info, std::move(vectors)), std::invalid_argument);
}

TEST(BasisTest, CheckedAccessThrowsOutOfRange) {
  const Basis basis = small_basis(4, 256, 3);
  EXPECT_NO_THROW((void)basis.at(3));
  EXPECT_THROW((void)basis.at(4), std::out_of_range);
}

TEST(BasisTest, NearestFindsExactMember) {
  const Basis basis = small_basis(16, 10'000, 4);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_EQ(basis.nearest(basis[i]), i);
  }
}

TEST(BasisTest, NearestSurvivesNoise) {
  const Basis basis = small_basis(16, 10'000, 5);
  Rng rng(6);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    // 20% corruption still leaves the true member by far the closest.
    const Hypervector noisy = hdc::flip_random_bits(basis[i], 2'000, rng);
    EXPECT_EQ(basis.nearest(noisy), i);
  }
}

TEST(BasisTest, NearestValidatesDimension) {
  const Basis basis = small_basis(4, 128, 7);
  Rng rng(8);
  const auto query = Hypervector::random(64, rng);
  EXPECT_THROW((void)basis.nearest(query), std::invalid_argument);
}

TEST(BasisTest, PairwiseDistancesAreSymmetricWithZeroDiagonal) {
  const Basis basis = small_basis(8, 2'048, 9);
  const auto dist = basis.pairwise_distances();
  ASSERT_EQ(dist.size(), 8U);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_EQ(dist[i].size(), 8U);
    EXPECT_DOUBLE_EQ(dist[i][i], 0.0);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(dist[i][j], dist[j][i]);
      EXPECT_DOUBLE_EQ(dist[i][j],
                       hdc::normalized_distance(basis[i], basis[j]));
    }
  }
}

TEST(BasisTest, SimilaritiesAreOneMinusDistances) {
  const Basis basis = small_basis(5, 1'024, 10);
  const auto dist = basis.pairwise_distances();
  const auto sims = basis.pairwise_similarities();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(sims[i][j], 1.0 - dist[i][j]);
    }
  }
}

TEST(BasisTest, NearestBreaksTiesTowardTheLowestIndex) {
  // Construct bases whose rows are exactly equidistant from a chosen query:
  // duplicated rows, and rows at symmetric single-bit offsets.  The
  // documented contract (ties keep the lowest index) must hold on both the
  // typed path and the raw-words path, across tail-word shapes.
  for (const std::size_t d : {64UL, 70UL, 130UL}) {
    Rng rng(100 + d);
    const Hypervector a = Hypervector::random(d, rng);
    Hypervector b = a;
    b.flip_bit(0);
    Hypervector c = a;
    c.flip_bit(d - 1);

    BasisInfo info;
    info.dimension = d;
    info.size = 4;
    // Rows 1 and 2 are both at distance 1 from `a`; row 3 duplicates row 1.
    const Basis basis(info, std::vector<Hypervector>{a, b, c, b});

    EXPECT_EQ(basis.nearest(a), 0U) << "d " << d;          // exact hit
    EXPECT_EQ(basis.nearest(b), 1U) << "d " << d;          // dup: 1 over 3
    Hypervector far = a;
    far.flip_bit(0);
    far.flip_bit(d - 1);  // distance 1 from rows 1 and 2, 2 from row 0
    EXPECT_EQ(basis.nearest(far), 1U) << "d " << d;        // tie: 1 over 2
    EXPECT_EQ(basis.nearest_words(far.words()), 1U) << "d " << d;
  }
}

TEST(BasisTest, NearestWordsRejectsWrongWordCount) {
  const Basis basis = small_basis(4, 130, 11);  // 3 words per vector
  const std::vector<std::uint64_t> short_query(2, 0ULL);
  const std::vector<std::uint64_t> long_query(4, 0ULL);
  EXPECT_THROW((void)basis.nearest_words(short_query), std::invalid_argument);
  EXPECT_THROW((void)basis.nearest_words(long_query), std::invalid_argument);
  const std::vector<std::uint64_t> exact(3, 0ULL);
  EXPECT_NO_THROW((void)basis.nearest_words(exact));
}

TEST(BasisTest, PackedArenaIsTheOnlyVectorStorage) {
  // The arena must account for every resident vector byte: m rows of
  // words_for(d) words, and nothing duplicated per Hypervector.
  const std::size_t d = 10'240;
  const std::size_t m = 16;
  const Basis basis = small_basis(m, d, 12);
  const std::size_t arena_bytes =
      m * hdc::bits::words_for(d) * sizeof(std::uint64_t);
  EXPECT_EQ(basis.packed_words().size() * sizeof(std::uint64_t), arena_bytes);
  EXPECT_EQ(basis.resident_bytes(), arena_bytes);
}

TEST(BasisTest, AdoptsPrepackedArenaZeroCopy) {
  const Basis original = small_basis(5, 70, 13);
  std::vector<std::uint64_t> packed(original.packed_words().begin(),
                                    original.packed_words().end());
  const Basis adopted(original.info(), std::move(packed));
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_TRUE(adopted[i] == original[i]) << "row " << i;
  }

  // Arena validation: wrong word count and dirty tail bits are rejected.
  std::vector<std::uint64_t> wrong_count(original.packed_words().begin(),
                                         original.packed_words().end() - 1);
  EXPECT_THROW(Basis(original.info(), std::move(wrong_count)),
               std::invalid_argument);
  std::vector<std::uint64_t> dirty(original.packed_words().begin(),
                                   original.packed_words().end());
  dirty[1] |= 1ULL << 63;  // bit 127 of row 0: beyond dimension 70
  EXPECT_THROW(Basis(original.info(), std::move(dirty)),
               std::invalid_argument);

  // A crafted size whose multiply with the stride wraps to the arena length
  // must not bypass validation (overflow-safe word-count check).
  BasisInfo overflow = original.info();
  overflow.size = std::size_t{1} << 63;  // * 2 words/vector wraps to 0
  EXPECT_THROW(Basis(overflow, std::vector<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(BasisTest, ToStringNamesAllEnumerators) {
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Random), "random");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Level), "level");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Circular), "circular");
  EXPECT_STREQ(hdc::to_string(hdc::BasisKind::Scatter), "scatter");
  EXPECT_STREQ(hdc::to_string(hdc::LevelMethod::ExactFlip), "exact-flip");
  EXPECT_STREQ(hdc::to_string(hdc::LevelMethod::Interpolation),
               "interpolation");
}

}  // namespace
