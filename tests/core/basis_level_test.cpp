// Property tests for level-hypervector generation: Proposition 4.1 for the
// interpolation method (Algorithm 1), exactness for the classic flip method,
// and the Section 5.2 r-relaxation.

#include "hdc/core/basis_level.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hdc/core/ops.hpp"

namespace {

using hdc::Basis;
using hdc::LevelBasisConfig;
using hdc::LevelMethod;

Basis make(std::size_t d, std::size_t m, LevelMethod method, double r,
           std::uint64_t seed) {
  LevelBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.method = method;
  config.r = r;
  config.seed = seed;
  return hdc::make_level_basis(config);
}

TEST(LevelTargetDistanceTest, MatchesPaperFormula) {
  // Delta_{i,j} = (j - i) / (2 (m - 1)), Section 4.2.
  EXPECT_DOUBLE_EQ(hdc::level_target_distance(1, 2, 11), 0.05);
  EXPECT_DOUBLE_EQ(hdc::level_target_distance(1, 11, 11), 0.5);
  EXPECT_DOUBLE_EQ(hdc::level_target_distance(4, 8, 9), 0.25);
  EXPECT_DOUBLE_EQ(hdc::level_target_distance(8, 4, 9), 0.25);  // symmetric
}

TEST(LevelTargetDistanceTest, ValidatesArguments) {
  EXPECT_THROW((void)hdc::level_target_distance(1, 2, 1), std::invalid_argument);
  EXPECT_THROW((void)hdc::level_target_distance(0, 2, 4), std::invalid_argument);
  EXPECT_THROW((void)hdc::level_target_distance(1, 5, 4), std::invalid_argument);
}

TEST(LevelBasisTest, ValidatesConfig) {
  EXPECT_THROW((void)make(0, 4, LevelMethod::Interpolation, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make(100, 1, LevelMethod::Interpolation, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make(100, 4, LevelMethod::Interpolation, -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make(100, 4, LevelMethod::Interpolation, 1.1, 1),
               std::invalid_argument);
  // r is an interpolation-only feature.
  EXPECT_THROW((void)make(100, 4, LevelMethod::ExactFlip, 0.5, 1),
               std::invalid_argument);
}

TEST(LevelBasisTest, InfoRecordsProvenance) {
  const Basis basis = make(512, 6, LevelMethod::Interpolation, 0.25, 77);
  EXPECT_EQ(basis.info().kind, hdc::BasisKind::Level);
  EXPECT_EQ(basis.info().method, LevelMethod::Interpolation);
  EXPECT_EQ(basis.info().dimension, 512U);
  EXPECT_EQ(basis.info().size, 6U);
  EXPECT_DOUBLE_EQ(basis.info().r, 0.25);
  EXPECT_EQ(basis.info().seed, 77U);
}

TEST(LevelBasisTest, DeterministicGivenSeed) {
  const Basis a = make(1'000, 8, LevelMethod::Interpolation, 0.0, 5);
  const Basis b = make(1'000, 8, LevelMethod::Interpolation, 0.0, 5);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

struct Prop41Case {
  std::size_t dimension;
  std::size_t size;
  std::uint64_t seed;
};

class Proposition41Test : public ::testing::TestWithParam<Prop41Case> {};

TEST_P(Proposition41Test, InterpolationDistancesMatchDelta) {
  const auto [d, m, seed] = GetParam();
  const Basis basis = make(d, m, LevelMethod::Interpolation, 0.0, seed);
  // Per-pair distance is an average of d i.i.d. indicators, so its standard
  // deviation is at most 1/(2 sqrt(d)); allow 5 sigma.
  const double tolerance = 5.0 / (2.0 * std::sqrt(static_cast<double>(d)));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double measured = hdc::normalized_distance(basis[i], basis[j]);
      const double target = hdc::level_target_distance(i + 1, j + 1, m);
      EXPECT_NEAR(measured, target, tolerance)
          << "pair (" << i << ", " << j << ") of m=" << m << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Proposition41Test,
    ::testing::Values(Prop41Case{10'000, 2, 1}, Prop41Case{10'000, 5, 2},
                      Prop41Case{10'000, 12, 3}, Prop41Case{10'000, 33, 4},
                      Prop41Case{16'384, 8, 5}, Prop41Case{4'096, 16, 6},
                      Prop41Case{10'000, 12, 7}, Prop41Case{10'000, 12, 8}));

TEST(LevelBasisTest, ExactFlipEndpointsExactlyOrthogonal) {
  for (const std::size_t d : {10'000UL, 4'096UL, 1'001UL}) {
    const Basis basis = make(d, 10, LevelMethod::ExactFlip, 0.0, 9);
    EXPECT_EQ(hdc::hamming_distance(basis[0], basis[9]), d / 2)
        << "d = " << d;
  }
}

TEST(LevelBasisTest, ExactFlipDistancesNearlyDeterministic) {
  const std::size_t d = 10'000;
  const std::size_t m = 11;
  const Basis basis = make(d, m, LevelMethod::ExactFlip, 0.0, 10);
  // Flips are never undone, so delta(L_i, L_j) equals the scheduled flip
  // count between i and j — within one flip of the ideal linear value.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double target = hdc::level_target_distance(i + 1, j + 1, m);
      const double measured = hdc::normalized_distance(basis[i], basis[j]);
      EXPECT_NEAR(measured, target, 2.0 / static_cast<double>(m - 1) / 2.0)
          << "pair (" << i << ", " << j << ")";
    }
  }
}

TEST(LevelBasisTest, ExactFlipIsMonotone) {
  // Once flipped, never unflipped: distance from L_1 grows monotonically.
  const Basis basis = make(2'048, 9, LevelMethod::ExactFlip, 0.0, 11);
  std::size_t previous = 0;
  for (std::size_t j = 1; j < basis.size(); ++j) {
    const std::size_t dist = hdc::hamming_distance(basis[0], basis[j]);
    EXPECT_GT(dist, previous);
    previous = dist;
  }
}

TEST(LevelBasisTest, FullRelaxationIsRandomSet) {
  // r = 1: every level is an independent random vector (quasi-orthogonal).
  const Basis basis = make(10'000, 8, LevelMethod::Interpolation, 1.0, 12);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      EXPECT_NEAR(hdc::normalized_distance(basis[i], basis[j]), 0.5, 0.03);
    }
  }
}

TEST(LevelBasisTest, PartialRelaxationKeepsLocalCorrelation) {
  // r = 0.5 on m = 9: segments of n = 0.5 + 0.5 * 8 = 4.5 transitions.
  // Immediate neighbours stay well-correlated while the endpoints are
  // (beyond one segment apart) quasi-orthogonal.
  const Basis basis = make(10'000, 9, LevelMethod::Interpolation, 0.5, 13);
  EXPECT_LT(hdc::normalized_distance(basis[0], basis[1]), 0.25);
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[8]), 0.5, 0.03);
}

TEST(LevelBasisTest, MinimalSizeTwoIsQuasiOrthogonalPair) {
  const Basis basis = make(10'000, 2, LevelMethod::Interpolation, 0.0, 14);
  // Delta_{1,2} = 1/(2(2-1)) = 0.5.
  EXPECT_NEAR(hdc::normalized_distance(basis[0], basis[1]), 0.5, 0.03);
}

TEST(LevelBasisTest, EndpointsAreSharedWithAnchors) {
  // Algorithm 1 line 1-2: L_1 and L_m are the anchor vectors themselves, so
  // regenerating with the same seed but different m keeps L_1 identical.
  const Basis a = make(1'024, 4, LevelMethod::Interpolation, 0.0, 15);
  const Basis b = make(1'024, 9, LevelMethod::Interpolation, 0.0, 15);
  EXPECT_EQ(a[0], b[0]);
}

}  // namespace
