// Kernel-dispatch property suite: every compiled-in, CPU-supported kernel
// variant (scalar / AVX2 / AVX-512 / NEON) must be bit-exact with the
// scalar reference on the full primitive matrix — hamming, nearest_hamming
// (including its lowest-index tie-break), hamming_many, count_ones,
// xor_into and xor_rows — across dimensions that exercise every word-count
// shape: single partial word, exact word boundaries, one-past boundaries,
// and the paper-scale d = 10000 / 10240.  Variants are forced through
// select_kernels(), the same switch HDC_KERNELS reaches at init, so this
// suite is also the regression net for the dispatcher itself.

#include "hdc/core/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "hdc/base/rng.hpp"
#include "hdc/core/bitops.hpp"

namespace {

using hdc::Rng;
namespace bits = hdc::bits;

// The dimension matrix from the arena property suites: every tail shape.
constexpr std::size_t kDims[] = {1, 63, 64, 65, 127, 10'000, 10'240};

std::vector<std::uint64_t> random_words(std::size_t bit_count, Rng& rng) {
  std::vector<std::uint64_t> words(bits::words_for(bit_count));
  for (auto& w : words) {
    w = rng();
  }
  if (!words.empty()) {
    words.back() &= bits::tail_mask(bit_count);
  }
  return words;
}

/// Restores the entry selection when a test exits, pass or fail, so a
/// failure in one variant cannot leak that variant into later suites.
class KernelGuard {
 public:
  KernelGuard() : previous_(bits::active_kernels().name) {}
  ~KernelGuard() { bits::select_kernels(previous_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  std::string previous_;
};

TEST(KernelDispatchTest, ScalarIsAlwaysAvailable) {
  bool saw_scalar = false;
  for (const bits::Kernels* variant : bits::available_kernels()) {
    EXPECT_TRUE(variant->supported());
    if (std::string_view(variant->name) == "scalar") {
      saw_scalar = true;
    }
  }
  EXPECT_TRUE(saw_scalar);
  EXPECT_EQ(std::string_view(bits::scalar_kernels().name), "scalar");
  EXPECT_TRUE(bits::scalar_kernels().supported());
}

TEST(KernelDispatchTest, AvailableIsTheSupportedSubsetOfCompiled) {
  const auto compiled = bits::compiled_kernels();
  EXPECT_GE(compiled.size(), bits::available_kernels().size());
  for (const bits::Kernels* variant : bits::available_kernels()) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), variant),
              compiled.end());
  }
}

TEST(KernelDispatchTest, SelectRoundTripsEveryAvailableVariant) {
  const KernelGuard guard;
  for (const bits::Kernels* variant : bits::available_kernels()) {
    const bits::Kernels& selected = bits::select_kernels(variant->name);
    EXPECT_EQ(&selected, variant);
    EXPECT_EQ(std::string_view(bits::active_kernels().name), variant->name);
  }
}

TEST(KernelDispatchTest, SelectUnknownVariantThrowsAndKeepsSelection) {
  const std::string before = bits::active_kernels().name;
  EXPECT_THROW(bits::select_kernels("bogus"), std::invalid_argument);
  EXPECT_THROW(bits::select_kernels(""), std::invalid_argument);
  try {
    bits::select_kernels("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // The diagnostic must list the real alternatives.
    EXPECT_NE(std::string(error.what()).find("scalar"), std::string::npos);
  }
  EXPECT_EQ(std::string(bits::active_kernels().name), before);
}

TEST(KernelDispatchTest, CpuFeaturesImplyCompiledVariantSupport) {
  const bits::CpuFeatures features = bits::cpu_features();
  for (const bits::Kernels* variant : bits::compiled_kernels()) {
    const std::string_view name = variant->name;
    if (name == "avx2") {
      EXPECT_EQ(variant->supported(), features.avx2);
    } else if (name == "avx512") {
      EXPECT_EQ(variant->supported(),
                features.avx512f && features.avx512vpopcntdq);
    } else if (name == "neon") {
      EXPECT_EQ(variant->supported(), features.neon);
    }
  }
}

/// Bit-exactness matrix, run once per available variant via the
/// value-parameterized harness below.
class KernelVariantTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { bits::select_kernels(GetParam()); }
  void TearDown() override { bits::select_kernels("scalar"); }
};

TEST_P(KernelVariantTest, HammingMatchesScalarReference) {
  const bits::Kernels& reference = bits::scalar_kernels();
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 5 + 1);
    for (int round = 0; round < 8; ++round) {
      const auto a = random_words(dim, rng);
      const auto b = random_words(dim, rng);
      EXPECT_EQ(bits::hamming(a, b),
                reference.hamming(a.data(), b.data(), a.size()))
          << "variant " << GetParam() << " d=" << dim;
    }
    // Identical inputs and complementary tails are the distance extremes.
    const auto a = random_words(dim, rng);
    EXPECT_EQ(bits::hamming(a, a), 0U);
    std::vector<std::uint64_t> flipped(a);
    for (auto& w : flipped) {
      w = ~w;
    }
    flipped.back() &= bits::tail_mask(dim);
    EXPECT_EQ(bits::hamming(a, flipped), dim)
        << "variant " << GetParam() << " d=" << dim;
  }
}

TEST_P(KernelVariantTest, CountOnesMatchesScalarReference) {
  const bits::Kernels& reference = bits::scalar_kernels();
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 7 + 2);
    for (int round = 0; round < 8; ++round) {
      const auto words = random_words(dim, rng);
      EXPECT_EQ(bits::count_ones(words),
                reference.count_ones(words.data(), words.size()))
          << "variant " << GetParam() << " d=" << dim;
    }
  }
}

TEST_P(KernelVariantTest, XorMatchesScalarAndPreservesTailInvariant) {
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 11 + 3);
    const auto a = random_words(dim, rng);
    const auto b = random_words(dim, rng);
    std::vector<std::uint64_t> expected(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      expected[i] = a[i] ^ b[i];
    }

    std::vector<std::uint64_t> rows_out(a.size(), ~0ULL);
    bits::xor_rows(rows_out, a, b);
    EXPECT_EQ(rows_out, expected) << "variant " << GetParam() << " d=" << dim;
    // Tail-masked inputs must produce a tail-masked XOR.
    EXPECT_EQ(rows_out.back() & ~bits::tail_mask(dim), 0U);

    std::vector<std::uint64_t> into_out(a);
    bits::xor_into(into_out, b);
    EXPECT_EQ(into_out, expected) << "variant " << GetParam() << " d=" << dim;

    // Aliased xor_rows(dst = dst ^ b) is part of the contract.
    std::vector<std::uint64_t> aliased(a);
    bits::xor_rows(aliased, aliased, b);
    EXPECT_EQ(aliased, expected) << "variant " << GetParam() << " d=" << dim;
  }
}

TEST_P(KernelVariantTest, NearestAndManyMatchScalarOverArenas) {
  const bits::Kernels& reference = bits::scalar_kernels();
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 13 + 4);
    const std::size_t words = bits::words_for(dim);
    // stride > words exercises the padded-row layout the VectorArena uses.
    const std::size_t stride = words + (dim % 3);
    const std::size_t count = 17;
    std::vector<std::uint64_t> arena(stride * count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      const auto row = random_words(dim, rng);
      std::copy(row.begin(), row.end(), arena.begin() + i * stride);
    }
    const auto query = random_words(dim, rng);

    const bits::NearestMatch expected = reference.nearest_hamming(
        query.data(), words, arena.data(), stride, count);
    const bits::NearestMatch actual =
        bits::nearest_hamming(query, arena, stride, count);
    EXPECT_EQ(actual.index, expected.index)
        << "variant " << GetParam() << " d=" << dim;
    EXPECT_EQ(actual.distance, expected.distance)
        << "variant " << GetParam() << " d=" << dim;

    std::vector<std::size_t> distances(count, 0);
    std::vector<std::size_t> reference_distances(count, 0);
    bits::hamming_many(query, arena, stride, count, distances);
    reference.hamming_many(query.data(), words, arena.data(), stride, count,
                           reference_distances.data());
    EXPECT_EQ(distances, reference_distances)
        << "variant " << GetParam() << " d=" << dim;
  }
}

TEST_P(KernelVariantTest, NearestBreaksTiesTowardLowestIndex) {
  for (const std::size_t dim : kDims) {
    Rng rng(dim * 17 + 5);
    const std::size_t words = bits::words_for(dim);
    const auto query = random_words(dim, rng);
    const auto far = random_words(dim, rng);
    const auto near = random_words(dim, rng);

    // Rows [far, near, near, near]: the duplicated minimum must resolve to
    // its first occurrence for every variant (index 1, never 2 or 3) —
    // unless `far` accidentally ties or beats it, in which case index 0 is
    // the correct strict-less-than answer; skip that degenerate draw.
    if (bits::hamming(query, near) >= bits::hamming(query, far)) {
      continue;
    }
    std::vector<std::uint64_t> arena;
    for (const auto* row : {&far, &near, &near, &near}) {
      arena.insert(arena.end(), row->begin(), row->end());
    }
    const bits::NearestMatch match =
        bits::nearest_hamming(query, arena, words, 4);
    EXPECT_EQ(match.index, 1U) << "variant " << GetParam() << " d=" << dim;

    // An arena of identical rows must always resolve to index 0.
    std::vector<std::uint64_t> same;
    for (int i = 0; i < 5; ++i) {
      same.insert(same.end(), near.begin(), near.end());
    }
    EXPECT_EQ(bits::nearest_hamming(query, same, words, 5).index, 0U)
        << "variant " << GetParam() << " d=" << dim;
  }
}

std::vector<std::string> available_variant_names() {
  std::vector<std::string> names;
  for (const bits::Kernels* variant : bits::available_kernels()) {
    names.emplace_back(variant->name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, KernelVariantTest,
    ::testing::ValuesIn(available_variant_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
