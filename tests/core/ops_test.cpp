// Property tests for the HDC operations of Section 2.1: binding, bundling,
// permutation, and the normalized Hamming distance.

#include "hdc/core/ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hdc/core/accumulator.hpp"

namespace {

using hdc::BundleAccumulator;
using hdc::Hypervector;
using hdc::Rng;

constexpr std::size_t kDim = 10'000;
// Normalized distance between random vectors: mean 1/2, sd = 1/(2 sqrt(d)).
// 6 sigma at d = 10,000 is 0.03.
constexpr double kSixSigma = 0.03;

class OpsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpsPropertyTest, RandomPairsAreQuasiOrthogonal) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  EXPECT_NEAR(hdc::normalized_distance(a, b), 0.5, kSixSigma);
}

TEST_P(OpsPropertyTest, BindingIsCommutative) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  EXPECT_EQ(hdc::bind(a, b), hdc::bind(b, a));
}

TEST_P(OpsPropertyTest, BindingIsSelfInverse) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  EXPECT_EQ(hdc::bind(a, hdc::bind(a, b)), b);
}

TEST_P(OpsPropertyTest, BindingOutputDissimilarToOperands) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  const auto bound = hdc::bind(a, b);
  EXPECT_NEAR(hdc::normalized_distance(bound, a), 0.5, kSixSigma);
  EXPECT_NEAR(hdc::normalized_distance(bound, b), 0.5, kSixSigma);
}

TEST_P(OpsPropertyTest, BindingPreservesDistances) {
  // delta(A^C, B^C) == delta(A, B): XOR by a common vector is an isometry.
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  const auto c = Hypervector::random(kDim, rng);
  EXPECT_EQ(hdc::hamming_distance(a ^ c, b ^ c), hdc::hamming_distance(a, b));
}

TEST_P(OpsPropertyTest, PermutationIsInvertible) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  for (const std::size_t shift : {std::size_t{1}, std::size_t{64},
                                  std::size_t{123}, kDim - 1, kDim, kDim + 7}) {
    EXPECT_EQ(hdc::permute_inverse(hdc::permute(a, shift), shift), a)
        << "shift " << shift;
  }
}

TEST_P(OpsPropertyTest, PermutationOutputDissimilarToInput) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  EXPECT_NEAR(hdc::normalized_distance(hdc::permute(a, 1), a), 0.5, kSixSigma);
}

TEST_P(OpsPropertyTest, PermutationPreservesDistances) {
  Rng rng(GetParam());
  const auto a = Hypervector::random(kDim, rng);
  const auto b = Hypervector::random(kDim, rng);
  EXPECT_EQ(hdc::hamming_distance(hdc::permute(a, 17), hdc::permute(b, 17)),
            hdc::hamming_distance(a, b));
}

TEST_P(OpsPropertyTest, BundleIsSimilarToOperands) {
  Rng rng(GetParam());
  std::vector<Hypervector> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(Hypervector::random(kDim, rng));
  }
  const Hypervector bundle = hdc::majority(inputs, rng);
  for (const auto& input : inputs) {
    // Each of 5 random inputs agrees with the majority in expectation on
    // 1/2 + C(4,2)/2^5 = 11/16 of positions -> delta = 5/16.
    EXPECT_NEAR(hdc::normalized_distance(bundle, input), 5.0 / 16.0, kSixSigma);
  }
  // ... but stays quasi-orthogonal to an unrelated vector.
  const auto other = Hypervector::random(kDim, rng);
  EXPECT_NEAR(hdc::normalized_distance(bundle, other), 0.5, kSixSigma);
}

TEST_P(OpsPropertyTest, BindingDistributesOverBundling) {
  // C ^ majority(A1..A3) == majority(C^A1, .., C^A3) — exact for odd n.
  Rng rng(GetParam());
  const auto c = Hypervector::random(kDim, rng);
  std::vector<Hypervector> inputs;
  std::vector<Hypervector> bound_inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(Hypervector::random(kDim, rng));
    bound_inputs.push_back(c ^ inputs.back());
  }
  Rng tie_a(99);
  Rng tie_b(99);
  EXPECT_EQ(c ^ hdc::majority(inputs, tie_a),
            hdc::majority(bound_inputs, tie_b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsPropertyTest,
                         ::testing::Values(1U, 2U, 3U, 17U, 1234U, 99999U));

TEST(OpsTest, MajorityOfOneIsIdentity) {
  Rng rng(5);
  const auto a = Hypervector::random(257, rng);
  const std::vector<Hypervector> one{a};
  EXPECT_EQ(hdc::majority(one, rng), a);
}

TEST(OpsTest, MajorityOddIsExact) {
  // 3-input majority computed bit by bit.
  const bool a_bits[] = {true, true, false, false, true};
  const bool b_bits[] = {true, false, true, false, false};
  const bool c_bits[] = {false, true, true, false, false};
  const std::vector<Hypervector> inputs{Hypervector::from_bits(a_bits),
                                        Hypervector::from_bits(b_bits),
                                        Hypervector::from_bits(c_bits)};
  Rng rng(1);
  const Hypervector out = hdc::majority(inputs, rng);
  EXPECT_TRUE(out.bit(0));
  EXPECT_TRUE(out.bit(1));
  EXPECT_TRUE(out.bit(2));
  EXPECT_FALSE(out.bit(3));
  EXPECT_FALSE(out.bit(4));
}

TEST(OpsTest, MajorityEmptyThrows) {
  Rng rng(1);
  const std::vector<Hypervector> empty;
  EXPECT_THROW((void)hdc::majority(empty, rng), std::invalid_argument);
}

TEST(OpsTest, FlipRandomBitsFlipsExactCount) {
  Rng rng(11);
  const auto a = Hypervector::random(1'000, rng);
  for (const std::size_t count : {0U, 1U, 10U, 500U, 999U, 1'000U}) {
    const auto flipped = hdc::flip_random_bits(a, count, rng);
    EXPECT_EQ(hdc::hamming_distance(a, flipped), count) << "count " << count;
  }
  EXPECT_THROW((void)hdc::flip_random_bits(a, 1'001, rng),
               std::invalid_argument);
}

TEST(OpsTest, RandomWalkMatchesClosedFormExpectation) {
  Rng rng(12);
  const std::size_t dim = 10'000;
  const auto a = Hypervector::random(dim, rng);
  const std::size_t steps = 2'000;
  // E[delta] = (1 - (1 - 2/d)^steps) / 2 ~ 0.1648 at these parameters.
  double total = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    total += hdc::normalized_distance(a, hdc::random_walk_flips(a, steps, rng));
  }
  EXPECT_NEAR(total / trials, 0.5 * (1.0 - std::pow(1.0 - 2.0 / 10'000.0,
                                                    2'000.0)),
              0.01);
}

TEST(OpsTest, AccumulatorMatchesNaryMajority) {
  Rng rng(13);
  std::vector<Hypervector> inputs;
  for (int i = 0; i < 7; ++i) {
    inputs.push_back(Hypervector::random(333, rng));
  }
  BundleAccumulator acc(333);
  for (const auto& hv : inputs) {
    acc.add(hv);
  }
  Rng tie_a(7);
  Rng tie_b(7);
  EXPECT_EQ(acc.finalize(tie_a), hdc::majority(inputs, tie_b));
}

TEST(OpsTest, AccumulatorSubtractUndoesAdd) {
  Rng rng(14);
  const auto a = Hypervector::random(100, rng);
  const auto b = Hypervector::random(100, rng);
  BundleAccumulator acc(100);
  acc.add(a);
  acc.add(b);
  acc.subtract(b);
  BundleAccumulator only_a(100);
  only_a.add(a);
  EXPECT_TRUE(std::ranges::equal(acc.counters(), only_a.counters()));
}

TEST(OpsTest, SignedProjectionIdentifiesMember) {
  Rng rng(15);
  std::vector<Hypervector> inputs;
  BundleAccumulator acc(10'000);
  for (int i = 0; i < 9; ++i) {
    inputs.push_back(Hypervector::random(10'000, rng));
    acc.add(inputs.back());
  }
  const auto outsider = Hypervector::random(10'000, rng);
  for (const auto& member : inputs) {
    EXPECT_GT(acc.signed_projection(member),
              acc.signed_projection(outsider));
  }
}

}  // namespace
