// Tests for the centroid classifier (Section 2.2) and the adaptive
// refinement extension.

#include "hdc/core/classifier.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/scalar_encoder.hpp"
#include "hdc/stats/circular.hpp"

namespace {

using hdc::CentroidClassifier;
using hdc::Hypervector;
using hdc::Rng;

TEST(ClassifierTest, ValidatesConstruction) {
  EXPECT_THROW(CentroidClassifier(0, 100, 1), std::invalid_argument);
  EXPECT_THROW(CentroidClassifier(3, 0, 1), std::invalid_argument);
}

TEST(ClassifierTest, PredictRequiresFinalize) {
  CentroidClassifier model(2, 128, 1);
  Rng rng(2);
  const auto query = Hypervector::random(128, rng);
  EXPECT_THROW((void)model.predict(query), std::logic_error);
  model.finalize();
  EXPECT_NO_THROW((void)model.predict(query));
}

TEST(ClassifierTest, AddSampleValidatesLabelAndDimension) {
  CentroidClassifier model(2, 128, 1);
  Rng rng(3);
  EXPECT_THROW(model.add_sample(2, Hypervector::random(128, rng)),
               std::invalid_argument);
  EXPECT_THROW(model.add_sample(0, Hypervector::random(64, rng)),
               std::invalid_argument);
}

TEST(ClassifierTest, UpdatesInvalidateFinalization) {
  CentroidClassifier model(2, 128, 1);
  Rng rng(4);
  model.finalize();
  EXPECT_TRUE(model.finalized());
  model.add_sample(0, Hypervector::random(128, rng));
  EXPECT_FALSE(model.finalized());
}

TEST(ClassifierTest, RecoversPrototypesOfNoisyClasses) {
  // Three random prototypes; training samples are 10%-corrupted copies.
  constexpr std::size_t dim = 10'000;
  Rng rng(5);
  std::vector<Hypervector> prototypes;
  for (int c = 0; c < 3; ++c) {
    prototypes.push_back(Hypervector::random(dim, rng));
  }
  CentroidClassifier model(3, dim, 6);
  for (int i = 0; i < 50; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      model.add_sample(c, hdc::flip_random_bits(prototypes[c], 1'000, rng));
    }
  }
  model.finalize();
  // The class-vector converges to the prototype...
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_LT(hdc::normalized_distance(model.class_vector(c), prototypes[c]),
              0.05);
    EXPECT_EQ(model.class_count(c), 50U);
  }
  // ... and fresh noisy samples classify correctly, even at 30% corruption.
  for (std::size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(model.predict(hdc::flip_random_bits(prototypes[c], 3'000, rng)),
                c);
    }
  }
}

TEST(ClassifierTest, SimilaritiesRankTrueClassHighest) {
  constexpr std::size_t dim = 10'000;
  Rng rng(7);
  const auto proto_a = Hypervector::random(dim, rng);
  const auto proto_b = Hypervector::random(dim, rng);
  CentroidClassifier model(2, dim, 8);
  for (int i = 0; i < 10; ++i) {
    model.add_sample(0, hdc::flip_random_bits(proto_a, 500, rng));
    model.add_sample(1, hdc::flip_random_bits(proto_b, 500, rng));
  }
  model.finalize();
  const auto sims = model.similarities(proto_a);
  ASSERT_EQ(sims.size(), 2U);
  EXPECT_GT(sims[0], sims[1]);
  EXPECT_DOUBLE_EQ(sims[0], model.class_similarity(0, proto_a));
}

TEST(ClassifierTest, AdaptCorrectsMislabeledPrototype) {
  // Poison class 1 with class-0 samples, then let mistake-driven updates
  // repair the boundary.
  constexpr std::size_t dim = 10'000;
  Rng rng(9);
  const auto proto_a = Hypervector::random(dim, rng);
  const auto proto_b = Hypervector::random(dim, rng);
  CentroidClassifier model(2, dim, 10);
  for (int i = 0; i < 30; ++i) {
    model.add_sample(0, hdc::flip_random_bits(proto_a, 800, rng));
    model.add_sample(1, hdc::flip_random_bits(proto_b, 800, rng));
  }
  // Poison: class 1 accumulates many near-A samples.
  for (int i = 0; i < 25; ++i) {
    model.add_sample(1, hdc::flip_random_bits(proto_a, 800, rng));
  }
  model.finalize();

  std::size_t wrong_before = 0;
  for (int i = 0; i < 50; ++i) {
    wrong_before +=
        model.predict(hdc::flip_random_bits(proto_a, 800, rng)) != 0 ? 1U : 0U;
  }

  // Adaptive epoch over fresh labelled data.
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 40; ++i) {
      (void)model.adapt(0, hdc::flip_random_bits(proto_a, 800, rng));
      (void)model.adapt(1, hdc::flip_random_bits(proto_b, 800, rng));
    }
  }

  std::size_t wrong_after = 0;
  for (int i = 0; i < 50; ++i) {
    wrong_after +=
        model.predict(hdc::flip_random_bits(proto_a, 800, rng)) != 0 ? 1U : 0U;
  }
  EXPECT_LE(wrong_after, wrong_before);
  EXPECT_EQ(wrong_after, 0U);
}

TEST(ClassifierTest, EndToEndAngularGestures) {
  // Miniature version of the paper's task: angular samples around class
  // means, one of which straddles the wrap point.
  constexpr std::size_t dim = 10'000;
  hdc::CircularBasisConfig config;
  config.dimension = dim;
  config.size = 32;
  config.seed = 11;
  const hdc::CircularScalarEncoder encoder(hdc::make_circular_basis(config),
                                           hdc::stats::two_pi);
  const double means[] = {0.05, 2.0, 4.2};  // first one wraps
  CentroidClassifier model(3, dim, 12);
  Rng rng(13);
  for (int i = 0; i < 150; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double theta = rng.normal(means[c], 0.25);
      model.add_sample(c, encoder.encode(theta));
    }
  }
  model.finalize();
  std::size_t correct = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double theta = rng.normal(means[c], 0.25);
      correct += model.predict(encoder.encode(theta)) == c ? 1U : 0U;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / (3.0 * trials), 0.95);
}

}  // namespace
