// Tests for the key-value feature encoder (the Section 6.1 sample encoding).

#include "hdc/core/feature_encoder.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/circular.hpp"

namespace {

using hdc::KeyValueEncoder;
using hdc::ScalarEncoderPtr;

ScalarEncoderPtr value_encoder(std::size_t d = 10'000) {
  hdc::LevelBasisConfig config;
  config.dimension = d;
  config.size = 16;
  config.seed = 3;
  return std::make_shared<hdc::LinearScalarEncoder>(
      hdc::make_level_basis(config), 0.0, 1.0);
}

TEST(KeyValueEncoderTest, ValidatesArguments) {
  EXPECT_THROW(KeyValueEncoder(0, value_encoder(256), 1),
               std::invalid_argument);
  EXPECT_THROW(KeyValueEncoder(4, nullptr, 1), std::invalid_argument);
}

TEST(KeyValueEncoderTest, EncodeValidatesFeatureCount) {
  const KeyValueEncoder enc(3, value_encoder(256), 2);
  const double two[] = {0.1, 0.2};
  EXPECT_THROW((void)enc.encode(two), std::invalid_argument);
}

TEST(KeyValueEncoderTest, DeterministicGivenSeed) {
  const KeyValueEncoder a(4, value_encoder(1'024), 5);
  const KeyValueEncoder b(4, value_encoder(1'024), 5);
  const double features[] = {0.1, 0.5, 0.9, 0.3};
  EXPECT_EQ(a.encode(features), b.encode(features));
}

TEST(KeyValueEncoderTest, KeysAreQuasiOrthogonal) {
  const KeyValueEncoder enc(6, value_encoder(), 7);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_NEAR(hdc::normalized_distance(enc.keys()[i], enc.keys()[j]), 0.5,
                  0.03);
    }
  }
}

TEST(KeyValueEncoderTest, SimilarFeatureVectorsAreSimilar) {
  const KeyValueEncoder enc(8, value_encoder(), 8);
  const double base[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  const double near_vec[] = {0.12, 0.2, 0.32, 0.4, 0.5, 0.62, 0.7, 0.8};
  const double far[] = {0.9, 0.8, 0.7, 0.1, 0.0, 0.2, 0.1, 0.05};
  const auto base_hv = enc.encode(base);
  EXPECT_LT(hdc::normalized_distance(base_hv, enc.encode(near_vec)),
            hdc::normalized_distance(base_hv, enc.encode(far)));
}

TEST(KeyValueEncoderTest, FeaturePositionsAreDistinguished) {
  // Swapping two distinct feature values must change the encoding: the keys
  // bind values to their positions.
  const KeyValueEncoder enc(2, value_encoder(), 9);
  const double ab[] = {0.0, 1.0};
  const double ba[] = {1.0, 0.0};
  EXPECT_GT(hdc::normalized_distance(enc.encode(ab), enc.encode(ba)), 0.2);
}

TEST(KeyValueEncoderTest, WorksWithCircularValues) {
  hdc::CircularBasisConfig config;
  config.dimension = 10'000;
  config.size = 16;
  config.seed = 10;
  const auto values = std::make_shared<hdc::CircularScalarEncoder>(
      hdc::make_circular_basis(config), hdc::stats::two_pi);
  const KeyValueEncoder enc(3, values, 11);
  // Angles across the wrap stay similar through the whole encoder.
  const double before[] = {6.2, 1.0, 2.0};
  const double after[] = {0.05, 1.0, 2.0};
  EXPECT_LT(hdc::normalized_distance(enc.encode(before), enc.encode(after)),
            0.15);
}

}  // namespace
