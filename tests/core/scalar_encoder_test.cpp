// Tests for the invertible scalar encoders (phi_L of Sections 2.3/3.2 and
// the circular variant of Section 5).

#include "hdc/core/scalar_encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hdc/core/basis_circular.hpp"
#include "hdc/core/basis_level.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/stats/circular.hpp"

namespace {

using hdc::Basis;
using hdc::CircularScalarEncoder;
using hdc::LinearScalarEncoder;

Basis levels(std::size_t m, std::uint64_t seed, std::size_t d = 2'048) {
  hdc::LevelBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = seed;
  return hdc::make_level_basis(config);
}

Basis circle(std::size_t m, std::uint64_t seed, std::size_t d = 2'048) {
  hdc::CircularBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = seed;
  return hdc::make_circular_basis(config);
}

TEST(LinearScalarEncoderTest, ValidatesArguments) {
  EXPECT_THROW(LinearScalarEncoder(levels(4, 1), 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(LinearScalarEncoder(levels(4, 1), 2.0, 1.0),
               std::invalid_argument);
}

TEST(LinearScalarEncoderTest, GridAssignmentIsNearestPoint) {
  // m = 5 over [0, 4]: grid points 0, 1, 2, 3, 4.
  const LinearScalarEncoder enc(levels(5, 2), 0.0, 4.0);
  EXPECT_EQ(enc.index_of(0.0), 0U);
  EXPECT_EQ(enc.index_of(0.49), 0U);
  EXPECT_EQ(enc.index_of(0.51), 1U);
  EXPECT_EQ(enc.index_of(2.0), 2U);
  EXPECT_EQ(enc.index_of(3.9), 4U);
  EXPECT_EQ(enc.index_of(4.0), 4U);
}

TEST(LinearScalarEncoderTest, ClampsOutOfRangeValues) {
  const LinearScalarEncoder enc(levels(5, 3), -1.0, 1.0);
  EXPECT_EQ(enc.index_of(-100.0), 0U);
  EXPECT_EQ(enc.index_of(100.0), 4U);
}

TEST(LinearScalarEncoderTest, ValueOfIsGridPoint) {
  const LinearScalarEncoder enc(levels(5, 4), 10.0, 18.0);
  EXPECT_DOUBLE_EQ(enc.value_of(0), 10.0);
  EXPECT_DOUBLE_EQ(enc.value_of(2), 14.0);
  EXPECT_DOUBLE_EQ(enc.value_of(4), 18.0);
  EXPECT_THROW((void)enc.value_of(5), std::invalid_argument);
}

TEST(LinearScalarEncoderTest, EncodeDecodeRoundTripsToGrid) {
  const LinearScalarEncoder enc(levels(9, 5), 0.0, 8.0);
  for (const double x : {0.0, 1.2, 3.9, 6.5, 8.0}) {
    const double decoded = enc.decode(enc.encode(x));
    EXPECT_DOUBLE_EQ(decoded,
                     enc.value_of(enc.index_of(x)));
    EXPECT_LE(std::abs(decoded - x), 0.5 + 1e-12);  // half a grid step
  }
}

TEST(LinearScalarEncoderTest, DecodeSurvivesNoise) {
  const LinearScalarEncoder enc(levels(9, 6, 10'000), 0.0, 8.0);
  hdc::Rng rng(7);
  const hdc::Hypervector noisy = hdc::flip_random_bits(enc.encode(5.0), 300, rng);
  EXPECT_DOUBLE_EQ(enc.decode(noisy), 5.0);
}

TEST(CircularScalarEncoderTest, ValidatesArguments) {
  EXPECT_THROW(CircularScalarEncoder(circle(4, 1), 0.0), std::invalid_argument);
  EXPECT_THROW(CircularScalarEncoder(circle(4, 1), -1.0),
               std::invalid_argument);
}

TEST(CircularScalarEncoderTest, GridWrapsAround) {
  constexpr double period = hdc::stats::two_pi;
  const CircularScalarEncoder enc(circle(8, 2), period);
  EXPECT_EQ(enc.index_of(0.0), 0U);
  EXPECT_EQ(enc.index_of(period), 0U);               // exact wrap
  EXPECT_EQ(enc.index_of(period - 0.01), 0U);        // rounds up, wraps
  EXPECT_EQ(enc.index_of(period / 2), 4U);
  EXPECT_EQ(enc.index_of(-period / 8), 7U);          // negative wraps
  EXPECT_EQ(enc.index_of(3 * period), 0U);           // multiple turns
}

TEST(CircularScalarEncoderTest, ValueOfIsGridAngle) {
  constexpr double period = 24.0;  // e.g. hours of a day
  const CircularScalarEncoder enc(circle(24, 3), period);
  EXPECT_DOUBLE_EQ(enc.value_of(0), 0.0);
  EXPECT_DOUBLE_EQ(enc.value_of(6), 6.0);
  EXPECT_DOUBLE_EQ(enc.value_of(23), 23.0);
  EXPECT_THROW((void)enc.value_of(24), std::invalid_argument);
}

TEST(CircularScalarEncoderTest, EncodeDecodeRoundTripsToGrid) {
  const CircularScalarEncoder enc(circle(12, 4), hdc::stats::two_pi);
  for (const double theta : {0.0, 1.0, 3.14, 6.0, 6.28}) {
    EXPECT_DOUBLE_EQ(enc.decode(enc.encode(theta)),
                     enc.value_of(enc.index_of(theta)));
  }
}

TEST(CircularScalarEncoderTest, NeighbouringAnglesAreSimilar) {
  const CircularScalarEncoder enc(circle(16, 5, 10'000), hdc::stats::two_pi);
  // Angles just across the wrap boundary map to adjacent ring elements.
  const double before = hdc::stats::two_pi - 0.2;
  const double after = 0.2;
  EXPECT_LT(hdc::normalized_distance(enc.encode(before), enc.encode(after)),
            0.2);
}

TEST(ScalarEncoderInterfaceTest, SizeAndDimensionComeFromBasis) {
  const LinearScalarEncoder lin(levels(7, 8, 512), 0.0, 1.0);
  EXPECT_EQ(lin.size(), 7U);
  EXPECT_EQ(lin.dimension(), 512U);
  const CircularScalarEncoder circ(circle(6, 9, 256), 1.0);
  EXPECT_EQ(circ.size(), 6U);
  EXPECT_EQ(circ.dimension(), 256U);
}

}  // namespace
