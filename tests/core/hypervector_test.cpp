// Unit tests for the Hypervector value type and its invariants.

#include "hdc/core/hypervector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using hdc::Hypervector;
using hdc::Rng;

TEST(HypervectorTest, DefaultConstructedIsEmpty) {
  const Hypervector hv;
  EXPECT_TRUE(hv.empty());
  EXPECT_EQ(hv.dimension(), 0U);
}

TEST(HypervectorTest, ZeroDimensionThrows) {
  EXPECT_THROW(Hypervector(0), std::invalid_argument);
}

TEST(HypervectorTest, ConstructedZeroed) {
  const Hypervector hv(130);
  EXPECT_EQ(hv.dimension(), 130U);
  EXPECT_EQ(hv.count_ones(), 0U);
}

TEST(HypervectorTest, RandomHasRoughlyHalfOnes) {
  Rng rng(42);
  const Hypervector hv = Hypervector::random(10'000, rng);
  // Binomial(10000, 1/2): mean 5000, sd 50; 6 sigma = 300.
  EXPECT_NEAR(static_cast<double>(hv.count_ones()), 5'000.0, 300.0);
}

TEST(HypervectorTest, RandomRespectsTailInvariant) {
  Rng rng(43);
  Hypervector hv = Hypervector::random(70, rng);  // 6 tail bits unused
  Hypervector masked = hv;
  masked.mask_tail();
  EXPECT_EQ(hv, masked);
}

TEST(HypervectorTest, BitAccessorsRoundTrip) {
  Hypervector hv(100);
  hv.set_bit(0, true);
  hv.set_bit(99, true);
  EXPECT_TRUE(hv.bit(0));
  EXPECT_TRUE(hv.bit(99));
  EXPECT_FALSE(hv.bit(50));
  hv.flip_bit(50);
  EXPECT_TRUE(hv.bit(50));
  hv.flip_bit(50);
  EXPECT_FALSE(hv.bit(50));
  EXPECT_EQ(hv.count_ones(), 2U);
}

TEST(HypervectorTest, OutOfRangeAccessThrows) {
  // Checked element access follows the standard-library convention
  // (vector::at): out-of-range indices raise std::out_of_range.
  Hypervector hv(64);
  EXPECT_THROW((void)hv.bit(64), std::out_of_range);
  EXPECT_THROW(hv.set_bit(64, true), std::out_of_range);
  EXPECT_THROW(hv.flip_bit(1'000), std::out_of_range);
  const hdc::HypervectorView view = hv;
  EXPECT_THROW((void)view.bit(64), std::out_of_range);
}

TEST(HypervectorTest, FromBitsMatchesInput) {
  const bool raw[] = {true, false, true, true, false};
  const Hypervector hv = Hypervector::from_bits(raw);
  ASSERT_EQ(hv.dimension(), 5U);
  EXPECT_TRUE(hv.bit(0));
  EXPECT_FALSE(hv.bit(1));
  EXPECT_TRUE(hv.bit(2));
  EXPECT_TRUE(hv.bit(3));
  EXPECT_FALSE(hv.bit(4));
}

TEST(HypervectorTest, XorIsSelfInverse) {
  Rng rng(7);
  const Hypervector a = Hypervector::random(1'000, rng);
  const Hypervector b = Hypervector::random(1'000, rng);
  EXPECT_EQ(a ^ (a ^ b), b);
}

TEST(HypervectorTest, XorDimensionMismatchThrows) {
  Rng rng(8);
  const Hypervector a = Hypervector::random(100, rng);
  const Hypervector b = Hypervector::random(101, rng);
  EXPECT_THROW((void)(a ^ b), std::invalid_argument);
}

TEST(HypervectorTest, DeterministicGivenSeed) {
  Rng rng_a(123);
  Rng rng_b(123);
  EXPECT_EQ(Hypervector::random(512, rng_a), Hypervector::random(512, rng_b));
}

TEST(HypervectorTest, DifferentSeedsDiffer) {
  Rng rng_a(123);
  Rng rng_b(124);
  EXPECT_NE(Hypervector::random(512, rng_a), Hypervector::random(512, rng_b));
}

}  // namespace
