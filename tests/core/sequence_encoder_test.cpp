// Tests for the position-aware sequence encoder and the n-gram text encoder
// (Section 3.1).

#include "hdc/core/sequence_encoder.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "hdc/core/ops.hpp"

namespace {

using hdc::NGramEncoder;
using hdc::SequenceEncoder;

TEST(SequenceEncoderTest, ValidatesArguments) {
  EXPECT_THROW(SequenceEncoder(0, 1), std::invalid_argument);
  SequenceEncoder enc(128, 1);
  const std::vector<std::string_view> empty;
  EXPECT_THROW((void)enc.encode(empty), std::invalid_argument);
  EXPECT_THROW((void)enc.encode_word(""), std::invalid_argument);
}

TEST(SequenceEncoderTest, EncodingIsDeterministic) {
  SequenceEncoder a(4'096, 11);
  SequenceEncoder b(4'096, 11);
  EXPECT_EQ(a.encode_word("gesture"), b.encode_word("gesture"));
}

TEST(SequenceEncoderTest, OrderMatters) {
  SequenceEncoder enc(10'000, 12);
  const auto abc = enc.encode_word("abc");
  const auto acb = enc.encode_word("acb");
  // Swapping two letters moves 2 of 3 bundled items: far in hyperspace.
  EXPECT_GT(hdc::normalized_distance(abc, acb), 0.25);
}

TEST(SequenceEncoderTest, SharedTokensPreserveSimilarity) {
  SequenceEncoder enc(10'000, 13);
  const auto word = enc.encode_word("surgeons");
  const auto near = enc.encode_word("surgeonz");  // one letter differs
  const auto far = enc.encode_word("telemetry");
  EXPECT_LT(hdc::normalized_distance(word, near),
            hdc::normalized_distance(word, far));
  EXPECT_LT(hdc::normalized_distance(word, near), 0.3);
}

TEST(SequenceEncoderTest, WordEncodingMatchesTokenEncoding) {
  SequenceEncoder enc(2'048, 14);
  const std::vector<std::string_view> tokens{"c", "a", "t"};
  EXPECT_EQ(enc.encode(tokens), enc.encode_word("cat"));
}

TEST(NGramEncoderTest, ValidatesArguments) {
  EXPECT_THROW(NGramEncoder(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(NGramEncoder(128, 0, 1), std::invalid_argument);
  NGramEncoder enc(128, 3, 1);
  EXPECT_THROW((void)enc.encode(""), std::invalid_argument);
}

TEST(NGramEncoderTest, DeterministicGivenSeed) {
  NGramEncoder a(4'096, 3, 21);
  NGramEncoder b(4'096, 3, 21);
  EXPECT_EQ(a.encode("hyperdimensional"), b.encode("hyperdimensional"));
}

TEST(NGramEncoderTest, SharedSubstringsIncreaseSimilarity) {
  NGramEncoder enc(10'000, 3, 22);
  const auto base = enc.encode("the quick brown fox");
  const auto related = enc.encode("the quick brown cat");
  const auto unrelated = enc.encode("zxqj vwpk mlrt ghnd");
  EXPECT_LT(hdc::normalized_distance(base, related),
            hdc::normalized_distance(base, unrelated));
}

TEST(NGramEncoderTest, ShortTextsUsePartialWindow) {
  NGramEncoder enc(1'024, 5, 23);
  // Shorter than n: encoded as a single partial gram, must not throw.
  const auto hv = enc.encode("ab");
  EXPECT_EQ(hv.dimension(), 1'024U);
}

TEST(NGramEncoderTest, AnagramsDiffer) {
  // Binding with positional permutation distinguishes "abc" from "cba"
  // within each window.
  NGramEncoder enc(10'000, 3, 24);
  EXPECT_GT(hdc::normalized_distance(enc.encode("abc"), enc.encode("cba")),
            0.3);
}

}  // namespace
