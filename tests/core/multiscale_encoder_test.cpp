// Tests for the multi-resolution circular encoder (extension).

#include "hdc/core/multiscale_encoder.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hdc/core/ops.hpp"
#include "hdc/stats/circular.hpp"

namespace {

using hdc::MultiScaleCircularEncoder;

MultiScaleCircularEncoder::Config config_with(
    std::vector<std::size_t> scales, std::size_t d = 10'000) {
  MultiScaleCircularEncoder::Config config;
  config.dimension = d;
  config.scales = std::move(scales);
  config.period = hdc::stats::two_pi;
  config.seed = 3;
  return config;
}

TEST(MultiScaleEncoderTest, ValidatesConfig) {
  EXPECT_THROW((void)MultiScaleCircularEncoder(config_with({})),
               std::invalid_argument);
  EXPECT_THROW((void)MultiScaleCircularEncoder(config_with({16, 1})),
               std::invalid_argument);
  auto bad_period = config_with({16});
  bad_period.period = 0.0;
  EXPECT_THROW((void)MultiScaleCircularEncoder(bad_period), std::invalid_argument);
  auto bad_dim = config_with({16});
  bad_dim.dimension = 0;
  EXPECT_THROW((void)MultiScaleCircularEncoder(bad_dim), std::invalid_argument);
}

TEST(MultiScaleEncoderTest, PublicGridIsTheFinestScale) {
  const MultiScaleCircularEncoder enc(config_with({8, 64, 16}));
  EXPECT_EQ(enc.size(), 64U);
  EXPECT_EQ(enc.num_scales(), 3U);
  EXPECT_DOUBLE_EQ(enc.value_of(16), hdc::stats::two_pi / 4.0);
  EXPECT_THROW((void)enc.value_of(64), std::invalid_argument);
}

TEST(MultiScaleEncoderTest, IndexWraps) {
  const MultiScaleCircularEncoder enc(config_with({4, 16}, 1'024));
  EXPECT_EQ(enc.index_of(0.0), 0U);
  EXPECT_EQ(enc.index_of(hdc::stats::two_pi), 0U);
  EXPECT_EQ(enc.index_of(-0.1), 0U);   // -0.1 rounds to the wrap point
  EXPECT_EQ(enc.index_of(-0.3), 15U);  // -0.3 is nearest to the last point
}

TEST(MultiScaleEncoderTest, EncodeIsDeterministicAndCached) {
  const MultiScaleCircularEncoder enc(config_with({8, 32}, 2'048));
  const hdc::HypervectorView first = enc.encode(1.0);
  const hdc::HypervectorView second = enc.encode(1.0);
  // Same cached arena row, zero-copy on every call.
  EXPECT_EQ(first.words().data(), second.words().data());
  EXPECT_EQ(first.dimension(), 2'048U);
}

TEST(MultiScaleEncoderTest, DecodeRoundTripsToGrid) {
  const MultiScaleCircularEncoder enc(config_with({8, 32}));
  for (const double theta : {0.0, 1.0, 3.1, 5.9}) {
    EXPECT_DOUBLE_EQ(enc.decode(enc.encode(theta)),
                     enc.value_of(enc.index_of(theta)));
  }
}

TEST(MultiScaleEncoderTest, KernelIsSharperThanSingleScale) {
  // The whole point: at a quarter-ring separation the bound encoding is
  // already quasi-orthogonal, while one circular basis still has similarity
  // 0.75 there.
  const MultiScaleCircularEncoder multi(config_with({16, 64}));

  hdc::CircularBasisConfig single_config;
  single_config.dimension = 10'000;
  single_config.size = 64;
  single_config.seed = 4;
  const hdc::CircularScalarEncoder single(
      hdc::make_circular_basis(single_config), hdc::stats::two_pi);

  const double quarter = hdc::stats::two_pi / 4.0;
  const double multi_sim =
      hdc::similarity(multi.encode(0.0), multi.encode(quarter));
  const double single_sim =
      hdc::similarity(single.encode(0.0), single.encode(quarter));
  EXPECT_LT(multi_sim, single_sim - 0.1);

  // ... while immediate neighbours stay strongly correlated.
  const double step = hdc::stats::two_pi / 64.0;
  EXPECT_GT(hdc::similarity(multi.encode(0.0), multi.encode(step)), 0.9);
}

TEST(MultiScaleEncoderTest, PreservesWrapTopology) {
  const MultiScaleCircularEncoder enc(config_with({16, 64}));
  const double just_before = hdc::stats::two_pi - 0.05;
  EXPECT_GT(hdc::similarity(enc.encode(just_before), enc.encode(0.05)), 0.85);
}

TEST(MultiScaleEncoderTest, SingleScaleDegeneratesToCircularEncoder) {
  // With one scale the encoder must agree with CircularScalarEncoder built
  // from the equivalent basis (same derived seed).
  MultiScaleCircularEncoder::Config config = config_with({32}, 2'048);
  const MultiScaleCircularEncoder multi(config);
  hdc::CircularBasisConfig basis_config;
  basis_config.dimension = 2'048;
  basis_config.size = 32;
  basis_config.seed = hdc::derive_seed(config.seed, 0);
  const hdc::CircularScalarEncoder single(
      hdc::make_circular_basis(basis_config), config.period);
  for (const double theta : {0.3, 2.2, 4.4}) {
    EXPECT_EQ(multi.encode(theta), single.encode(theta));
  }
}

}  // namespace
