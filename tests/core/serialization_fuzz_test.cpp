// Corrupted-stream fuzzing of the binary serialization format.  Every
// truncation point and every bit-flip position of a small serialized basis
// (and classifier) is replayed through the readers, which must either raise
// SerializationError or — when the flip lands in vector payload bits and
// yields a structurally valid stream — produce a fully valid object.  The
// suite runs under the ASan/UBSan CI job, so "valid object" also means no
// out-of-bounds read, overflow, or uninitialized state on any path.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "hdc/core/basis_random.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/serialization.hpp"

namespace {

using hdc::Basis;
using hdc::Hypervector;
using hdc::Rng;
using hdc::SerializationError;

std::string serialized_basis(std::size_t d, std::size_t m) {
  hdc::RandomBasisConfig config;
  config.dimension = d;
  config.size = m;
  config.seed = 97;
  std::stringstream stream;
  hdc::write_basis(stream, hdc::make_random_basis(config));
  return stream.str();
}

/// A successfully parsed basis must be internally consistent no matter what
/// bytes produced it: header fields match the storage, every row keeps the
/// tail invariant, and the fused cleanup kernel stays in bounds.
void assert_valid_basis(const Basis& basis) {
  ASSERT_GT(basis.size(), 0U);
  ASSERT_GT(basis.dimension(), 0U);
  ASSERT_EQ(basis.info().size, basis.size());
  ASSERT_EQ(basis.info().dimension, basis.dimension());
  ASSERT_EQ(basis.packed_words().size(),
            basis.size() * basis.words_per_vector());
  const std::uint64_t tail = hdc::bits::tail_mask(basis.dimension());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    const auto row = basis[i].words();
    ASSERT_EQ(row.size(), basis.words_per_vector());
    ASSERT_EQ(row.back() & ~tail, 0ULL) << "row " << i;
    ASSERT_LT(basis.nearest(basis[i]), basis.size());
  }
}

TEST(SerializationFuzzTest, EveryTruncationOfABasisStreamThrows) {
  // Dimension 70 exercises a partial tail word; m = 3 keeps it fast while
  // covering vector-to-vector boundaries.
  const std::string bytes = serialized_basis(70, 3);
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    std::stringstream in(bytes.substr(0, length));
    EXPECT_THROW((void)hdc::read_basis(in), SerializationError)
        << "prefix length " << length;
  }
  // The untruncated stream stays readable.
  std::stringstream in(bytes);
  EXPECT_NO_THROW(assert_valid_basis(hdc::read_basis(in)));
}

TEST(SerializationFuzzTest, EveryBitFlipOfABasisStreamIsSafe) {
  const std::string bytes = serialized_basis(70, 3);
  std::size_t rejected = 0;
  std::size_t reinterpreted = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[pos] = static_cast<char>(
          static_cast<unsigned char>(corrupted[pos]) ^ (1U << bit));
      std::stringstream in(corrupted);
      try {
        const Basis basis = hdc::read_basis(in);
        // Flips inside payload bits below the dimension survive parsing;
        // the result must still be a fully coherent object.
        assert_valid_basis(basis);
        ++reinterpreted;
      } catch (const SerializationError&) {
        ++rejected;  // every structural corruption lands here, never UB
      }
    }
  }
  // Header/tail corruption must actually be caught: magic (4 bytes), tag,
  // kind, method, dimension, size, r, seed make up the first 39 bytes.
  EXPECT_GT(rejected, 39U * 8U / 2U);
  // ...and payload flips below the dimension parse as a different basis.
  EXPECT_GT(reinterpreted, 0U);
}

TEST(SerializationFuzzTest, EveryTruncationOfAHypervectorStreamThrows) {
  Rng rng(5);
  std::stringstream out;
  hdc::write_hypervector(out, Hypervector::random(65, rng));
  const std::string bytes = out.str();
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    std::stringstream in(bytes.substr(0, length));
    EXPECT_THROW((void)hdc::read_hypervector(in), SerializationError)
        << "prefix length " << length;
  }
}

TEST(SerializationFuzzTest, EveryBitFlipOfAClassifierStreamIsSafe) {
  Rng rng(6);
  std::vector<Hypervector> class_vectors;
  for (int c = 0; c < 3; ++c) {
    class_vectors.push_back(Hypervector::random(70, rng));
  }
  std::stringstream out;
  hdc::write_classifier(
      out, hdc::CentroidClassifier::from_class_vectors(class_vectors));
  const std::string bytes = out.str();

  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = bytes;
      corrupted[pos] = static_cast<char>(
          static_cast<unsigned char>(corrupted[pos]) ^ (1U << bit));
      std::stringstream in(corrupted);
      try {
        const hdc::CentroidClassifier model = hdc::read_classifier(in);
        ASSERT_TRUE(model.finalized());
        ASSERT_GT(model.num_classes(), 0U);
        ASSERT_GT(model.dimension(), 0U);
        for (std::size_t c = 0; c < model.num_classes(); ++c) {
          ASSERT_LT(model.predict(model.class_vector(c)),
                    model.num_classes());
        }
      } catch (const SerializationError&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0U);
}

TEST(SerializationFuzzTest, ImplausibleHeadersAreRejectedWithoutAllocating) {
  // A corrupted size/dimension field must not trigger a multi-gigabyte
  // allocation before validation kicks in.
  const std::string bytes = serialized_basis(70, 3);
  for (const std::size_t pos : {7U, 15U}) {  // dimension / size high bytes
    std::string corrupted = bytes;
    corrupted[pos + 6] = '\x7F';  // blow the field past the sanity limit
    std::stringstream in(corrupted);
    EXPECT_THROW((void)hdc::read_basis(in), SerializationError);
  }
}

}  // namespace
