// Property suite for the copy-on-write adaptation overlays: the
// equivalences that make online learning over borrowed (mmap-backed)
// models safe to serve.  Overlay == materialized model bit for bit,
// borrowed base == owning base bit for bit, sharded slice scans compose to
// the global argmin, and two replicas fed the same feedback stream build
// bit-identical overlays (the cluster broadcast correctness condition).

#include "hdc/core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "hdc/core/basis_level.hpp"
#include "hdc/core/classifier.hpp"
#include "hdc/core/ops.hpp"
#include "hdc/core/regressor.hpp"
#include "hdc/core/scalar_encoder.hpp"

namespace {

using hdc::AdaptiveClassifier;
using hdc::AdaptiveRegressor;
using hdc::CentroidClassifier;
using hdc::checked_class_label;
using hdc::HDRegressor;
using hdc::Hypervector;
using hdc::kDefaultAdaptSeed;
using hdc::Rng;

constexpr std::size_t kDim = 1'030;  // partial tail word
constexpr std::size_t kClasses = 5;

/// A finalized trainable classifier plus an inference-only restore of the
/// same class-vectors — the owning twin of a snapshot-borrowed model.
struct ClassifierPair {
  std::shared_ptr<const CentroidClassifier> trained;
  std::shared_ptr<const CentroidClassifier> restored;
};

ClassifierPair make_classifier_pair(std::uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_shared<CentroidClassifier>(kClasses, kDim, seed);
  for (int i = 0; i < 40; ++i) {
    for (std::size_t c = 0; c < kClasses; ++c) {
      model->add_sample(c, Hypervector::random(kDim, rng));
    }
  }
  model->finalize();
  std::vector<Hypervector> rows;
  for (std::size_t c = 0; c < kClasses; ++c) {
    rows.emplace_back(model->class_vector(c));
  }
  return {model, std::make_shared<const CentroidClassifier>(
                     CentroidClassifier::from_class_vectors(rows))};
}

/// Deterministic labelled feedback stream; some samples are deliberately
/// far from their label's centroid so adapt() actually fires.
std::vector<std::pair<std::size_t, Hypervector>> feedback_stream(
    std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::size_t, Hypervector>> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream.emplace_back(i % kClasses, Hypervector::random(kDim, rng));
  }
  return stream;
}

TEST(AdaptiveClassifierTest, ConstructionValidates) {
  EXPECT_THROW(AdaptiveClassifier(nullptr, kDefaultAdaptSeed),
               std::invalid_argument);
  auto unfinalized = std::make_shared<CentroidClassifier>(2, 128, 1);
  EXPECT_THROW(AdaptiveClassifier(unfinalized, kDefaultAdaptSeed),
               std::logic_error);
}

TEST(AdaptiveClassifierTest, UntouchedOverlayIsBitIdenticalToBase) {
  const auto pair = make_classifier_pair(11);
  const AdaptiveClassifier overlay(pair.restored, kDefaultAdaptSeed);
  EXPECT_EQ(overlay.touched_classes(), 0U);
  EXPECT_TRUE(overlay.changed_rows().empty());
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const auto query = Hypervector::random(kDim, rng);
    EXPECT_EQ(overlay.predict(query), pair.restored->predict(query));
  }
  for (std::size_t c = 0; c < kClasses; ++c) {
    const auto row = overlay.class_row(c);
    const auto base = pair.restored->class_vector(c);
    EXPECT_TRUE(std::equal(row.begin(), row.end(), base.words().begin()));
  }
}

TEST(AdaptiveClassifierTest, BorrowedAndOwningBasesBuildIdenticalOverlays) {
  // The restore path must not change adaptation: an overlay over the
  // inference-only restored model and one over the trainable original
  // (identical class-vectors) agree word for word after the same stream.
  const auto pair = make_classifier_pair(21);
  AdaptiveClassifier over_trained(pair.trained, kDefaultAdaptSeed);
  AdaptiveClassifier over_restored(pair.restored, kDefaultAdaptSeed);
  for (const auto& [label, sample] : feedback_stream(60, 22)) {
    EXPECT_EQ(over_trained.adapt(label, sample),
              over_restored.adapt(label, sample));
  }
  EXPECT_GT(over_restored.touched_classes(), 0U);
  EXPECT_EQ(over_trained.changed_rows(), over_restored.changed_rows());
  EXPECT_EQ(over_trained.updates(), over_restored.updates());
}

TEST(AdaptiveClassifierTest, OverlayPredictsBitIdenticallyToMaterialize) {
  const auto pair = make_classifier_pair(31);
  AdaptiveClassifier overlay(pair.restored, kDefaultAdaptSeed);
  for (const auto& [label, sample] : feedback_stream(80, 32)) {
    (void)overlay.adapt(label, sample);
  }
  ASSERT_GT(overlay.touched_classes(), 0U);
  const CentroidClassifier flat = overlay.materialize();
  Rng rng(33);
  for (int i = 0; i < 100; ++i) {
    const auto query = Hypervector::random(kDim, rng);
    EXPECT_EQ(overlay.predict(query), flat.predict(query));
  }
  // The materialized arena carries overlay rows where touched and base rows
  // everywhere else.
  const auto changed = overlay.changed_rows();
  for (std::size_t c = 0; c < kClasses; ++c) {
    const auto row = flat.class_vector(c);
    if (const auto it = changed.find(c); it != changed.end()) {
      EXPECT_TRUE(
          std::equal(it->second.begin(), it->second.end(),
                     row.words().begin()))
          << "class " << c;
    } else {
      const auto base = pair.restored->class_vector(c);
      EXPECT_TRUE(std::equal(base.words().begin(), base.words().end(),
                             row.words().begin()))
          << "class " << c;
    }
  }
}

TEST(AdaptiveClassifierTest, NearestInSliceComposesToPredict) {
  const auto pair = make_classifier_pair(41);
  AdaptiveClassifier overlay(pair.restored, kDefaultAdaptSeed);
  for (const auto& [label, sample] : feedback_stream(40, 42)) {
    (void)overlay.adapt(label, sample);
  }
  Rng rng(43);
  // Every 2-way split of the class range: the lexicographic minimum over
  // the per-slice results must equal the global argmin with its
  // lowest-index tie-break — the Classes-scheme shard reduction.
  for (int i = 0; i < 40; ++i) {
    const auto query = Hypervector::random(kDim, rng);
    const std::size_t expected = overlay.predict(query);
    for (std::size_t cut = 1; cut < kClasses; ++cut) {
      const auto left = overlay.nearest_in_slice(query, 0, cut);
      const auto right = overlay.nearest_in_slice(query, cut, kClasses);
      const auto best = std::min(left, right);
      EXPECT_EQ(best.second, expected) << "cut " << cut;
    }
  }
  EXPECT_THROW((void)overlay.nearest_in_slice(
                   Hypervector::random(kDim, rng), 2, 2),
               std::invalid_argument);
  EXPECT_THROW((void)overlay.nearest_in_slice(
                   Hypervector::random(kDim, rng), 0, kClasses + 1),
               std::invalid_argument);
}

TEST(AdaptiveClassifierTest, ReplicasWithSameSeedAreBitIdentical) {
  const auto pair = make_classifier_pair(51);
  AdaptiveClassifier rank0(pair.restored, kDefaultAdaptSeed);
  AdaptiveClassifier rank1(pair.restored, kDefaultAdaptSeed);
  for (const auto& [label, sample] : feedback_stream(100, 52)) {
    EXPECT_EQ(rank0.adapt(label, sample), rank1.adapt(label, sample));
  }
  EXPECT_EQ(rank0.changed_rows(), rank1.changed_rows());
  EXPECT_EQ(rank0.feedback_rows(), rank1.feedback_rows());
  EXPECT_EQ(rank0.updates(), rank1.updates());
}

TEST(AdaptiveClassifierTest, ResetRestoresTheBase) {
  const auto pair = make_classifier_pair(61);
  AdaptiveClassifier overlay(pair.restored, kDefaultAdaptSeed);
  for (const auto& [label, sample] : feedback_stream(30, 62)) {
    (void)overlay.adapt(label, sample);
  }
  ASSERT_GT(overlay.touched_classes(), 0U);
  overlay.reset();
  EXPECT_EQ(overlay.touched_classes(), 0U);
  Rng rng(63);
  for (int i = 0; i < 30; ++i) {
    const auto query = Hypervector::random(kDim, rng);
    EXPECT_EQ(overlay.predict(query), pair.restored->predict(query));
  }
}

TEST(AdaptiveClassifierTest, AdaptRepairsAPoisonedRestoredModel) {
  // The tentpole scenario: a restored (inference-only) model with a bad
  // class boundary, which before this PR could not adapt at all.  Feedback
  // through the overlay must repair it without touching the base.
  Rng rng(71);
  const auto proto_a = Hypervector::random(kDim, rng);
  const auto proto_b = Hypervector::random(kDim, rng);
  CentroidClassifier trained(2, kDim, 72);
  for (int i = 0; i < 30; ++i) {
    trained.add_sample(0, hdc::flip_random_bits(proto_a, kDim / 12, rng));
    trained.add_sample(1, hdc::flip_random_bits(proto_b, kDim / 12, rng));
  }
  for (int i = 0; i < 25; ++i) {  // poison class 1 with near-A samples
    trained.add_sample(1, hdc::flip_random_bits(proto_a, kDim / 12, rng));
  }
  trained.finalize();
  std::vector<Hypervector> rows;
  for (std::size_t c = 0; c < 2; ++c) {
    rows.emplace_back(trained.class_vector(c));
  }
  const auto restored = std::make_shared<const CentroidClassifier>(
      CentroidClassifier::from_class_vectors(rows));

  AdaptiveClassifier overlay(restored, kDefaultAdaptSeed);
  std::size_t wrong_before = 0;
  for (int i = 0; i < 50; ++i) {
    wrong_before +=
        overlay.predict(hdc::flip_random_bits(proto_a, kDim / 12, rng)) != 0
            ? 1U
            : 0U;
  }
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 40; ++i) {
      (void)overlay.adapt(0, hdc::flip_random_bits(proto_a, kDim / 12, rng));
      (void)overlay.adapt(1, hdc::flip_random_bits(proto_b, kDim / 12, rng));
    }
  }
  std::size_t wrong_after = 0;
  for (int i = 0; i < 50; ++i) {
    wrong_after +=
        overlay.predict(hdc::flip_random_bits(proto_a, kDim / 12, rng)) != 0
            ? 1U
            : 0U;
  }
  EXPECT_LE(wrong_after, wrong_before);
  EXPECT_EQ(wrong_after, 0U);
  // The base model itself is untouched (the mmap-safety property).
  for (std::size_t c = 0; c < 2; ++c) {
    const auto original = trained.class_vector(c);
    const auto base = restored->class_vector(c);
    EXPECT_TRUE(std::equal(original.words().begin(), original.words().end(),
                           base.words().begin()));
  }
}

TEST(AdaptiveClassifierTest, CheckedClassLabelRejectsBadTargets) {
  EXPECT_EQ(checked_class_label(0.0, 3), 0U);
  EXPECT_EQ(checked_class_label(2.0, 3), 2U);
  EXPECT_THROW((void)checked_class_label(2.5, 3), std::invalid_argument);
  EXPECT_THROW((void)checked_class_label(-1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)checked_class_label(3.0, 3), std::invalid_argument);
  EXPECT_THROW(
      (void)checked_class_label(std::numeric_limits<double>::quiet_NaN(), 3),
      std::invalid_argument);
  EXPECT_THROW(
      (void)checked_class_label(std::numeric_limits<double>::infinity(), 3),
      std::invalid_argument);
}

/// A finalized regressor and its inference-only from_model restore.
struct RegressorPair {
  std::shared_ptr<const HDRegressor> trained;
  std::shared_ptr<const HDRegressor> restored;
};

RegressorPair make_regressor_pair(std::uint64_t seed) {
  hdc::LevelBasisConfig config;
  config.dimension = kDim;
  config.size = 16;
  config.seed = seed;
  const auto labels = std::make_shared<hdc::LinearScalarEncoder>(
      hdc::make_level_basis(config), 0.0, 1.0);
  auto model = std::make_shared<HDRegressor>(labels, seed + 1);
  for (int k = 0; k < 24; ++k) {
    const double x = static_cast<double>(k) / 23.0;
    model->add_sample(labels->encode(x), x);
  }
  model->finalize();
  return {model, std::make_shared<const HDRegressor>(HDRegressor::from_model(
                     labels, Hypervector(model->model())))};
}

TEST(AdaptiveRegressorTest, ConstructionValidates) {
  EXPECT_THROW(AdaptiveRegressor(nullptr, kDefaultAdaptSeed),
               std::invalid_argument);
}

TEST(AdaptiveRegressorTest, UntouchedOverlayMatchesBaseAndAdaptsInPlace) {
  const auto pair = make_regressor_pair(81);
  AdaptiveRegressor overlay(pair.restored, kDefaultAdaptSeed);
  EXPECT_FALSE(overlay.touched());
  EXPECT_TRUE(overlay.changed_rows().empty());
  const auto& labels = pair.restored->labels();
  for (int k = 0; k < 16; ++k) {
    const double x = static_cast<double>(k) / 15.0;
    EXPECT_DOUBLE_EQ(overlay.predict(labels.encode(x)),
                     pair.restored->predict(labels.encode(x)));
  }
  // Drive feedback toward a shifted target curve until an update fires.
  for (int k = 0; k < 48; ++k) {
    const double x = static_cast<double>(k % 16) / 15.0;
    (void)overlay.adapt(labels.encode(x), 1.0 - x);
  }
  EXPECT_TRUE(overlay.touched());
  EXPECT_GT(overlay.updates(), 0U);
  const auto changed = overlay.changed_rows();
  ASSERT_EQ(changed.size(), 1U);
  EXPECT_EQ(changed.begin()->first, 0U);
}

TEST(AdaptiveRegressorTest, OverlayPredictsBitIdenticallyToMaterialize) {
  const auto pair = make_regressor_pair(91);
  AdaptiveRegressor overlay(pair.restored, kDefaultAdaptSeed);
  const auto& labels = pair.restored->labels();
  for (int k = 0; k < 64; ++k) {
    const double x = static_cast<double>(k % 16) / 15.0;
    (void)overlay.adapt(labels.encode(x), 1.0 - x);
  }
  ASSERT_TRUE(overlay.touched());
  const HDRegressor flat = overlay.materialize();
  for (int k = 0; k < 32; ++k) {
    const double x = static_cast<double>(k) / 31.0;
    EXPECT_DOUBLE_EQ(overlay.predict(labels.encode(x)),
                     flat.predict(labels.encode(x)));
  }
  const auto flat_words = flat.model().words();
  const auto overlay_words = overlay.model_words();
  EXPECT_TRUE(std::equal(overlay_words.begin(), overlay_words.end(),
                         flat_words.begin()));
}

TEST(AdaptiveRegressorTest, BorrowedAndOwningBasesBuildIdenticalOverlays) {
  const auto pair = make_regressor_pair(101);
  AdaptiveRegressor over_trained(pair.trained, kDefaultAdaptSeed);
  AdaptiveRegressor over_restored(pair.restored, kDefaultAdaptSeed);
  const auto& labels = pair.restored->labels();
  for (int k = 0; k < 64; ++k) {
    const double x = static_cast<double>(k % 16) / 15.0;
    EXPECT_DOUBLE_EQ(over_trained.adapt(labels.encode(x), 1.0 - x),
                     over_restored.adapt(labels.encode(x), 1.0 - x));
  }
  EXPECT_EQ(over_trained.changed_rows(), over_restored.changed_rows());
  EXPECT_EQ(over_trained.updates(), over_restored.updates());
}

TEST(AdaptiveRegressorTest, ResetRestoresTheBase) {
  const auto pair = make_regressor_pair(111);
  AdaptiveRegressor overlay(pair.restored, kDefaultAdaptSeed);
  const auto& labels = pair.restored->labels();
  for (int k = 0; k < 48; ++k) {
    const double x = static_cast<double>(k % 16) / 15.0;
    (void)overlay.adapt(labels.encode(x), 1.0 - x);
  }
  ASSERT_TRUE(overlay.touched());
  overlay.reset();
  EXPECT_FALSE(overlay.touched());
  for (int k = 0; k < 16; ++k) {
    const double x = static_cast<double>(k) / 15.0;
    EXPECT_DOUBLE_EQ(overlay.predict(labels.encode(x)),
                     pair.restored->predict(labels.encode(x)));
  }
}

}  // namespace
