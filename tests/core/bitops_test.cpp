// Unit and property tests for the word-level bit primitives, cross-checked
// against naive per-bit reference implementations.

#include "hdc/core/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hdc/base/rng.hpp"

namespace {

using hdc::Rng;
namespace bits = hdc::bits;

std::vector<std::uint64_t> random_words(std::size_t bit_count, Rng& rng) {
  std::vector<std::uint64_t> words(bits::words_for(bit_count));
  for (auto& w : words) {
    w = rng();
  }
  if (!words.empty()) {
    words.back() &= bits::tail_mask(bit_count);
  }
  return words;
}

std::vector<bool> unpack(const std::vector<std::uint64_t>& words,
                         std::size_t bit_count) {
  std::vector<bool> out(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    out[i] = bits::get_bit(words, i);
  }
  return out;
}

TEST(BitopsTest, WordsForCoversPartialWords) {
  EXPECT_EQ(bits::words_for(0), 0U);
  EXPECT_EQ(bits::words_for(1), 1U);
  EXPECT_EQ(bits::words_for(64), 1U);
  EXPECT_EQ(bits::words_for(65), 2U);
  EXPECT_EQ(bits::words_for(10'000), 157U);
}

TEST(BitopsTest, TailMaskSelectsValidBits) {
  EXPECT_EQ(bits::tail_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(bits::tail_mask(128), ~std::uint64_t{0});
  EXPECT_EQ(bits::tail_mask(1), 1ULL);
  EXPECT_EQ(bits::tail_mask(3), 7ULL);
  EXPECT_EQ(bits::tail_mask(10'000), (1ULL << (10'000 % 64)) - 1);
}

TEST(BitopsTest, SetGetFlipRoundTrip) {
  std::vector<std::uint64_t> words(3, 0);
  bits::set_bit(words, 0, true);
  bits::set_bit(words, 64, true);
  bits::set_bit(words, 191, true);
  EXPECT_TRUE(bits::get_bit(words, 0));
  EXPECT_TRUE(bits::get_bit(words, 64));
  EXPECT_TRUE(bits::get_bit(words, 191));
  EXPECT_FALSE(bits::get_bit(words, 1));
  bits::flip_bit(words, 64);
  EXPECT_FALSE(bits::get_bit(words, 64));
  EXPECT_EQ(bits::count_ones(words), 2U);
}

TEST(BitopsTest, HammingMatchesXorPopcount) {
  Rng rng(1);
  const auto a = random_words(300, rng);
  const auto b = random_words(300, rng);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    expected += bits::get_bit(a, i) != bits::get_bit(b, i) ? 1U : 0U;
  }
  EXPECT_EQ(bits::hamming(a, b), expected);
}

struct ShiftCase {
  std::size_t bit_count;
  std::size_t shift;
};

class ShiftParamTest : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(ShiftParamTest, ShiftLeftMatchesNaive) {
  const auto [bit_count, shift] = GetParam();
  Rng rng(bit_count * 31 + shift);
  const auto in = random_words(bit_count, rng);
  std::vector<std::uint64_t> out(in.size());
  bits::shift_left(in, out, bit_count, shift);
  const auto input_bits = unpack(in, bit_count);
  const auto output_bits = unpack(out, bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const bool expected = i >= shift ? input_bits[i - shift] : false;
    EXPECT_EQ(output_bits[i], expected) << "bit " << i;
  }
  // Tail invariant.
  if (!out.empty()) {
    EXPECT_EQ(out.back() & ~bits::tail_mask(bit_count), 0U);
  }
}

TEST_P(ShiftParamTest, ShiftRightMatchesNaive) {
  const auto [bit_count, shift] = GetParam();
  Rng rng(bit_count * 37 + shift);
  const auto in = random_words(bit_count, rng);
  std::vector<std::uint64_t> out(in.size());
  bits::shift_right(in, out, bit_count, shift);
  const auto input_bits = unpack(in, bit_count);
  const auto output_bits = unpack(out, bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const bool expected =
        i + shift < bit_count ? input_bits[i + shift] : false;
    EXPECT_EQ(output_bits[i], expected) << "bit " << i;
  }
}

TEST_P(ShiftParamTest, RotateLeftMatchesNaive) {
  const auto [bit_count, shift] = GetParam();
  Rng rng(bit_count * 41 + shift);
  const auto in = random_words(bit_count, rng);
  std::vector<std::uint64_t> out(in.size());
  bits::rotate_left(in, out, bit_count, shift);
  const auto input_bits = unpack(in, bit_count);
  const auto output_bits = unpack(out, bit_count);
  const std::size_t s = shift % bit_count;
  for (std::size_t i = 0; i < bit_count; ++i) {
    const bool expected = input_bits[(i + bit_count - s) % bit_count];
    EXPECT_EQ(output_bits[i], expected) << "bit " << i;
  }
  // Rotation preserves the population count.
  EXPECT_EQ(bits::count_ones(out), bits::count_ones(in));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftParamTest,
    ::testing::Values(ShiftCase{1, 0}, ShiftCase{1, 1}, ShiftCase{63, 17},
                      ShiftCase{64, 1}, ShiftCase{64, 63}, ShiftCase{65, 64},
                      ShiftCase{100, 37}, ShiftCase{128, 64},
                      ShiftCase{129, 128}, ShiftCase{1000, 999},
                      ShiftCase{10'000, 1}, ShiftCase{10'000, 64},
                      ShiftCase{10'000, 6'000}, ShiftCase{10'000, 9'999}));

TEST(BitopsTest, ShiftBeyondLengthIsZero) {
  Rng rng(5);
  const auto in = random_words(100, rng);
  std::vector<std::uint64_t> out(in.size(), ~0ULL);
  bits::shift_left(in, out, 100, 100);
  for (const auto w : out) {
    EXPECT_EQ(w, 0U);
  }
  bits::shift_right(in, out, 100, 2'000);
  for (const auto w : out) {
    EXPECT_EQ(w, 0U);
  }
}

TEST(BitopsTest, RotateByZeroAndByLengthIsIdentity) {
  Rng rng(6);
  const auto in = random_words(777, rng);
  std::vector<std::uint64_t> out(in.size());
  bits::rotate_left(in, out, 777, 0);
  EXPECT_EQ(out, in);
  bits::rotate_left(in, out, 777, 777);
  EXPECT_EQ(out, in);
}

}  // namespace
