// Equivalence suite: models served straight over a snapshot mapping must be
// bit-identical to the classic stream-deserialized models for every basis
// kind and every entry point (nearest / predict / encode-decode), and
// concurrent MappedSnapshots of one file must agree under the thread pool.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hdc/core/hdc.hpp"
#include "hdc/io/io.hpp"
#include "hdc/runtime/runtime.hpp"

namespace {

using hdc::Basis;
using hdc::BasisKind;
using hdc::Hypervector;
using hdc::Rng;
using hdc::io::MappedSnapshot;
using hdc::io::SnapshotWriter;

constexpr std::size_t kDim = 129;  // exercises a partial tail word
constexpr std::size_t kSize = 16;

Basis make_basis(BasisKind kind) {
  switch (kind) {
    case BasisKind::Random: {
      hdc::RandomBasisConfig config;
      config.dimension = kDim;
      config.size = kSize;
      config.seed = 31;
      return hdc::make_random_basis(config);
    }
    case BasisKind::Level: {
      hdc::LevelBasisConfig config;
      config.dimension = kDim;
      config.size = kSize;
      config.r = 0.2;
      config.seed = 32;
      return hdc::make_level_basis(config);
    }
    case BasisKind::Circular: {
      hdc::CircularBasisConfig config;
      config.dimension = kDim;
      config.size = kSize;
      config.r = 0.15;
      config.seed = 33;
      return hdc::make_circular_basis(config);
    }
    default: {
      hdc::ScatterBasisConfig config;
      config.dimension = kDim;
      config.size = kSize;
      config.seed = 34;
      return hdc::make_scatter_basis(config);
    }
  }
}

std::string temp_file(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

TEST(SnapshotEquivalenceTest, MappedBasisMatchesStreamLoadedBasis) {
  for (const BasisKind kind : {BasisKind::Random, BasisKind::Level,
                               BasisKind::Circular, BasisKind::Scatter}) {
    SCOPED_TRACE(hdc::to_string(kind));
    const Basis original = make_basis(kind);

    const std::string path = temp_file(std::string("equiv_") +
                                       hdc::to_string(kind) + ".hdcs");
    SnapshotWriter writer;
    writer.add_basis(original);
    writer.write_file(path);
    const auto snapshot = MappedSnapshot::open(path);
    const Basis mapped = snapshot.basis(0);

    std::stringstream stream;
    hdc::write_basis(stream, original);
    const Basis streamed = hdc::read_basis(stream);

    EXPECT_FALSE(mapped.owns_storage());
    EXPECT_EQ(mapped.resident_bytes(), 0U);
    ASSERT_EQ(mapped.size(), streamed.size());
    ASSERT_EQ(mapped.dimension(), streamed.dimension());
    EXPECT_EQ(mapped.info().seed, streamed.info().seed);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_TRUE(mapped[i] == streamed[i]) << "row " << i;
    }
    // nearest: identical cleanup decisions on noisy probes.
    Rng rng(7);
    for (int probe = 0; probe < 64; ++probe) {
      const Hypervector query = Hypervector::random(kDim, rng);
      EXPECT_EQ(mapped.nearest(query), streamed.nearest(query));
    }
    // detach(): the owning escape hatch is bit-exact too.
    const Basis detached = mapped.detach();
    EXPECT_TRUE(detached.owns_storage());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_TRUE(detached[i] == streamed[i]) << "row " << i;
    }
    std::filesystem::remove(path);
  }
}

TEST(SnapshotEquivalenceTest, MappedEncodeDecodeMatchesStreamLoaded) {
  // Level basis under a linear encoder, circular basis under a circular
  // encoder: phi and phi^{-1} must agree between mapped and stream models.
  const Basis level = make_basis(BasisKind::Level);
  const Basis circular = make_basis(BasisKind::Circular);
  const std::string path = temp_file("equiv_encoders.hdcs");
  SnapshotWriter writer;
  writer.add_basis(level);
  writer.add_basis(circular);
  writer.write_file(path);
  const auto snapshot = MappedSnapshot::open(path);

  std::stringstream stream;
  hdc::write_basis(stream, level);
  hdc::write_basis(stream, circular);
  const Basis stream_level = hdc::read_basis(stream);
  const Basis stream_circular = hdc::read_basis(stream);

  const hdc::LinearScalarEncoder mapped_linear(snapshot.basis(0), 0.0, 10.0);
  const hdc::LinearScalarEncoder stream_linear(stream_level, 0.0, 10.0);
  const hdc::CircularScalarEncoder mapped_circ(snapshot.basis(1), 360.0);
  const hdc::CircularScalarEncoder stream_circ(stream_circular, 360.0);
  for (int k = 0; k <= 50; ++k) {
    const double x = static_cast<double>(k) / 5.0;
    EXPECT_TRUE(mapped_linear.encode(x) == stream_linear.encode(x));
    EXPECT_DOUBLE_EQ(mapped_linear.decode(mapped_linear.encode(x)),
                     stream_linear.decode(stream_linear.encode(x)));
    const double angle = x * 36.0;
    EXPECT_TRUE(mapped_circ.encode(angle) == stream_circ.encode(angle));
    EXPECT_DOUBLE_EQ(mapped_circ.decode(mapped_circ.encode(angle)),
                     stream_circ.decode(stream_circ.encode(angle)));
  }
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, MappedClassifierMatchesStreamLoaded) {
  Rng rng(11);
  hdc::CentroidClassifier original(4, kDim, 3);
  for (int i = 0; i < 40; ++i) {
    original.add_sample(static_cast<std::size_t>(i) % 4,
                        Hypervector::random(kDim, rng));
  }
  original.finalize();

  const std::string path = temp_file("equiv_classifier.hdcs");
  SnapshotWriter writer;
  writer.add_classifier(original);
  writer.write_file(path);
  const auto snapshot = MappedSnapshot::open(path);
  const hdc::CentroidClassifier mapped = snapshot.classifier(0);

  std::stringstream stream;
  hdc::write_classifier(stream, original);
  const hdc::CentroidClassifier streamed = hdc::read_classifier(stream);

  EXPECT_FALSE(mapped.owns_storage());
  EXPECT_FALSE(mapped.trainable());
  ASSERT_EQ(mapped.num_classes(), streamed.num_classes());
  for (std::size_t c = 0; c < streamed.num_classes(); ++c) {
    EXPECT_TRUE(mapped.class_vector(c) == streamed.class_vector(c));
  }
  for (int probe = 0; probe < 64; ++probe) {
    const Hypervector query = Hypervector::random(kDim, rng);
    EXPECT_EQ(mapped.predict(query), streamed.predict(query));
    EXPECT_EQ(mapped.similarities(query), streamed.similarities(query));
  }
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, BorrowedArenaServesSectionWords) {
  const Basis original = make_basis(BasisKind::Random);
  const std::string path = temp_file("equiv_arena.hdcs");
  SnapshotWriter writer;
  writer.add_basis(original);
  writer.write_file(path);
  const auto snapshot = MappedSnapshot::open(path);

  const auto arena = hdc::runtime::VectorArena::borrow(
      kDim, kSize, snapshot.section_words(0));
  EXPECT_FALSE(arena.owns_storage());
  EXPECT_TRUE(arena.tails_clean());
  ASSERT_EQ(arena.size(), original.size());
  for (std::size_t i = 0; i < arena.size(); ++i) {
    EXPECT_TRUE(arena.view(i) == original[i]) << "slot " << i;
  }
  // Borrowed arenas are read-only: every mutator must refuse.
  auto mutable_arena = hdc::runtime::VectorArena::borrow(
      kDim, kSize, snapshot.section_words(0));
  EXPECT_THROW(mutable_arena.append(original[0]), std::logic_error);
  EXPECT_THROW((void)mutable_arena.append_zero(), std::logic_error);
  EXPECT_THROW(mutable_arena.resize(4), std::logic_error);
  EXPECT_THROW((void)mutable_arena.mutable_words(0), std::logic_error);
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, ConcurrentMappedSnapshotsAgreeUnderThreadPool) {
  Rng rng(13);
  const Basis basis = make_basis(BasisKind::Circular);
  hdc::CentroidClassifier classifier(4, kDim, 3);
  for (int i = 0; i < 32; ++i) {
    classifier.add_sample(static_cast<std::size_t>(i) % 4,
                          Hypervector::random(kDim, rng));
  }
  classifier.finalize();

  const std::string path = temp_file("equiv_concurrent.hdcs");
  SnapshotWriter writer;
  writer.add_basis(basis);
  writer.add_classifier(classifier);
  writer.write_file(path);

  // Two independent mappings of one file, plus the original as the oracle.
  const auto snapshot_a = MappedSnapshot::open(path);
  const auto snapshot_b = MappedSnapshot::open(path);

  constexpr std::size_t kQueries = 256;
  std::vector<Hypervector> queries;
  std::vector<std::size_t> expected_class(kQueries);
  std::vector<std::size_t> expected_nearest(kQueries);
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    queries.push_back(Hypervector::random(kDim, rng));
    expected_class[i] = classifier.predict(queries[i]);
    expected_nearest[i] = basis.nearest(queries[i]);
  }

  hdc::runtime::ThreadPool pool(4);
  std::vector<std::size_t> got_class(kQueries);
  std::vector<std::size_t> got_nearest(kQueries);
  pool.for_chunks(kQueries, [&](std::size_t begin, std::size_t end,
                                std::size_t chunk) {
    // Alternate mappings per chunk; each chunk materializes its own
    // borrowed models, exercising the verify-once path concurrently.
    const MappedSnapshot& snapshot = (chunk % 2 == 0) ? snapshot_a
                                                      : snapshot_b;
    const Basis chunk_basis = snapshot.basis(0);
    const hdc::CentroidClassifier chunk_model = snapshot.classifier(1);
    for (std::size_t i = begin; i < end; ++i) {
      got_class[i] = chunk_model.predict(queries[i]);
      got_nearest[i] = chunk_basis.nearest(queries[i]);
    }
  });
  EXPECT_EQ(got_class, expected_class);
  EXPECT_EQ(got_nearest, expected_nearest);
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, HeapLoaderMatchesMappedLoader) {
  const Basis original = make_basis(BasisKind::Level);
  const std::string path = temp_file("equiv_heap.hdcs");
  SnapshotWriter writer;
  writer.add_basis(original);
  writer.write_file(path);

  const auto mapped = MappedSnapshot::open(path);
  const auto heap = hdc::io::load_snapshot(path);
  EXPECT_FALSE(heap.zero_copy());
  ASSERT_EQ(heap.section_count(), mapped.section_count());
  const Basis mapped_basis = mapped.basis(0);
  const Basis heap_basis = heap.basis(0);
  ASSERT_EQ(heap_basis.size(), mapped_basis.size());
  for (std::size_t i = 0; i < mapped_basis.size(); ++i) {
    EXPECT_TRUE(heap_basis[i] == mapped_basis[i]) << "row " << i;
  }
  // The stream overload serves the no-filesystem path.
  std::ifstream in(path, std::ios::binary);
  const auto stream_loaded = hdc::io::load_snapshot(in);
  EXPECT_TRUE(stream_loaded.basis(0)[0] == mapped_basis[0]);
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, MappingOptionsPreserveEquivalence) {
  const Basis original = make_basis(BasisKind::Circular);
  const std::string path = temp_file("equiv_mapping_options.hdcs");
  SnapshotWriter writer;
  writer.add_basis(original);
  writer.write_file(path);

  // willneed is the default; turning it off must be purely a residency
  // hint with no effect on the served bytes.
  hdc::io::MappingOptions cold;
  cold.willneed = false;
  const auto plain = MappedSnapshot::open(path);
  const auto hinted = MappedSnapshot::open(
      path, hdc::io::SnapshotIntegrity::Checksum, cold);
  EXPECT_FALSE(plain.locked());
  EXPECT_FALSE(hinted.locked());
  ASSERT_EQ(hinted.section_count(), plain.section_count());
  const Basis plain_basis = plain.basis(0);
  const Basis hinted_basis = hinted.basis(0);
  for (std::size_t i = 0; i < plain_basis.size(); ++i) {
    EXPECT_TRUE(hinted_basis[i] == plain_basis[i]) << "row " << i;
  }
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalenceTest, LockMemoryPinsMappingOrFailsLoudly) {
  const Basis original = make_basis(BasisKind::Random);
  const std::string path = temp_file("equiv_mlock.hdcs");
  SnapshotWriter writer;
  writer.add_basis(original);
  writer.write_file(path);

  hdc::io::MappingOptions pinned;
  pinned.lock_memory = true;
  // mlock needs RLIMIT_MEMLOCK headroom, which sandboxed CI runners may
  // not grant; the contract is pin-or-throw, never a silently unpinned
  // mapping.
  try {
    const auto snapshot = MappedSnapshot::open(
        path, hdc::io::SnapshotIntegrity::Checksum, pinned);
    EXPECT_EQ(snapshot.locked(), snapshot.zero_copy());
    const Basis basis = snapshot.basis(0);
    ASSERT_EQ(basis.size(), original.size());
    for (std::size_t i = 0; i < basis.size(); ++i) {
      EXPECT_TRUE(basis[i] == original[i]) << "row " << i;
    }
  } catch (const hdc::io::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("mlock"), std::string::npos);
  }
  std::filesystem::remove(path);
}

}  // namespace
