// Reload-path validation: `load_pipeline` must hand back a fully vetted
// mapping+pipeline bundle or throw with the file untouched, and
// `ensure_swappable` must admit exactly the replacements that preserve the
// wire contract of already-connected clients (same prediction kind, same
// feature arity — retrained weights and even a different dimension are
// fine).  These are the gates the hdc::serve hot-swap protocol stands on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hdc/io/fixture_models.hpp"
#include "hdc/io/io.hpp"

namespace {

using hdc::io::LoadedPipeline;
using hdc::io::MappedSnapshot;
using hdc::io::Pipeline;
using hdc::io::SnapshotError;
using hdc::io::SnapshotIntegrity;
using hdc::io::SnapshotWriter;
namespace fixtures = hdc::io::fixtures;

std::string temp_file(const std::string& name) {
  const auto stamp = static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return (std::filesystem::path(testing::TempDir()) /
          ("reload_" + std::to_string(stamp) + "_" + name))
      .string();
}

std::string write_beijing(const std::string& name,
                          const fixtures::FixtureSpec& spec = {}) {
  const std::string path = temp_file(name);
  const fixtures::BeijingPipeline models =
      fixtures::make_beijing_pipeline(spec);
  SnapshotWriter writer;
  writer.add_pipeline(*models.encoder, models.model);
  writer.write_file(path);
  return path;
}

TEST(ReloadTest, LoadPipelineMatchesManualRestore) {
  const std::string path = write_beijing("roundtrip.hdcs");
  const LoadedPipeline loaded = hdc::io::load_pipeline(path);

  const auto oracle_snapshot = MappedSnapshot::open(path);
  const Pipeline oracle = Pipeline::restore(oracle_snapshot);
  EXPECT_EQ(loaded.pipeline.kind(), oracle.kind());
  EXPECT_EQ(loaded.pipeline.num_features(), oracle.num_features());
  const std::vector<double> row{2.0, 180.0, 12.5};
  EXPECT_EQ(loaded.pipeline.regress(row), oracle.regress(row));
  std::filesystem::remove(path);
}

TEST(ReloadTest, LoadedPipelineSurvivesMove) {
  // The serve hot-swap moves the bundle into a shared ServingState; the
  // pipeline's borrowed spans must stay valid across that move.
  const std::string path = write_beijing("move.hdcs");
  LoadedPipeline first = hdc::io::load_pipeline(path);
  const std::vector<double> row{4.0, 300.0, 23.0};
  const double expected = first.pipeline.regress(row);
  const LoadedPipeline second = std::move(first);
  EXPECT_EQ(second.pipeline.regress(row), expected);
  std::filesystem::remove(path);
}

TEST(ReloadTest, RejectsCorruptPayloadUnderChecksumIntegrity) {
  // XOR the whole second half: with page-aligned sections a single flipped
  // byte could land in checksum-free padding, but the tail section's real
  // payload is always in here.
  const std::string path = write_beijing("corrupt.hdcs");
  const auto size =
      static_cast<std::streamoff>(std::filesystem::file_size(path));
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    std::string tail(static_cast<std::size_t>(size - size / 2), '\0');
    file.seekg(size / 2);
    file.read(tail.data(), static_cast<std::streamoff>(tail.size()));
    for (char& byte : tail) {
      byte = static_cast<char>(byte ^ 0x5A);
    }
    file.clear();
    file.seekp(size / 2);
    file.write(tail.data(), static_cast<std::streamoff>(tail.size()));
  }
  EXPECT_THROW((void)hdc::io::load_pipeline(path), SnapshotError);
  std::filesystem::remove(path);
}

TEST(ReloadTest, RejectsTruncatedFile) {
  const std::string path = write_beijing("truncated.hdcs");
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)hdc::io::load_pipeline(path), SnapshotError);
  std::filesystem::remove(path);
}

TEST(ReloadTest, RejectsMissingFileAndPipelinelessSnapshot) {
  EXPECT_THROW(
      (void)hdc::io::load_pipeline(temp_file("does_not_exist.hdcs")),
      SnapshotError);

  // A valid snapshot that holds sections but no pipeline head is not
  // servable and must be rejected by the same single entry point.
  const std::string path = temp_file("headless.hdcs");
  SnapshotWriter writer;
  writer.add_basis(fixtures::make_basis(hdc::BasisKind::Circular));
  writer.write_file(path);
  EXPECT_THROW((void)hdc::io::load_pipeline(path), SnapshotError);
  std::filesystem::remove(path);
}

TEST(ReloadTest, EnsureSwappableAcceptsRetrainedSameShape) {
  // Different seed — completely different weights and predictions, same
  // kind and arity: the canonical redeploy.
  const std::string a = write_beijing("shape_a.hdcs");
  fixtures::FixtureSpec retrained;
  retrained.seed = 7777;
  const std::string b = write_beijing("shape_b.hdcs", retrained);
  const LoadedPipeline incumbent = hdc::io::load_pipeline(a);
  const LoadedPipeline fresh = hdc::io::load_pipeline(b);
  EXPECT_NO_THROW(
      hdc::io::ensure_swappable(fresh.pipeline, incumbent.pipeline));

  // A different dimension is deliberately also fine (invisible on the wire).
  fixtures::FixtureSpec wider;
  wider.dimension = 256;
  const std::string c = write_beijing("shape_c.hdcs", wider);
  const LoadedPipeline rescaled = hdc::io::load_pipeline(c);
  EXPECT_NO_THROW(
      hdc::io::ensure_swappable(rescaled.pipeline, incumbent.pipeline));
  for (const auto& path : {a, b, c}) {
    std::filesystem::remove(path);
  }
}

TEST(ReloadTest, EnsureSwappableRejectsKindAndArityMismatch) {
  const std::string regressor_path = write_beijing("kind_regressor.hdcs");
  const LoadedPipeline regressor = hdc::io::load_pipeline(regressor_path);

  const std::string classifier_path = temp_file("kind_classifier.hdcs");
  const fixtures::ClassifierPipeline classifier_models =
      fixtures::make_classifier_pipeline();
  {
    SnapshotWriter writer;
    writer.add_pipeline(classifier_models.encoder, classifier_models.model);
    writer.write_file(classifier_path);
  }
  const LoadedPipeline classifier = hdc::io::load_pipeline(classifier_path);

  // Kind mismatch, both directions.
  EXPECT_THROW(
      hdc::io::ensure_swappable(classifier.pipeline, regressor.pipeline),
      SnapshotError);
  EXPECT_THROW(
      hdc::io::ensure_swappable(regressor.pipeline, classifier.pipeline),
      SnapshotError);

  // Same kind (regressor) but one feature instead of three.
  const std::string narrow_path = temp_file("arity_regressor.hdcs");
  const fixtures::RegressorPipeline narrow_models =
      fixtures::make_regressor_pipeline();
  {
    SnapshotWriter writer;
    writer.add_pipeline(*narrow_models.encoder, narrow_models.model);
    writer.write_file(narrow_path);
  }
  const LoadedPipeline narrow = hdc::io::load_pipeline(narrow_path);
  ASSERT_NE(narrow.pipeline.num_features(),
            regressor.pipeline.num_features());
  try {
    hdc::io::ensure_swappable(narrow.pipeline, regressor.pipeline);
    FAIL() << "arity mismatch must be rejected";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("features/row"), std::string::npos);
  }
  for (const auto& path : {regressor_path, classifier_path, narrow_path}) {
    std::filesystem::remove(path);
  }
}

}  // namespace
